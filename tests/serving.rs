//! `GrapeServer` acceptance pins: K registered queries share **one**
//! `apply_delta` per `ΔG` (identical `rebuilt` sets across per-query
//! reports, `Arc`-shared fragment storage, answers identical to independent
//! handles and to full recomputes), and an evict → rehydrate round trip
//! through the per-fragment binary snapshots yields `output()` identical to
//! the never-evicted handle with `peval_calls == 0` on rehydration.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use grape::algorithms::sssp::{Sssp, SsspQuery};
use grape::core::config::EngineMode;
use grape::core::serve::GrapeServer;
use grape::core::session::GrapeSession;
use grape::graph::builder::GraphBuilder;
use grape::graph::delta::GraphDelta;
use grape::graph::graph::{Directedness, Graph};
use grape::graph::types::VertexId;
use grape::partition::edge_cut::HashEdgeCut;
use grape::partition::fragment::Fragmentation;
use grape::partition::strategy::PartitionStrategy;

const MODES: [EngineMode; 2] = [EngineMode::Sync, EngineMode::Async];

fn session(mode: EngineMode) -> GrapeSession {
    GrapeSession::builder()
        .workers(3)
        .mode(mode)
        .build()
        .unwrap()
}

fn seeded_graph(seed: u64, n: u64, m: usize) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(Directedness::Directed).ensure_vertices(n as usize);
    for _ in 0..m {
        let s = rng.gen_range(0..n);
        let d = rng.gen_range(0..n);
        if s != d {
            b.push_edge(grape::graph::types::Edge::weighted(
                s,
                d,
                rng.gen_range(1u32..9u32) as f64,
            ));
        }
    }
    b.build()
}

fn partition(g: &Graph) -> Fragmentation {
    HashEdgeCut::new(4).partition(g).unwrap()
}

fn insert_batch(rng: &mut StdRng, n: u64, count: usize) -> GraphDelta {
    let mut delta = GraphDelta::new();
    for _ in 0..count {
        let s = rng.gen_range(0..n);
        let d = rng.gen_range(0..n);
        if s != d {
            delta = delta.add_weighted_edge(s, d, rng.gen_range(1u32..5u32) as f64);
        }
    }
    delta
}

fn assert_same_sssp(
    a: &grape::algorithms::sssp::SsspResult,
    b: &grape::algorithms::sssp::SsspResult,
    ctx: &str,
) {
    assert_eq!(a.distances().len(), b.distances().len(), "{ctx}");
    for (v, d) in a.distances() {
        let other = b.distances().get(v).unwrap_or_else(|| panic!("{ctx}: {v}"));
        assert!(
            (d - other).abs() < 1e-9,
            "{ctx}: vertex {v}: {d} vs {other}"
        );
    }
}

/// K standing queries, one delta stream: every per-query report carries the
/// single delta application's rebuilt set, every handle keeps sharing the
/// server's fragment storage, and every answer equals both an independent
/// handle's and a from-scratch recompute.
#[test]
fn k_queries_share_one_delta_application() {
    for mode in MODES {
        let g = seeded_graph(0xC0FFEE, 40, 120);
        let s = session(mode);
        let sources: Vec<VertexId> = vec![0, 3, 7, 11];

        // Independent handles: the baseline the server must match while
        // applying each delta once instead of K times.
        let mut independent: Vec<_> = sources
            .iter()
            .map(|&src| s.prepare(partition(&g), Sssp, SsspQuery::new(src)).unwrap())
            .collect();

        let mut server = GrapeServer::new(s.clone(), partition(&g));
        let handles: Vec<_> = sources
            .iter()
            .map(|&src| server.register(Sssp, SsspQuery::new(src)).unwrap())
            .collect();

        let mut rng = StdRng::seed_from_u64(0xD157);
        let existing = g.edges()[17];
        let deltas = vec![
            insert_batch(&mut rng, 40, 6),
            insert_batch(&mut rng, 44, 6),
            GraphDelta::new().remove_edge(existing.src, existing.dst),
            insert_batch(&mut rng, 44, 4),
        ];

        for delta in &deltas {
            let report = server.apply(delta).unwrap();
            assert_eq!(report.refreshed.len(), sources.len(), "{mode:?}");
            for qr in &report.refreshed {
                let ur = qr.result.as_ref().unwrap();
                assert_eq!(
                    ur.rebuilt, report.rebuilt,
                    "one rebuilt-fragment set shared by query {} ({mode:?})",
                    qr.query
                );
            }
            for p in independent.iter_mut() {
                p.update(delta).unwrap();
            }
        }
        assert_eq!(server.deltas_applied(), deltas.len());
        assert_eq!(server.retained_versions(), 1);

        // Shared storage: every handle's fragmentation is the server's,
        // fragment by fragment (Arc identity, not just equality).
        for h in &handles {
            let prepared = server.prepared(h).unwrap().unwrap();
            for i in 0..server.fragmentation().num_fragments() {
                assert!(
                    server
                        .fragmentation()
                        .shares_fragment_storage(prepared.fragmentation(), i),
                    "query {} fragment {i} not shared ({mode:?})",
                    h.id()
                );
            }
        }

        for (k, h) in handles.iter().enumerate() {
            let served = server.output(h).unwrap();
            let alone = independent[k].output();
            assert_same_sssp(
                &served,
                &alone,
                &format!("served vs independent ({mode:?})"),
            );
            let recompute = s
                .run(server.fragmentation(), &Sssp, &SsspQuery::new(sources[k]))
                .unwrap();
            assert_same_sssp(
                &served,
                &recompute.output,
                &format!("served vs recompute ({mode:?})"),
            );
        }
    }
}

/// The eviction acceptance pin: spill → reload through the per-fragment
/// binary snapshots reproduces the never-evicted handle exactly, with zero
/// PEval calls on rehydration — including when monotone deltas arrived
/// while the query was cold.
#[test]
fn evict_rehydrate_matches_the_never_evicted_handle() {
    for mode in MODES {
        let g = seeded_graph(0xE71C7, 36, 100);
        let s = session(mode);
        let mut server = GrapeServer::new(s.clone(), partition(&g));
        let hot = server.register(Sssp, SsspQuery::new(0)).unwrap();
        let cold = server.register(Sssp, SsspQuery::new(0)).unwrap();

        let mut rng = StdRng::seed_from_u64(0x5EED);
        server.apply(&insert_batch(&mut rng, 36, 5)).unwrap();

        // Round trip with no pending deltas.
        let spill = server.evict(&cold).unwrap();
        assert!(spill.exists(), "{mode:?}");
        let rehydration = server.rehydrate(&cold).unwrap();
        assert_eq!(
            rehydration.peval_calls(),
            0,
            "rehydration must not re-run PEval ({mode:?})"
        );
        assert!(rehydration.replayed.is_empty());
        let a = server.output(&cold).unwrap();
        let b = server.output(&hot).unwrap();
        assert_same_sssp(&a, &b, &format!("round trip ({mode:?})"));

        // Evict again; monotone deltas arrive while cold; lazy rehydration
        // replays them — still zero PEval anywhere on the cold path.
        server.evict(&cold).unwrap();
        server.apply(&insert_batch(&mut rng, 40, 5)).unwrap();
        let r = server.apply(&insert_batch(&mut rng, 40, 5)).unwrap();
        assert_eq!(r.deferred, vec![cold.id()], "{mode:?}");
        assert!(server.retained_versions() > 1, "{mode:?}");

        let rehydration = server.rehydrate(&cold).unwrap();
        assert_eq!(rehydration.replayed.len(), 2, "{mode:?}");
        assert_eq!(
            rehydration.peval_calls(),
            0,
            "monotone replay is PEval-free ({mode:?})"
        );
        let a = server.output(&cold).unwrap();
        let b = server.output(&hot).unwrap();
        assert_same_sssp(&a, &b, &format!("replayed round trip ({mode:?})"));
        assert_eq!(server.retained_versions(), 1, "{mode:?}");

        // Deletions while cold take the same decision table on replay and
        // still match the hot handle.
        server.evict(&cold).unwrap();
        let edge = server.fragmentation().source().edges()[3];
        server
            .apply(&GraphDelta::new().remove_edge(edge.src, edge.dst))
            .unwrap();
        let a = server.output(&cold).unwrap(); // lazy rehydrate + replay
        let b = server.output(&hot).unwrap();
        assert_same_sssp(&a, &b, &format!("deletion replay ({mode:?})"));
    }
}
