//! Incremental-vs-full-recompute equivalence: for SSSP, CC and graph
//! simulation over seeded random graphs and delta sequences,
//! `PreparedQuery::update(ΔG)` must produce output identical to a full
//! recompute on `G ⊕ ΔG` — and, for monotone delta batches, must execute
//! **zero PEval calls** (`metrics.peval_calls == 0`).  Both engine modes
//! ([`EngineMode::Sync`] and the barrier-free [`EngineMode::Async`]) are
//! exercised for every case.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use grape::algorithms::cc::{Cc, CcQuery};
use grape::algorithms::sim::{Sim, SimQuery};
use grape::algorithms::sssp::{Sssp, SsspQuery};
use grape::core::config::EngineMode;
use grape::core::session::GrapeSession;
use grape::graph::builder::GraphBuilder;
use grape::graph::delta::GraphDelta;
use grape::graph::graph::{Directedness, Graph};
use grape::graph::pattern::Pattern;
use grape::partition::edge_cut::HashEdgeCut;
use grape::partition::strategy::PartitionStrategy;

const CASES: u64 = 8;
const MODES: [EngineMode; 2] = [EngineMode::Sync, EngineMode::Async];

fn session(workers: usize, mode: EngineMode) -> GrapeSession {
    GrapeSession::builder()
        .workers(workers)
        .mode(mode)
        .build()
        .unwrap()
}

/// A random directed weighted labeled graph (same generator family as
/// `assurance.rs` / `async_equivalence.rs`).
fn arb_graph(rng: &mut StdRng, max_n: u64, max_m: usize, labels: u32) -> Graph {
    let n = rng.gen_range(4..max_n);
    let m = rng.gen_range(1..max_m);
    let mut b = GraphBuilder::new(Directedness::Directed).ensure_vertices(n as usize);
    for _ in 0..m {
        let s = rng.gen_range(0..n);
        let d = rng.gen_range(0..n);
        let w = rng.gen_range(1u32..10u32);
        if s != d {
            b.push_edge(grape::graph::types::Edge::weighted(s, d, w as f64));
        }
    }
    if labels > 0 {
        for v in 0..n {
            b.push_vertex_label(v, (v as u32 % labels) + 1);
        }
    }
    b.build()
}

/// A batch of random edge insertions (optionally with brand-new vertices).
fn insert_delta(rng: &mut StdRng, g: &Graph, count: usize) -> GraphDelta {
    let n = g.num_vertices() as u64;
    let mut delta = GraphDelta::new();
    for _ in 0..count {
        // One in four insertions reaches outside the current vertex set.
        let s = rng.gen_range(0..n);
        let d = if rng.gen_range(0u32..4) == 0 {
            n + rng.gen_range(0u64..3)
        } else {
            rng.gen_range(0..n)
        };
        if s != d {
            let w = rng.gen_range(1u32..10u32);
            delta = delta.add_weighted_edge(s, d, w as f64);
        }
    }
    delta
}

/// A batch of random distinct edge deletions.
fn delete_delta(rng: &mut StdRng, g: &Graph, count: usize) -> GraphDelta {
    let m = g.num_edges();
    let mut seen = std::collections::HashSet::new();
    let mut delta = GraphDelta::new();
    for _ in 0..count * 3 {
        if seen.len() >= count.min(m) {
            break;
        }
        let e = g.edges()[rng.gen_range(0..m as u64) as usize];
        if seen.insert((e.src, e.dst)) {
            delta = delta.remove_edge(e.src, e.dst);
        }
    }
    delta
}

#[test]
fn sssp_update_sequence_matches_recompute_in_both_modes() {
    for mode in MODES {
        for case in 0..CASES {
            let mut rng = StdRng::seed_from_u64(0x1E_0100 + case);
            let graph = arb_graph(&mut rng, 50, 180, 0);
            let fragments = rng.gen_range(2usize..6);
            let workers = rng.gen_range(1usize..4);
            let source = rng.gen_range(0u64..graph.num_vertices() as u64);

            let frag = HashEdgeCut::new(fragments).partition(&graph).unwrap();
            let s = session(workers, mode);
            let mut prepared = s.prepare(frag, Sssp, SsspQuery::new(source)).unwrap();

            // A sequence of monotone (insert-only) deltas.
            for round in 0..3 {
                let delta = insert_delta(&mut rng, prepared.fragmentation().source(), 6);
                let report = prepared.update(&delta).unwrap();
                assert!(report.incremental, "case {case} round {round} ({mode:?})");
                assert_eq!(
                    report.metrics.peval_calls, 0,
                    "monotone batches must not run PEval (case {case}, {mode:?})"
                );
                let recompute = s
                    .run(prepared.fragmentation(), &Sssp, &SsspQuery::new(source))
                    .unwrap();
                let output = prepared.output();
                for v in prepared.fragmentation().source().vertices() {
                    assert_eq!(
                        output.distance(v).map(|d| (d * 1e9).round() as i64),
                        recompute
                            .output
                            .distance(v)
                            .map(|d| (d * 1e9).round() as i64),
                        "case {case} round {round} vertex {v} ({mode:?})"
                    );
                }
            }

            // One non-monotone (deletion) delta: must fall back, still agree.
            let delta = delete_delta(&mut rng, prepared.fragmentation().source(), 4);
            if !delta.is_empty() {
                let report = prepared.update(&delta).unwrap();
                assert!(!report.incremental, "case {case} ({mode:?})");
                let recompute = s
                    .run(prepared.fragmentation(), &Sssp, &SsspQuery::new(source))
                    .unwrap();
                for v in prepared.fragmentation().source().vertices() {
                    assert_eq!(
                        prepared
                            .output()
                            .distance(v)
                            .map(|d| (d * 1e9).round() as i64),
                        recompute
                            .output
                            .distance(v)
                            .map(|d| (d * 1e9).round() as i64),
                        "case {case} post-deletion vertex {v} ({mode:?})"
                    );
                }
            }
        }
    }
}

#[test]
fn cc_update_sequence_matches_recompute_in_both_modes() {
    for mode in MODES {
        for case in 0..CASES {
            let mut rng = StdRng::seed_from_u64(0x1E_0200 + case);
            let graph = arb_graph(&mut rng, 50, 140, 0).to_undirected();
            let fragments = rng.gen_range(2usize..6);
            let workers = rng.gen_range(1usize..4);

            let frag = HashEdgeCut::new(fragments).partition(&graph).unwrap();
            let s = session(workers, mode);
            let mut prepared = s.prepare(frag, Cc, CcQuery).unwrap();

            for round in 0..3 {
                let delta = insert_delta(&mut rng, prepared.fragmentation().source(), 5);
                let report = prepared.update(&delta).unwrap();
                assert!(report.incremental, "case {case} round {round} ({mode:?})");
                assert_eq!(report.metrics.peval_calls, 0, "case {case} ({mode:?})");
                let recompute = s.run(prepared.fragmentation(), &Cc, &CcQuery).unwrap();
                let output = prepared.output();
                for v in prepared.fragmentation().source().vertices() {
                    assert_eq!(
                        output.component(v),
                        recompute.output.component(v),
                        "case {case} round {round} vertex {v} ({mode:?})"
                    );
                }
            }
        }
    }
}

#[test]
fn sim_update_sequence_matches_recompute_in_both_modes() {
    for mode in MODES {
        for case in 0..CASES {
            let mut rng = StdRng::seed_from_u64(0x1E_0300 + case);
            let graph = arb_graph(&mut rng, 40, 150, 4);
            let fragments = rng.gen_range(2usize..5);
            let workers = rng.gen_range(1usize..4);
            let pattern = Pattern::random(3, 4, &[1, 2, 3, 4], rng.gen_range(0u64..500));

            let frag = HashEdgeCut::new(fragments).partition(&graph).unwrap();
            let s = session(workers, mode);
            let query = SimQuery::new(pattern.clone());
            let mut prepared = s.prepare(frag, Sim::new(), query.clone()).unwrap();

            // Sim's monotone direction: deletions.
            for round in 0..3 {
                let delta = delete_delta(&mut rng, prepared.fragmentation().source(), 5);
                if delta.is_empty() {
                    break;
                }
                let report = prepared.update(&delta).unwrap();
                assert!(report.incremental, "case {case} round {round} ({mode:?})");
                assert_eq!(report.metrics.peval_calls, 0, "case {case} ({mode:?})");
                let recompute = s
                    .run(prepared.fragmentation(), &Sim::new(), &query)
                    .unwrap();
                assert_eq!(
                    prepared.output().relation(),
                    recompute.output.relation(),
                    "case {case} round {round} ({mode:?})"
                );
            }

            // An insertion is non-monotone for Sim: fallback, still agree.
            let delta = insert_delta(&mut rng, prepared.fragmentation().source(), 3);
            if !delta.is_empty() {
                let report = prepared.update(&delta).unwrap();
                assert!(!report.incremental, "case {case} ({mode:?})");
                let recompute = s
                    .run(prepared.fragmentation(), &Sim::new(), &query)
                    .unwrap();
                assert_eq!(
                    prepared.output().relation(),
                    recompute.output.relation(),
                    "case {case} post-insertion ({mode:?})"
                );
            }
        }
    }
}
