//! End-to-end integration tests spanning every crate: workload generation,
//! partitioning, the GRAPE engine, the PIE programs, the baselines and the
//! fault-tolerance / asynchronous extensions.

use grape::algorithms::cc::{Cc, CcQuery};
use grape::algorithms::cf::{Cf, CfQuery};
use grape::algorithms::sim::{Sim, SimQuery};
use grape::algorithms::sssp::{dijkstra, Sssp, SsspQuery};
use grape::algorithms::subiso::{subgraph_isomorphism, SubIso, SubIsoQuery};
use grape::baselines::block_centric::{BlockCentricEngine, BlockSim};
use grape::baselines::vertex_centric::{VertexCentricEngine, VertexSssp};
use grape::core::config::EngineMode;
use grape::core::session::GrapeSession;
use grape::graph::generators;
use grape::graph::pattern::Pattern;
use grape::partition::edge_cut::HashEdgeCut;
use grape::partition::grid::TwoDPartition;
use grape::partition::metis_like::MetisLike;
use grape::partition::strategy::PartitionStrategy;
use grape::partition::streaming::StreamingPartition;
use grape::partition::vertex_cut::GreedyVertexCut;

#[test]
fn all_five_query_classes_run_on_one_partitioned_graph() {
    let graph = generators::labeled_kg(1_000, 4_000, 20, 10, 42);
    let frag = MetisLike::new(4).partition(&graph).unwrap();
    let session = GrapeSession::with_workers(4);

    let sssp = session.run(&frag, &Sssp, &SsspQuery::new(0)).unwrap();
    assert!(sssp.output.num_reached() >= 1);

    let cc = session.run(&frag, &Cc, &CcQuery).unwrap();
    assert!(cc.output.num_components() >= 1);

    let alphabet: Vec<u32> = (1..=20).collect();
    let pattern = Pattern::random(4, 6, &alphabet, 7);
    let sim = session
        .run(&frag, &Sim::new(), &SimQuery::new(pattern.clone()))
        .unwrap();
    let subiso = session
        .run(
            &frag,
            &SubIso,
            &SubIsoQuery::new(pattern.clone()).with_max_matches(500),
        )
        .unwrap();
    // Every exact embedding is also contained in the simulation relation.
    if sim.output.is_match() {
        for m in subiso.output.matches() {
            for (u, v) in m.iter().enumerate() {
                assert!(
                    sim.output.matches(u as u32).contains(v),
                    "subiso match {m:?} not covered by simulation at query node {u}"
                );
            }
        }
    } else {
        assert_eq!(subiso.output.num_matches(), 0);
    }
}

#[test]
fn every_partition_strategy_yields_the_same_sssp_answer() {
    let graph = generators::power_law(800, 3_200, 0, 9);
    let expected = dijkstra(&graph, 0);
    let session = GrapeSession::with_workers(3);
    let strategies: Vec<Box<dyn PartitionStrategy>> = vec![
        Box::new(HashEdgeCut::new(5)),
        Box::new(MetisLike::new(5)),
        Box::new(StreamingPartition::ldg(5)),
        Box::new(StreamingPartition::fennel(5)),
        Box::new(TwoDPartition::new(2, 2)),
        Box::new(GreedyVertexCut::new(5)),
    ];
    for strategy in strategies {
        let frag = strategy.partition(&graph).unwrap();
        let result = session.run(&frag, &Sssp, &SsspQuery::new(0)).unwrap();
        for (v, d) in expected.iter().enumerate() {
            match result.output.distance(v as u64) {
                Some(got) => assert!(
                    (got - d).abs() < 1e-9,
                    "strategy {} vertex {v}: {got} vs {d}",
                    strategy.name()
                ),
                None => assert!(!d.is_finite(), "strategy {} vertex {v}", strategy.name()),
            }
        }
    }
}

#[test]
fn grape_baselines_and_sequential_agree_on_subiso_and_sim() {
    let graph = generators::labeled_kg(300, 1_200, 6, 3, 17);
    let alphabet: Vec<u32> = (1..=6).collect();
    let pattern = Pattern::random(3, 4, &alphabet, 23);
    let frag = HashEdgeCut::new(4).partition(&graph).unwrap();
    let session = GrapeSession::with_workers(2);

    let grape_subiso = session
        .run(&frag, &SubIso, &SubIsoQuery::new(pattern.clone()))
        .unwrap()
        .output;
    let mut expected = subgraph_isomorphism(&graph, &pattern, usize::MAX);
    expected.sort_unstable();
    assert_eq!(grape_subiso.matches(), expected.as_slice());

    let grape_sim = session
        .run(&frag, &Sim::new(), &SimQuery::new(pattern.clone()))
        .unwrap()
        .output;
    let (block_sim, _) =
        BlockCentricEngine::new(2).run(&frag, &BlockSim, &SimQuery::new(pattern.clone()));
    assert_eq!(grape_sim.relation(), block_sim.as_slice());
}

#[test]
fn fault_tolerance_and_async_mode_preserve_answers() {
    let graph = generators::road_grid(20, 20, 3);
    let frag = MetisLike::new(4).partition(&graph).unwrap();
    let query = SsspQuery::new(0);
    let expected = dijkstra(&graph, 0);

    // Checkpoint every superstep, kill fragment 2 at superstep 3.  Fault
    // tolerance is superstep-aligned, so this run pins synchronous mode.
    let faulty = GrapeSession::builder()
        .workers(3)
        .mode(EngineMode::Sync)
        .checkpoint_every(1)
        .inject_failure(3, 2)
        .build()
        .unwrap()
        .run(&frag, &Sssp, &query)
        .unwrap();
    assert_eq!(faulty.metrics.recovered_failures, 1);

    // Asynchronous (barrier-free) extension.
    let async_run = GrapeSession::builder()
        .workers(3)
        .mode(EngineMode::Async)
        .build()
        .unwrap()
        .run(&frag, &Sssp, &query)
        .unwrap();

    for (v, d) in expected.iter().enumerate() {
        if d.is_finite() {
            assert!((faulty.output.distance(v as u64).unwrap() - d).abs() < 1e-9);
            assert!((async_run.output.distance(v as u64).unwrap() - d).abs() < 1e-9);
        }
    }
    // The barrier-free runtime needs no more supersteps (longest causal
    // message chain) than the synchronous run.
    let sync_run = GrapeSession::builder()
        .workers(3)
        .mode(EngineMode::Sync)
        .build()
        .unwrap()
        .run(&frag, &Sssp, &query)
        .unwrap();
    assert!(
        async_run.metrics.supersteps <= sync_run.metrics.supersteps,
        "async {} vs sync {}",
        async_run.metrics.supersteps,
        sync_run.metrics.supersteps
    );
}

#[test]
fn cf_pipeline_learns_on_generated_ratings() {
    let data = generators::bipartite_ratings(200, 80, 4_000, 6, 5);
    let frag = HashEdgeCut::new(4).partition(&data.graph).unwrap();
    let session = GrapeSession::with_workers(4);
    let query = CfQuery {
        epochs: 8,
        num_factors: 6,
        ..Default::default()
    };
    let run = session.run(&frag, &Cf, &query).unwrap();
    let rmse = run.output.rmse(&data.graph);
    assert!(
        rmse < 0.9,
        "distributed CF should fit the training data, rmse = {rmse}"
    );
    // Predictions correlate with the ground truth for unseen pairs.
    let mut better = 0usize;
    let mut total = 0usize;
    for user in 0..20 {
        for item in 0..20 {
            let truth = data.true_rating(user, item);
            let predicted = run
                .output
                .predict(data.user_vertex(user), data.item_vertex(item));
            if (predicted - truth).abs() < 1.5 {
                better += 1;
            }
            total += 1;
        }
    }
    assert!(
        better * 2 > total,
        "only {better}/{total} predictions near the ground truth"
    );
}

#[test]
fn grape_beats_vertex_centric_on_road_network_metrics() {
    // The Table 1 shape at integration-test scale: fewer supersteps and less
    // data shipped on a high-diameter graph.
    let graph = generators::road_grid(30, 30, 8);
    let frag = MetisLike::new(4).partition(&graph).unwrap();
    let query = SsspQuery::new(0);
    let grape = GrapeSession::with_workers(4)
        .run(&frag, &Sssp, &query)
        .unwrap();
    let (_, vertex) = VertexCentricEngine::new(4).run(&graph, &VertexSssp, &query);
    assert!(grape.metrics.supersteps * 2 < vertex.supersteps);
    assert!(grape.metrics.total_bytes * 2 < vertex.total_bytes);
}
