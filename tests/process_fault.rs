//! Fault behavior of the Process transport: a worker subprocess dying
//! mid-superstep must surface as a clean [`EngineError::Worker`] — no hang,
//! no partial answer — and the engine must never leave orphaned
//! `grape-worker` processes behind, whether the run succeeded or crashed.
//!
//! The kill is injected with the `GRAPE_WORKER_CRASH_AFTER` hook: the
//! worker serves that many PEval/IncEval requests and then exits hard
//! (`process::exit(3)`) *before* replying, so the parent sees a dead pipe
//! in the middle of a superstep.  The hook is an environment variable and
//! environment is process-global, so every test here serializes on one
//! mutex.

use std::sync::mpsc;
use std::sync::Mutex;
use std::thread;
use std::time::Duration;

use grape::algorithms::sssp::{Sssp, SsspQuery};
use grape::core::config::EngineMode;
use grape::core::engine::EngineError;
use grape::core::session::GrapeSession;
use grape::core::transport::TransportSpec;
use grape::core::worker_proto::{locate_worker_binary, WORKER_CRASH_ENV};
use grape::graph::delta::GraphDelta;
use grape::graph::generators;
use grape::graph::graph::Graph;
use grape::partition::edge_cut::HashEdgeCut;
use grape::partition::strategy::PartitionStrategy;
use grape::partition::Fragmentation;

/// Serializes the tests in this binary (they mutate process environment).
static ENV_LOCK: Mutex<()> = Mutex::new(());

/// How long a crashed run may take before we call it a hang.  Generous —
/// the point is that the engine returns at all, not that it is fast.
const CRASH_TIMEOUT: Duration = Duration::from_secs(60);

fn worker_available() -> bool {
    if locate_worker_binary().is_some() {
        true
    } else {
        eprintln!(
            "skipping Process-transport fault tests: grape-worker binary not \
             built (run `cargo build -p grape-daemon --bins` first)"
        );
        false
    }
}

fn test_graph() -> Graph {
    generators::road_grid(12, 12, 7)
}

fn partition(graph: &Graph) -> Fragmentation {
    HashEdgeCut::new(4).partition(graph).unwrap()
}

fn session(mode: EngineMode) -> GrapeSession {
    GrapeSession::builder()
        .workers(2)
        .mode(mode)
        .transport(TransportSpec::Process { workers: 2 })
        .build()
        .unwrap()
}

/// Live `grape-worker` children of this test process, via /proc (the CI
/// container is Linux; elsewhere the scan degrades to "none found").
fn worker_children() -> Vec<u32> {
    let me = std::process::id();
    let mut found = Vec::new();
    let Ok(entries) = std::fs::read_dir("/proc") else {
        return found;
    };
    for e in entries.flatten() {
        let name = e.file_name();
        let Some(pid) = name.to_str().and_then(|s| s.parse::<u32>().ok()) else {
            continue;
        };
        let Ok(stat) = std::fs::read_to_string(format!("/proc/{pid}/stat")) else {
            continue;
        };
        // Format: pid (comm) state ppid …  — comm may contain spaces, so
        // split around the parentheses.
        let (Some(open), Some(close)) = (stat.find('('), stat.rfind(')')) else {
            continue;
        };
        let comm = &stat[open + 1..close];
        let ppid: u32 = stat[close + 1..]
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or(0);
        if comm == "grape-worker" && ppid == me {
            found.push(pid);
        }
    }
    found
}

/// Runs `f` on a scratch thread and panics if it neither returns nor
/// errors within the timeout — the "no hang" half of the contract.
fn within_timeout<T: Send + 'static>(f: impl FnOnce() -> T + Send + 'static, tag: &str) -> T {
    let (tx, rx) = mpsc::channel();
    thread::spawn(move || {
        let _ = tx.send(f());
    });
    rx.recv_timeout(CRASH_TIMEOUT)
        .unwrap_or_else(|_| panic!("{tag}: engine did not return within {CRASH_TIMEOUT:?}"))
}

#[test]
fn killed_worker_mid_superstep_is_a_clean_engine_error() {
    if !worker_available() {
        return;
    }
    let _guard = ENV_LOCK.lock().unwrap();
    for mode in [EngineMode::Sync, EngineMode::Async] {
        // Two evaluations succeed, the third kills the worker — mid-run for
        // a 4-fragment graph, so some fragments have answered and some
        // never will.
        std::env::set_var(WORKER_CRASH_ENV, "2");
        let result = within_timeout(
            move || {
                let graph = test_graph();
                let frag = partition(&graph);
                session(mode).run(&frag, &Sssp, &SsspQuery::new(0))
            },
            &format!("crashed run ({mode:?})"),
        );
        std::env::remove_var(WORKER_CRASH_ENV);
        match result {
            Err(EngineError::Worker(reason)) => {
                assert!(!reason.is_empty(), "({mode:?}) empty failure reason")
            }
            Err(other) => panic!("({mode:?}) expected EngineError::Worker, got {other:?}"),
            Ok(run) => panic!(
                "({mode:?}) a run missing a worker must not produce an answer \
                 (got {} supersteps)",
                run.metrics.supersteps
            ),
        }
        assert_eq!(
            worker_children(),
            Vec::<u32>::new(),
            "({mode:?}) crashed run left orphaned grape-worker processes"
        );
    }
}

#[test]
fn killed_worker_during_refresh_is_a_clean_engine_error() {
    if !worker_available() {
        return;
    }
    let _guard = ENV_LOCK.lock().unwrap();
    let graph = test_graph();
    let s = session(EngineMode::Sync);
    let mut prepared = s
        .prepare(partition(&graph), Sssp, SsspQuery::new(0))
        .unwrap();
    let delta = GraphDelta::new().add_weighted_edge(0, 143, 1.0);

    std::env::set_var(WORKER_CRASH_ENV, "1");
    let result = within_timeout(
        move || {
            let report = prepared.update(&delta);
            report.map(|r| r.metrics.supersteps)
        },
        "crashed refresh",
    );
    std::env::remove_var(WORKER_CRASH_ENV);
    match result {
        Err(EngineError::Worker(_)) => {}
        other => panic!("expected EngineError::Worker from a crashed refresh, got {other:?}"),
    }
    assert_eq!(
        worker_children(),
        Vec::<u32>::new(),
        "crashed refresh left orphaned grape-worker processes"
    );
}

#[test]
fn successful_runs_reap_every_worker_subprocess() {
    if !worker_available() {
        return;
    }
    let _guard = ENV_LOCK.lock().unwrap();
    let graph = test_graph();
    for mode in [EngineMode::Sync, EngineMode::Async] {
        let frag = partition(&graph);
        let run = session(mode).run(&frag, &Sssp, &SsspQuery::new(0)).unwrap();
        assert!(run.output.num_reached() > 1, "({mode:?})");
        assert_eq!(
            worker_children(),
            Vec::<u32>::new(),
            "({mode:?}) successful run left orphaned grape-worker processes"
        );
    }
}
