//! Delta-fuzz equivalence harness: seeded random graphs + random **mixed**
//! (insert/delete) delta sequences, asserting that `PreparedQuery::update`
//! produces output identical to a full recompute on `G ⊕ ΔG` for **all
//! five** algorithm families — SSSP, CC, Sim, CF and SubIso — under both
//! [`EngineMode::Sync`] and the barrier-free [`EngineMode::Async`].
//!
//! Mixed batches exercise every row of the refresh decision table:
//!
//! * batches in a program's monotone direction take the IncEval-only path
//!   (`peval_calls == 0`),
//! * non-monotone batches take the **bounded refresh** — PEval re-roots only
//!   the damage frontier (`peval_calls == repeval.len()`), with a dedicated
//!   locality test pinning `peval_calls < num_fragments` when the damage is
//!   confined to one quotient component,
//! * a frontier covering everything degenerates into the classic full
//!   re-preparation.
//!
//! The tier-1 run uses a small fixed seed set; the `#[ignore]`-gated
//! `long_fuzz_*` variants (more seeds, larger graphs) run in the nightly
//! scheduled CI job alongside the `Scale::Large` profile.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use grape::algorithms::cc::{Cc, CcQuery};
use grape::algorithms::cf::{Cf, CfQuery};
use grape::algorithms::sim::{Sim, SimQuery};
use grape::algorithms::sssp::{Sssp, SsspQuery};
use grape::algorithms::subiso::{SubIso, SubIsoQuery};
use grape::core::config::EngineMode;
use grape::core::prepared::RefreshKind;
use grape::core::session::GrapeSession;
use grape::core::transport::TransportSpec;
use grape::core::worker_proto::locate_worker_binary;
use grape::graph::builder::GraphBuilder;
use grape::graph::delta::GraphDelta;
use grape::graph::graph::{Directedness, Graph};
use grape::graph::pattern::Pattern;
use grape::graph::types::Edge;
use grape::partition::edge_cut::{HashEdgeCut, RangeEdgeCut};
use grape::partition::strategy::PartitionStrategy;

const MODES: [EngineMode; 2] = [EngineMode::Sync, EngineMode::Async];

/// Size knobs: the tier-1 profile keeps `cargo test -q` fast; the nightly
/// profile fuzzes more seeds over larger graphs.
struct Profile {
    cases: u64,
    rounds: usize,
    max_n: u64,
    max_m: usize,
}

const TIER1: Profile = Profile {
    cases: 5,
    rounds: 3,
    max_n: 40,
    max_m: 140,
};

const NIGHTLY: Profile = Profile {
    cases: 24,
    rounds: 5,
    max_n: 160,
    max_m: 700,
};

fn session(workers: usize, mode: EngineMode) -> GrapeSession {
    session_over(workers, mode, None)
}

/// Same, with an explicit transport (`None` keeps the mode's default
/// in-process substrate) — the axis the Process-transport fuzz rides.
fn session_over(
    workers: usize,
    mode: EngineMode,
    transport: Option<TransportSpec>,
) -> GrapeSession {
    let mut b = GrapeSession::builder().workers(workers).mode(mode);
    if let Some(spec) = transport {
        b = b.transport(spec);
    }
    b.build().unwrap()
}

/// A random directed weighted labeled graph (same generator family as
/// `assurance.rs` / `incremental_equivalence.rs`).
fn arb_graph(rng: &mut StdRng, max_n: u64, max_m: usize, labels: u32) -> Graph {
    let n = rng.gen_range(6..max_n);
    let m = rng.gen_range(4..max_m);
    let mut b = GraphBuilder::new(Directedness::Directed).ensure_vertices(n as usize);
    for _ in 0..m {
        let s = rng.gen_range(0..n);
        let d = rng.gen_range(0..n);
        if s != d {
            let w = rng.gen_range(1u32..10u32);
            b.push_edge(Edge::weighted(s, d, w as f64));
        }
    }
    if labels > 0 {
        for v in 0..n {
            b.push_vertex_label(v, (v as u32 % labels) + 1);
        }
    }
    b.build()
}

/// A random **mixed** batch: edge insertions (possibly to brand-new
/// vertices), distinct edge deletions drawn from the current edge list, and
/// the occasional vertex detachment.
fn mixed_delta(rng: &mut StdRng, g: &Graph, inserts: usize, deletes: usize) -> GraphDelta {
    let n = g.num_vertices() as u64;
    let m = g.num_edges();
    let mut delta = GraphDelta::new();
    for _ in 0..inserts {
        let s = rng.gen_range(0..n);
        let d = if rng.gen_range(0u32..4) == 0 {
            n + rng.gen_range(0u64..3)
        } else {
            rng.gen_range(0..n)
        };
        if s != d {
            let w = rng.gen_range(1u32..10u32);
            delta = delta.add_weighted_edge(s, d, w as f64);
        }
    }
    let mut seen = std::collections::HashSet::new();
    if m > 0 {
        for _ in 0..deletes * 3 {
            if seen.len() >= deletes.min(m) {
                break;
            }
            let e = g.edges()[rng.gen_range(0..m as u64) as usize];
            if seen.insert((e.src, e.dst)) {
                delta = delta.remove_edge(e.src, e.dst);
            }
        }
    }
    // One in three batches also detaches a vertex.
    if rng.gen_range(0u32..3) == 0 && n > 4 {
        delta = delta.remove_vertex(rng.gen_range(0..n));
    }
    delta
}

/// Sanity assertions every update must satisfy, whatever path it took.
fn check_report(report: &grape::core::prepared::UpdateReport, m: usize, tag: &str) {
    assert_eq!(
        report.metrics.peval_calls,
        report.repeval.len(),
        "peval accounting diverges from the damage frontier ({tag})"
    );
    assert_eq!(report.affected_fragments, report.rebuilt.len(), "{tag}");
    assert_eq!(report.reused, m - report.rebuilt.len(), "{tag}");
    match report.kind {
        RefreshKind::Monotone => {
            assert!(report.incremental, "{tag}");
            assert_eq!(report.metrics.peval_calls, 0, "{tag}");
        }
        RefreshKind::Bounded => {
            assert!(!report.incremental, "{tag}");
            assert!(
                report.metrics.peval_calls < m,
                "bounded refresh must beat a full re-preparation ({tag})"
            );
        }
        RefreshKind::Full => {
            assert!(!report.incremental, "{tag}");
            assert_eq!(report.metrics.peval_calls, m, "{tag}");
        }
    }
}

fn fuzz_sssp(
    profile: &Profile,
    mode: EngineMode,
    transport: Option<TransportSpec>,
    seed_base: u64,
) {
    for case in 0..profile.cases {
        let mut rng = StdRng::seed_from_u64(seed_base + case);
        let graph = arb_graph(&mut rng, profile.max_n, profile.max_m, 0);
        let fragments = rng.gen_range(2usize..6);
        let workers = rng.gen_range(1usize..4);
        let source = rng.gen_range(0u64..graph.num_vertices() as u64);

        let frag = HashEdgeCut::new(fragments).partition(&graph).unwrap();
        let s = session_over(workers, mode, transport);
        let mut prepared = s.prepare(frag, Sssp, SsspQuery::new(source)).unwrap();

        for round in 0..profile.rounds {
            let delta = mixed_delta(&mut rng, prepared.fragmentation().source(), 5, 3);
            if delta.is_empty() {
                continue;
            }
            let tag = format!("sssp case {case} round {round} {mode:?}");
            let report = prepared.update(&delta).unwrap();
            check_report(&report, prepared.fragmentation().num_fragments(), &tag);
            let recompute = s
                .run(prepared.fragmentation(), &Sssp, &SsspQuery::new(source))
                .unwrap();
            let output = prepared.output();
            for v in prepared.fragmentation().source().vertices() {
                assert_eq!(
                    output.distance(v).map(|d| (d * 1e9).round() as i64),
                    recompute
                        .output
                        .distance(v)
                        .map(|d| (d * 1e9).round() as i64),
                    "vertex {v} ({tag})"
                );
            }
        }
    }
}

fn fuzz_cc(profile: &Profile, mode: EngineMode, transport: Option<TransportSpec>, seed_base: u64) {
    for case in 0..profile.cases {
        let mut rng = StdRng::seed_from_u64(seed_base + case);
        let graph = arb_graph(&mut rng, profile.max_n, profile.max_m, 0).to_undirected();
        let fragments = rng.gen_range(2usize..6);
        let workers = rng.gen_range(1usize..4);

        let frag = HashEdgeCut::new(fragments).partition(&graph).unwrap();
        let s = session_over(workers, mode, transport);
        let mut prepared = s.prepare(frag, Cc, CcQuery).unwrap();

        for round in 0..profile.rounds {
            let delta = mixed_delta(&mut rng, prepared.fragmentation().source(), 4, 3);
            if delta.is_empty() {
                continue;
            }
            let tag = format!("cc case {case} round {round} {mode:?}");
            let report = prepared.update(&delta).unwrap();
            check_report(&report, prepared.fragmentation().num_fragments(), &tag);
            let recompute = s.run(prepared.fragmentation(), &Cc, &CcQuery).unwrap();
            let output = prepared.output();
            for v in prepared.fragmentation().source().vertices() {
                assert_eq!(
                    output.component(v),
                    recompute.output.component(v),
                    "vertex {v} ({tag})"
                );
            }
        }
    }
}

fn fuzz_sim(profile: &Profile, mode: EngineMode, transport: Option<TransportSpec>, seed_base: u64) {
    for case in 0..profile.cases {
        let mut rng = StdRng::seed_from_u64(seed_base + case);
        let graph = arb_graph(&mut rng, profile.max_n, profile.max_m, 4);
        let fragments = rng.gen_range(2usize..5);
        let workers = rng.gen_range(1usize..4);
        let pattern = Pattern::random(3, 4, &[1, 2, 3, 4], rng.gen_range(0u64..500));

        let frag = HashEdgeCut::new(fragments).partition(&graph).unwrap();
        let s = session_over(workers, mode, transport);
        let query = SimQuery::new(pattern.clone());
        let mut prepared = s.prepare(frag, Sim::new(), query.clone()).unwrap();

        for round in 0..profile.rounds {
            let delta = mixed_delta(&mut rng, prepared.fragmentation().source(), 3, 4);
            if delta.is_empty() {
                continue;
            }
            let tag = format!("sim case {case} round {round} {mode:?}");
            let report = prepared.update(&delta).unwrap();
            check_report(&report, prepared.fragmentation().num_fragments(), &tag);
            let recompute = s
                .run(prepared.fragmentation(), &Sim::new(), &query)
                .unwrap();
            assert_eq!(
                prepared.output().relation(),
                recompute.output.relation(),
                "{tag}"
            );
        }
    }
}

fn fuzz_subiso(
    profile: &Profile,
    mode: EngineMode,
    transport: Option<TransportSpec>,
    seed_base: u64,
) {
    // SubIso is NP-hard: keep the graphs a notch smaller than the profile.
    let max_n = profile.max_n.min(80);
    let max_m = profile.max_m.min(260);
    for case in 0..profile.cases {
        let mut rng = StdRng::seed_from_u64(seed_base + case);
        let graph = arb_graph(&mut rng, max_n, max_m, 3);
        let fragments = rng.gen_range(2usize..5);
        let workers = rng.gen_range(1usize..4);
        let pattern = Pattern::random(2, 2, &[1, 2, 3], rng.gen_range(0u64..500));

        let frag = HashEdgeCut::new(fragments).partition(&graph).unwrap();
        let s = session_over(workers, mode, transport);
        let query = SubIsoQuery::new(pattern.clone());
        let mut prepared = s.prepare(frag, SubIso, query.clone()).unwrap();

        for round in 0..profile.rounds {
            let delta = mixed_delta(&mut rng, prepared.fragmentation().source(), 3, 3);
            if delta.is_empty() {
                continue;
            }
            let tag = format!("subiso case {case} round {round} {mode:?}");
            let report = prepared.update(&delta).unwrap();
            check_report(&report, prepared.fragmentation().num_fragments(), &tag);
            let recompute = s.run(prepared.fragmentation(), &SubIso, &query).unwrap();
            let mut ours = prepared.output().matches().to_vec();
            let mut theirs = recompute.output.matches().to_vec();
            ours.sort_unstable();
            theirs.sort_unstable();
            assert_eq!(ours, theirs, "{tag}");
        }
    }
}

/// A random rating graph of `blocks` disjoint bipartite blocks (so the
/// quotient graph has several components and CF's component-closed frontier
/// can stay local), plus the id ranges of each block.
fn arb_rating_blocks(rng: &mut StdRng, blocks: usize) -> (Graph, Vec<(u64, u64)>) {
    let mut b = GraphBuilder::directed();
    let mut ranges = Vec::new();
    let mut base = 0u64;
    for _ in 0..blocks {
        let users = rng.gen_range(3u64..7);
        let items = rng.gen_range(2u64..5);
        let ratings = rng.gen_range(6usize..18);
        for _ in 0..ratings {
            let u = base + rng.gen_range(0..users);
            let i = base + users + rng.gen_range(0..items);
            let score = 1.0 + rng.gen_range(0u32..5) as f64;
            b.push_edge(Edge::weighted(u, i, score));
        }
        ranges.push((base, base + users + items));
        base += users + items;
    }
    (b.build(), ranges)
}

fn fuzz_cf(profile: &Profile, mode: EngineMode, transport: Option<TransportSpec>, seed_base: u64) {
    // CF's SGD is trajectory-dependent: the engine is deterministic under
    // Sync for any worker count, and under Async only for a single worker
    // (one drain order); the fuzz compares exact factor maps, so it pins
    // those configurations.
    let workers = match mode {
        EngineMode::Sync => 2,
        EngineMode::Async => 1,
    };
    for case in 0..profile.cases {
        let mut rng = StdRng::seed_from_u64(seed_base + case);
        let (graph, ranges) = arb_rating_blocks(&mut rng, 3);
        let fragments = rng.gen_range(3usize..6);
        let frag = RangeEdgeCut::new(fragments).partition(&graph).unwrap();
        let s = session_over(workers, mode, transport);
        let query = CfQuery {
            epochs: 3,
            num_factors: 4,
            ..Default::default()
        };
        let mut prepared = s.prepare(frag, Cf, query.clone()).unwrap();

        for round in 0..profile.rounds {
            // New ratings confined to one random block (the evolving-graph
            // shape: updates cluster), occasionally removing one too.
            let (lo, hi) = ranges[rng.gen_range(0..ranges.len() as u64) as usize];
            let mut delta = GraphDelta::new();
            for _ in 0..rng.gen_range(1usize..4) {
                let u = rng.gen_range(lo..hi);
                let i = rng.gen_range(lo..hi);
                if u != i {
                    delta = delta.add_weighted_edge(u, i, 1.0 + rng.gen_range(0u32..5) as f64);
                }
            }
            if delta.is_empty() {
                continue;
            }
            let tag = format!("cf case {case} round {round} {mode:?}");
            let report = prepared.update(&delta).unwrap();
            check_report(&report, prepared.fragmentation().num_fragments(), &tag);
            let recompute = s.run(prepared.fragmentation(), &Cf, &query).unwrap();
            assert_eq!(
                prepared.output().into_factors(),
                recompute.output.into_factors(),
                "{tag}"
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Tier-1 fixed-seed matrix (runs in CI under both engine-mode defaults)
// ---------------------------------------------------------------------------

#[test]
fn sssp_mixed_delta_fuzz_matches_recompute_in_both_modes() {
    for mode in MODES {
        fuzz_sssp(&TIER1, mode, None, 0xF0_0100);
    }
}

#[test]
fn cc_mixed_delta_fuzz_matches_recompute_in_both_modes() {
    for mode in MODES {
        fuzz_cc(&TIER1, mode, None, 0xF0_0200);
    }
}

#[test]
fn sim_mixed_delta_fuzz_matches_recompute_in_both_modes() {
    for mode in MODES {
        fuzz_sim(&TIER1, mode, None, 0xF0_0300);
    }
}

#[test]
fn subiso_mixed_delta_fuzz_matches_recompute_in_both_modes() {
    for mode in MODES {
        fuzz_subiso(&TIER1, mode, None, 0xF0_0400);
    }
}

#[test]
fn cf_rating_delta_fuzz_matches_recompute_in_both_modes() {
    for mode in MODES {
        fuzz_cf(&TIER1, mode, None, 0xF0_0500);
    }
}

/// The bounded-refresh acceptance pin: a non-monotone delta confined to one
/// quotient component re-roots strictly fewer fragments than a full
/// re-preparation, in both modes, for the three Assurance-Theorem programs.
#[test]
fn localized_nonmonotone_damage_keeps_peval_below_fragment_count() {
    // Two disjoint 12-vertex chains over four range fragments: {0,1} cover
    // the first chain, {2,3} the second.  All deltas touch the second chain.
    fn two_chain_graph(directed: bool) -> Graph {
        let mut b = if directed {
            GraphBuilder::directed()
        } else {
            GraphBuilder::undirected()
        };
        for v in 0..11u64 {
            b.push_edge(Edge::weighted(v, v + 1, 1.0));
        }
        for v in 12..23u64 {
            b.push_edge(Edge::weighted(v, v + 1, 1.0));
        }
        for v in 0..24u64 {
            b.push_vertex_label(v, 1 + (v % 2) as u32);
        }
        b.build()
    }

    for mode in MODES {
        let s = session(2, mode);

        // SSSP: delete an edge of the second chain.
        let g = two_chain_graph(true);
        let frag = RangeEdgeCut::new(4).partition(&g).unwrap();
        let mut prepared = s.prepare(frag, Sssp, SsspQuery::new(12)).unwrap();
        let report = prepared
            .update(&GraphDelta::new().remove_edge(14, 15))
            .unwrap();
        assert_eq!(report.kind, RefreshKind::Bounded, "sssp {mode:?}");
        assert!(
            report.metrics.peval_calls < prepared.fragmentation().num_fragments(),
            "sssp {mode:?}: localized damage must not re-prepare everywhere"
        );
        assert!(report.repeval.iter().all(|&i| i >= 2), "sssp {mode:?}");
        let recompute = s
            .run(prepared.fragmentation(), &Sssp, &SsspQuery::new(12))
            .unwrap();
        for v in prepared.fragmentation().source().vertices() {
            assert_eq!(
                prepared.output().distance(v).map(|d| d.to_bits()),
                recompute.output.distance(v).map(|d| d.to_bits()),
                "sssp vertex {v} {mode:?}"
            );
        }

        // CC: split the second chain.
        let g = two_chain_graph(false);
        let frag = RangeEdgeCut::new(4).partition(&g).unwrap();
        let mut prepared = s.prepare(frag, Cc, CcQuery).unwrap();
        let report = prepared
            .update(&GraphDelta::new().remove_edge(17, 18))
            .unwrap();
        assert_eq!(report.kind, RefreshKind::Bounded, "cc {mode:?}");
        assert!(
            report.metrics.peval_calls < prepared.fragmentation().num_fragments(),
            "cc {mode:?}"
        );
        let recompute = s.run(prepared.fragmentation(), &Cc, &CcQuery).unwrap();
        for v in prepared.fragmentation().source().vertices() {
            assert_eq!(
                prepared.output().component(v),
                recompute.output.component(v),
                "cc vertex {v} {mode:?}"
            );
        }

        // Sim: insert a match-resurrecting edge in the second chain.
        let g = two_chain_graph(true);
        let frag = RangeEdgeCut::new(4).partition(&g).unwrap();
        let pattern = Pattern::new(vec![1, 1], vec![(0, 1)]);
        let query = SimQuery::new(pattern);
        let mut prepared = s.prepare(frag, Sim::new(), query.clone()).unwrap();
        let report = prepared
            .update(&GraphDelta::new().add_edge(12, 14))
            .unwrap();
        assert_eq!(report.kind, RefreshKind::Bounded, "sim {mode:?}");
        assert!(
            report.metrics.peval_calls < prepared.fragmentation().num_fragments(),
            "sim {mode:?}"
        );
        assert!(report.repeval.iter().all(|&i| i >= 2), "sim {mode:?}");
        let recompute = s
            .run(prepared.fragmentation(), &Sim::new(), &query)
            .unwrap();
        assert_eq!(
            prepared.output().relation(),
            recompute.output.relation(),
            "sim {mode:?}"
        );
    }
}

// ---------------------------------------------------------------------------
// Process-transport axis: the same harness with fragments sharded across
// grape-worker subprocesses.  Every prepare *and* every refresh spawns a
// worker pool, so the tier-1 profile is deliberately small; the full
// five-family sweep is `#[ignore]`-gated into the nightly budget.
// ---------------------------------------------------------------------------

/// Reduced-seed profile for the subprocess axis (spawn cost per update).
const PROCESS_TIER1: Profile = Profile {
    cases: 2,
    rounds: 2,
    max_n: 30,
    max_m: 100,
};

const PROCESS_SPEC: Option<TransportSpec> = Some(TransportSpec::Process { workers: 2 });

/// `true` when the grape-worker binary is discoverable; a workspace
/// `cargo test` always builds it, but a bare `cargo test --test delta_fuzz`
/// on a cold tree may not — skip loudly rather than fail.
fn process_axis_available() -> bool {
    if locate_worker_binary().is_some() {
        true
    } else {
        eprintln!(
            "skipping Process-transport fuzz: grape-worker binary not built \
             (run `cargo build -p grape-daemon --bins` first)"
        );
        false
    }
}

#[test]
fn process_transport_delta_fuzz_matches_recompute_in_both_modes() {
    if !process_axis_available() {
        return;
    }
    for mode in MODES {
        fuzz_sssp(&PROCESS_TIER1, mode, PROCESS_SPEC, 0xF2_0100);
        fuzz_cc(&PROCESS_TIER1, mode, PROCESS_SPEC, 0xF2_0200);
        fuzz_sim(&PROCESS_TIER1, mode, PROCESS_SPEC, 0xF2_0300);
    }
}

#[test]
#[ignore = "nightly long-fuzz profile"]
fn long_fuzz_process_transport_all_families() {
    if !process_axis_available() {
        return;
    }
    for mode in MODES {
        fuzz_sssp(&TIER1, mode, PROCESS_SPEC, 0xF2_1100);
        fuzz_cc(&TIER1, mode, PROCESS_SPEC, 0xF2_1200);
        fuzz_sim(&TIER1, mode, PROCESS_SPEC, 0xF2_1300);
        fuzz_subiso(&TIER1, mode, PROCESS_SPEC, 0xF2_1400);
        fuzz_cf(&TIER1, mode, PROCESS_SPEC, 0xF2_1500);
    }
}

// ---------------------------------------------------------------------------
// Nightly long-fuzz profile (more seeds, larger graphs) — `#[ignore]`-gated,
// run by the scheduled CI job: `cargo test --release --test delta_fuzz --
// --ignored`.
// ---------------------------------------------------------------------------

#[test]
#[ignore = "nightly long-fuzz profile"]
fn long_fuzz_sssp() {
    for mode in MODES {
        fuzz_sssp(&NIGHTLY, mode, None, 0xF1_0100);
    }
}

#[test]
#[ignore = "nightly long-fuzz profile"]
fn long_fuzz_cc() {
    for mode in MODES {
        fuzz_cc(&NIGHTLY, mode, None, 0xF1_0200);
    }
}

#[test]
#[ignore = "nightly long-fuzz profile"]
fn long_fuzz_sim() {
    for mode in MODES {
        fuzz_sim(&NIGHTLY, mode, None, 0xF1_0300);
    }
}

#[test]
#[ignore = "nightly long-fuzz profile"]
fn long_fuzz_subiso() {
    for mode in MODES {
        fuzz_subiso(&NIGHTLY, mode, None, 0xF1_0400);
    }
}

#[test]
#[ignore = "nightly long-fuzz profile"]
fn long_fuzz_cf() {
    for mode in MODES {
        fuzz_cf(&NIGHTLY, mode, None, 0xF1_0500);
    }
}
