//! Equivalence of the barrier-free runtime: under the monotonic condition
//! of the Assurance Theorem, [`EngineMode::Async`] (fragments as independent
//! tasks draining streaming mailboxes, no global superstep barrier) must
//! produce *exactly* the output of the BSP runtime — for SSSP, CC and graph
//! simulation over seeded random graphs, partitions and worker counts.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use grape::algorithms::cc::{Cc, CcQuery};
use grape::algorithms::sim::{Sim, SimQuery};
use grape::algorithms::sssp::{Sssp, SsspQuery};
use grape::core::config::EngineMode;
use grape::core::session::GrapeSession;
use grape::graph::builder::GraphBuilder;
use grape::graph::graph::{Directedness, Graph};
use grape::graph::pattern::Pattern;
use grape::partition::edge_cut::HashEdgeCut;
use grape::partition::strategy::PartitionStrategy;

const CASES: u64 = 16;

fn session(workers: usize, mode: EngineMode) -> GrapeSession {
    GrapeSession::builder()
        .workers(workers)
        .mode(mode)
        .build()
        .unwrap()
}

/// A random directed weighted labeled graph (same generator family as
/// `assurance.rs`).
fn arb_graph(rng: &mut StdRng, max_n: u64, max_m: usize, labels: u32) -> Graph {
    let n = rng.gen_range(2..max_n);
    let m = rng.gen_range(1..max_m);
    let mut b = GraphBuilder::new(Directedness::Directed).ensure_vertices(n as usize);
    for _ in 0..m {
        let s = rng.gen_range(0..n);
        let d = rng.gen_range(0..n);
        let w = rng.gen_range(1u32..10u32);
        if s != d {
            b.push_edge(grape::graph::types::Edge::weighted(s, d, w as f64));
        }
    }
    if labels > 0 {
        for v in 0..n {
            b.push_vertex_label(v, (v as u32 % labels) + 1);
        }
    }
    b.build()
}

#[test]
fn sssp_async_output_equals_sync_output() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xA5_0100 + case);
        let graph = arb_graph(&mut rng, 60, 220, 0);
        let fragments = rng.gen_range(2usize..6);
        let workers = rng.gen_range(1usize..5);
        let source = rng.gen_range(0u64..graph.num_vertices() as u64);

        let frag = HashEdgeCut::new(fragments).partition(&graph).unwrap();
        let query = SsspQuery::new(source);
        let sync = session(workers, EngineMode::Sync)
            .run(&frag, &Sssp, &query)
            .unwrap();
        let async_ = session(workers, EngineMode::Async)
            .run(&frag, &Sssp, &query)
            .unwrap();
        for v in graph.vertices() {
            assert_eq!(
                sync.output.distance(v),
                async_.output.distance(v),
                "case {case}: distance of vertex {v}"
            );
        }
    }
}

#[test]
fn cc_async_output_equals_sync_output() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xA5_0200 + case);
        let graph = arb_graph(&mut rng, 60, 180, 0).to_undirected();
        let fragments = rng.gen_range(2usize..6);
        let workers = rng.gen_range(1usize..5);

        let frag = HashEdgeCut::new(fragments).partition(&graph).unwrap();
        let sync = session(workers, EngineMode::Sync)
            .run(&frag, &Cc, &CcQuery)
            .unwrap();
        let async_ = session(workers, EngineMode::Async)
            .run(&frag, &Cc, &CcQuery)
            .unwrap();
        for v in graph.vertices() {
            assert_eq!(
                sync.output.component(v),
                async_.output.component(v),
                "case {case}: component of vertex {v}"
            );
        }
    }
}

#[test]
fn sim_async_output_equals_sync_output() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xA5_0300 + case);
        let graph = arb_graph(&mut rng, 50, 160, 4);
        let fragments = rng.gen_range(2usize..5);
        let workers = rng.gen_range(1usize..5);
        let pattern_seed = rng.gen_range(0u64..500);

        let pattern = Pattern::random(3, 4, &[1, 2, 3, 4], pattern_seed);
        let frag = HashEdgeCut::new(fragments).partition(&graph).unwrap();
        let query = SimQuery::new(pattern);
        let sync = session(workers, EngineMode::Sync)
            .run(&frag, &Sim::new(), &query)
            .unwrap();
        let async_ = session(workers, EngineMode::Async)
            .run(&frag, &Sim::new(), &query)
            .unwrap();
        assert_eq!(
            sync.output.relation(),
            async_.output.relation(),
            "case {case}"
        );
    }
}

/// The point of going barrier-free: on a high-diameter workload the slowest
/// fragment needs no more evaluation rounds than the BSP superstep count,
/// because fresher values arrive without waiting for a barrier.
#[test]
fn async_supersteps_never_exceed_sync_on_high_diameter_graph() {
    // A long path of fragments — the worst case for BSP round-trips.
    let mut b = GraphBuilder::directed();
    for v in 0..120u64 {
        b.push_edge(grape::graph::types::Edge::weighted(v, v + 1, 1.0));
    }
    let graph = b.build();
    let frag = grape::partition::edge_cut::RangeEdgeCut::new(6)
        .partition(&graph)
        .unwrap();
    let query = SsspQuery::new(0);
    let sync = session(3, EngineMode::Sync)
        .run(&frag, &Sssp, &query)
        .unwrap();
    let async_ = session(3, EngineMode::Async)
        .run(&frag, &Sssp, &query)
        .unwrap();
    assert!(
        async_.metrics.supersteps <= sync.metrics.supersteps,
        "async {} vs sync {}",
        async_.metrics.supersteps,
        sync.metrics.supersteps
    );
}
