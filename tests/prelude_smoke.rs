//! Smoke test for the workspace facade: `grape::prelude::*` must expose the
//! builder, a partition strategy, the engine + config, and all five
//! query-class PIE program types.  Referencing each item by its prelude path
//! makes a missing re-export a compile error, not a runtime surprise.

use grape::prelude::*;

/// Every advertised prelude item resolves (compile-time check), including
/// the five query-class program types and their query types.
#[test]
fn prelude_exposes_the_advertised_surface() {
    // Construction surface.
    let _builder: GraphBuilder = GraphBuilder::new(Directedness::Directed);
    let _strategy: HashEdgeCut = HashEdgeCut::new(2);
    let _session: GrapeSession = GrapeSession::with_workers(1);
    let _session_builder: GrapeSessionBuilder = GrapeSession::builder();
    let _config: EngineConfig = EngineConfig::with_workers(1);
    let _mode: EngineMode = EngineMode::Sync;
    let _transport: TransportSpec = TransportSpec::Barrier;

    // The five query classes of the paper (Section 5).
    fn is_pie_program<P: PieProgram>(_p: &P) {}
    is_pie_program(&Sssp);
    is_pie_program(&Cc);
    is_pie_program(&Sim::new());
    is_pie_program(&SubIso);
    is_pie_program(&Cf);

    // Query types accompany their programs.
    let _ = SsspQuery::new(0);
    let _ = CcQuery;
    let _ = SimQuery::new(Pattern::single(1));
    let _ = SubIsoQuery::new(Pattern::single(1));
    let _ = CfQuery::default();

    // Generators and core vocabulary types are reachable too.
    let _g: Graph = generators::erdos_renyi(8, 12, 0, Directedness::Directed, 7);
    let _v: VertexId = 0;
}

/// A miniature end-to-end run through nothing but the prelude: build,
/// partition, run, inspect metrics.
#[test]
fn prelude_supports_an_end_to_end_run() {
    let g = GraphBuilder::new(Directedness::Directed)
        .add_weighted_edge(0, 1, 2.0)
        .add_weighted_edge(1, 2, 2.0)
        .add_weighted_edge(0, 2, 10.0)
        .build();
    let fragments = HashEdgeCut::new(2).partition(&g).expect("partition");
    let session = GrapeSession::builder()
        .workers(2)
        .build()
        .expect("valid session");
    let result: RunResult<_> = session
        .run(&fragments, &Sssp, &SsspQuery::new(0))
        .expect("run");
    assert_eq!(result.output.distance(2), Some(4.0));

    let metrics: EngineMetrics = result.metrics;
    assert_eq!(metrics.fragments, 2);
    assert!(metrics.supersteps >= 1);

    // The alternative partition strategies re-exported by the prelude
    // satisfy the same trait.
    fn is_strategy<S: PartitionStrategy>(_s: &S) {}
    is_strategy(&HashEdgeCut::new(2));
    is_strategy(&MetisLike::new(2));
}

/// The facade also exposes the fragmentation vocabulary used by custom
/// engines and tests.
#[test]
fn prelude_exposes_fragmentation_types() {
    let g = GraphBuilder::new(Directedness::Undirected)
        .add_edge(0, 1)
        .add_edge(1, 2)
        .build();
    let fragments: Fragmentation = HashEdgeCut::new(2).partition(&g).expect("partition");
    assert_eq!(fragments.num_fragments(), 2);
}
