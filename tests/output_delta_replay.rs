//! Tentpole pin: replaying a query's `OutputDelta` stream over its initial
//! answer reproduces `output()` **byte-identically** — for all five
//! algorithm families × {Sync, Async} × refresh fan-out widths {1, 4},
//! including across evict → apply-while-cold → rehydrate interleavings
//! (where the whole cold stretch arrives as one compacted delta).
//!
//! The comparison is on canonical wire rows serialized to JSON, i.e. the
//! exact bytes a `grapectl watch` client folds into its local answer copy:
//! if this pin holds, a subscriber that starts from `output()` and applies
//! every pushed delta never needs to poll again.

use std::collections::HashSet;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use grape::algorithms::cc::{Cc, CcQuery};
use grape::algorithms::cf::{Cf, CfQuery};
use grape::algorithms::sim::{Sim, SimQuery};
use grape::algorithms::sssp::{Sssp, SsspQuery};
use grape::algorithms::subiso::{SubIso, SubIsoQuery};
use grape::core::config::EngineMode;
use grape::core::output_delta::{wire_rows, DeltaOutput, OutputEvent};
use grape::core::serve::{GrapeServer, QueryHandle};
use grape::core::session::GrapeSession;
use grape::graph::builder::GraphBuilder;
use grape::graph::delta::GraphDelta;
use grape::graph::graph::{Directedness, Graph};
use grape::graph::pattern::Pattern;
use grape::graph::types::Edge;
use grape::partition::edge_cut::{HashEdgeCut, RangeEdgeCut};
use grape::partition::strategy::PartitionStrategy;

const MODES: [EngineMode; 2] = [EngineMode::Sync, EngineMode::Async];
const WIDTHS: [usize; 2] = [1, 4];

/// Evict/rehydrate interleavings: always-resident; a cold stretch in the
/// middle (rehydrated before the stream ends); a cold tail (rehydrated
/// only after the last delta).
const WINDOWS: [Option<(usize, usize)>; 3] = [None, Some((1, 3)), Some((2, 9))];

fn session(mode: EngineMode, width: usize) -> GrapeSession {
    GrapeSession::builder()
        .workers(2)
        .mode(mode)
        .refresh_threads(width)
        .build()
        .unwrap()
}

fn labeled_graph(rng: &mut StdRng, n: u64, m: usize, labels: u32) -> Graph {
    let mut b = GraphBuilder::new(Directedness::Directed).ensure_vertices(n as usize);
    for _ in 0..m {
        let s = rng.gen_range(0..n);
        let d = rng.gen_range(0..n);
        if s != d {
            b.push_edge(Edge::weighted(s, d, rng.gen_range(1u32..9u32) as f64));
        }
    }
    if labels > 0 {
        for v in 0..n {
            b.push_vertex_label(v, (v as u32 % labels) + 1);
        }
    }
    b.build()
}

/// A mixed delta stream that is valid against the *initial* graph under any
/// prefix: inserts between existing (or strictly-fresh) vertices, deletes
/// drawn without repetition from the initial edge list.
fn delta_stream(rng: &mut StdRng, g: &Graph, steps: usize) -> Vec<GraphDelta> {
    let n = g.num_vertices() as u64;
    let edges = g.edges().to_vec();
    let mut fresh = n;
    let mut deleted: HashSet<(u64, u64)> = HashSet::new();
    (0..steps)
        .map(|_| {
            let mut delta = GraphDelta::new();
            for _ in 0..rng.gen_range(2usize..5) {
                let s = rng.gen_range(0..n);
                let d = if rng.gen_range(0u32..4) == 0 {
                    fresh += 1;
                    fresh - 1
                } else {
                    rng.gen_range(0..n)
                };
                if s != d {
                    delta = delta.add_weighted_edge(s, d, rng.gen_range(1u32..9u32) as f64);
                }
            }
            for _ in 0..rng.gen_range(0usize..3) {
                if edges.is_empty() {
                    break;
                }
                let e = edges[rng.gen_range(0..edges.len() as u64) as usize];
                if deleted.insert((e.src, e.dst)) {
                    delta = delta.remove_edge(e.src, e.dst);
                }
            }
            if delta.is_empty() {
                delta = delta.add_weighted_edge(0, n - 1, 2.0);
            }
            delta
        })
        .collect()
}

/// Subscribes, drives the delta stream (with an optional cold stretch),
/// then asserts the replayed stream over the baseline reproduces the final
/// answer byte-for-byte on canonical wire rows.
fn drive_and_replay<P>(
    server: &mut GrapeServer,
    pie: &P,
    query: &P::Query,
    handle: QueryHandle<P>,
    deltas: &[GraphDelta],
    window: Option<(usize, usize)>,
    tag: &str,
) where
    P: DeltaOutput + 'static,
    P::Partial: Serialize + Deserialize,
{
    let sub = server.subscribe(&handle).expect("subscribe");
    let base = server
        .output(&handle)
        .unwrap_or_else(|e| panic!("{tag}: baseline output: {e}"));
    let mut replay = wire_rows(&pie.canonical(query, &base));

    let mut events = Vec::new();
    for (i, delta) in deltas.iter().enumerate() {
        if let Some((start, end)) = window {
            if i == start {
                server
                    .evict(&handle)
                    .unwrap_or_else(|e| panic!("{tag}: evict: {e}"));
            }
            if i == end {
                server
                    .rehydrate(&handle)
                    .unwrap_or_else(|e| panic!("{tag}: rehydrate: {e}"));
            }
        }
        server
            .apply(delta)
            .unwrap_or_else(|e| panic!("{tag}: apply {i}: {e}"));
        events.extend(server.drain_events());
    }
    if let Some((_, end)) = window {
        if end >= deltas.len() {
            // The cold tail: the stream ended while evicted; rehydration
            // must deliver the whole stretch as one compacted delta.
            server
                .rehydrate(&handle)
                .unwrap_or_else(|e| panic!("{tag}: tail rehydrate: {e}"));
        }
    }
    let fin = server
        .output(&handle)
        .unwrap_or_else(|e| panic!("{tag}: final output: {e}"));
    events.extend(server.drain_events());

    let mut last_version = 0usize;
    for qd in events {
        assert_eq!(qd.query, handle.id(), "{tag}: single-query server");
        assert!(
            qd.version >= last_version,
            "{tag}: event versions must be monotone"
        );
        last_version = qd.version;
        match qd.event {
            OutputEvent::Delta(d) => d.apply_to(&mut replay),
            OutputEvent::Poisoned => panic!("{tag}: healthy query pushed a poison event"),
        }
    }

    let expect = wire_rows(&pie.canonical(query, &fin));
    assert_eq!(
        serde_json::to_string(&replay).expect("rows"),
        serde_json::to_string(&expect).expect("rows"),
        "{tag}: replayed stream does not reproduce the final answer"
    );
    server.unsubscribe(sub).expect("unsubscribe");
}

#[test]
fn sssp_delta_stream_replays_to_the_answer() {
    for mode in MODES {
        for width in WIDTHS {
            for (w, window) in WINDOWS.iter().enumerate() {
                let mut rng = StdRng::seed_from_u64(0xDE17_A100 + w as u64);
                let graph = labeled_graph(&mut rng, 24, 70, 0);
                let frag = HashEdgeCut::new(4).partition(&graph).unwrap();
                let mut server = GrapeServer::new(session(mode, width), frag);
                let source = rng.gen_range(0u64..24);
                let handle = server.register(Sssp, SsspQuery::new(source)).unwrap();
                let deltas = delta_stream(&mut rng, server.fragmentation().source(), 5);
                drive_and_replay(
                    &mut server,
                    &Sssp,
                    &SsspQuery::new(source),
                    handle,
                    &deltas,
                    *window,
                    &format!("sssp {mode:?} width {width} window {window:?}"),
                );
            }
        }
    }
}

#[test]
fn cc_delta_stream_replays_to_the_answer() {
    for mode in MODES {
        for width in WIDTHS {
            for (w, window) in WINDOWS.iter().enumerate() {
                let mut rng = StdRng::seed_from_u64(0xDE17_A200 + w as u64);
                let graph = labeled_graph(&mut rng, 24, 70, 0);
                let frag = HashEdgeCut::new(4).partition(&graph).unwrap();
                let mut server = GrapeServer::new(session(mode, width), frag);
                let handle = server.register(Cc, CcQuery).unwrap();
                let deltas = delta_stream(&mut rng, server.fragmentation().source(), 5);
                drive_and_replay(
                    &mut server,
                    &Cc,
                    &CcQuery,
                    handle,
                    &deltas,
                    *window,
                    &format!("cc {mode:?} width {width} window {window:?}"),
                );
            }
        }
    }
}

#[test]
fn sim_delta_stream_replays_to_the_answer() {
    for mode in MODES {
        for width in WIDTHS {
            for (w, window) in WINDOWS.iter().enumerate() {
                let mut rng = StdRng::seed_from_u64(0xDE17_A300 + w as u64);
                let graph = labeled_graph(&mut rng, 20, 60, 4);
                let pattern = Pattern::random(3, 4, &[1, 2, 3, 4], rng.gen_range(0u64..500));
                let query = SimQuery::new(pattern);
                let frag = HashEdgeCut::new(3).partition(&graph).unwrap();
                let mut server = GrapeServer::new(session(mode, width), frag);
                let handle = server.register(Sim::new(), query.clone()).unwrap();
                let deltas = delta_stream(&mut rng, server.fragmentation().source(), 4);
                drive_and_replay(
                    &mut server,
                    &Sim::new(),
                    &query,
                    handle,
                    &deltas,
                    *window,
                    &format!("sim {mode:?} width {width} window {window:?}"),
                );
            }
        }
    }
}

#[test]
fn subiso_delta_stream_replays_to_the_answer() {
    for mode in MODES {
        for width in WIDTHS {
            for (w, window) in WINDOWS.iter().enumerate() {
                let mut rng = StdRng::seed_from_u64(0xDE17_A400 + w as u64);
                let graph = labeled_graph(&mut rng, 16, 40, 3);
                let pattern = Pattern::random(2, 2, &[1, 2, 3], rng.gen_range(0u64..500));
                let query = SubIsoQuery::new(pattern);
                let frag = HashEdgeCut::new(3).partition(&graph).unwrap();
                let mut server = GrapeServer::new(session(mode, width), frag);
                let handle = server.register(SubIso, query.clone()).unwrap();
                let deltas = delta_stream(&mut rng, server.fragmentation().source(), 4);
                drive_and_replay(
                    &mut server,
                    &SubIso,
                    &query,
                    handle,
                    &deltas,
                    *window,
                    &format!("subiso {mode:?} width {width} window {window:?}"),
                );
            }
        }
    }
}

/// CF's rating graph: two disjoint bipartite blocks over range fragments,
/// with the delta stream confined to in-block rating additions.
fn rating_graph(rng: &mut StdRng) -> (Graph, Vec<(u64, u64)>) {
    let mut b = GraphBuilder::directed();
    let mut ranges = Vec::new();
    let mut base = 0u64;
    for _ in 0..2 {
        let users = rng.gen_range(3u64..6);
        let items = rng.gen_range(2u64..4);
        for _ in 0..rng.gen_range(8usize..16) {
            let u = base + rng.gen_range(0..users);
            let i = base + users + rng.gen_range(0..items);
            b.push_edge(Edge::weighted(u, i, 1.0 + rng.gen_range(0u32..5) as f64));
        }
        ranges.push((base, base + users + items));
        base += users + items;
    }
    (b.build(), ranges)
}

fn cf_delta_stream(rng: &mut StdRng, ranges: &[(u64, u64)], steps: usize) -> Vec<GraphDelta> {
    (0..steps)
        .map(|_| {
            let (lo, hi) = ranges[rng.gen_range(0..ranges.len() as u64) as usize];
            let mut delta = GraphDelta::new();
            for _ in 0..rng.gen_range(1usize..4) {
                let u = rng.gen_range(lo..hi);
                let i = rng.gen_range(lo..hi);
                if u != i {
                    delta = delta.add_weighted_edge(u, i, 1.0 + rng.gen_range(0u32..5) as f64);
                }
            }
            if delta.is_empty() {
                delta = delta.add_weighted_edge(lo, hi - 1, 3.0);
            }
            delta
        })
        .collect()
}

#[test]
fn cf_delta_stream_replays_to_the_answer() {
    for mode in MODES {
        for width in WIDTHS {
            for (w, window) in WINDOWS.iter().enumerate() {
                let mut rng = StdRng::seed_from_u64(0xDE17_A500 + w as u64);
                let (graph, ranges) = rating_graph(&mut rng);
                let frag = RangeEdgeCut::new(3).partition(&graph).unwrap();
                let mut server = GrapeServer::new(session(mode, width), frag);
                let query = CfQuery {
                    epochs: 3,
                    num_factors: 4,
                    ..Default::default()
                };
                let handle = server.register(Cf, query.clone()).unwrap();
                let deltas = cf_delta_stream(&mut rng, &ranges, 4);
                drive_and_replay(
                    &mut server,
                    &Cf,
                    &query,
                    handle,
                    &deltas,
                    *window,
                    &format!("cf {mode:?} width {width} window {window:?}"),
                );
            }
        }
    }
}
