//! Property-based tests for the Assurance Theorem (Theorem 1): for monotonic
//! PIE programs built from correct sequential algorithms, GRAPE terminates
//! and produces the sequential answer — for arbitrary graphs, partition
//! strategies and worker counts.

use proptest::prelude::*;

use grape::algorithms::cc::{connected_components, Cc, CcQuery};
use grape::algorithms::sim::{graph_simulation, Sim, SimQuery};
use grape::algorithms::sssp::{dijkstra, Sssp, SsspQuery};
use grape::core::config::EngineConfig;
use grape::core::engine::GrapeEngine;
use grape::graph::builder::GraphBuilder;
use grape::graph::graph::{Directedness, Graph};
use grape::graph::pattern::Pattern;
use grape::partition::edge_cut::{HashEdgeCut, RangeEdgeCut};
use grape::partition::strategy::PartitionStrategy;

/// Strategy: a random directed weighted labeled graph with up to `max_n`
/// vertices and `max_m` edges.
fn arb_graph(max_n: u64, max_m: usize, labels: u32) -> impl Strategy<Value = Graph> {
    (2..max_n, proptest::collection::vec((0u64..max_n, 0u64..max_n, 1u32..10u32), 1..max_m))
        .prop_map(move |(n, edges)| {
            let mut b = GraphBuilder::new(Directedness::Directed).ensure_vertices(n as usize);
            for (s, d, w) in edges {
                let (s, d) = (s % n, d % n);
                if s != d {
                    b.push_edge(grape::graph::types::Edge::weighted(s, d, w as f64));
                }
            }
            if labels > 0 {
                for v in 0..n {
                    b.push_vertex_label(v, (v as u32 % labels) + 1);
                }
            }
            b.build()
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, .. ProptestConfig::default() })]

    /// SSSP over GRAPE equals sequential Dijkstra for any graph, any number
    /// of fragments and any worker count.
    #[test]
    fn sssp_matches_dijkstra(
        graph in arb_graph(40, 120, 0),
        fragments in 1usize..6,
        workers in 1usize..4,
        source in 0u64..40,
    ) {
        let source = source % graph.num_vertices() as u64;
        let frag = HashEdgeCut::new(fragments).partition(&graph).unwrap();
        let engine = GrapeEngine::new(EngineConfig::with_workers(workers));
        let result = engine.run(&frag, &Sssp, &SsspQuery::new(source)).unwrap();
        let expected = dijkstra(&graph, source);
        for (v, d) in expected.iter().enumerate() {
            match result.output.distance(v as u64) {
                Some(got) => prop_assert!((got - d).abs() < 1e-9),
                None => prop_assert!(!d.is_finite()),
            }
        }
    }

    /// CC over GRAPE equals sequential union-find.
    #[test]
    fn cc_matches_union_find(
        graph in arb_graph(40, 100, 0),
        fragments in 1usize..6,
    ) {
        let undirected = graph.to_undirected();
        let frag = RangeEdgeCut::new(fragments).partition(&undirected).unwrap();
        let engine = GrapeEngine::new(EngineConfig::with_workers(2));
        let result = engine.run(&frag, &Cc, &CcQuery).unwrap();
        let expected = connected_components(&undirected);
        for v in undirected.vertices() {
            prop_assert_eq!(result.output.component(v), Some(expected[v as usize]));
        }
    }

    /// Graph simulation over GRAPE equals the sequential HHK algorithm.
    #[test]
    fn sim_matches_sequential(
        graph in arb_graph(36, 110, 4),
        fragments in 1usize..5,
        pattern_seed in 0u64..500,
    ) {
        let pattern = Pattern::random(3, 4, &[1, 2, 3, 4], pattern_seed);
        let frag = HashEdgeCut::new(fragments).partition(&graph).unwrap();
        let engine = GrapeEngine::new(EngineConfig::with_workers(2));
        let result = engine.run(&frag, &Sim::new(), &SimQuery::new(pattern.clone())).unwrap();
        let expected = graph_simulation(&graph, &pattern);
        for u in 0..pattern.num_nodes() {
            prop_assert_eq!(result.output.matches(u as u32), expected[u].as_slice());
        }
    }

    /// Termination and determinism: the same query on the same fragmentation
    /// always produces identical supersteps and identical output regardless
    /// of the number of physical workers.
    #[test]
    fn deterministic_across_worker_counts(
        graph in arb_graph(30, 80, 0),
        fragments in 2usize..5,
    ) {
        let frag = HashEdgeCut::new(fragments).partition(&graph).unwrap();
        let a = GrapeEngine::new(EngineConfig::with_workers(1))
            .run(&frag, &Sssp, &SsspQuery::new(0)).unwrap();
        let b = GrapeEngine::new(EngineConfig::with_workers(4))
            .run(&frag, &Sssp, &SsspQuery::new(0)).unwrap();
        prop_assert_eq!(a.metrics.supersteps, b.metrics.supersteps);
        prop_assert_eq!(a.metrics.total_messages, b.metrics.total_messages);
        for (v, d) in a.output.distances() {
            prop_assert_eq!(b.output.distance(*v), Some(*d));
        }
    }
}
