//! Randomized tests for the Assurance Theorem (Theorem 1): for monotonic PIE
//! programs built from correct sequential algorithms, GRAPE terminates and
//! produces the sequential answer — across random graphs, partition
//! strategies, fragment counts and worker counts.
//!
//! Cases are generated from a seeded RNG (24 per property, mirroring the
//! original proptest configuration), so failures are reproducible: the
//! failing case's seed appears in the assertion message.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use grape::algorithms::cc::{connected_components, Cc, CcQuery};
use grape::algorithms::sim::{graph_simulation, Sim, SimQuery};
use grape::algorithms::sssp::{dijkstra, Sssp, SsspQuery};
use grape::core::config::EngineMode;
use grape::core::session::GrapeSession;
use grape::graph::builder::GraphBuilder;
use grape::graph::graph::{Directedness, Graph};
use grape::graph::pattern::Pattern;
use grape::partition::edge_cut::{HashEdgeCut, RangeEdgeCut};
use grape::partition::strategy::PartitionStrategy;

const CASES: u64 = 24;

/// A random directed weighted labeled graph with up to `max_n` vertices and
/// `max_m` edges; `labels = 0` leaves the graph unlabeled.
fn arb_graph(rng: &mut StdRng, max_n: u64, max_m: usize, labels: u32) -> Graph {
    let n = rng.gen_range(2..max_n);
    let m = rng.gen_range(1..max_m);
    let mut b = GraphBuilder::new(Directedness::Directed).ensure_vertices(n as usize);
    for _ in 0..m {
        let s = rng.gen_range(0..n);
        let d = rng.gen_range(0..n);
        let w = rng.gen_range(1u32..10u32);
        if s != d {
            b.push_edge(grape::graph::types::Edge::weighted(s, d, w as f64));
        }
    }
    if labels > 0 {
        for v in 0..n {
            b.push_vertex_label(v, (v as u32 % labels) + 1);
        }
    }
    b.build()
}

/// SSSP over GRAPE equals sequential Dijkstra for any graph, any number of
/// fragments and any worker count.
#[test]
fn sssp_matches_dijkstra() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x55_5500 + case);
        let graph = arb_graph(&mut rng, 40, 120, 0);
        let fragments = rng.gen_range(1usize..6);
        let workers = rng.gen_range(1usize..4);
        let source = rng.gen_range(0u64..graph.num_vertices() as u64);

        let frag = HashEdgeCut::new(fragments).partition(&graph).unwrap();
        let session = GrapeSession::with_workers(workers);
        let result = session.run(&frag, &Sssp, &SsspQuery::new(source)).unwrap();
        let expected = dijkstra(&graph, source);
        for (v, d) in expected.iter().enumerate() {
            match result.output.distance(v as u64) {
                Some(got) => {
                    assert!(
                        (got - d).abs() < 1e-9,
                        "case {case}: vertex {v}: {got} vs {d}"
                    )
                }
                None => assert!(!d.is_finite(), "case {case}: vertex {v} unreachable vs {d}"),
            }
        }
    }
}

/// CC over GRAPE equals sequential union-find.
#[test]
fn cc_matches_union_find() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xCC_CC00 + case);
        let graph = arb_graph(&mut rng, 40, 100, 0);
        let fragments = rng.gen_range(1usize..6);

        let undirected = graph.to_undirected();
        let frag = RangeEdgeCut::new(fragments).partition(&undirected).unwrap();
        let session = GrapeSession::with_workers(2);
        let result = session.run(&frag, &Cc, &CcQuery).unwrap();
        let expected = connected_components(&undirected);
        for v in undirected.vertices() {
            assert_eq!(
                result.output.component(v),
                Some(expected[v as usize]),
                "case {case}: component of vertex {v}"
            );
        }
    }
}

/// Graph simulation over GRAPE equals the sequential HHK algorithm.
#[test]
fn sim_matches_sequential() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x51_5100 + case);
        let graph = arb_graph(&mut rng, 36, 110, 4);
        let fragments = rng.gen_range(1usize..5);
        let pattern_seed = rng.gen_range(0u64..500);

        let pattern = Pattern::random(3, 4, &[1, 2, 3, 4], pattern_seed);
        let frag = HashEdgeCut::new(fragments).partition(&graph).unwrap();
        let session = GrapeSession::with_workers(2);
        let result = session
            .run(&frag, &Sim::new(), &SimQuery::new(pattern.clone()))
            .unwrap();
        let expected = graph_simulation(&graph, &pattern);
        for (u, expected_u) in expected.iter().enumerate() {
            assert_eq!(
                result.output.matches(u as u32),
                expected_u.as_slice(),
                "case {case}: matches of query node {u}"
            );
        }
    }
}

/// Termination and determinism: the same query on the same fragmentation
/// always produces identical supersteps and identical output regardless of
/// the number of physical workers.  This is a BSP property — superstep and
/// message counts are barrier-aligned — so the runs pin synchronous mode
/// (the barrier-free runtime guarantees identical *output*, which
/// `async_equivalence.rs` covers, but its metrics depend on scheduling).
#[test]
fn deterministic_across_worker_counts() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xDE_DE00 + case);
        let graph = arb_graph(&mut rng, 30, 80, 0);
        let fragments = rng.gen_range(2usize..5);

        let sync_session = |workers: usize| {
            GrapeSession::builder()
                .workers(workers)
                .mode(EngineMode::Sync)
                .build()
                .unwrap()
        };
        let frag = HashEdgeCut::new(fragments).partition(&graph).unwrap();
        let a = sync_session(1)
            .run(&frag, &Sssp, &SsspQuery::new(0))
            .unwrap();
        let b = sync_session(4)
            .run(&frag, &Sssp, &SsspQuery::new(0))
            .unwrap();
        assert_eq!(
            a.metrics.supersteps, b.metrics.supersteps,
            "case {case}: supersteps"
        );
        assert_eq!(
            a.metrics.total_messages, b.metrics.total_messages,
            "case {case}: messages"
        );
        for (v, d) in a.output.distances() {
            assert_eq!(
                b.output.distance(*v),
                Some(*d),
                "case {case}: distance of {v}"
            );
        }
    }
}
