//! Tests for the Simulation Theorem (Theorem 2): BSP and MapReduce programs
//! run on GRAPE's simulation layers with the same round/superstep structure
//! and produce their usual answers; a CREW-PRAM-style computation composes
//! out of MapReduce rounds.

use std::collections::HashMap;

use grape::core::simulate::{run_bsp, run_mapreduce, BspOutbox, BspProgram, MapReduceJob};

/// MapReduce: inverted index over a small document collection.
struct InvertedIndex;

impl MapReduceJob for InvertedIndex {
    type Input = (usize, String);
    type Key = String;
    type Value = usize;

    fn map(&self, (doc, text): &(usize, String)) -> Vec<(String, usize)> {
        text.split_whitespace()
            .map(|w| (w.to_string(), *doc))
            .collect()
    }

    fn reduce(&self, key: &String, mut values: Vec<usize>) -> Vec<(String, usize)> {
        values.sort_unstable();
        values.dedup();
        values.into_iter().map(|d| (key.clone(), d)).collect()
    }
}

#[test]
fn mapreduce_inverted_index_is_correct_and_two_supersteps_per_round() {
    let docs = vec![
        (0, "grape parallelizes sequential algorithms".to_string()),
        (1, "sequential algorithms stay sequential".to_string()),
        (2, "grape is a parallel engine".to_string()),
    ];
    let (pairs, metrics) = run_mapreduce(&InvertedIndex, &docs, 3);
    let mut index: HashMap<String, Vec<usize>> = HashMap::new();
    for (word, doc) in pairs {
        index.entry(word).or_default().push(doc);
    }
    for docs in index.values_mut() {
        docs.sort_unstable();
    }
    assert_eq!(index["grape"], vec![0, 2]);
    assert_eq!(index["sequential"], vec![0, 1]);
    assert_eq!(index["engine"], vec![2]);
    // Theorem 2(2): each map-shuffle-reduce round costs two supersteps.
    assert_eq!(metrics.rounds, 1);
    assert_eq!(metrics.supersteps, 2);
}

#[test]
fn mapreduce_output_is_independent_of_worker_count() {
    let docs: Vec<(usize, String)> = (0..12)
        .map(|i| (i, format!("w{} shared w{}", i % 4, i % 3)))
        .collect();
    let normalize = |pairs: Vec<(String, usize)>| {
        let mut v = pairs;
        v.sort();
        v
    };
    let (a, _) = run_mapreduce(&InvertedIndex, &docs, 1);
    let (b, _) = run_mapreduce(&InvertedIndex, &docs, 5);
    assert_eq!(normalize(a), normalize(b));
}

/// BSP: parallel prefix-sum style accumulation — worker `w` holds value `w+1`
/// and after `ceil(log2(n))` doubling supersteps every worker knows the total.
struct DoublingSum;

impl BspProgram for DoublingSum {
    type State = (u64, usize); // (accumulated sum, round)
    type Message = u64;

    fn init(&self, worker: usize, _num_workers: usize) -> (u64, usize) {
        (worker as u64 + 1, 0)
    }

    fn superstep(
        &self,
        worker: usize,
        state: &mut (u64, usize),
        inbox: Vec<u64>,
        outbox: &mut BspOutbox<u64>,
    ) {
        for value in inbox {
            state.0 += value;
        }
        let stride = 1usize << state.1;
        state.1 += 1;
        // Recursive doubling over a ring of 4 workers for 2 rounds.
        if state.1 <= 2 {
            outbox.send((worker + stride) % 4, state.0);
        }
    }
}

#[test]
fn bsp_recursive_doubling_reaches_the_global_sum() {
    let (states, metrics) = run_bsp(&DoublingSum, 4, 10);
    // 1 + 2 + 3 + 4 = 10 at every worker after log2(4) = 2 doubling rounds.
    assert!(
        states.iter().all(|(sum, _)| *sum == 10),
        "states: {states:?}"
    );
    // Supersteps: 2 doubling rounds plus the quiescent delivery step.
    assert_eq!(metrics.supersteps, 3);
    assert_eq!(metrics.messages, 8);
}

/// PRAM-style composition: simulating one CREW PRAM step (every cell reads a
/// neighbour and writes its own cell) as a MapReduce round, iterated.
struct PramShiftAdd {
    rounds: usize,
}

impl MapReduceJob for PramShiftAdd {
    type Input = (usize, u64);
    type Key = usize;
    type Value = u64;

    fn rounds(&self) -> usize {
        self.rounds
    }

    fn map(&self, (cell, value): &(usize, u64)) -> Vec<(usize, u64)> {
        // Cell i contributes its value to itself and to cell i+1 (a shift-add
        // step, the building block of parallel prefix on a PRAM).
        vec![(*cell, *value), (cell + 1, *value)]
    }

    fn remap(&self, key: &usize, value: &u64) -> Vec<(usize, u64)> {
        vec![(*key, *value), (key + 1, *value)]
    }

    fn reduce(&self, key: &usize, values: Vec<u64>) -> Vec<(usize, u64)> {
        vec![(*key, values.iter().sum())]
    }
}

#[test]
fn pram_step_composition_runs_in_o_rounds() {
    let cells: Vec<(usize, u64)> = (0..8).map(|i| (i, 1)).collect();
    let (pairs, metrics) = run_mapreduce(&PramShiftAdd { rounds: 3 }, &cells, 4);
    let values: HashMap<usize, u64> = pairs.into_iter().collect();
    // After r shift-add rounds, cell i holds C(r, k) contributions summed —
    // in particular cell 0 still holds 1 and the values are monotone in i up
    // to the binomial profile; the structural claim we verify is the cost:
    // 3 rounds → 2 supersteps for round 1 plus 2 per later round.
    assert_eq!(values[&0], 1);
    assert!(values[&3] >= values[&0]);
    assert_eq!(metrics.rounds, 3);
    assert_eq!(metrics.supersteps, 2 + 2 * 2);
}
