//! Location transparency of the Process transport: the answer to a query
//! must be **byte-identical** whether fragments are evaluated in-process
//! (`TransportSpec::Barrier` / `TransportSpec::Channel`) or sharded across
//! `grape-worker` subprocesses (`TransportSpec::Process`), in both engine
//! modes — for all five PIE families and including the prepare → update
//! incremental path.
//!
//! Byte equality goes through [`DeltaOutput::canonical`] (the key-sorted
//! bijective row form every family implements) serialized with the same
//! JSON codec the pipes use, so a float that survives the wire differently
//! would be caught here.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use grape::algorithms::cc::{Cc, CcQuery};
use grape::algorithms::cf::{Cf, CfQuery};
use grape::algorithms::sim::{Sim, SimQuery};
use grape::algorithms::sssp::{Sssp, SsspQuery};
use grape::algorithms::subiso::{SubIso, SubIsoQuery};
use grape::core::config::EngineMode;
use grape::core::output_delta::DeltaOutput;
use grape::core::session::GrapeSession;
use grape::core::transport::TransportSpec;
use grape::core::worker_proto::locate_worker_binary;
use grape::graph::builder::GraphBuilder;
use grape::graph::delta::GraphDelta;
use grape::graph::graph::{Directedness, Graph};
use grape::graph::pattern::Pattern;
use grape::graph::types::Edge;
use grape::partition::edge_cut::HashEdgeCut;
use grape::partition::strategy::PartitionStrategy;

/// Every transport legal under `mode` (Async rejects the barrier).
fn specs(mode: EngineMode) -> Vec<TransportSpec> {
    match mode {
        EngineMode::Sync => vec![
            TransportSpec::Barrier,
            TransportSpec::Channel,
            TransportSpec::Process { workers: 2 },
        ],
        EngineMode::Async => vec![
            TransportSpec::Channel,
            TransportSpec::Process { workers: 2 },
        ],
    }
}

fn session(workers: usize, mode: EngineMode, spec: TransportSpec) -> GrapeSession {
    GrapeSession::builder()
        .workers(workers)
        .mode(mode)
        .transport(spec)
        .build()
        .unwrap()
}

/// Skip loudly when the worker binary is missing (a workspace `cargo test`
/// always builds it; a bare `cargo test --test process_equivalence` on a
/// cold tree may not).
fn worker_available() -> bool {
    if locate_worker_binary().is_some() {
        true
    } else {
        eprintln!(
            "skipping Process-transport equivalence: grape-worker binary not \
             built (run `cargo build -p grape-daemon --bins` first)"
        );
        false
    }
}

/// The canonical byte form of an assembled answer.
fn canon<P: DeltaOutput>(program: &P, query: &P::Query, output: &P::Output) -> String {
    serde_json::to_string(&program.canonical(query, output)).unwrap()
}

/// Runs `query` under every transport legal in `mode` and asserts the
/// canonical answers are byte-equal.
fn assert_batch_equivalent<P, F>(
    make: F,
    query: &P::Query,
    graph: &Graph,
    fragments: usize,
    mode: EngineMode,
    tag: &str,
) where
    P: DeltaOutput,
    F: Fn() -> P,
{
    let mut baseline: Option<(String, String)> = None;
    for spec in specs(mode) {
        let frag = HashEdgeCut::new(fragments).partition(graph).unwrap();
        let program = make();
        let run = session(2, mode, spec).run(&frag, &program, query).unwrap();
        let bytes = canon(&program, query, &run.output);
        match &baseline {
            None => baseline = Some((spec.name().to_string(), bytes)),
            Some((base_name, base_bytes)) => assert_eq!(
                &bytes,
                base_bytes,
                "{tag} ({mode:?}): transport {} diverges from {base_name}",
                spec.name()
            ),
        }
    }
}

/// Same deterministic graph family as the other equivalence suites.
fn arb_graph(rng: &mut StdRng, max_n: u64, max_m: usize, labels: u32) -> Graph {
    let n = rng.gen_range(6..max_n);
    let m = rng.gen_range(4..max_m);
    let mut b = GraphBuilder::new(Directedness::Directed).ensure_vertices(n as usize);
    for _ in 0..m {
        let s = rng.gen_range(0..n);
        let d = rng.gen_range(0..n);
        if s != d {
            let w = rng.gen_range(1u32..10u32);
            b.push_edge(Edge::weighted(s, d, w as f64));
        }
    }
    if labels > 0 {
        for v in 0..n {
            b.push_vertex_label(v, (v as u32 % labels) + 1);
        }
    }
    b.build()
}

const MODES: [EngineMode; 2] = [EngineMode::Sync, EngineMode::Async];
const CASES: u64 = 3;

#[test]
fn sssp_answers_are_byte_equal_across_transports() {
    if !worker_available() {
        return;
    }
    for mode in MODES {
        for case in 0..CASES {
            let mut rng = StdRng::seed_from_u64(0x9C_0100 + case);
            let graph = arb_graph(&mut rng, 50, 180, 0);
            let source = rng.gen_range(0u64..graph.num_vertices() as u64);
            let query = SsspQuery::new(source);
            assert_batch_equivalent(
                || Sssp,
                &query,
                &graph,
                4,
                mode,
                &format!("sssp case {case}"),
            );
        }
    }
}

#[test]
fn cc_answers_are_byte_equal_across_transports() {
    if !worker_available() {
        return;
    }
    for mode in MODES {
        for case in 0..CASES {
            let mut rng = StdRng::seed_from_u64(0x9C_0200 + case);
            let graph = arb_graph(&mut rng, 50, 160, 0).to_undirected();
            assert_batch_equivalent(|| Cc, &CcQuery, &graph, 4, mode, &format!("cc case {case}"));
        }
    }
}

#[test]
fn sim_answers_are_byte_equal_across_transports() {
    if !worker_available() {
        return;
    }
    for mode in MODES {
        for case in 0..CASES {
            let mut rng = StdRng::seed_from_u64(0x9C_0300 + case);
            let graph = arb_graph(&mut rng, 50, 160, 4);
            let pattern = Pattern::random(3, 4, &[1, 2, 3, 4], rng.gen_range(0u64..500));
            let query = SimQuery::new(pattern);
            // Both the naive and the index-optimized variants cross the pipe.
            assert_batch_equivalent(
                Sim::new,
                &query,
                &graph,
                3,
                mode,
                &format!("sim case {case}"),
            );
            assert_batch_equivalent(
                Sim::with_index,
                &query,
                &graph,
                3,
                mode,
                &format!("sim-optimized case {case}"),
            );
        }
    }
}

#[test]
fn subiso_answers_are_byte_equal_across_transports() {
    if !worker_available() {
        return;
    }
    for mode in MODES {
        for case in 0..CASES {
            let mut rng = StdRng::seed_from_u64(0x9C_0400 + case);
            let graph = arb_graph(&mut rng, 40, 120, 3);
            let pattern = Pattern::random(2, 2, &[1, 2, 3], rng.gen_range(0u64..500));
            let query = SubIsoQuery::new(pattern);
            assert_batch_equivalent(
                || SubIso,
                &query,
                &graph,
                3,
                mode,
                &format!("subiso case {case}"),
            );
        }
    }
}

#[test]
fn cf_answers_are_byte_equal_across_transports() {
    if !worker_available() {
        return;
    }
    // CF's SGD trajectory is deterministic under Sync for any worker count
    // and under Async only for a single engine worker (one drain order) —
    // the same pinning the delta fuzz uses.  Unlike the fixpoint families,
    // the trajectory is *not* transport-invariant: barrier and channel
    // bucket border messages into supersteps differently, which reorders
    // the SGD updates.  The location-transparency contract is therefore
    // pinned against the substrate the Process transport actually wraps:
    // barrier under Sync, channel under Async.
    let mut rng = StdRng::seed_from_u64(0x9C_0500);
    let mut b = GraphBuilder::directed();
    for _ in 0..40 {
        let u = rng.gen_range(0u64..8);
        let i = 8 + rng.gen_range(0u64..6);
        b.push_edge(Edge::weighted(u, i, 1.0 + rng.gen_range(0u32..5) as f64));
    }
    let graph = b.build();
    let query = CfQuery {
        epochs: 3,
        num_factors: 4,
        ..Default::default()
    };
    for mode in MODES {
        let (workers, in_process) = match mode {
            EngineMode::Sync => (2, TransportSpec::Barrier),
            EngineMode::Async => (1, TransportSpec::Channel),
        };
        let mut baseline: Option<(String, String)> = None;
        for spec in [in_process, TransportSpec::Process { workers }] {
            let frag = HashEdgeCut::new(3).partition(&graph).unwrap();
            let run = session(workers, mode, spec)
                .run(&frag, &Cf, &query)
                .unwrap();
            let bytes = canon(&Cf, &query, &run.output);
            match &baseline {
                None => baseline = Some((spec.name().to_string(), bytes)),
                Some((base_name, base_bytes)) => assert_eq!(
                    &bytes,
                    base_bytes,
                    "cf ({mode:?}): transport {} diverges from {base_name}",
                    spec.name()
                ),
            }
        }
    }
}

/// The prepare → update path: retained partials ship to the workers at the
/// refresh handshake, seed messages cross the pipe, and the refreshed
/// answer must still be byte-equal to the in-process transports.
#[test]
fn incremental_refresh_is_byte_equal_across_transports() {
    if !worker_available() {
        return;
    }
    for mode in MODES {
        for case in 0..CASES {
            let mut rng = StdRng::seed_from_u64(0x9C_0600 + case);
            let graph = arb_graph(&mut rng, 40, 140, 0);
            let source = rng.gen_range(0u64..graph.num_vertices() as u64);
            // The same delta sequence replayed against every transport.
            let mut deltas: Vec<GraphDelta> = Vec::new();
            let mut grown = graph.clone();
            for _ in 0..3 {
                let n = grown.num_vertices() as u64;
                let mut delta = GraphDelta::new();
                for _ in 0..5 {
                    let s = rng.gen_range(0..n);
                    let d = rng.gen_range(0..n + 2);
                    if s != d {
                        delta = delta.add_weighted_edge(s, d, rng.gen_range(1u32..10) as f64);
                    }
                }
                grown = grown.apply_delta(&delta).unwrap();
                deltas.push(delta);
            }

            let query = SsspQuery::new(source);
            let mut baseline: Option<(String, Vec<String>)> = None;
            for spec in specs(mode) {
                let frag = HashEdgeCut::new(4).partition(&graph).unwrap();
                let s = session(2, mode, spec);
                let mut prepared = s.prepare(frag, Sssp, query).unwrap();
                let mut states = vec![canon(&Sssp, &query, &prepared.output())];
                for delta in &deltas {
                    prepared.update(delta).unwrap();
                    states.push(canon(&Sssp, &query, &prepared.output()));
                }
                match &baseline {
                    None => baseline = Some((spec.name().to_string(), states)),
                    Some((base_name, base_states)) => assert_eq!(
                        &states,
                        base_states,
                        "sssp refresh case {case} ({mode:?}): transport {} \
                         diverges from {base_name}",
                        spec.name()
                    ),
                }
            }
        }
    }
}

/// Subprocess runs report the pipe traffic they caused; in-process runs
/// report none.
#[test]
fn pipe_bytes_are_accounted_only_for_the_process_transport() {
    if !worker_available() {
        return;
    }
    let mut rng = StdRng::seed_from_u64(0x9C_0700);
    let graph = arb_graph(&mut rng, 40, 120, 0);
    let frag = HashEdgeCut::new(4).partition(&graph).unwrap();
    let query = SsspQuery::new(0);

    let in_process = session(2, EngineMode::Sync, TransportSpec::Barrier)
        .run(&frag, &Sssp, &query)
        .unwrap();
    assert_eq!(in_process.metrics.pipe_bytes, 0);

    let subprocess = session(2, EngineMode::Sync, TransportSpec::Process { workers: 2 })
        .run(&frag, &Sssp, &query)
        .unwrap();
    assert!(
        subprocess.metrics.pipe_bytes > 0,
        "a Process run must account its pipe traffic"
    );
    assert_eq!(subprocess.metrics.transport, "process");
}
