//! Concurrent-serving fuzz: seeded random graphs + mixed delta streams
//! driven through [`GrapeServer`]s that differ **only** in their refresh
//! fan-out width ({1, 2, 4} threads), asserting that
//!
//! * every width produces byte-identical answers — to each other and to a
//!   full recompute on the evolved graph,
//! * every width produces the same [`ServeReport`] contents (ids, refresh
//!   kinds, rebuilt sets, poison/deferral bookkeeping) — the fan-out
//!   completes in arbitrary order but the merged report never shows it,
//! * mid-stream eviction/rehydration and failure injection (the
//!   [`TrippablePrepare`] behind/poisoned protocol) behave identically at
//!   every width,
//! * `apply_batch` (the pipelined path, with and without group-commit)
//!   lands on the same answers as one `apply` per delta.
//!
//! Both [`EngineMode::Sync`] and [`EngineMode::Async`] run in tier-1 with a
//! fixed seed set (8 seeds per mode); the `#[ignore]`-gated `long_fuzz_*`
//! variants run in the nightly scheduled CI job.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use grape::algorithms::sssp::{Sssp, SsspQuery};
use grape::core::config::EngineMode;
use grape::core::serve::{GrapeServer, QueryHandle, ServeReport};
use grape::core::session::GrapeSession;
use grape::core::test_support::{ring_graph, MinForward, TrippablePrepare};
use grape::graph::builder::GraphBuilder;
use grape::graph::delta::GraphDelta;
use grape::graph::graph::{Directedness, Graph};
use grape::graph::types::Edge;
use grape::partition::edge_cut::{HashEdgeCut, RangeEdgeCut};
use grape::partition::strategy::PartitionStrategy;

const MODES: [EngineMode; 2] = [EngineMode::Sync, EngineMode::Async];
const WIDTHS: [usize; 3] = [1, 2, 4];

/// Size knobs: tier-1 keeps `cargo test -q` fast; nightly fuzzes more
/// seeds over larger graphs.
struct Profile {
    cases: u64,
    rounds: usize,
    max_n: u64,
    max_m: usize,
}

const TIER1: Profile = Profile {
    cases: 8,
    rounds: 3,
    max_n: 30,
    max_m: 100,
};

const NIGHTLY: Profile = Profile {
    cases: 24,
    rounds: 5,
    max_n: 120,
    max_m: 500,
};

fn session(workers: usize, mode: EngineMode) -> GrapeSession {
    GrapeSession::builder()
        .workers(workers)
        .mode(mode)
        .build()
        .unwrap()
}

/// A random directed weighted graph (the `delta_fuzz.rs` generator family).
fn arb_graph(rng: &mut StdRng, max_n: u64, max_m: usize) -> Graph {
    let n = rng.gen_range(8..max_n.max(10));
    let m = rng.gen_range(6..max_m);
    let mut b = GraphBuilder::new(Directedness::Directed).ensure_vertices(n as usize);
    for _ in 0..m {
        let s = rng.gen_range(0..n);
        let d = rng.gen_range(0..n);
        if s != d {
            let w = rng.gen_range(1u32..10u32);
            b.push_edge(Edge::weighted(s, d, w as f64));
        }
    }
    b.build()
}

/// A random **mixed** batch against the current graph: insertions (possibly
/// to brand-new vertices) plus deletions drawn from the live edge list, so
/// the stream alternates between the monotone and non-monotone refresh
/// paths.
fn mixed_delta(rng: &mut StdRng, g: &Graph, inserts: usize, deletes: usize) -> GraphDelta {
    let n = g.num_vertices() as u64;
    let m = g.num_edges();
    let mut delta = GraphDelta::new();
    for _ in 0..inserts {
        let s = rng.gen_range(0..n);
        let d = if rng.gen_range(0u32..4) == 0 {
            n + rng.gen_range(0u64..3)
        } else {
            rng.gen_range(0..n)
        };
        if s != d {
            let w = rng.gen_range(1u32..10u32);
            delta = delta.add_weighted_edge(s, d, w as f64);
        }
    }
    // Half the batches are insert-only (the monotone path).
    if m > 0 && rng.gen_range(0u32..2) == 0 {
        let mut seen = std::collections::HashSet::new();
        for _ in 0..deletes * 3 {
            if seen.len() >= deletes.min(m) {
                break;
            }
            let e = g.edges()[rng.gen_range(0..m as u64) as usize];
            if seen.insert((e.src, e.dst)) {
                delta = delta.remove_edge(e.src, e.dst);
            }
        }
    }
    delta
}

/// The width-independent content of a [`ServeReport`]: everything except
/// the raw engine metrics (whose message/superstep counts the async runtime
/// does not guarantee to be schedule-independent).  Also asserts the
/// per-query entries arrive sorted by id — the determinism contract of the
/// merged fan-out.
fn report_digest(r: &ServeReport, tag: &str) -> Vec<String> {
    let ids: Vec<usize> = r.refreshed.iter().map(|q| q.query).collect();
    let mut sorted = ids.clone();
    sorted.sort_unstable();
    assert_eq!(ids, sorted, "refreshed entries not sorted by id ({tag})");

    let mut digest = vec![format!(
        "version={} deltas={} rebuilt={:?} reused={} caught_up={:?} \
         deferred={:?} poisoned={:?} evicted={:?}",
        r.version, r.deltas, r.rebuilt, r.reused, r.caught_up, r.deferred, r.poisoned, r.evicted
    )];
    for q in &r.refreshed {
        digest.push(match &q.result {
            Ok(u) => format!(
                "q{} ok kind={:?} rebuilt={:?} reused={} incremental={}",
                q.query, u.kind, u.rebuilt, u.reused, u.incremental
            ),
            Err(e) => format!("q{} err {e}", q.query),
        });
    }
    digest
}

/// One server per fan-out width over the same fragmentation, with the same
/// K SSSP queries plus one MinForward query registered in the same order.
struct Fleet {
    servers: Vec<GrapeServer>,
    sssp: Vec<Vec<QueryHandle<Sssp>>>,
    min: Vec<QueryHandle<MinForward>>,
}

impl Fleet {
    fn new(s: &GrapeSession, graph: &Graph, fragments: usize, sources: &[u64]) -> Fleet {
        let frag = HashEdgeCut::new(fragments).partition(graph).unwrap();
        let mut servers = Vec::new();
        let mut sssp = Vec::new();
        let mut min = Vec::new();
        for &w in &WIDTHS {
            let mut server = GrapeServer::new(s.clone(), frag.clone()).threads(w);
            sssp.push(
                sources
                    .iter()
                    .map(|&src| server.register(Sssp, SsspQuery::new(src)).unwrap())
                    .collect(),
            );
            min.push(server.register(MinForward, ()).unwrap());
            servers.push(server);
        }
        Fleet { servers, sssp, min }
    }

    /// Applies `delta` to every server and asserts the reports are
    /// width-independent.
    fn apply_all(&mut self, delta: &GraphDelta, tag: &str) -> Vec<ServeReport> {
        let reports: Vec<ServeReport> = self
            .servers
            .iter_mut()
            .map(|srv| srv.apply(delta).unwrap())
            .collect();
        let baseline = report_digest(&reports[0], tag);
        for (i, r) in reports.iter().enumerate().skip(1) {
            assert_eq!(
                report_digest(r, tag),
                baseline,
                "threads={} diverged from threads=1 ({tag})",
                WIDTHS[i]
            );
        }
        reports
    }

    /// Asserts every width's answers equal each other and a full recompute.
    fn check_outputs(&mut self, s: &GrapeSession, sources: &[u64], tag: &str) {
        let frag = self.servers[0].fragmentation().clone();
        for (qi, &src) in sources.iter().enumerate() {
            let recompute = s.run(&frag, &Sssp, &SsspQuery::new(src)).unwrap();
            for (si, handles) in self.sssp.iter().enumerate() {
                let out = self.servers[si].output(&handles[qi]).unwrap();
                for v in frag.source().vertices() {
                    assert_eq!(
                        out.distance(v).map(|d| d.to_bits()),
                        recompute.output.distance(v).map(|d| d.to_bits()),
                        "threads={} sssp q{qi} vertex {v} ({tag})",
                        WIDTHS[si]
                    );
                }
            }
        }
        let recompute = s.run(&frag, &MinForward, &()).unwrap();
        for (si, handle) in self.min.clone().iter().enumerate() {
            assert_eq!(
                self.servers[si].output(handle).unwrap(),
                recompute.output,
                "threads={} min-forward ({tag})",
                WIDTHS[si]
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Fuzz bodies
// ---------------------------------------------------------------------------

/// Core equivalence fuzz: K queries, mixed stream, widths {1, 2, 4}.
fn fuzz_fan_out(profile: &Profile, mode: EngineMode, seed_base: u64) {
    for case in 0..profile.cases {
        let mut rng = StdRng::seed_from_u64(seed_base + case);
        let graph = arb_graph(&mut rng, profile.max_n, profile.max_m);
        let fragments = rng.gen_range(2usize..6);
        let workers = rng.gen_range(1usize..3);
        let k = rng.gen_range(3usize..7);
        let n = graph.num_vertices() as u64;
        let sources: Vec<u64> = (0..k).map(|_| rng.gen_range(0..n)).collect();

        let s = session(workers, mode);
        let mut fleet = Fleet::new(&s, &graph, fragments, &sources);
        for round in 0..profile.rounds {
            let current = fleet.servers[0].fragmentation().source().clone();
            let delta = mixed_delta(&mut rng, &current, 5, 3);
            if delta.is_empty() {
                continue;
            }
            let tag = format!("fan-out case {case} round {round} {mode:?}");
            fleet.apply_all(&delta, &tag);
            fleet.check_outputs(&s, &sources, &tag);
        }
    }
}

/// Eviction fuzz: random evict/rehydrate of the same queries at the same
/// stream positions on every width; deferral bookkeeping and the replayed
/// catch-up must be width-independent.
fn fuzz_mid_stream_eviction(profile: &Profile, mode: EngineMode, seed_base: u64) {
    for case in 0..profile.cases {
        let mut rng = StdRng::seed_from_u64(seed_base + case);
        let graph = arb_graph(&mut rng, profile.max_n, profile.max_m);
        let fragments = rng.gen_range(2usize..5);
        let k = rng.gen_range(3usize..6);
        let n = graph.num_vertices() as u64;
        let sources: Vec<u64> = (0..k).map(|_| rng.gen_range(0..n)).collect();

        let s = session(2, mode);
        let mut fleet = Fleet::new(&s, &graph, fragments, &sources);
        let mut cold: Option<usize> = None;
        for round in 0..profile.rounds + 2 {
            // Flip one query's residency before this round's delta.
            match cold {
                None if rng.gen_range(0u32..2) == 0 => {
                    let qi = rng.gen_range(0..k as u64) as usize;
                    for (si, handles) in fleet.sssp.iter().enumerate() {
                        fleet.servers[si].evict(&handles[qi]).unwrap();
                    }
                    cold = Some(qi);
                }
                Some(qi) if rng.gen_range(0u32..2) == 0 => {
                    let mut replays: Vec<(usize, usize)> = Vec::new();
                    for (si, handles) in fleet.sssp.iter().enumerate() {
                        let report = fleet.servers[si].rehydrate(&handles[qi]).unwrap();
                        replays.push((report.replayed.len(), report.peval_calls()));
                    }
                    assert!(
                        replays.windows(2).all(|w| w[0] == w[1]),
                        "rehydration replay diverged across widths \
                         (case {case} {mode:?}): {replays:?}"
                    );
                    cold = None;
                }
                _ => {}
            }

            let current = fleet.servers[0].fragmentation().source().clone();
            let delta = mixed_delta(&mut rng, &current, 4, 2);
            if delta.is_empty() {
                continue;
            }
            let tag = format!("evict case {case} round {round} {mode:?}");
            let reports = fleet.apply_all(&delta, &tag);
            if let Some(qi) = cold {
                let id = fleet.sssp[0][qi].id();
                assert!(
                    reports[0].deferred.contains(&id),
                    "cold query {id} not deferred ({tag})"
                );
            }
        }
        // Everyone warm again, then verify against a recompute.
        if let Some(qi) = cold {
            for (si, handles) in fleet.sssp.iter().enumerate() {
                fleet.servers[si].rehydrate(&handles[qi]).unwrap();
            }
        }
        let tag = format!("evict case {case} final {mode:?}");
        fleet.check_outputs(&s, &sources, &tag);
    }
}

/// Pipelining fuzz: the same stream absorbed delta-by-delta, as one
/// `apply_batch`, and as one group-committed `apply_batch`, must land on
/// the same answers (and the same raw-delta accounting).
fn fuzz_batch_pipelining(profile: &Profile, mode: EngineMode, seed_base: u64) {
    for case in 0..profile.cases {
        let mut rng = StdRng::seed_from_u64(seed_base + case);
        let graph = arb_graph(&mut rng, profile.max_n, profile.max_m);
        let fragments = rng.gen_range(2usize..5);
        let k = rng.gen_range(2usize..5);
        let n = graph.num_vertices() as u64;
        let sources: Vec<u64> = (0..k).map(|_| rng.gen_range(0..n)).collect();
        let frag = HashEdgeCut::new(fragments).partition(&graph).unwrap();

        let s = session(2, mode);
        let register = |server: &mut GrapeServer| -> Vec<QueryHandle<Sssp>> {
            sources
                .iter()
                .map(|&src| server.register(Sssp, SsspQuery::new(src)).unwrap())
                .collect()
        };
        let mut sequential = GrapeServer::new(s.clone(), frag.clone()).threads(2);
        let mut batched = GrapeServer::new(s.clone(), frag.clone()).threads(2);
        let mut grouped = GrapeServer::new(s.clone(), frag)
            .threads(2)
            .group_commit(24);
        let seq_handles = register(&mut sequential);
        let batch_handles = register(&mut batched);
        let group_handles = register(&mut grouped);

        // Build the stream against the sequential server's evolving graph.
        let mut deltas = Vec::new();
        for _ in 0..profile.rounds + 2 {
            let current = sequential.fragmentation().source().clone();
            let delta = mixed_delta(&mut rng, &current, 4, 2);
            if delta.is_empty() {
                continue;
            }
            sequential.apply(&delta).unwrap();
            deltas.push(delta);
        }
        if deltas.is_empty() {
            continue;
        }

        for (name, server) in [("batch", &mut batched), ("grouped", &mut grouped)] {
            let report = server.apply_batch(&deltas);
            assert!(
                report.rejected.is_none(),
                "{name} rejected a replayed delta (case {case} {mode:?})"
            );
            assert_eq!(report.deltas_committed(), deltas.len(), "{name} {case}");
            assert_eq!(server.deltas_applied(), deltas.len(), "{name} {case}");
        }
        assert_eq!(sequential.version(), batched.version(), "case {case}");
        assert!(grouped.version() <= batched.version(), "case {case}");

        for (qi, &src) in sources.iter().enumerate() {
            let recompute = s
                .run(sequential.fragmentation(), &Sssp, &SsspQuery::new(src))
                .unwrap();
            let seq = sequential.output(&seq_handles[qi]).unwrap();
            let bat = batched.output(&batch_handles[qi]).unwrap();
            let grp = grouped.output(&group_handles[qi]).unwrap();
            for v in sequential.fragmentation().source().vertices() {
                let want = recompute.output.distance(v).map(|d| d.to_bits());
                let tag = format!("batch case {case} q{qi} vertex {v} {mode:?}");
                assert_eq!(seq.distance(v).map(|d| d.to_bits()), want, "seq {tag}");
                assert_eq!(bat.distance(v).map(|d| d.to_bits()), want, "bat {tag}");
                assert_eq!(grp.distance(v).map(|d| d.to_bits()), want, "grp {tag}");
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Tier-1 fixed-seed matrix
// ---------------------------------------------------------------------------

#[test]
fn fan_out_fuzz_matches_sequential_and_recompute_in_both_modes() {
    for mode in MODES {
        fuzz_fan_out(&TIER1, mode, 0xC0_0100);
    }
}

#[test]
fn mid_stream_eviction_fuzz_is_width_independent_in_both_modes() {
    for mode in MODES {
        fuzz_mid_stream_eviction(&TIER1, mode, 0xC0_0200);
    }
}

#[test]
fn batch_pipelining_fuzz_matches_sequential_server_in_both_modes() {
    for mode in MODES {
        fuzz_batch_pipelining(&TIER1, mode, 0xC0_0300);
    }
}

/// Failure injection at every width: a tripped full re-preparation leaves
/// the query *behind* (caught up after healing), and a diverging monotone
/// refresh *poisons* it — with identical bookkeeping at widths 1 and 4
/// while healthy co-resident queries keep serving exact answers.
#[test]
fn poisoned_and_behind_queries_are_width_independent() {
    for mode in MODES {
        let graph = ring_graph(12);
        let frag = RangeEdgeCut::new(3).partition(&graph).unwrap();
        // A tight superstep limit makes the injected divergence fail fast
        // (MinForward still converges on the range-cut ring well within it).
        let s = GrapeSession::builder()
            .workers(2)
            .mode(mode)
            .max_supersteps(4)
            .build()
            .unwrap();

        let mut fleets = Vec::new();
        for &w in &[1usize, 4] {
            let mut server = GrapeServer::new(s.clone(), frag.clone()).threads(w);
            let flaky_prog = TrippablePrepare::new();
            let flaky = server.register(flaky_prog.clone(), ()).unwrap();
            let healthy = server.register(MinForward, ()).unwrap();
            fleets.push((server, flaky_prog, flaky, healthy));
        }

        // Tripped: the full re-preparation fails, the query stays behind,
        // the server keeps serving the healthy query.
        let insert = GraphDelta::new().add_edge(0, 6);
        for (server, prog, flaky, _) in fleets.iter_mut() {
            prog.trip();
            let r = server.apply(&insert).unwrap();
            let entry = r
                .refreshed
                .iter()
                .find(|q| q.query == flaky.id())
                .expect("flaky refresh entry");
            assert!(entry.result.is_err(), "{mode:?}: tripped prepare succeeded");
            assert!(
                r.poisoned.is_empty(),
                "{mode:?}: full-path failure poisoned"
            );
        }

        // Healed: the next delta catches the behind query up first.
        let insert2 = GraphDelta::new().add_edge(1, 7);
        for (server, prog, flaky, _) in fleets.iter_mut() {
            prog.heal();
            let r = server.apply(&insert2).unwrap();
            assert_eq!(r.caught_up, vec![flaky.id()], "{mode:?}: no catch-up");
            let entry = r
                .refreshed
                .iter()
                .find(|q| q.query == flaky.id())
                .expect("flaky refresh entry");
            assert!(entry.result.is_ok(), "{mode:?}: healed refresh failed");
        }

        // Poisoned: a diverging monotone refresh wrecks the query; later
        // deltas skip it, at every width, and say so.
        let insert3 = GraphDelta::new().add_edge(2, 8);
        let insert4 = GraphDelta::new().add_edge(3, 9);
        for (server, prog, flaky, healthy) in fleets.iter_mut() {
            prog.allow_monotone_inserts();
            let r = server.apply(&insert3).unwrap();
            let entry = r
                .refreshed
                .iter()
                .find(|q| q.query == flaky.id())
                .expect("flaky refresh entry");
            assert!(entry.result.is_err(), "{mode:?}: diverging refresh passed");
            let r = server.apply(&insert4).unwrap();
            assert_eq!(r.poisoned, vec![flaky.id()], "{mode:?}: not poisoned");
            assert!(server.output(flaky).is_err(), "{mode:?}: poisoned output");

            let recompute = s.run(server.fragmentation(), &MinForward, &()).unwrap();
            assert_eq!(
                server.output(healthy).unwrap(),
                recompute.output,
                "{mode:?}: healthy query diverged after co-resident poison"
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Nightly long-fuzz profile — `#[ignore]`-gated, run by the scheduled CI
// job: `cargo test --release --test serve_concurrency -- --ignored`.
// ---------------------------------------------------------------------------

#[test]
#[ignore = "nightly long-fuzz profile"]
fn long_fuzz_fan_out() {
    for mode in MODES {
        fuzz_fan_out(&NIGHTLY, mode, 0xC1_0100);
    }
}

#[test]
#[ignore = "nightly long-fuzz profile"]
fn long_fuzz_mid_stream_eviction() {
    for mode in MODES {
        fuzz_mid_stream_eviction(&NIGHTLY, mode, 0xC1_0200);
    }
}

#[test]
#[ignore = "nightly long-fuzz profile"]
fn long_fuzz_batch_pipelining() {
    for mode in MODES {
        fuzz_batch_pipelining(&NIGHTLY, mode, 0xC1_0300);
    }
}
