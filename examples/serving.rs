//! Serving many standing queries off one evolving road network.
//!
//! A navigation service answers shortest-path queries from many depots over
//! one city graph that keeps changing.  Instead of giving every depot its
//! own `PreparedQuery` — which would re-apply every `ΔG` once *per depot* —
//! a [`GrapeServer`] owns a single `Arc`-shared fragmentation timeline:
//!
//! * each depot registers once (`register` pays PEval once per query),
//! * every road update is applied to the fragmentation **once**
//!   (`apply` → one `apply_delta`, one rebuilt-fragment set shared by all
//!   registered queries through the `Arc<Fragment>` refcounting),
//! * rarely-asked depots are **evicted**: their fragments and partials
//!   spill to per-fragment binary snapshots on disk, and the next
//!   `output()` reloads them — zero PEval calls — and replays whatever
//!   deltas arrived while they were cold,
//! * per-delta refreshes fan out over a scoped worker pool
//!   (`threads(n)`) — every depot's refresh is independent once the shared
//!   `DeltaApplication` exists — and a burst of updates goes through
//!   `apply_batch`, which pipelines the next delta's partition maintenance
//!   under the current delta's refreshes.
//!
//! ```text
//! cargo run --release --example serving
//! ```

use grape::core::output_delta::OutputEvent;
use grape::core::serve::GrapeServer;
use grape::prelude::*;

fn main() {
    let graph = generators::road_grid(60, 60, 7);
    println!(
        "road network: {} intersections, {} road segments",
        graph.num_vertices(),
        graph.num_edges() / 2
    );

    let fragments = MetisLike::new(4).partition(&graph).expect("partition");
    let session = GrapeSession::with_workers(4);
    // Refresh up to 4 depots concurrently once each ΔG is applied.
    let mut server = GrapeServer::new(session, fragments).threads(4);

    // Three depots, three standing SSSP queries over ONE fragmentation.
    let depots: Vec<VertexId> = vec![0, 1770, 3599];
    let handles: Vec<_> = depots
        .iter()
        .map(|&d| server.register(Sssp, SsspQuery::new(d)).expect("register"))
        .collect();
    println!(
        "registered {} standing queries at timeline version {}",
        server.num_queries(),
        server.version()
    );

    // A dashboard watches depot 0: subscribe once, and from then on every
    // commit pushes the rows that *changed* — O(|change|) bytes — instead
    // of the dashboard re-polling the whole answer (`grapectl watch` is
    // this same stream over TCP).
    let watch = server.subscribe(&handles[0]).expect("subscribe");

    // Live updates: new road segments open.  One apply_delta; every
    // query's refresh reports the SAME rebuilt-fragment set.
    let new_roads = GraphDelta::new()
        .add_weighted_edge(10, 1000, 2.0)
        .add_weighted_edge(1000, 10, 2.0)
        .add_weighted_edge(42, 2042, 1.5)
        .add_weighted_edge(2042, 42, 1.5);
    let report = server.apply(&new_roads).expect("apply new roads");
    println!(
        "ΔG #1 (new segments): version {}, rebuilt fragments {:?}, \
         {} queries refreshed, {} total PEval calls",
        report.version,
        report.rebuilt,
        report.refreshed.len(),
        report.peval_calls()
    );
    for event in server.drain_events() {
        if let OutputEvent::Delta(delta) = event.event {
            println!(
                "  pushed to depot-0 watchers: v{} — {} changed row(s), {} removal(s) \
                 (not the {}-row answer)",
                event.version,
                delta.changed.len(),
                delta.removed.len(),
                server.output(&handles[0]).expect("output").num_reached()
            );
        }
    }

    // The overnight-only depot goes cold: spill it to disk.
    let cold = handles[2];
    let spill = server.evict(&cold).expect("evict");
    println!(
        "evicted depot {} → {} ({} of {} queries cold)",
        depots[2],
        spill.display(),
        server.num_evicted(),
        server.num_queries()
    );

    // A road closes while the depot is cold: resident queries refresh via
    // the bounded path; the cold one is deferred (the server retains the
    // timeline it will replay from).
    let closure = GraphDelta::new().remove_edge(10, 11).remove_edge(11, 10);
    let report = server.apply(&closure).expect("apply closure");
    println!(
        "ΔG #2 (closure): {} refreshed, deferred {:?}, retained versions {}",
        report.refreshed.len(),
        report.deferred,
        server.retained_versions()
    );

    // Asking the cold depot lazily rehydrates it: fragments + partials come
    // back from the snapshot file (no re-partitioning, no PEval) and the
    // missed closure is replayed.
    let rehydration = server.rehydrate(&cold).expect("rehydrate");
    println!(
        "rehydrated depot {}: {} delta(s) replayed with {} PEval calls \
         (the snapshot reload itself runs none; the closure's bounded \
         replay re-roots its damage frontier)",
        depots[2],
        rehydration.replayed.len(),
        rehydration.peval_calls()
    );

    // Morning rush: a burst of updates arrives at once.  `apply_batch`
    // pipelines the stream — while version n's refreshes run on the fan-out
    // pool, version n+1's `apply_delta` is already computing on a dedicated
    // thread — and commits in arrival order.
    let burst: Vec<GraphDelta> = (0..4)
        .map(|i| {
            GraphDelta::new()
                .add_weighted_edge(100 + i, 2000 + i, 1.0)
                .add_weighted_edge(2000 + i, 100 + i, 1.0)
        })
        .collect();
    let batch = server.apply_batch(&burst);
    println!(
        "ΔG burst: {} deltas committed in {} report(s), rejected: {}",
        batch.deltas_committed(),
        batch.reports.len(),
        if batch.rejected.is_none() {
            "none"
        } else {
            "yes"
        },
    );

    // The closure commit and the burst each pushed one more delta to the
    // subscription (group commits would fold theirs into one per group).
    let pending = server.drain_events();
    println!(
        "subscription caught {} more pushed delta(s) from the closure + burst",
        pending.len()
    );
    server.unsubscribe(watch).expect("unsubscribe");

    for (depot, handle) in depots.iter().zip(&handles) {
        let answer = server.output(handle).expect("output");
        println!(
            "depot {depot}: reaches {} intersections",
            answer.num_reached()
        );
    }
    println!(
        "timeline after everyone caught up: {} retained version(s)",
        server.retained_versions()
    );
}
