//! Social-network analysis: graph pattern matching and connectivity on a
//! power-law graph (the liveJournal stand-in) — the Section 5.1/5.2
//! workloads.
//!
//! ```text
//! cargo run --release --example social_analysis
//! ```

use grape::prelude::*;

fn main() {
    // A labeled power-law social graph: 100 "community" labels.
    let graph = generators::power_law(5_000, 25_000, 100, 11);
    println!(
        "social graph: {} users, {} follow edges, {} labels",
        graph.num_vertices(),
        graph.num_edges(),
        graph.distinct_vertex_labels().len()
    );

    let fragments = MetisLike::new(4).partition(&graph).expect("partition");
    let session = GrapeSession::with_workers(4);

    // --- Connected components (who can reach whom, ignoring direction). ---
    let cc = session.run(&fragments, &Cc, &CcQuery).expect("cc");
    println!(
        "\nconnected components: {} components found in {} supersteps ({:.4} MB shipped)",
        cc.output.num_components(),
        cc.metrics.supersteps,
        cc.metrics.comm_megabytes()
    );

    // --- Graph simulation: find users that play a role in a small pattern. ---
    // Pattern: someone of community 1 following someone of community 2 who
    // follows back into community 1 (a triangle of interests).
    let pattern = Pattern::new(vec![1, 2, 3], vec![(0, 1), (1, 2), (2, 0)]);
    let sim = session
        .run(&fragments, &Sim::new(), &SimQuery::new(pattern.clone()))
        .expect("sim");
    println!(
        "\ngraph simulation of a {}-node pattern: {} matching (query node, user) pairs, {} supersteps",
        pattern.num_nodes(),
        sim.output.total_pairs(),
        sim.metrics.supersteps
    );
    for u in 0..pattern.num_nodes() as u32 {
        println!(
            "  query node {u}: {} candidate users",
            sim.output.matches(u).len()
        );
    }

    // --- Subgraph isomorphism: exact embeddings of the same pattern. ---
    let subiso = session
        .run(
            &fragments,
            &SubIso,
            &SubIsoQuery::new(pattern).with_max_matches(1_000),
        )
        .expect("subiso");
    println!(
        "\nsubgraph isomorphism: {} exact embeddings (capped at 1000 per fragment), {:.4} MB of neighborhood exchange",
        subiso.output.num_matches(),
        subiso.metrics.comm_megabytes()
    );
}
