//! Road-network analysis: the workload behind Table 1 of the paper, now
//! served as a *prepared query over an evolving road network*.
//!
//! Generates a grid road network (the stand-in for the `traffic` dataset),
//! compares the METIS-like partition against hash partitioning, **prepares**
//! SSSP under GRAPE (PEval once, partials retained), then absorbs live
//! updates: opening a new road segment is an edge insertion — monotone for
//! SSSP, so the refresh runs IncEval only, with zero PEval calls — while a
//! road closure is a deletion, refreshed by the **bounded** path: PEval
//! re-roots only the damage frontier derived from `ΔG` (on a connected
//! grid that can be every fragment; on a regional network it stays
//! regional).  The vertex-centric baseline is re-run from scratch for the
//! comparison row.
//!
//! ```text
//! cargo run --release --example road_network
//! ```

use grape::baselines::vertex_centric::{VertexCentricEngine, VertexSssp};
use grape::partition::quality;
use grape::prelude::*;

fn main() {
    let graph = generators::road_grid(80, 80, 7);
    println!(
        "road network: {} intersections, {} road segments",
        graph.num_vertices(),
        graph.num_edges() / 2
    );

    // Partition quality: METIS-like vs hash (graph-level optimization the
    // paper inherits from sequential processing).
    let metis = MetisLike::new(4)
        .partition(&graph)
        .expect("metis partition");
    let hash = HashEdgeCut::new(4)
        .partition(&graph)
        .expect("hash partition");
    let mq = quality::evaluate(&metis);
    let hq = quality::evaluate(&hash);
    println!(
        "partition quality (4 fragments): metis-like cut {} edges ({:.1}%), hash cut {} edges ({:.1}%)",
        mq.cut_edges,
        100.0 * mq.cut_ratio,
        hq.cut_edges,
        100.0 * hq.cut_ratio
    );

    // Prepare GRAPE SSSP: pay PEval once, keep the partials.
    let session = GrapeSession::with_workers(4);
    let query = SsspQuery::new(0);
    let mut prepared = session
        .prepare(metis, Sssp, query)
        .expect("prepare grape sssp");

    // Vertex-centric (Giraph-style) SSSP on the same graph.
    let (vertex_dist, vertex_metrics) =
        VertexCentricEngine::new(4).run(&graph, &VertexSssp, &query);

    // Agreement check.
    let far_corner = (graph.num_vertices() - 1) as u64;
    println!(
        "\ndistance to the far corner {far_corner}: GRAPE = {:.2}, vertex-centric = {:.2}",
        prepared.output().distance(far_corner).unwrap_or(f64::NAN),
        vertex_dist[far_corner as usize]
    );

    let prep = prepared.prepare_metrics().clone();
    println!("\n                    supersteps   messages      comm (MB)   time (s)");
    println!(
        "GRAPE (prepare)    {:>10} {:>10} {:>14.4} {:>10.4}",
        prep.supersteps,
        prep.total_messages,
        prep.comm_megabytes(),
        prep.seconds()
    );
    println!(
        "vertex-centric     {:>10} {:>10} {:>14.4} {:>10.4}",
        vertex_metrics.supersteps,
        vertex_metrics.total_messages,
        vertex_metrics.comm_megabytes(),
        vertex_metrics.seconds()
    );
    println!(
        "\nGRAPE ships {:.2}% of the data and needs {:.1}% of the supersteps — the Table 1 effect.",
        100.0 * prep.total_bytes as f64 / vertex_metrics.total_bytes.max(1) as f64,
        100.0 * prep.supersteps as f64 / vertex_metrics.supersteps.max(1) as f64
    );

    // --- The road network evolves ---------------------------------------

    // A new expressway segment opens near the source: an edge insertion is
    // monotone for SSSP, so the prepared query absorbs it with IncEval only.
    let new_road = GraphDelta::new().add_weighted_edge(0, 2 * 80 + 2, 1.0);
    let report = prepared.update(&new_road).expect("open new road");
    let m = &report.metrics;
    println!(
        "\nopening a road (insert): incremental = {}, PEval calls = {}, \
         IncEval calls = {}, {} msgs (+{} seeds), {:.4} s",
        report.incremental,
        m.peval_calls,
        m.inceval_calls,
        m.total_messages,
        m.seed_messages,
        m.seconds()
    );
    assert!(report.incremental && m.peval_calls == 0);

    // A closure on one of the source's roads: deletions are not monotone
    // for SSSP (distances can grow back), so the update takes the bounded
    // refresh — PEval re-roots the damage frontier, every other fragment
    // keeps its retained partials — same answer as recomputing from
    // scratch.  (The grid is one strongly connected region, so here the
    // frontier legitimately covers all fragments; `report.kind` records
    // which decision-table row fired.)
    let closed = graph.out_neighbors(0)[0].target;
    let closure = GraphDelta::new().remove_edge(0, closed);
    let report = prepared.update(&closure).expect("close a road");
    println!(
        "closing a road (delete): kind = {:?}, PEval re-rooted {} of {} fragments \
         (rebuilt {:?}, reused {}), {:.4} s",
        report.kind,
        report.repeval.len(),
        prepared.fragmentation().num_fragments(),
        report.rebuilt,
        report.reused,
        report.metrics.seconds()
    );

    // The prepared output always equals a from-scratch run on the evolved graph.
    let recompute = session
        .run(prepared.fragmentation(), &Sssp, &query)
        .expect("recompute");
    let served = prepared.output();
    assert_eq!(served.num_reached(), recompute.output.num_reached());
    println!(
        "\nafter {} updates the prepared query still serves Q(G ⊕ ΔG) exactly \
         (far corner: {:.2}).",
        prepared.updates_applied(),
        served.distance(far_corner).unwrap_or(f64::NAN)
    );
}
