//! Road-network analysis: the workload behind Table 1 of the paper.
//!
//! Generates a grid road network (the stand-in for the `traffic` dataset),
//! compares the METIS-like partition against hash partitioning, runs SSSP
//! under GRAPE and under the vertex-centric baseline, and prints the
//! time / supersteps / communication comparison.
//!
//! ```text
//! cargo run --release --example road_network
//! ```

use grape::baselines::vertex_centric::{VertexCentricEngine, VertexSssp};
use grape::partition::quality;
use grape::prelude::*;

fn main() {
    let graph = generators::road_grid(80, 80, 7);
    println!(
        "road network: {} intersections, {} road segments",
        graph.num_vertices(),
        graph.num_edges() / 2
    );

    // Partition quality: METIS-like vs hash (graph-level optimization the
    // paper inherits from sequential processing).
    let metis = MetisLike::new(4)
        .partition(&graph)
        .expect("metis partition");
    let hash = HashEdgeCut::new(4)
        .partition(&graph)
        .expect("hash partition");
    let mq = quality::evaluate(&metis);
    let hq = quality::evaluate(&hash);
    println!(
        "partition quality (4 fragments): metis-like cut {} edges ({:.1}%), hash cut {} edges ({:.1}%)",
        mq.cut_edges,
        100.0 * mq.cut_ratio,
        hq.cut_edges,
        100.0 * hq.cut_ratio
    );

    // GRAPE SSSP.
    let session = GrapeSession::with_workers(4);
    let query = SsspQuery::new(0);
    let grape_run = session.run(&metis, &Sssp, &query).expect("grape sssp");

    // Vertex-centric (Giraph-style) SSSP on the same graph.
    let (vertex_dist, vertex_metrics) =
        VertexCentricEngine::new(4).run(&graph, &VertexSssp, &query);

    // Agreement check.
    let far_corner = (graph.num_vertices() - 1) as u64;
    println!(
        "\ndistance to the far corner {far_corner}: GRAPE = {:.2}, vertex-centric = {:.2}",
        grape_run.output.distance(far_corner).unwrap_or(f64::NAN),
        vertex_dist[far_corner as usize]
    );

    println!("\n                    supersteps   messages      comm (MB)   time (s)");
    println!(
        "GRAPE              {:>10} {:>10} {:>14.4} {:>10.4}",
        grape_run.metrics.supersteps,
        grape_run.metrics.total_messages,
        grape_run.metrics.comm_megabytes(),
        grape_run.metrics.seconds()
    );
    println!(
        "vertex-centric     {:>10} {:>10} {:>14.4} {:>10.4}",
        vertex_metrics.supersteps,
        vertex_metrics.total_messages,
        vertex_metrics.comm_megabytes(),
        vertex_metrics.seconds()
    );
    println!(
        "\nGRAPE ships {:.2}% of the data and needs {:.1}% of the supersteps — the Table 1 effect.",
        100.0 * grape_run.metrics.total_bytes as f64 / vertex_metrics.total_bytes.max(1) as f64,
        100.0 * grape_run.metrics.supersteps as f64 / vertex_metrics.supersteps.max(1) as f64
    );
}
