//! Recommender system: collaborative filtering over a bipartite rating graph
//! (the movieLens stand-in) — the Section 5.3 workload.
//!
//! Trains latent factors with the CF PIE program (SGD + ISGD) and compares
//! the fit against purely sequential SGD training.
//!
//! ```text
//! cargo run --release --example recommender
//! ```

use grape::algorithms::cf::{sgd_train, CfConfig};
use grape::prelude::*;

fn main() {
    // 1 000 users, 300 movies, 30 000 observed ratings from a hidden
    // 8-factor model.
    let data = generators::bipartite_ratings(1_000, 300, 30_000, 8, 3);
    println!(
        "ratings: {} users × {} movies, {} observed ratings",
        data.num_users,
        data.num_items,
        data.graph.num_edges()
    );

    // Distributed training with GRAPE.
    let fragments = HashEdgeCut::new(4)
        .partition(&data.graph)
        .expect("partition");
    let session = GrapeSession::with_workers(4);
    let query = CfQuery {
        epochs: 10,
        num_factors: 8,
        ..Default::default()
    };
    let run = session.run(&fragments, &Cf, &query).expect("cf");
    let grape_rmse = run.output.rmse(&data.graph);
    println!(
        "\nGRAPE CF: RMSE {:.3} after {} supersteps, {:.3} MB of factor exchange",
        grape_rmse,
        run.metrics.supersteps,
        run.metrics.comm_megabytes()
    );

    // Sequential SGD for comparison (the algorithm that was "plugged in").
    let sequential = sgd_train(
        &data.graph,
        &CfConfig {
            epochs: 10,
            num_factors: 8,
            ..Default::default()
        },
    );
    println!("sequential SGD: RMSE {:.3}", sequential.rmse(&data.graph));

    // Produce a few recommendations for user 0: unseen movies with the
    // highest predicted rating.
    let user = 0u64;
    let rated: std::collections::HashSet<u64> = data
        .graph
        .out_neighbors(user)
        .iter()
        .map(|n| n.target)
        .collect();
    let mut predictions: Vec<(u64, f64)> = (0..data.num_items)
        .map(|i| data.item_vertex(i))
        .filter(|item| !rated.contains(item))
        .map(|item| (item, run.output.predict(user, item)))
        .collect();
    predictions.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    println!("\ntop-5 recommendations for user {user}:");
    for (item, score) in predictions.iter().take(5) {
        println!(
            "  movie {} — predicted rating {:.2}",
            item - data.num_users as u64,
            score
        );
    }
}
