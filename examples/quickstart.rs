//! Quickstart: build a tiny weighted graph, partition it, and run the SSSP
//! PIE program on the GRAPE engine.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use grape::prelude::*;

fn main() {
    // A small weighted road map: 6 places, a few roads.
    let graph = GraphBuilder::new(Directedness::Directed)
        .add_weighted_edge(0, 1, 4.0)
        .add_weighted_edge(0, 2, 1.0)
        .add_weighted_edge(2, 1, 2.0)
        .add_weighted_edge(1, 3, 5.0)
        .add_weighted_edge(2, 3, 8.0)
        .add_weighted_edge(3, 4, 3.0)
        .add_weighted_edge(4, 5, 1.0)
        .add_weighted_edge(1, 5, 9.5)
        .build();

    // Partition into 2 fragments (the configuration panel: strategy + n).
    let fragments = HashEdgeCut::new(2).partition(&graph).expect("partition");
    println!(
        "partitioned {} vertices / {} edges into {} fragments ({} border vertices)",
        graph.num_vertices(),
        graph.num_edges(),
        fragments.num_fragments(),
        fragments.num_border_vertices()
    );

    // Plug the sequential Dijkstra + incremental Dijkstra (the SSSP PIE
    // program) into a GRAPE session and play.
    let session = GrapeSession::with_workers(2);
    let result = session
        .run(&fragments, &Sssp, &SsspQuery::new(0))
        .expect("run");

    println!("\nshortest distances from vertex 0:");
    for v in graph.vertices() {
        match result.output.distance(v) {
            Some(d) => println!("  dist(0, {v}) = {d}"),
            None => println!("  dist(0, {v}) = unreachable"),
        }
    }
    println!("\n{}", result.metrics.summary());
}
