//! Quickstart: build a tiny weighted graph, partition it, prepare the SSSP
//! PIE program on the GRAPE engine, and absorb a graph update with IncEval
//! alone.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use grape::prelude::*;

fn main() {
    // A small weighted road map: 6 places, a few roads.
    let graph = GraphBuilder::new(Directedness::Directed)
        .add_weighted_edge(0, 1, 4.0)
        .add_weighted_edge(0, 2, 1.0)
        .add_weighted_edge(2, 1, 2.0)
        .add_weighted_edge(1, 3, 5.0)
        .add_weighted_edge(2, 3, 8.0)
        .add_weighted_edge(3, 4, 3.0)
        .add_weighted_edge(4, 5, 1.0)
        .add_weighted_edge(1, 5, 9.5)
        .build();

    // Partition into 2 fragments (the configuration panel: strategy + n).
    let fragments = HashEdgeCut::new(2).partition(&graph).expect("partition");
    println!(
        "partitioned {} vertices / {} edges into {} fragments ({} border vertices)",
        graph.num_vertices(),
        graph.num_edges(),
        fragments.num_fragments(),
        fragments.num_border_vertices()
    );

    // Plug the sequential Dijkstra + incremental Dijkstra (the SSSP PIE
    // program) into a GRAPE session and *prepare* the query: PEval runs
    // once and the per-fragment partials are retained for serving.
    let session = GrapeSession::with_workers(2);
    let mut prepared = session
        .prepare(fragments, Sssp, SsspQuery::new(0))
        .expect("prepare");

    // `output()` assembles from the retained partials — bind it once.
    let distances = prepared.output();
    println!("\nshortest distances from vertex 0:");
    for v in graph.vertices() {
        match distances.distance(v) {
            Some(d) => println!("  dist(0, {v}) = {d}"),
            None => println!("  dist(0, {v}) = unreachable"),
        }
    }
    println!("\n{}", prepared.prepare_metrics().summary());

    // The road map evolves: a new road 0 -> 3 opens.  An insertion is
    // monotone for SSSP, so the prepared query absorbs it by IncEval alone
    // — zero PEval calls — instead of recomputing from scratch.
    let report = prepared
        .update(&GraphDelta::new().add_weighted_edge(0, 3, 2.0))
        .expect("update");
    println!(
        "\nafter opening road 0 -> 3 (incremental = {}, PEval calls = {}):",
        report.incremental, report.metrics.peval_calls
    );
    let refreshed = prepared.output();
    for v in [3u64, 4, 5] {
        println!(
            "  dist(0, {v}) = {}",
            refreshed.distance(v).expect("reachable")
        );
    }
    println!("\n{}", prepared.last_metrics().summary());
}
