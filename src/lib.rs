//! # GRAPE — Parallelizing Sequential Graph Computations
//!
//! Umbrella crate for the GRAPE (SIGMOD 2017) reproduction.  It re-exports
//! the individual crates of the workspace under a single namespace so that
//! examples and downstream users can depend on one crate:
//!
//! * [`graph`] — graph storage, builders and synthetic workload generators,
//! * [`partition`] — partition strategies, fragments and the fragmentation graph,
//! * [`core`] — the GRAPE engine: the PIE programming model, coordinator,
//!   workers, messages and metrics,
//! * [`algorithms`] — ready-made PIE programs (SSSP, CC, Sim, SubIso, CF),
//! * [`baselines`] — vertex-centric (Pregel/Giraph-style) and block-centric
//!   (Blogel-style) engines used as comparison systems.
//!
//! ## Quickstart
//!
//! ```
//! use grape::prelude::*;
//!
//! // A small weighted directed graph.
//! let g = GraphBuilder::new(Directedness::Directed)
//!     .add_weighted_edge(0, 1, 2.0)
//!     .add_weighted_edge(1, 2, 2.0)
//!     .add_weighted_edge(0, 2, 10.0)
//!     .build();
//!
//! // Partition it into 2 fragments with hash edge-cut and prepare SSSP
//! // from vertex 0: PEval runs once, the partials are retained.
//! let fragments = HashEdgeCut::new(2).partition(&g).expect("partition");
//! let session = GrapeSession::builder().workers(2).build().unwrap();
//! let mut prepared = session.prepare(fragments, Sssp::default(), SsspQuery::new(0)).unwrap();
//! assert_eq!(prepared.output().distance(2), Some(4.0));
//!
//! // The graph evolves: a new edge shortens the path.  IncEval absorbs it —
//! // no PEval runs (one-shot `session.run` remains available as well).
//! let report = prepared.update(&GraphDelta::new().add_weighted_edge(0, 2, 3.0)).unwrap();
//! assert!(report.incremental && report.metrics.peval_calls == 0);
//! assert_eq!(prepared.output().distance(2), Some(3.0));
//! ```

pub use grape_algorithms as algorithms;
pub use grape_baselines as baselines;
pub use grape_core as core;
pub use grape_graph as graph;
pub use grape_partition as partition;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use grape_algorithms::cc::{Cc, CcQuery};
    pub use grape_algorithms::cf::{Cf, CfQuery};
    pub use grape_algorithms::sim::{Sim, SimQuery};
    pub use grape_algorithms::sssp::{Sssp, SsspQuery};
    pub use grape_algorithms::subiso::{SubIso, SubIsoQuery};
    pub use grape_core::config::{EngineConfig, EngineMode};
    pub use grape_core::engine::RunResult;
    pub use grape_core::metrics::EngineMetrics;
    pub use grape_core::pie::{IncrementalPie, PieProgram};
    pub use grape_core::prepared::{PreparedQuery, RefreshKind, UpdateReport};
    pub use grape_core::serve::{
        BatchReport, EvictionPolicy, GrapeServer, QueryHandle, ServeReport,
    };
    pub use grape_core::session::{GrapeSession, GrapeSessionBuilder};
    pub use grape_core::transport::{Transport, TransportSpec};
    pub use grape_graph::builder::GraphBuilder;
    pub use grape_graph::delta::GraphDelta;
    pub use grape_graph::generators;
    pub use grape_graph::graph::{Directedness, Graph};
    pub use grape_graph::pattern::Pattern;
    pub use grape_graph::types::VertexId;
    pub use grape_partition::edge_cut::HashEdgeCut;
    pub use grape_partition::fragment::Fragmentation;
    pub use grape_partition::metis_like::MetisLike;
    pub use grape_partition::strategy::PartitionStrategy;
}
