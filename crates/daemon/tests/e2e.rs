//! Satellite: end-to-end daemon tests.
//!
//! Each test spawns a real `graped` (in-process, ephemeral port) and
//! drives it over actual TCP through the typed [`GrapeClient`]:
//!
//! * wire answers must be **byte-equal** to what a library-level
//!   [`GrapeServer`] produces on the same graph + delta stream, in both
//!   engine modes (the daemon adds transport, never semantics),
//! * N concurrent clients applying disjoint deltas must serialize to
//!   exactly one timeline commit per `ΔG` (the one-`apply_delta` invariant
//!   across the network boundary),
//! * the mock workload must serve and shut down cleanly,
//! * protocol errors must come back as in-protocol error frames without
//!   killing the connection.

use std::time::{Duration, Instant};

use grape_algorithms::cc::{Cc, CcQuery};
use grape_algorithms::sssp::{Sssp, SsspQuery};
use grape_core::config::EngineMode;
use grape_core::output_delta::{wire_rows, OutputEvent};
use grape_core::serve::GrapeServer;
use grape_core::session::GrapeSession;
use grape_core::spec::QuerySpec;
use grape_daemon::client::{ClientError, GrapeClient};
use grape_daemon::mock::{mock_delta, MockConfig};
use grape_daemon::protocol::{
    self, ErrorKind, QueryAnswer, Request, RequestBody, Response, ResponseBody,
};
use grape_daemon::server::{DaemonConfig, GrapedHandle, GraphSource};
use grape_graph::delta::GraphDelta;
use grape_graph::generators;
use grape_partition::metis_like::MetisLike;
use grape_partition::strategy::PartitionStrategy;
use serde::Value;

const GRID: (usize, usize, u64) = (6, 6, 7);
const BASE_VERTICES: u64 = 36;

fn daemon_config(mode: EngineMode) -> DaemonConfig {
    DaemonConfig {
        addr: "127.0.0.1:0".to_string(),
        mode,
        graph: GraphSource::Grid {
            width: GRID.0,
            height: GRID.1,
            seed: GRID.2,
        },
        ..DaemonConfig::default()
    }
}

/// A library-level `GrapeServer` on the identical graph/session setup.
fn library_server(mode: EngineMode) -> GrapeServer {
    let graph = generators::road_grid(GRID.0, GRID.1, GRID.2);
    let fragmentation = MetisLike::new(4).partition(&graph).expect("partition");
    let session = GrapeSession::builder()
        .workers(2)
        .mode(mode)
        .refresh_threads(2)
        .build()
        .expect("session");
    GrapeServer::new(session, fragmentation)
}

fn json(answer: &QueryAnswer) -> String {
    serde_json::to_string(answer).expect("serialize answer")
}

/// An answer's canonical wire rows — the base an `OutputDelta` stream
/// replays over.
fn answer_rows(answer: &QueryAnswer) -> Vec<(Value, Value)> {
    match answer {
        QueryAnswer::Sssp { distances } => wire_rows(distances),
        QueryAnswer::Cc { components } => wire_rows(components),
    }
}

#[test]
fn wire_answers_are_byte_equal_to_library_answers_in_both_modes() {
    for mode in [EngineMode::Sync, EngineMode::Async] {
        let deltas: Vec<GraphDelta> = (0..4).map(|i| mock_delta(11, BASE_VERTICES, i)).collect();

        // Library run: same graph, same queries, same stream.
        let mut lib = library_server(mode);
        let sssp = lib
            .register(Sssp, SsspQuery::new(0))
            .expect("register sssp");
        let cc = lib.register(Cc, CcQuery).expect("register cc");
        for delta in &deltas {
            lib.apply(delta).expect("library apply");
        }
        let lib_sssp = json(&QueryAnswer::from_sssp(
            &lib.output(&sssp).expect("lib sssp"),
        ));
        let lib_cc = json(&QueryAnswer::from_cc(&lib.output(&cc).expect("lib cc")));

        // Daemon run, over real TCP.
        let handle = GrapedHandle::spawn(daemon_config(mode)).expect("spawn daemon");
        let mut client = GrapeClient::connect(handle.addr()).expect("connect");
        let q_sssp = client
            .register(QuerySpec::Sssp { source: 0 })
            .expect("register sssp");
        let q_cc = client.register(QuerySpec::Cc).expect("register cc");
        for delta in &deltas {
            let applied = client.apply(delta.clone()).expect("wire apply");
            assert_eq!(applied.reports.len(), 1, "one commit per ΔG");
            assert_eq!(applied.reports[0].deltas, 1);
            assert!(applied.rejected.is_none());
        }
        let wire_sssp = json(&client.output(q_sssp).expect("wire sssp"));
        let wire_cc = json(&client.output(q_cc).expect("wire cc"));
        assert_eq!(wire_sssp, lib_sssp, "sssp answers diverge in {mode:?}");
        assert_eq!(wire_cc, lib_cc, "cc answers diverge in {mode:?}");

        // Evict + rehydrate round trip over the wire: the spilled query
        // must come back with the replayed deltas and the same answer.
        let spill = client.evict(q_sssp).expect("evict");
        assert!(!spill.is_empty());
        let late = mock_delta(11, BASE_VERTICES, 4);
        lib.apply(&late).expect("library late apply");
        client.apply(late).expect("wire late apply");
        let (replayed, _) = client.rehydrate(q_sssp).expect("rehydrate");
        assert_eq!(replayed, 1, "one delta arrived while evicted");
        let lib_sssp2 = json(&QueryAnswer::from_sssp(
            &lib.output(&sssp).expect("lib sssp"),
        ));
        assert_eq!(
            json(&client.output(q_sssp).expect("wire sssp after rehydrate")),
            lib_sssp2,
            "rehydrated answer diverges in {mode:?}"
        );
        let lib_cc2 = json(&QueryAnswer::from_cc(&lib.output(&cc).expect("lib cc")));
        assert_eq!(
            json(&client.try_output(q_cc).expect("wire try_output cc")),
            lib_cc2,
            "try_output diverges in {mode:?}"
        );

        // Second eviction appends an increment to the persisted store;
        // compacting over the wire folds it into a fresh base, and the
        // answer survives unchanged.
        client.evict(q_sssp).expect("second evict");
        assert!(
            client.compact(q_sssp).expect("compact"),
            "an increment chain was there to fold in {mode:?}"
        );
        assert!(
            !client.compact(q_sssp).expect("compact again"),
            "a lone base has nothing to fold"
        );
        assert_eq!(
            json(&client.output(q_sssp).expect("wire sssp after compact")),
            lib_sssp2,
            "compacted answer diverges in {mode:?}"
        );

        let status = client.status().expect("status");
        assert!(
            !status.spill_dir.is_empty(),
            "status names the spill directory"
        );
        assert!(status.compactions >= 1, "the explicit compaction counted");
        assert!(
            status.queries[0].status.spill_bytes > 0,
            "the sssp query's persisted store is visible in status"
        );
        assert_eq!(status.version, 5);
        assert_eq!(status.deltas_applied, 5);
        assert_eq!(status.num_queries, 2);
        assert_eq!(status.num_evicted, 0);
        assert_eq!(status.queries.len(), 2);
        assert_eq!(status.queries[0].spec, QuerySpec::Sssp { source: 0 });
        assert_eq!(status.queries[1].spec, QuerySpec::Cc);
        for row in &status.queries {
            assert_eq!(row.status.version, 5);
            assert_eq!(row.status.updates_applied, 5);
            assert!(!row.status.poisoned);
        }

        let metrics = client.metrics().expect("metrics");
        assert_eq!(metrics.version, 5);
        assert_eq!(metrics.latency_samples, 5, "one latency sample per commit");
        assert_eq!(metrics.latency.samples, 5);
        assert!(metrics.latency.max_ms >= metrics.latency.p50_ms);

        client.shutdown().expect("shutdown");
        handle.wait();
    }
}

#[test]
fn concurrent_clients_serialize_to_one_commit_per_delta() {
    const CLIENTS: usize = 4;
    const DELTAS_PER_CLIENT: usize = 5;

    let handle = GrapedHandle::spawn(daemon_config(EngineMode::Sync)).expect("spawn daemon");
    let addr = handle.addr();
    let mut setup = GrapeClient::connect(addr).expect("connect");
    let q = setup
        .register(QuerySpec::Sssp { source: 0 })
        .expect("register");

    // Each client adds disjoint long-range shortcut edges from vertex 0
    // to non-adjacent grid vertices (10..30).  Vertex ids are dense, so
    // concurrent vertex *adds* would race over the id space — but edge
    // adds between existing vertices are valid under any interleaving.
    let threads: Vec<_> = (0..CLIENTS)
        .map(|c| {
            std::thread::spawn(move || {
                let mut client = GrapeClient::connect(addr).expect("connect");
                for j in 0..DELTAS_PER_CLIENT {
                    let v = 10 + (c * DELTAS_PER_CLIENT + j) as u64;
                    let delta = GraphDelta::new().add_weighted_edge(0, v, 1.0);
                    let applied = client.apply(delta).expect("apply");
                    // Every wire apply is exactly one timeline commit of
                    // exactly one raw delta — no batching, no splitting,
                    // no double application, regardless of interleaving.
                    assert_eq!(applied.reports.len(), 1);
                    assert_eq!(applied.reports[0].deltas, 1);
                    assert!(applied.rejected.is_none());
                }
            })
        })
        .collect();
    for t in threads {
        t.join().expect("client thread");
    }

    let total = CLIENTS * DELTAS_PER_CLIENT;
    let status = setup.status().expect("status");
    assert_eq!(
        status.deltas_applied, total,
        "every ΔG applied exactly once"
    );
    assert_eq!(status.version, total, "exactly one version per ΔG");
    assert_eq!(status.queries[q].status.updates_applied, total);

    // All 20 shortcut targets sit at most one hop off the source: the
    // answer proves every interleaved stream landed.
    let QueryAnswer::Sssp { distances } = setup.output(q).expect("output") else {
        panic!("expected an sssp answer");
    };
    assert_eq!(distances.len(), BASE_VERTICES as usize);
    for v in 10..10 + total as u64 {
        let d = distances
            .iter()
            .find(|&&(vertex, _)| vertex == v)
            .map(|&(_, d)| d)
            .expect("shortcut target reachable");
        assert!(
            d <= 1.0,
            "vertex {v} should be one shortcut hop away, got {d}"
        );
    }

    setup.shutdown().expect("shutdown");
    handle.wait();
}

#[test]
fn mock_daemon_serves_generated_workload_and_stops() {
    let mut config = daemon_config(EngineMode::default_from_env());
    config.mock = Some(MockConfig {
        queries: 2,
        deltas: 3,
        interval_ms: 1,
        seed: 7,
    });
    let handle = GrapedHandle::spawn(config).expect("spawn mock daemon");
    let mut client = GrapeClient::connect(handle.addr()).expect("connect");

    // 2 SSSP sources + the always-added CC query.
    let status = client.status().expect("status");
    assert_eq!(status.num_queries, 3);
    assert_eq!(status.queries[2].spec, QuerySpec::Cc);

    // The finite mock stream drains on its own; wait for it.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let status = client.status().expect("status");
        if status.deltas_applied >= 3 {
            assert_eq!(status.version, 3);
            for row in &status.queries {
                assert_eq!(row.status.updates_applied, 3);
            }
            break;
        }
        assert!(Instant::now() < deadline, "mock stream never drained");
        std::thread::sleep(Duration::from_millis(10));
    }

    // The workload is queryable: the mock deltas attached vertices 36..39.
    let QueryAnswer::Sssp { distances } = client.output(0).expect("output") else {
        panic!("expected an sssp answer");
    };
    assert_eq!(distances.len(), BASE_VERTICES as usize + 3);

    client.shutdown().expect("shutdown");
    handle.wait();
}

#[test]
fn concurrent_watchers_get_identical_streams_that_replay_to_the_answer() {
    const WATCHERS: usize = 3;
    for mode in [EngineMode::Sync, EngineMode::Async] {
        let handle = GrapedHandle::spawn(daemon_config(mode)).expect("spawn daemon");
        let addr = handle.addr();
        let mut driver = GrapeClient::connect(addr).expect("connect driver");
        let q_sssp = driver
            .register(QuerySpec::Sssp { source: 0 })
            .expect("register sssp");
        let q_cc = driver.register(QuerySpec::Cc).expect("register cc");
        let base_sssp = driver.output(q_sssp).expect("baseline sssp");
        let base_cc = driver.output(q_cc).expect("baseline cc");

        // All watchers subscribe to both queries before any delta flows,
        // so every stream starts from the same baseline.
        let mut watchers: Vec<(GrapeClient, usize, usize)> = (0..WATCHERS)
            .map(|_| {
                let mut c = GrapeClient::connect(addr).expect("connect watcher");
                let s_sssp = c.subscribe(q_sssp).expect("subscribe sssp");
                let s_cc = c.subscribe(q_cc).expect("subscribe cc");
                (c, s_sssp, s_cc)
            })
            .collect();

        // Drive: two commits with everything resident, evict the SSSP
        // query, two commits while it is cold, rehydrate (its watchers
        // get one compacted delta covering both cold commits).
        for i in 0..2 {
            driver
                .apply(mock_delta(23, BASE_VERTICES, i))
                .expect("apply");
        }
        driver.evict(q_sssp).expect("evict");
        for i in 2..4 {
            driver
                .apply(mock_delta(23, BASE_VERTICES, i))
                .expect("apply");
        }
        driver.rehydrate(q_sssp).expect("rehydrate");
        let final_version = driver.status().expect("status").version;
        let fin_sssp = driver.output(q_sssp).expect("final sssp");
        let fin_cc = driver.output(q_cc).expect("final cc");

        // Each watcher drains its stream until both subscriptions have
        // caught up to the final version.
        let mut streams: Vec<Vec<(usize, usize, OutputEvent)>> = Vec::new();
        for (c, s_sssp, s_cc) in &mut watchers {
            let mut events = Vec::new();
            let (mut done_sssp, mut done_cc) = (false, false);
            while !(done_sssp && done_cc) {
                let e = c.next_event().expect("event");
                if e.version == final_version {
                    done_sssp |= e.subscription == *s_sssp;
                    done_cc |= e.subscription == *s_cc;
                }
                events.push((e.query, e.version, e.event));
            }
            streams.push(events);
        }

        // Identical streams for every watcher (subscription ids differ,
        // the (query, version, event) sequence must not).
        for (w, stream) in streams.iter().enumerate().skip(1) {
            assert_eq!(
                stream, &streams[0],
                "watcher {w} saw a different stream in {mode:?}"
            );
        }

        // Replaying the deltas over the baseline reproduces the final
        // answers byte-for-byte — the equivalence pin, over real TCP.
        let mut replay_sssp = answer_rows(&base_sssp);
        let mut replay_cc = answer_rows(&base_cc);
        for (query, _, event) in &streams[0] {
            let OutputEvent::Delta(delta) = event else {
                panic!("healthy queries must never push a poison event");
            };
            if *query == q_sssp {
                delta.apply_to(&mut replay_sssp);
            } else {
                delta.apply_to(&mut replay_cc);
            }
        }
        let bytes = |rows: &Vec<(Value, Value)>| serde_json::to_string(rows).expect("rows");
        assert_eq!(
            bytes(&replay_sssp),
            bytes(&answer_rows(&fin_sssp)),
            "sssp replay diverges in {mode:?}"
        );
        assert_eq!(
            bytes(&replay_cc),
            bytes(&answer_rows(&fin_cc)),
            "cc replay diverges in {mode:?}"
        );

        // Unsubscribe works over the wire; a second unsubscribe of the
        // same id is the typed UnknownSubscription error.
        let (c, s_sssp, s_cc) = &mut watchers[0];
        c.unsubscribe(*s_sssp).expect("unsubscribe");
        c.unsubscribe(*s_cc).expect("unsubscribe");
        match c.unsubscribe(*s_sssp) {
            Err(ClientError::Remote { kind, .. }) => {
                assert_eq!(kind, ErrorKind::UnknownSubscription)
            }
            other => panic!("expected UnknownSubscription, got {other:?}"),
        }

        driver.shutdown().expect("shutdown");
        handle.wait();
    }
}

#[test]
fn dropped_connection_mid_call_names_the_op() {
    // A fake daemon that accepts, reads the request, then hangs up
    // without replying — the failure `grapectl` used to report as a bare
    // nonzero exit.
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let fake = std::thread::spawn(move || {
        let (stream, _) = listener.accept().expect("accept");
        let mut reader = std::io::BufReader::new(stream);
        let _ = protocol::read_frame(&mut reader);
        // Dropping the stream here closes the connection mid-call.
    });

    let mut client = GrapeClient::connect(addr).expect("connect");
    let err = client.status().expect_err("the daemon hung up");
    assert!(
        matches!(err, ClientError::MidCall { op: "status", .. }),
        "expected MidCall naming the op, got {err:?}"
    );
    let msg = err.to_string();
    assert!(msg.contains("`status`"), "must name the op: {msg}");
    assert!(
        msg.contains("mid-call"),
        "must say the connection died mid-call: {msg}"
    );
    fake.join().expect("fake daemon");
}

#[test]
fn protocol_errors_are_replies_not_disconnects() {
    let handle = GrapedHandle::spawn(daemon_config(EngineMode::Sync)).expect("spawn daemon");
    let mut client = GrapeClient::connect(handle.addr()).expect("connect");

    // Unknown handle: typed error, connection stays up.
    match client.output(99) {
        Err(ClientError::Remote { kind, .. }) => assert_eq!(kind, ErrorKind::UnknownHandle),
        other => panic!("expected UnknownHandle, got {other:?}"),
    }

    // Double evict: NotResident.
    let q = client
        .register(QuerySpec::Sssp { source: 0 })
        .expect("register");
    client.evict(q).expect("first evict");
    match client.evict(q) {
        Err(ClientError::Remote { kind, .. }) => assert_eq!(kind, ErrorKind::NotResident),
        other => panic!("expected NotResident, got {other:?}"),
    }
    // try_output on an evicted query never does the rehydration work.
    match client.try_output(q) {
        Err(ClientError::Remote { kind, .. }) => assert_eq!(kind, ErrorKind::NotResident),
        other => panic!("expected NotResident, got {other:?}"),
    }
    // output rehydrates lazily and still answers.
    assert!(matches!(
        client.output(q).expect("lazy rehydrate"),
        QueryAnswer::Sssp { .. }
    ));

    // A well-framed but invalid payload gets a BadRequest reply and the
    // connection keeps serving; raw frames to prove it end to end.
    {
        use std::io::{BufReader, BufWriter};
        let stream = std::net::TcpStream::connect(handle.addr()).expect("raw connect");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut writer = BufWriter::new(stream);
        protocol::write_frame(&mut writer, "{\"id\":5,\"op\":\"frobnicate\"}").expect("write");
        let reply: Response = protocol::recv(&mut reader).expect("recv").expect("reply");
        assert!(matches!(
            reply.body,
            ResponseBody::Error {
                kind: ErrorKind::BadRequest,
                ..
            }
        ));
        protocol::send(
            &mut writer,
            &Request {
                id: 6,
                body: RequestBody::Status,
            },
        )
        .expect("send status");
        let reply: Response = protocol::recv(&mut reader).expect("recv").expect("reply");
        assert_eq!(reply.id, 6);
        assert!(matches!(reply.body, ResponseBody::Status(_)));
    }

    client.shutdown().expect("shutdown");
    handle.wait();
}

/// Live `grape-worker` children of this process, via /proc (Linux CI;
/// elsewhere the scan degrades to "none found").
fn worker_children() -> Vec<u32> {
    let me = std::process::id();
    let mut found = Vec::new();
    let Ok(entries) = std::fs::read_dir("/proc") else {
        return found;
    };
    for e in entries.flatten() {
        let name = e.file_name();
        let Some(pid) = name.to_str().and_then(|s| s.parse::<u32>().ok()) else {
            continue;
        };
        let Ok(stat) = std::fs::read_to_string(format!("/proc/{pid}/stat")) else {
            continue;
        };
        let (Some(open), Some(close)) = (stat.find('('), stat.rfind(')')) else {
            continue;
        };
        let comm = &stat[open + 1..close];
        let ppid: u32 = stat[close + 1..]
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or(0);
        if comm == "grape-worker" && ppid == me {
            found.push(pid);
        }
    }
    found
}

/// The serving stack on subprocess shards (`graped --transport process`):
/// wire answers match a default-transport daemon byte-for-byte through a
/// register → apply → output lifecycle, and shutting the daemon down
/// leaves no orphaned `grape-worker` processes behind.
#[test]
fn process_transport_daemon_serves_and_reaps_its_workers() {
    if grape_core::worker_proto::locate_worker_binary().is_none() {
        eprintln!(
            "skipping process-transport daemon e2e: grape-worker binary not \
             built (run `cargo build -p grape-daemon --bins` first)"
        );
        return;
    }
    let mode = EngineMode::default_from_env();
    let deltas: Vec<GraphDelta> = (0..3).map(|i| mock_delta(11, BASE_VERTICES, i)).collect();

    let run = |transport: Option<grape_core::TransportSpec>| -> (String, String) {
        let mut config = daemon_config(mode);
        config.transport = transport;
        let handle = GrapedHandle::spawn(config).expect("spawn daemon");
        let mut client = GrapeClient::connect(handle.addr()).expect("connect");
        let q_sssp = client
            .register(QuerySpec::Sssp { source: 0 })
            .expect("register sssp");
        let q_cc = client.register(QuerySpec::Cc).expect("register cc");
        for delta in &deltas {
            client.apply(delta.clone()).expect("apply");
        }
        let sssp = json(&client.output(q_sssp).expect("sssp answer"));
        let cc = json(&client.output(q_cc).expect("cc answer"));
        client.shutdown().expect("shutdown");
        handle.wait();
        (sssp, cc)
    };

    let baseline = run(None);
    let sharded = run(Some(grape_core::TransportSpec::Process { workers: 2 }));
    assert_eq!(
        sharded, baseline,
        "({mode:?}) subprocess-sharded daemon answers diverge from in-process"
    );
    assert_eq!(
        worker_children(),
        Vec::<u32>::new(),
        "({mode:?}) daemon shutdown left orphaned grape-worker processes"
    );
}
