//! Satellite: wire-protocol round-trips.
//!
//! Every request and response variant must survive serialize → frame →
//! read → deserialize unchanged (including error frames), and the frame
//! reader must reject malformed input the same way the binary snapshot
//! readers' `ensure_fully_consumed` discipline does: nothing before, after,
//! or inside a frame may be silently ignored.

use std::io::Cursor;

use grape_core::metrics::LatencySummary;
use grape_core::output_delta::{OutputEvent, WireOutputDelta};
use grape_core::serve::QueryStatus;
use grape_core::spec::QuerySpec;
use grape_daemon::protocol::{
    self, ApplySummary, ErrorKind, EventFrame, MetricsInfo, QueryAnswer, QueryRow, RejectedDelta,
    Request, RequestBody, Response, ResponseBody, ServerFrame, StatusInfo, WireError,
    MAX_FRAME_BYTES,
};
use grape_graph::delta::GraphDelta;
use serde::{Serialize, Value};

fn roundtrip_request(body: RequestBody) {
    let request = Request { id: 42, body };
    let json = serde_json::to_string(&request).expect("serialize");
    let back: Request = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(back, request, "request did not round-trip: {json}");
}

fn roundtrip_response(body: ResponseBody) {
    let response = Response { id: 7, body };
    let json = serde_json::to_string(&response).expect("serialize");
    let back: Response = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(back, response, "response did not round-trip: {json}");
}

fn sample_delta() -> GraphDelta {
    GraphDelta::new()
        .add_vertex(9, 3)
        .add_weighted_edge(0, 9, 2.5)
        .remove_edge(1, 2)
        .remove_vertex(4)
}

fn sample_status() -> QueryStatus {
    QueryStatus {
        query: 1,
        version: 5,
        evicted: true,
        poisoned: false,
        updates_applied: 5,
        incremental_updates: 4,
        bounded_updates: 1,
        partial_bytes: 0,
        watchers: 0,
        spill_chain: 2,
        spill_bytes: 4096,
        compactions: 1,
    }
}

fn sample_summary() -> ApplySummary {
    ApplySummary {
        version: 3,
        deltas: 2,
        rebuilt: vec![0, 2],
        reused: 6,
        refreshed: vec![0, 1],
        failed: vec![2],
        peval_calls: 1,
        caught_up: vec![1],
        deferred: vec![3],
        poisoned: vec![4],
        evicted: vec![5],
        compacted: vec![5],
    }
}

#[test]
fn every_request_variant_round_trips() {
    roundtrip_request(RequestBody::Status);
    roundtrip_request(RequestBody::Metrics { samples: false });
    roundtrip_request(RequestBody::Metrics { samples: true });
    roundtrip_request(RequestBody::Register {
        spec: QuerySpec::Sssp { source: 3 },
    });
    roundtrip_request(RequestBody::Register {
        spec: QuerySpec::Cc,
    });
    roundtrip_request(RequestBody::Apply {
        delta: sample_delta(),
    });
    roundtrip_request(RequestBody::ApplyBatch {
        deltas: vec![sample_delta(), GraphDelta::new()],
    });
    roundtrip_request(RequestBody::Output { query: 0 });
    roundtrip_request(RequestBody::TryOutput { query: 1 });
    roundtrip_request(RequestBody::Evict { query: 2 });
    roundtrip_request(RequestBody::Rehydrate { query: 3 });
    roundtrip_request(RequestBody::Compact { query: 3 });
    roundtrip_request(RequestBody::Subscribe { query: 4 });
    roundtrip_request(RequestBody::Unsubscribe { subscription: 2 });
    roundtrip_request(RequestBody::Shutdown);
}

#[test]
fn metrics_without_the_flag_still_parses_as_a_request() {
    // Pre-flag clients send `{"id":N,"op":"metrics"}`; absent means the
    // cheap summary-only reply.
    let mut wire = Vec::new();
    protocol::write_frame(&mut wire, "{\"id\":1,\"op\":\"metrics\"}").unwrap();
    let mut reader = Cursor::new(wire);
    let request: Request = protocol::recv(&mut reader).unwrap().expect("frame");
    assert_eq!(request.body, RequestBody::Metrics { samples: false });
}

#[test]
fn pre_tiering_status_frames_still_parse() {
    // A status reply from a daemon built before the tiered spill store
    // carries neither the spill fields on the query rows nor the
    // spill_dir/compactions on the summary line; they all default.
    let json = "{\"id\":7,\"reply\":\"status\",\"status\":{\
        \"version\":1,\"deltas_applied\":1,\"retained_versions\":1,\
        \"num_queries\":1,\"num_evicted\":0,\"resident_partial_bytes\":10,\
        \"queries\":[{\"spec\":{\"query\":\"cc\"},\"status\":{\
            \"query\":0,\"version\":1,\"evicted\":false,\"poisoned\":false,\
            \"updates_applied\":1,\"incremental_updates\":1,\
            \"bounded_updates\":0,\"partial_bytes\":10,\"watchers\":0}}]}}";
    let back: Response = serde_json::from_str(json).expect("deserialize");
    let ResponseBody::Status(info) = back.body else {
        panic!("expected a status reply");
    };
    assert_eq!(info.spill_dir, "");
    assert_eq!(info.compactions, 0);
    assert_eq!(info.queries[0].status.spill_chain, 0);
    assert_eq!(info.queries[0].status.spill_bytes, 0);
    assert_eq!(info.queries[0].status.compactions, 0);
}

#[test]
fn every_response_variant_round_trips() {
    roundtrip_response(ResponseBody::Registered {
        query: 2,
        spec: QuerySpec::Sssp { source: 3 },
    });
    roundtrip_response(ResponseBody::Applied {
        reports: vec![sample_summary()],
        rejected: None,
    });
    roundtrip_response(ResponseBody::Applied {
        reports: vec![],
        rejected: Some(RejectedDelta {
            index: 1,
            reason: "cannot add vertex 9: id already exists".to_string(),
        }),
    });
    roundtrip_response(ResponseBody::Answer {
        query: 0,
        answer: QueryAnswer::Sssp {
            distances: vec![(0, 0.0), (1, 1.5), (7, 42.25)],
        },
    });
    roundtrip_response(ResponseBody::Answer {
        query: 1,
        answer: QueryAnswer::Cc {
            components: vec![(0, 0), (1, 0), (2, 2)],
        },
    });
    roundtrip_response(ResponseBody::Evicted {
        query: 3,
        spill: "/tmp/spill/q3".to_string(),
    });
    roundtrip_response(ResponseBody::Rehydrated {
        query: 3,
        replayed: 4,
        peval_calls: 0,
    });
    roundtrip_response(ResponseBody::Compacted {
        query: 3,
        folded: true,
    });
    roundtrip_response(ResponseBody::Compacted {
        query: 0,
        folded: false,
    });
    roundtrip_response(ResponseBody::Status(StatusInfo {
        version: 5,
        deltas_applied: 9,
        retained_versions: 6,
        num_queries: 2,
        num_evicted: 1,
        resident_partial_bytes: 1024,
        spill_dir: "/tmp/grape-spill".to_string(),
        compactions: 2,
        queries: vec![
            QueryRow {
                spec: QuerySpec::Cc,
                status: sample_status(),
            },
            QueryRow {
                spec: QuerySpec::Sssp { source: 0 },
                status: QueryStatus {
                    evicted: false,
                    partial_bytes: 1024,
                    ..sample_status()
                },
            },
        ],
    }));
    roundtrip_response(ResponseBody::Metrics(MetricsInfo {
        uptime_ms: 12345,
        version: 5,
        deltas_applied: 9,
        latency: LatencySummary {
            samples: 9,
            mean_ms: 1.25,
            p50_ms: 1.0,
            p99_ms: 3.5,
            max_ms: 3.5,
        },
        latency_samples: 9,
        samples: None,
        resident_partial_bytes: 1024,
        compactions: 0,
        queries: vec![],
    }));
    roundtrip_response(ResponseBody::Metrics(MetricsInfo {
        uptime_ms: 12345,
        version: 5,
        deltas_applied: 9,
        latency: LatencySummary {
            samples: 3,
            mean_ms: 1.25,
            p50_ms: 1.0,
            p99_ms: 3.5,
            max_ms: 3.5,
        },
        latency_samples: 3,
        samples: Some(vec![0.5, 1.0, 3.5]),
        resident_partial_bytes: 1024,
        compactions: 7,
        queries: vec![],
    }));
    roundtrip_response(ResponseBody::Subscribed {
        query: 1,
        subscription: 3,
    });
    roundtrip_response(ResponseBody::Unsubscribed { subscription: 3 });
    roundtrip_response(ResponseBody::ShuttingDown);
}

#[test]
fn every_error_kind_round_trips_as_an_error_frame() {
    for kind in [
        ErrorKind::BadRequest,
        ErrorKind::UnknownHandle,
        ErrorKind::UnknownSubscription,
        ErrorKind::Poisoned,
        ErrorKind::RejectedDelta,
        ErrorKind::NotResident,
        ErrorKind::Snapshot,
        ErrorKind::Engine,
        ErrorKind::ShuttingDown,
    ] {
        roundtrip_response(ResponseBody::Error {
            kind,
            message: format!("synthetic {kind:?}"),
        });
    }
}

fn sample_event_delta() -> EventFrame {
    EventFrame {
        subscription: 2,
        query: 1,
        version: 6,
        event: OutputEvent::Delta(WireOutputDelta {
            changed: vec![(3u64.to_value(), 1.5f64.to_value())],
            removed: vec![9u64.to_value()],
        }),
    }
}

#[test]
fn server_frames_round_trip_and_discriminate() {
    // A pushed delta event survives the wire.
    let event = ServerFrame::Event(sample_event_delta());
    let json = serde_json::to_string(&event).expect("serialize");
    let back: ServerFrame = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(back, event, "{json}");
    // The event tag is what clients discriminate on.
    let value: Value = serde_json::from_str(&json).expect("value");
    assert!(value.get_field("event").is_some(), "{json}");

    // The terminal poison notice.
    let poisoned = ServerFrame::Event(EventFrame {
        subscription: 0,
        query: 0,
        version: 9,
        event: OutputEvent::Poisoned,
    });
    let json = serde_json::to_string(&poisoned).expect("serialize");
    let back: ServerFrame = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(back, poisoned, "{json}");

    // A reply read through the ServerFrame lens stays a reply.
    let reply = ServerFrame::Reply(Response {
        id: 5,
        body: ResponseBody::ShuttingDown,
    });
    let json = serde_json::to_string(&reply).expect("serialize");
    let back: ServerFrame = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(back, reply, "{json}");
}

#[test]
fn framed_send_recv_round_trips_over_a_byte_stream() {
    let mut wire = Vec::new();
    let ping = Request {
        id: 1,
        body: RequestBody::Status,
    };
    let apply = Request {
        id: 2,
        body: RequestBody::Apply {
            delta: sample_delta(),
        },
    };
    protocol::send(&mut wire, &ping).unwrap();
    protocol::send(&mut wire, &apply).unwrap();

    let mut reader = Cursor::new(wire);
    let first: Request = protocol::recv(&mut reader).unwrap().expect("first frame");
    let second: Request = protocol::recv(&mut reader).unwrap().expect("second frame");
    assert_eq!(first, ping);
    assert_eq!(second, apply);
    // Clean EOF after the last complete frame is not an error.
    assert!(protocol::recv::<_, Request>(&mut reader).unwrap().is_none());
}

fn expect_frame_error(bytes: &[u8], needle: &str) {
    let mut reader = Cursor::new(bytes.to_vec());
    match protocol::read_frame(&mut reader) {
        Err(WireError::Frame(m)) => {
            assert!(
                m.contains(needle),
                "error {m:?} does not mention {needle:?}"
            )
        }
        other => panic!("expected a Frame error mentioning {needle:?}, got {other:?}"),
    }
}

#[test]
fn malformed_frames_are_rejected() {
    // A length line that is not a number.
    expect_frame_error(b"abc\n{}\n", "bad frame length line");
    // A declared length above the allocation cap.
    expect_frame_error(format!("{}\n", MAX_FRAME_BYTES + 1).as_bytes(), "cap");
    // EOF in the middle of a declared payload.
    expect_frame_error(b"100\n{\"id\":1}", "truncated");
    // A payload longer than its declared length: the byte where the
    // terminating newline must sit is still payload.
    expect_frame_error(b"3\n{\"id\":1,\"op\":\"status\"}\n", "overruns");
    // A payload that is not UTF-8.
    expect_frame_error(b"2\n\xff\xfe\n", "UTF-8");
}

#[test]
fn trailing_garbage_inside_a_well_framed_payload_is_rejected() {
    // The frame is valid; the JSON value ends early.  The parser must not
    // silently ignore the garbage after it (ensure_fully_consumed on the
    // wire).
    let payload = "{\"id\":1,\"op\":\"status\"} trailing";
    let mut wire = Vec::new();
    protocol::write_frame(&mut wire, payload).unwrap();
    let mut reader = Cursor::new(wire);
    match protocol::recv::<_, Request>(&mut reader) {
        Err(WireError::Json(_)) => {}
        other => panic!("expected a Json error for trailing garbage, got {other:?}"),
    }
}

#[test]
fn unknown_tags_and_missing_fields_are_json_errors() {
    for payload in [
        "{\"id\":1,\"op\":\"frobnicate\"}", // unknown op
        "{\"id\":1}",                       // missing op
        "{\"op\":\"status\"}",              // missing id
        "{\"id\":1,\"op\":\"output\"}",     // missing query field
        "{\"id\":1,\"op\":\"register\",\"spec\":{\"query\":\"pagerank\"}}", // unknown spec
    ] {
        let mut wire = Vec::new();
        protocol::write_frame(&mut wire, payload).unwrap();
        let mut reader = Cursor::new(wire);
        match protocol::recv::<_, Request>(&mut reader) {
            Err(WireError::Json(_)) => {}
            other => panic!("payload {payload:?}: expected Json error, got {other:?}"),
        }
    }
}

#[test]
fn answers_serialize_in_canonical_sorted_order() {
    // from_sssp / from_cc sort by vertex id, so two servers producing the
    // same answer produce byte-identical frames — the property the e2e
    // equality test leans on.
    let a = QueryAnswer::Sssp {
        distances: vec![(0, 0.0), (1, 2.0)],
    };
    let json = serde_json::to_string(&ResponseBody::Answer {
        query: 0,
        answer: a,
    })
    .unwrap();
    assert_eq!(
        json,
        "{\"reply\":\"answer\",\"query\":0,\"answer\":{\"kind\":\"sssp\",\"distances\":[[0,0.0],[1,2.0]]}}"
    );
}
