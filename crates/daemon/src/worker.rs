//! The `grape-worker` subprocess body: the program registry behind the
//! [`grape_core::transport::TransportSpec::Process`] transport.
//!
//! The engine side ([`grape_core::worker_proto`]) is program-generic — it
//! ships the program's *name* in the init frame and leaves instantiation to
//! the worker binary.  This module owns that dispatch: it maps the wire
//! name to a concrete PIE program from `grape-algorithms` and hands the
//! pipe to [`grape_core::worker_proto::serve_program`], which runs
//! PEval/IncEval against the fragments this worker owns until the parent
//! closes the pipe.

use std::io::{BufRead, Write};

use grape_algorithms::{Cc, Cf, Sim, Sssp, SubIso};
use grape_core::worker_proto::{read_frame, serve_program};
use serde::Value;

/// Wire names this worker can serve, in registry order.
pub const KNOWN_PROGRAMS: &[&str] = &["sssp", "cc", "sim", "sim-optimized", "subiso", "cf"];

/// Reads the init handshake from `input`, instantiates the named program
/// and serves evaluation requests until end of stream.
///
/// Errors are transport-level (malformed handshake, unknown program,
/// broken pipe); the caller should print them to stderr and exit non-zero
/// so the parent engine sees the dead pipe and fails the run.
pub fn run(input: &mut dyn BufRead, output: &mut dyn Write) -> Result<(), String> {
    let Some(payload) = read_frame(input)? else {
        return Ok(()); // parent died before the handshake: nothing to do
    };
    let init: Value =
        serde_json::from_str(&payload).map_err(|e| format!("malformed init frame: {e}"))?;
    let name = init
        .get_field("program")
        .and_then(Value::as_str)
        .ok_or_else(|| "init frame is missing field `program`".to_string())?;
    match name {
        "sssp" => serve_program(&Sssp, &init, input, output),
        "cc" => serve_program(&Cc, &init, input, output),
        "sim" => serve_program(&Sim::new(), &init, input, output),
        "sim-optimized" => serve_program(&Sim::with_index(), &init, input, output),
        "subiso" => serve_program(&SubIso, &init, input, output),
        "cf" => serve_program(&Cf, &init, input, output),
        other => Err(format!(
            "unknown program {other:?} (this worker serves: {})",
            KNOWN_PROGRAMS.join(", ")
        )),
    }
}

#[cfg(test)]
mod tests {
    use std::io::BufReader;

    use grape_core::worker_proto::write_value_frame;

    use super::*;

    fn run_over(frames: &[Value]) -> Result<Vec<u8>, String> {
        let mut wire = Vec::new();
        for frame in frames {
            write_value_frame(&mut wire, frame).unwrap();
        }
        let mut input = BufReader::new(&wire[..]);
        let mut output = Vec::new();
        run(&mut input, &mut output).map(|()| output)
    }

    #[test]
    fn empty_stream_is_an_orderly_shutdown() {
        assert!(run_over(&[]).unwrap().is_empty());
    }

    #[test]
    fn unknown_program_is_rejected() {
        let init = Value::Map(vec![(
            "program".to_string(),
            Value::Str("pagerank".to_string()),
        )]);
        let err = run_over(&[init]).unwrap_err();
        assert!(err.contains("unknown program"), "{err}");
        assert!(err.contains("sssp"), "{err}");
    }

    #[test]
    fn missing_program_field_is_rejected() {
        let err = run_over(&[Value::Map(Vec::new())]).unwrap_err();
        assert!(err.contains("missing field `program`"), "{err}");
    }
}
