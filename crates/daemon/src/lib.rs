//! # grape-daemon
//!
//! The network front door for [`grape_core::serve::GrapeServer`]: a
//! long-running process (`graped`) that clients connect to over TCP, and
//! the matching CLI (`grapectl`).
//!
//! The engine multiplexes K prepared queries over one delta stream — but
//! only in-process.  This crate turns that library into a service:
//!
//! * [`protocol`] — length-delimited JSON frames with request ids; every
//!   request/response is a tagged map (see the module docs for the exact
//!   framing rules and error taxonomy),
//! * [`server`] — the daemon: a `std::net::TcpListener` accept loop,
//!   thread-per-connection readers, and **one engine thread** owning the
//!   `GrapeServer`.  Socket threads funnel every request through a command
//!   channel into that thread, so the one-`apply_delta`-per-`ΔG` invariant
//!   survives any number of concurrent clients by construction,
//! * [`client`] — the typed client (`GrapeClient`) `grapectl` and the e2e
//!   tests are built on,
//! * [`mock`] — `graped --mock`: a synthetic grid workload with standing
//!   SSSP/CC queries and a generated insert-only delta stream, for demos
//!   and e2e tests,
//! * [`worker`] — the `grape-worker` subprocess body: the program registry
//!   behind `TransportSpec::Process` (the engine ships fragments to these
//!   workers over stdin/stdout pipes),
//! * [`cli`] / [`mod@format`] — `grapectl` argument parsing and `text`/`json`
//!   rendering.
//!
//! No async runtime: the shim world is offline, so the daemon is plain
//! threads + blocking sockets, which is also exactly the concurrency story
//! the serving layer wants (all applies serialize anyway).

pub mod cli;
pub mod client;
pub mod format;
pub mod mock;
pub mod protocol;
pub mod server;
pub mod worker;

pub use client::{ClientError, GrapeClient};
pub use mock::MockConfig;
pub use protocol::{Request, RequestBody, Response, ResponseBody};
pub use server::{DaemonConfig, DaemonError, GrapedHandle, GraphSource};
