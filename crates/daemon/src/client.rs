//! The typed client `grapectl` (and the e2e tests) drive the daemon with.
//!
//! One blocking TCP connection, one request in flight at a time: `call`
//! stamps a fresh id, writes the frame, reads frames until the echoed id
//! matches.  Server-pushed [`EventFrame`]s may interleave with replies on
//! a subscribed connection; `call` buffers them for [`GrapeClient::
//! next_event`] instead of treating them as protocol violations.  A
//! mismatched reply id *is* a protocol violation, not something to skip
//! past.  In-protocol failures ([`ResponseBody::Error`]) surface as
//! [`ClientError::Remote`] so callers can match on the taxonomy.

use std::collections::VecDeque;
use std::io::{BufReader, BufWriter};
use std::net::{TcpStream, ToSocketAddrs};

use grape_core::spec::QuerySpec;
use grape_graph::delta::GraphDelta;

use crate::protocol::{
    self, ErrorKind, EventFrame, MetricsInfo, QueryAnswer, RejectedDelta, Request, RequestBody,
    ResponseBody, ServerFrame, StatusInfo, WireError,
};

/// A failure on the client side of the wire.
#[derive(Debug)]
pub enum ClientError {
    /// Connecting, framing or (de)serialization failed outside a call.
    Wire(WireError),
    /// The connection failed while a specific operation was in flight —
    /// names the op so `grapectl` can say *what* it was doing when the
    /// daemon went away instead of exiting nonzero-but-quiet.
    MidCall {
        /// The wire op that was in flight.
        op: &'static str,
        /// What actually went wrong (framing error, EOF, ...).
        detail: String,
    },
    /// The daemon replied with an in-protocol error.
    Remote {
        /// The error taxonomy entry.
        kind: ErrorKind,
        /// The daemon's message.
        message: String,
    },
    /// The daemon replied with something other than the expected variant.
    Protocol(String),
}

impl ClientError {
    fn mid_call(op: &'static str, detail: impl Into<String>) -> ClientError {
        ClientError::MidCall {
            op,
            detail: detail.into(),
        }
    }
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Wire(e) => write!(f, "{e}"),
            ClientError::MidCall { op, detail } => {
                write!(f, "connection failed mid-call during `{op}`: {detail}")
            }
            ClientError::Remote { kind, message } => {
                write!(f, "daemon error ({kind:?}): {message}")
            }
            ClientError::Protocol(m) => write!(f, "protocol violation: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        ClientError::Wire(e)
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Wire(WireError::Io(e))
    }
}

/// The result of an `apply` / `apply_batch` call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AppliedBatch {
    /// One summary per commit, in stream order.
    pub reports: Vec<protocol::ApplySummary>,
    /// The rejection that stopped a batch, if any.
    pub rejected: Option<RejectedDelta>,
}

/// A blocking client over one TCP connection to a `graped`.
pub struct GrapeClient {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    next_id: u64,
    /// Events pushed by the daemon that arrived while a reply was being
    /// awaited; drained by [`GrapeClient::next_event`] in arrival order.
    events: VecDeque<EventFrame>,
}

/// The wire name of a request's op — what `MidCall` reports.
fn op_name(body: &RequestBody) -> &'static str {
    match body {
        RequestBody::Status => "status",
        RequestBody::Metrics { .. } => "metrics",
        RequestBody::Register { .. } => "register",
        RequestBody::Apply { .. } => "apply",
        RequestBody::ApplyBatch { .. } => "apply_batch",
        RequestBody::Output { .. } => "output",
        RequestBody::TryOutput { .. } => "try_output",
        RequestBody::Evict { .. } => "evict",
        RequestBody::Rehydrate { .. } => "rehydrate",
        RequestBody::Compact { .. } => "compact",
        RequestBody::Subscribe { .. } => "subscribe",
        RequestBody::Unsubscribe { .. } => "unsubscribe",
        RequestBody::Shutdown => "shutdown",
    }
}

impl GrapeClient {
    /// Connects to a daemon.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<Self, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let read_half = stream.try_clone()?;
        Ok(GrapeClient {
            reader: BufReader::new(read_half),
            writer: BufWriter::new(stream),
            next_id: 1,
            events: VecDeque::new(),
        })
    }

    /// Reads the next server frame, naming `op` if the connection fails.
    fn recv_frame(&mut self, op: &'static str) -> Result<ServerFrame, ClientError> {
        match protocol::recv(&mut self.reader) {
            Ok(Some(frame)) => Ok(frame),
            Ok(None) => Err(ClientError::mid_call(
                op,
                "connection closed before the reply",
            )),
            Err(e) => Err(ClientError::mid_call(op, e.to_string())),
        }
    }

    /// Sends one request and reads its reply (matching ids), buffering any
    /// pushed events that arrive in between.  Error replies pass through
    /// as `Ok(ResponseBody::Error { .. })`; the typed methods turn them
    /// into [`ClientError::Remote`].
    pub fn call(&mut self, body: RequestBody) -> Result<ResponseBody, ClientError> {
        let op = op_name(&body);
        let id = self.next_id;
        self.next_id += 1;
        protocol::send(&mut self.writer, &Request { id, body })
            .map_err(|e| ClientError::mid_call(op, e.to_string()))?;
        loop {
            match self.recv_frame(op)? {
                ServerFrame::Event(event) => self.events.push_back(event),
                ServerFrame::Reply(response) => {
                    if response.id != id && response.id != 0 {
                        return Err(ClientError::Protocol(format!(
                            "reply id {} does not match request id {id}",
                            response.id
                        )));
                    }
                    return Ok(response.body);
                }
            }
        }
    }

    fn call_ok(&mut self, body: RequestBody) -> Result<ResponseBody, ClientError> {
        match self.call(body)? {
            ResponseBody::Error { kind, message } => Err(ClientError::Remote { kind, message }),
            other => Ok(other),
        }
    }

    /// `status`.
    pub fn status(&mut self) -> Result<StatusInfo, ClientError> {
        match self.call_ok(RequestBody::Status)? {
            ResponseBody::Status(info) => Ok(info),
            other => Err(unexpected("status", &other)),
        }
    }

    /// `metrics` — the cheap reply: summary only, no raw sample vector.
    pub fn metrics(&mut self) -> Result<MetricsInfo, ClientError> {
        self.metrics_opt(false)
    }

    /// `metrics` with the raw per-commit latency samples included
    /// (`grapectl metrics --samples`).
    pub fn metrics_with_samples(&mut self) -> Result<MetricsInfo, ClientError> {
        self.metrics_opt(true)
    }

    fn metrics_opt(&mut self, samples: bool) -> Result<MetricsInfo, ClientError> {
        match self.call_ok(RequestBody::Metrics { samples })? {
            ResponseBody::Metrics(info) => Ok(info),
            other => Err(unexpected("metrics", &other)),
        }
    }

    /// Registers a standing query; returns its handle id.
    pub fn register(&mut self, spec: QuerySpec) -> Result<usize, ClientError> {
        match self.call_ok(RequestBody::Register { spec })? {
            ResponseBody::Registered { query, .. } => Ok(query),
            other => Err(unexpected("registered", &other)),
        }
    }

    /// Applies one delta.
    pub fn apply(&mut self, delta: GraphDelta) -> Result<AppliedBatch, ClientError> {
        match self.call_ok(RequestBody::Apply { delta })? {
            ResponseBody::Applied { reports, rejected } => Ok(AppliedBatch { reports, rejected }),
            other => Err(unexpected("applied", &other)),
        }
    }

    /// Applies a delta stream through the pipelined batch path.
    pub fn apply_batch(&mut self, deltas: Vec<GraphDelta>) -> Result<AppliedBatch, ClientError> {
        match self.call_ok(RequestBody::ApplyBatch { deltas })? {
            ResponseBody::Applied { reports, rejected } => Ok(AppliedBatch { reports, rejected }),
            other => Err(unexpected("applied", &other)),
        }
    }

    /// Assembles a query's answer (lazily rehydrating server-side).
    pub fn output(&mut self, query: usize) -> Result<QueryAnswer, ClientError> {
        match self.call_ok(RequestBody::Output { query })? {
            ResponseBody::Answer { answer, .. } => Ok(answer),
            other => Err(unexpected("answer", &other)),
        }
    }

    /// Assembles a query's answer only if no rehydration/replay is needed.
    pub fn try_output(&mut self, query: usize) -> Result<QueryAnswer, ClientError> {
        match self.call_ok(RequestBody::TryOutput { query })? {
            ResponseBody::Answer { answer, .. } => Ok(answer),
            other => Err(unexpected("answer", &other)),
        }
    }

    /// Spills a query; returns the daemon-side spill path.
    pub fn evict(&mut self, query: usize) -> Result<String, ClientError> {
        match self.call_ok(RequestBody::Evict { query })? {
            ResponseBody::Evicted { spill, .. } => Ok(spill),
            other => Err(unexpected("evicted", &other)),
        }
    }

    /// Rehydrates a query; returns `(deltas replayed, PEval calls)`.
    pub fn rehydrate(&mut self, query: usize) -> Result<(usize, usize), ClientError> {
        match self.call_ok(RequestBody::Rehydrate { query })? {
            ResponseBody::Rehydrated {
                replayed,
                peval_calls,
                ..
            } => Ok((replayed, peval_calls)),
            other => Err(unexpected("rehydrated", &other)),
        }
    }

    /// Folds a query's spill chain into a fresh base; returns whether
    /// anything was actually folded.
    pub fn compact(&mut self, query: usize) -> Result<bool, ClientError> {
        match self.call_ok(RequestBody::Compact { query })? {
            ResponseBody::Compacted { folded, .. } => Ok(folded),
            other => Err(unexpected("compacted", &other)),
        }
    }

    /// Subscribes to a query's answer-delta stream; returns the wire
    /// subscription id echoed in every pushed event.
    pub fn subscribe(&mut self, query: usize) -> Result<usize, ClientError> {
        match self.call_ok(RequestBody::Subscribe { query })? {
            ResponseBody::Subscribed { subscription, .. } => Ok(subscription),
            other => Err(unexpected("subscribed", &other)),
        }
    }

    /// Closes a subscription opened on this connection.
    pub fn unsubscribe(&mut self, subscription: usize) -> Result<(), ClientError> {
        match self.call_ok(RequestBody::Unsubscribe { subscription })? {
            ResponseBody::Unsubscribed { .. } => Ok(()),
            other => Err(unexpected("unsubscribed", &other)),
        }
    }

    /// The next pushed subscription event: pops the buffer if `call`
    /// already read one, otherwise blocks on the socket.  A reply frame
    /// arriving here is a protocol violation (no request is in flight).
    pub fn next_event(&mut self) -> Result<EventFrame, ClientError> {
        if let Some(event) = self.events.pop_front() {
            return Ok(event);
        }
        match self.recv_frame("watch")? {
            ServerFrame::Event(event) => Ok(event),
            ServerFrame::Reply(response) => Err(ClientError::Protocol(format!(
                "unsolicited reply with id {} while waiting for events",
                response.id
            ))),
        }
    }

    /// Asks the daemon to stop.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        match self.call_ok(RequestBody::Shutdown)? {
            ResponseBody::ShuttingDown => Ok(()),
            other => Err(unexpected("shutting_down", &other)),
        }
    }
}

fn unexpected(wanted: &str, got: &ResponseBody) -> ClientError {
    ClientError::Protocol(format!("expected a `{wanted}` reply, got {got:?}"))
}
