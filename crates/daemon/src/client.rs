//! The typed client `grapectl` (and the e2e tests) drive the daemon with.
//!
//! One blocking TCP connection, one request in flight at a time: `call`
//! stamps a fresh id, writes the frame, reads frames until the echoed id
//! matches (ignoring nothing — the daemon replies in order per
//! connection, so a mismatched id is a protocol violation, not something
//! to skip past).  In-protocol failures ([`ResponseBody::Error`]) surface
//! as [`ClientError::Remote`] so callers can match on the taxonomy.

use std::io::{BufReader, BufWriter};
use std::net::{TcpStream, ToSocketAddrs};

use grape_core::spec::QuerySpec;
use grape_graph::delta::GraphDelta;

use crate::protocol::{
    self, ErrorKind, MetricsInfo, QueryAnswer, RejectedDelta, Request, RequestBody, Response,
    ResponseBody, StatusInfo, WireError,
};

/// A failure on the client side of the wire.
#[derive(Debug)]
pub enum ClientError {
    /// Connecting, framing or (de)serialization failed.
    Wire(WireError),
    /// The daemon replied with an in-protocol error.
    Remote {
        /// The error taxonomy entry.
        kind: ErrorKind,
        /// The daemon's message.
        message: String,
    },
    /// The daemon replied with something other than the expected variant
    /// (or closed the connection mid-call).
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Wire(e) => write!(f, "{e}"),
            ClientError::Remote { kind, message } => {
                write!(f, "daemon error ({kind:?}): {message}")
            }
            ClientError::Protocol(m) => write!(f, "protocol violation: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        ClientError::Wire(e)
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Wire(WireError::Io(e))
    }
}

/// The result of an `apply` / `apply_batch` call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AppliedBatch {
    /// One summary per commit, in stream order.
    pub reports: Vec<protocol::ApplySummary>,
    /// The rejection that stopped a batch, if any.
    pub rejected: Option<RejectedDelta>,
}

/// A blocking client over one TCP connection to a `graped`.
pub struct GrapeClient {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    next_id: u64,
}

impl GrapeClient {
    /// Connects to a daemon.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<Self, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let read_half = stream.try_clone()?;
        Ok(GrapeClient {
            reader: BufReader::new(read_half),
            writer: BufWriter::new(stream),
            next_id: 1,
        })
    }

    /// Sends one request and reads its reply (matching ids).  Error
    /// replies pass through as `Ok(ResponseBody::Error { .. })`; the typed
    /// methods turn them into [`ClientError::Remote`].
    pub fn call(&mut self, body: RequestBody) -> Result<ResponseBody, ClientError> {
        let id = self.next_id;
        self.next_id += 1;
        protocol::send(&mut self.writer, &Request { id, body })?;
        let response: Response = protocol::recv(&mut self.reader)?
            .ok_or_else(|| ClientError::Protocol("connection closed mid-call".to_string()))?;
        if response.id != id && response.id != 0 {
            return Err(ClientError::Protocol(format!(
                "reply id {} does not match request id {id}",
                response.id
            )));
        }
        Ok(response.body)
    }

    fn call_ok(&mut self, body: RequestBody) -> Result<ResponseBody, ClientError> {
        match self.call(body)? {
            ResponseBody::Error { kind, message } => Err(ClientError::Remote { kind, message }),
            other => Ok(other),
        }
    }

    /// `status`.
    pub fn status(&mut self) -> Result<StatusInfo, ClientError> {
        match self.call_ok(RequestBody::Status)? {
            ResponseBody::Status(info) => Ok(info),
            other => Err(unexpected("status", &other)),
        }
    }

    /// `metrics`.
    pub fn metrics(&mut self) -> Result<MetricsInfo, ClientError> {
        match self.call_ok(RequestBody::Metrics)? {
            ResponseBody::Metrics(info) => Ok(info),
            other => Err(unexpected("metrics", &other)),
        }
    }

    /// Registers a standing query; returns its handle id.
    pub fn register(&mut self, spec: QuerySpec) -> Result<usize, ClientError> {
        match self.call_ok(RequestBody::Register { spec })? {
            ResponseBody::Registered { query, .. } => Ok(query),
            other => Err(unexpected("registered", &other)),
        }
    }

    /// Applies one delta.
    pub fn apply(&mut self, delta: GraphDelta) -> Result<AppliedBatch, ClientError> {
        match self.call_ok(RequestBody::Apply { delta })? {
            ResponseBody::Applied { reports, rejected } => Ok(AppliedBatch { reports, rejected }),
            other => Err(unexpected("applied", &other)),
        }
    }

    /// Applies a delta stream through the pipelined batch path.
    pub fn apply_batch(&mut self, deltas: Vec<GraphDelta>) -> Result<AppliedBatch, ClientError> {
        match self.call_ok(RequestBody::ApplyBatch { deltas })? {
            ResponseBody::Applied { reports, rejected } => Ok(AppliedBatch { reports, rejected }),
            other => Err(unexpected("applied", &other)),
        }
    }

    /// Assembles a query's answer (lazily rehydrating server-side).
    pub fn output(&mut self, query: usize) -> Result<QueryAnswer, ClientError> {
        match self.call_ok(RequestBody::Output { query })? {
            ResponseBody::Answer { answer, .. } => Ok(answer),
            other => Err(unexpected("answer", &other)),
        }
    }

    /// Assembles a query's answer only if no rehydration/replay is needed.
    pub fn try_output(&mut self, query: usize) -> Result<QueryAnswer, ClientError> {
        match self.call_ok(RequestBody::TryOutput { query })? {
            ResponseBody::Answer { answer, .. } => Ok(answer),
            other => Err(unexpected("answer", &other)),
        }
    }

    /// Spills a query; returns the daemon-side spill path.
    pub fn evict(&mut self, query: usize) -> Result<String, ClientError> {
        match self.call_ok(RequestBody::Evict { query })? {
            ResponseBody::Evicted { spill, .. } => Ok(spill),
            other => Err(unexpected("evicted", &other)),
        }
    }

    /// Rehydrates a query; returns `(deltas replayed, PEval calls)`.
    pub fn rehydrate(&mut self, query: usize) -> Result<(usize, usize), ClientError> {
        match self.call_ok(RequestBody::Rehydrate { query })? {
            ResponseBody::Rehydrated {
                replayed,
                peval_calls,
                ..
            } => Ok((replayed, peval_calls)),
            other => Err(unexpected("rehydrated", &other)),
        }
    }

    /// Asks the daemon to stop.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        match self.call_ok(RequestBody::Shutdown)? {
            ResponseBody::ShuttingDown => Ok(()),
            other => Err(unexpected("shutting_down", &other)),
        }
    }
}

fn unexpected(wanted: &str, got: &ResponseBody) -> ClientError {
    ClientError::Protocol(format!("expected a `{wanted}` reply, got {got:?}"))
}
