//! `grapectl` argument parsing and execution.
//!
//! Hand-rolled parsing (the container world has no clap): global flags
//! `--addr` and `--format`, then one subcommand.  [`parse`] is pure so the
//! tests can pin the grammar; [`run`] connects and executes.

use grape_core::output_delta::OutputEvent;
use grape_core::spec::QuerySpec;
use grape_graph::delta::GraphDelta;

use crate::client::{ClientError, GrapeClient};
use crate::format::{render, render_event, Format};
use crate::protocol::{RequestBody, ResponseBody, DEFAULT_PORT};

/// What `grapectl` was asked to do.
#[derive(Debug, Clone, PartialEq)]
pub enum Action {
    /// `status` — server + per-query state.
    Status,
    /// `metrics [--samples]` — uptime, latency histogram, per-query
    /// counters; `--samples` adds the raw per-commit latency vector.
    Metrics {
        /// Request the raw sample vector too.
        samples: bool,
    },
    /// `watch <id> [--count N]` — subscribe to a query's answer deltas
    /// and stream them as they are pushed.
    Watch {
        /// The query handle to watch.
        query: usize,
        /// Stop after this many events (stream forever when `None`).
        count: Option<usize>,
    },
    /// `query <kind> [--source N]` — register a query AND print its
    /// current answer (the one-shot workflow).
    Query(QuerySpec),
    /// `register <kind> [--source N]` — register only; prints the handle.
    Register(QuerySpec),
    /// `apply --file <path>` or `apply <json>` — one delta (`{...}`) or a
    /// batch (`[...]`).
    Apply {
        /// Where the delta JSON comes from.
        source: DeltaSource,
    },
    /// `output <id>` — assemble an answer (rehydrates if needed).
    Output(usize),
    /// `try-output <id>` — assemble only if resident and caught up.
    TryOutput(usize),
    /// `evict <id>` — spill a query.
    Evict(usize),
    /// `rehydrate <id>` — reload and catch up a query.
    Rehydrate(usize),
    /// `compact <id>` — fold a query's spill chain into a fresh base.
    Compact(usize),
    /// `shutdown` — stop the daemon.
    Shutdown,
}

/// Where `apply` reads its delta JSON from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeltaSource {
    /// `--file <path>`.
    File(String),
    /// The JSON given inline on the command line.
    Inline(String),
}

/// A fully parsed `grapectl` invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct CliOptions {
    /// Daemon address (`--addr`, default `127.0.0.1:4817`).
    pub addr: String,
    /// Output format (`--format text|json`).
    pub format: Format,
    /// The subcommand.
    pub action: Action,
}

/// The `--help` text.
pub const USAGE: &str = "grapectl — control a running graped

USAGE: grapectl [--addr HOST:PORT] [--format text|json] <command>

COMMANDS:
  status                       server + per-query state
  metrics [--samples]          uptime, per-delta latency, per-query counters
  watch <id> [--count N]       stream a query's answer deltas as pushed
  query sssp --source N        register an SSSP query and print its answer
  query cc                     register a CC query and print its answer
  register sssp --source N     register only; prints the handle id
  register cc
  apply --file delta.json      apply one delta ({...}) or a batch ([...])
  apply '<json>'               same, inline
  output <id>                  assemble an answer (rehydrates if evicted)
  try-output <id>              assemble only if resident and caught up
  evict <id>                   spill a query to disk
  rehydrate <id>               reload an evicted query and catch it up
  compact <id>                 fold a query's spill chain into a fresh base
  shutdown                     stop the daemon";

fn parse_number(args: &[String], i: usize, flag: &str) -> Result<(usize, usize), String> {
    let raw = args
        .get(i + 1)
        .ok_or_else(|| format!("{flag} needs a value"))?;
    let n = raw
        .parse()
        .map_err(|_| format!("{flag} needs a number, got {raw:?}"))?;
    Ok((n, i + 2))
}

fn parse_spec(args: &[String], mut i: usize) -> Result<(QuerySpec, usize), String> {
    let kind = args
        .get(i)
        .ok_or_else(|| "expected a query kind (sssp|cc)".to_string())?
        .clone();
    i += 1;
    match kind.as_str() {
        "cc" => Ok((QuerySpec::Cc, i)),
        "sssp" => {
            let mut source = None;
            while i < args.len() {
                match args[i].as_str() {
                    "--source" => {
                        let (n, next) = parse_number(args, i, "--source")?;
                        source = Some(n as u64);
                        i = next;
                    }
                    other => return Err(format!("unexpected argument {other:?} after `sssp`")),
                }
            }
            let source = source.ok_or_else(|| "sssp needs --source <vertex>".to_string())?;
            Ok((QuerySpec::Sssp { source }, i))
        }
        other => Err(format!("unknown query kind {other:?} (expected sssp|cc)")),
    }
}

fn parse_handle(args: &[String], i: usize, command: &str) -> Result<usize, String> {
    let raw = args
        .get(i)
        .ok_or_else(|| format!("{command} needs a query id"))?;
    raw.parse()
        .map_err(|_| format!("{command} needs a numeric query id, got {raw:?}"))
}

/// Parses a `grapectl` argument vector (without the program name).
pub fn parse(args: &[String]) -> Result<CliOptions, String> {
    let mut addr = format!("127.0.0.1:{DEFAULT_PORT}");
    let mut format = Format::Text;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => {
                addr = args
                    .get(i + 1)
                    .ok_or_else(|| "--addr needs HOST:PORT".to_string())?
                    .clone();
                i += 2;
            }
            "--format" => {
                format = Format::parse(
                    args.get(i + 1)
                        .ok_or_else(|| "--format needs text|json".to_string())?,
                )?;
                i += 2;
            }
            "--help" | "-h" | "help" => return Err(USAGE.to_string()),
            _ => break,
        }
    }
    let command = args
        .get(i)
        .ok_or_else(|| format!("no command given\n\n{USAGE}"))?
        .clone();
    i += 1;
    let action = match command.as_str() {
        "status" => Action::Status,
        "metrics" => {
            let mut samples = false;
            if args.get(i).map(String::as_str) == Some("--samples") {
                samples = true;
                i += 1;
            }
            Action::Metrics { samples }
        }
        "watch" => {
            let query = parse_handle(args, i, "watch")?;
            i += 1;
            let mut count = None;
            if args.get(i).map(String::as_str) == Some("--count") {
                let (n, next) = parse_number(args, i, "--count")?;
                count = Some(n);
                i = next;
            }
            Action::Watch { query, count }
        }
        "query" => {
            let (spec, next) = parse_spec(args, i)?;
            i = next;
            Action::Query(spec)
        }
        "register" => {
            let (spec, next) = parse_spec(args, i)?;
            i = next;
            Action::Register(spec)
        }
        "apply" => {
            let source = match args.get(i).map(String::as_str) {
                Some("--file") => {
                    let path = args
                        .get(i + 1)
                        .ok_or_else(|| "--file needs a path".to_string())?
                        .clone();
                    i += 2;
                    DeltaSource::File(path)
                }
                Some(_) => {
                    let json = args[i].clone();
                    i += 1;
                    DeltaSource::Inline(json)
                }
                None => return Err("apply needs --file <path> or inline JSON".to_string()),
            };
            Action::Apply { source }
        }
        "output" => {
            let id = parse_handle(args, i, "output")?;
            i += 1;
            Action::Output(id)
        }
        "try-output" => {
            let id = parse_handle(args, i, "try-output")?;
            i += 1;
            Action::TryOutput(id)
        }
        "evict" => {
            let id = parse_handle(args, i, "evict")?;
            i += 1;
            Action::Evict(id)
        }
        "rehydrate" => {
            let id = parse_handle(args, i, "rehydrate")?;
            i += 1;
            Action::Rehydrate(id)
        }
        "compact" => {
            let id = parse_handle(args, i, "compact")?;
            i += 1;
            Action::Compact(id)
        }
        "shutdown" => Action::Shutdown,
        other => return Err(format!("unknown command {other:?}\n\n{USAGE}")),
    };
    if i < args.len() {
        return Err(format!("unexpected trailing argument {:?}", args[i]));
    }
    Ok(CliOptions {
        addr,
        format,
        action,
    })
}

/// Parses delta JSON: one delta (`{...}`) or a batch (`[...]`).
fn parse_deltas(json: &str) -> Result<Vec<GraphDelta>, String> {
    if json.trim_start().starts_with('[') {
        serde_json::from_str::<Vec<GraphDelta>>(json)
            .map_err(|e| format!("bad delta batch JSON: {e}"))
    } else {
        serde_json::from_str::<GraphDelta>(json)
            .map(|d| vec![d])
            .map_err(|e| format!("bad delta JSON: {e}"))
    }
}

fn call_rendered(
    client: &mut GrapeClient,
    body: RequestBody,
    format: Format,
) -> Result<String, String> {
    let reply = client.call(body).map_err(|e| e.to_string())?;
    let text = render(&reply, format);
    if matches!(reply, ResponseBody::Error { .. }) {
        Err(text)
    } else {
        Ok(text)
    }
}

/// Executes a parsed invocation against the daemon.  `Ok` is what to print
/// on stdout; `Err` goes to stderr with a non-zero exit.
pub fn execute(options: &CliOptions) -> Result<String, String> {
    let mut client = GrapeClient::connect(options.addr.as_str())
        .map_err(|e| format!("cannot reach graped at {}: {e}", options.addr))?;
    let format = options.format;
    match &options.action {
        Action::Status => call_rendered(&mut client, RequestBody::Status, format),
        Action::Metrics { samples } => call_rendered(
            &mut client,
            RequestBody::Metrics { samples: *samples },
            format,
        ),
        Action::Watch { query, count } => {
            let subscription = client.subscribe(*query).map_err(|e| e.to_string())?;
            let mut seen = 0usize;
            let mut lines = Vec::new();
            loop {
                let event = client.next_event().map_err(|e| e.to_string())?;
                if event.subscription != subscription {
                    continue;
                }
                let terminal = matches!(event.event, OutputEvent::Poisoned);
                let line = render_event(&event, format);
                match count {
                    // Bounded watch: collect and return (testable output).
                    Some(_) => lines.push(line),
                    // Unbounded watch: stream line-by-line until the
                    // subscription turns terminal or stdout goes away.
                    None => {
                        use std::io::Write;
                        let mut out = std::io::stdout().lock();
                        if writeln!(out, "{line}").and_then(|()| out.flush()).is_err() {
                            break;
                        }
                    }
                }
                seen += 1;
                if terminal || count.is_some_and(|n| seen >= n) {
                    break;
                }
            }
            let _ = client.unsubscribe(subscription);
            Ok(lines.join("\n"))
        }
        Action::Register(spec) => {
            call_rendered(&mut client, RequestBody::Register { spec: *spec }, format)
        }
        Action::Query(spec) => {
            let query = client
                .register(*spec)
                .map_err(|e: ClientError| e.to_string())?;
            call_rendered(&mut client, RequestBody::Output { query }, format)
        }
        Action::Apply { source } => {
            let json = match source {
                DeltaSource::File(path) => {
                    std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?
                }
                DeltaSource::Inline(json) => json.clone(),
            };
            let mut deltas = parse_deltas(&json)?;
            let body = if deltas.len() == 1 {
                RequestBody::Apply {
                    delta: deltas.pop().expect("one delta"),
                }
            } else {
                RequestBody::ApplyBatch { deltas }
            };
            call_rendered(&mut client, body, format)
        }
        Action::Output(id) => {
            call_rendered(&mut client, RequestBody::Output { query: *id }, format)
        }
        Action::TryOutput(id) => {
            call_rendered(&mut client, RequestBody::TryOutput { query: *id }, format)
        }
        Action::Evict(id) => call_rendered(&mut client, RequestBody::Evict { query: *id }, format),
        Action::Rehydrate(id) => {
            call_rendered(&mut client, RequestBody::Rehydrate { query: *id }, format)
        }
        Action::Compact(id) => {
            call_rendered(&mut client, RequestBody::Compact { query: *id }, format)
        }
        Action::Shutdown => call_rendered(&mut client, RequestBody::Shutdown, format),
    }
}

/// Parse + execute; the `grapectl` main body.
pub fn run(args: &[String]) -> Result<String, String> {
    execute(&parse(args)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn parses_globals_and_subcommands() {
        let o = parse(&argv("--addr 10.0.0.1:9 --format json status")).unwrap();
        assert_eq!(o.addr, "10.0.0.1:9");
        assert_eq!(o.format, Format::Json);
        assert_eq!(o.action, Action::Status);

        let o = parse(&argv("query sssp --source 3")).unwrap();
        assert_eq!(o.addr, format!("127.0.0.1:{DEFAULT_PORT}"));
        assert_eq!(o.action, Action::Query(QuerySpec::Sssp { source: 3 }));

        assert_eq!(
            parse(&argv("query cc")).unwrap().action,
            Action::Query(QuerySpec::Cc)
        );
        assert_eq!(
            parse(&argv("register cc")).unwrap().action,
            Action::Register(QuerySpec::Cc)
        );
        assert_eq!(parse(&argv("evict 2")).unwrap().action, Action::Evict(2));
        assert_eq!(
            parse(&argv("compact 4")).unwrap().action,
            Action::Compact(4)
        );
        assert_eq!(
            parse(&argv("try-output 1")).unwrap().action,
            Action::TryOutput(1)
        );
        assert_eq!(
            parse(&argv("apply --file d.json")).unwrap().action,
            Action::Apply {
                source: DeltaSource::File("d.json".to_string())
            }
        );
        assert_eq!(
            parse(&argv("apply {\"x\":1}")).unwrap().action,
            Action::Apply {
                source: DeltaSource::Inline("{\"x\":1}".to_string())
            }
        );
    }

    #[test]
    fn parses_metrics_and_watch_grammar() {
        assert_eq!(
            parse(&argv("metrics")).unwrap().action,
            Action::Metrics { samples: false }
        );
        assert_eq!(
            parse(&argv("metrics --samples")).unwrap().action,
            Action::Metrics { samples: true }
        );
        assert_eq!(
            parse(&argv("watch 2")).unwrap().action,
            Action::Watch {
                query: 2,
                count: None
            }
        );
        assert_eq!(
            parse(&argv("watch 0 --count 5")).unwrap().action,
            Action::Watch {
                query: 0,
                count: Some(5)
            }
        );
    }

    #[test]
    fn rejects_bad_invocations() {
        assert!(parse(&argv("sssp")).is_err(), "unknown command");
        assert!(parse(&argv("query sssp")).is_err(), "missing --source");
        assert!(parse(&argv("evict two")).is_err(), "non-numeric id");
        assert!(parse(&argv("compact")).is_err(), "missing query id");
        assert!(parse(&argv("status extra")).is_err(), "trailing garbage");
        assert!(parse(&argv("--format yaml status")).is_err(), "bad format");
        assert!(parse(&[]).is_err(), "no command");
        assert!(parse(&argv("watch")).is_err(), "missing query id");
        assert!(parse(&argv("watch one")).is_err(), "non-numeric id");
        assert!(parse(&argv("watch 0 --count")).is_err(), "missing count");
        assert!(parse(&argv("metrics --sample")).is_err(), "unknown flag");
    }

    #[test]
    fn delta_json_accepts_object_or_array() {
        let one = serde_json::to_string(
            &grape_graph::delta::GraphDelta::new().add_weighted_edge(0, 1, 2.0),
        )
        .unwrap();
        assert_eq!(parse_deltas(&one).unwrap().len(), 1);
        let batch = format!("[{one},{one}]");
        assert_eq!(parse_deltas(&batch).unwrap().len(), 2);
        assert!(parse_deltas("not json").is_err());
    }
}
