//! `graped --mock`: a synthetic workload for demos and e2e tests.
//!
//! Registers a handful of standing queries (SSSP from sources spread over
//! the start graph, plus one CC) and feeds a generated **insert-only**
//! delta stream: every delta attaches one brand-new vertex to two random
//! existing vertices (both directions, seeded weights).  Insert-only keeps
//! every refresh on the monotone IncEval path — the steady state the
//! serving layer is optimized for — and attaching a *new* vertex can never
//! collide with an existing edge, so the stream is valid against any
//! evolving graph without tracking its edge set.
//!
//! The feeder is just another client of the engine's command channel: its
//! applies serialize with whatever real clients are doing, so a mock
//! daemon exercises exactly the concurrency story of a production one.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::Sender;
use std::sync::Arc;
use std::time::Duration;

use grape_core::spec::QuerySpec;
use grape_graph::delta::GraphDelta;
use grape_graph::types::NO_LABEL;

use crate::protocol::RequestBody;
use crate::server::{Command, Replier};

/// Shape of the synthetic workload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MockConfig {
    /// Standing SSSP queries to register (sources spread over the start
    /// graph); one CC query is always added on top.
    pub queries: usize,
    /// Deltas to feed before the stream ends; `0` feeds forever.
    pub deltas: usize,
    /// Pause between deltas.
    pub interval_ms: u64,
    /// Seed of the delta generator.
    pub seed: u64,
}

impl Default for MockConfig {
    fn default() -> Self {
        MockConfig {
            queries: 3,
            deltas: 0,
            interval_ms: 200,
            seed: 7,
        }
    }
}

/// The specs the mock daemon registers: `queries` SSSP sources spread
/// evenly over the start graph's vertices, plus one CC.
pub fn workload(cfg: &MockConfig, num_vertices: usize) -> Vec<QuerySpec> {
    let n = num_vertices.max(1) as u64;
    let k = cfg.queries.max(1) as u64;
    let mut specs: Vec<QuerySpec> = (0..k)
        .map(|i| QuerySpec::Sssp { source: i * n / k })
        .collect();
    specs.push(QuerySpec::Cc);
    specs
}

/// A tiny deterministic generator (LCG), so mock streams are reproducible
/// without pulling a rand dependency into the daemon.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 16
    }
}

/// The `i`-th mock delta over a graph that started with `base_vertices`
/// vertices: attach new vertex `base_vertices + i` to two seeded-random
/// older vertices, both directions, with weights in `[0.5, 2.0)`.
pub fn mock_delta(seed: u64, base_vertices: u64, i: u64) -> GraphDelta {
    let mut rng = Lcg(seed ^ (i.wrapping_mul(0x9e3779b97f4a7c15)));
    let v = base_vertices + i;
    let a = rng.next() % v;
    let b = rng.next() % v;
    let wa = 0.5 + (rng.next() % 1500) as f64 / 1000.0;
    let wb = 0.5 + (rng.next() % 1500) as f64 / 1000.0;
    GraphDelta::new()
        .add_vertex(v, NO_LABEL)
        .add_weighted_edge(a, v, wa)
        .add_weighted_edge(v, a, wa)
        .add_weighted_edge(b, v, wb)
        .add_weighted_edge(v, b, wb)
}

/// The feeder loop: applies [`mock_delta`]s through the engine's command
/// channel until the configured count is reached, the stop flag rises, or
/// the engine goes away.  Waiting for each reply is deliberate — it is the
/// backpressure that keeps an unbounded stream from flooding the channel.
pub(crate) fn feed(
    cfg: MockConfig,
    base_vertices: u64,
    tx: Sender<Command>,
    stop: Arc<AtomicBool>,
) {
    let mut fed: u64 = 0;
    while !stop.load(Ordering::SeqCst) {
        if cfg.deltas > 0 && fed >= cfg.deltas as u64 {
            break;
        }
        let delta = mock_delta(cfg.seed, base_vertices, fed);
        let (reply, ack) = std::sync::mpsc::channel();
        if tx
            .send(Command {
                body: RequestBody::Apply { delta },
                replier: Replier::Channel(reply),
            })
            .is_err()
        {
            break;
        }
        if ack.recv().is_err() {
            break;
        }
        fed += 1;
        if cfg.interval_ms > 0 {
            std::thread::sleep(Duration::from_millis(cfg.interval_ms));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_spreads_sources_and_appends_cc() {
        let specs = workload(
            &MockConfig {
                queries: 3,
                ..MockConfig::default()
            },
            30,
        );
        assert_eq!(
            specs,
            vec![
                QuerySpec::Sssp { source: 0 },
                QuerySpec::Sssp { source: 10 },
                QuerySpec::Sssp { source: 20 },
                QuerySpec::Cc,
            ]
        );
    }

    #[test]
    fn mock_deltas_are_deterministic_and_insert_only() {
        let a = mock_delta(7, 100, 3);
        let b = mock_delta(7, 100, 3);
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap(),
            "same seed, same delta"
        );
        assert!(!a.has_removals());
        assert_eq!(a.added_vertices().len(), 1);
        assert_eq!(a.added_vertices()[0].0, 103);
        assert_eq!(a.added_edges().len(), 4);
        for e in a.added_edges() {
            assert!(e.src == 103 || e.dst == 103);
            assert!(e.src < 104 && e.dst < 104);
        }
    }
}
