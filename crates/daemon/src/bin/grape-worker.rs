//! `grape-worker` — one shard of a `TransportSpec::Process` engine run.
//!
//! Spawned by the engine (never by hand): the parent pipes an init frame
//! with the program name, the query and this worker's fragments over
//! stdin, then drives PEval/IncEval rounds over the same pipe.  Exits 0 on
//! orderly shutdown (pipe closed or `exit` op), 1 on protocol errors —
//! the parent surfaces either as an `EngineError::Worker` if the run was
//! still in flight.

use std::io::{BufReader, BufWriter, Write};

fn main() {
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut input = BufReader::new(stdin.lock());
    let mut output = BufWriter::new(stdout.lock());
    if let Err(e) = grape_daemon::worker::run(&mut input, &mut output) {
        eprintln!("grape-worker: {e}");
        std::process::exit(1);
    }
    let _ = output.flush();
}
