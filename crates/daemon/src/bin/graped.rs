//! `graped` — the GRAPE serving daemon.
//!
//! Binds a TCP listener, owns one `GrapeServer` on a single engine
//! thread, and serves the length-delimited JSON protocol to any number of
//! concurrent clients.  `--mock` registers a synthetic workload and feeds
//! a generated insert-only delta stream, so the daemon has something to
//! serve out of the box.

use std::path::PathBuf;

use grape_core::{EngineMode, TransportSpec};
use grape_daemon::server::{DaemonConfig, GrapedHandle, GraphSource};
use grape_daemon::MockConfig;

const USAGE: &str = "graped — GRAPE serving daemon

USAGE: graped [OPTIONS]

OPTIONS:
  --addr HOST:PORT        bind address (default 127.0.0.1:4817; port 0 = ephemeral)
  --workers N             engine workers per refresh (default 2)
  --refresh-threads N     concurrent query refreshes per delta (default 2)
  --fragments N           partition fragment count (default 4)
  --mode sync|async       engine mode (default: GRAPE_ENGINE_MODE or sync)
  --transport NAME        barrier | channel | process (default: the mode's
                          in-process substrate; process shards fragments
                          across --workers grape-worker subprocesses)
  --graph SPEC            start graph: grid:WxH[@seed] | path:N (default grid:24x24@7)
  --spill-dir PATH        directory for eviction spill files (default: temp dir)
  --mock                  register a synthetic workload + feed generated deltas
  --mock-queries N        standing SSSP queries in the mock workload (default 3)
  --mock-deltas N         stop the mock stream after N deltas (default: unbounded)
  --mock-interval-ms N    pause between mock deltas (default 200)
  -h, --help              this help";

fn parse_args(args: &[String]) -> Result<DaemonConfig, String> {
    let mut config = DaemonConfig::default();
    let mut mock = MockConfig::default();
    let mut want_mock = false;
    let mut transport: Option<String> = None;
    let mut i = 0;
    let value = |args: &[String], i: usize, flag: &str| -> Result<String, String> {
        args.get(i + 1)
            .cloned()
            .ok_or_else(|| format!("{flag} needs a value"))
    };
    let number = |args: &[String], i: usize, flag: &str| -> Result<u64, String> {
        let raw = value(args, i, flag)?;
        raw.parse()
            .map_err(|_| format!("{flag} needs a number, got {raw:?}"))
    };
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => {
                config.addr = value(args, i, "--addr")?;
                i += 2;
            }
            "--workers" => {
                config.workers = number(args, i, "--workers")?.max(1) as usize;
                i += 2;
            }
            "--refresh-threads" => {
                config.refresh_threads = number(args, i, "--refresh-threads")?.max(1) as usize;
                i += 2;
            }
            "--fragments" => {
                config.fragments = number(args, i, "--fragments")?.max(1) as usize;
                i += 2;
            }
            "--mode" => {
                config.mode = match value(args, i, "--mode")?.as_str() {
                    "sync" => EngineMode::Sync,
                    "async" => EngineMode::Async,
                    other => return Err(format!("unknown mode {other:?} (expected sync|async)")),
                };
                i += 2;
            }
            "--transport" => {
                transport = Some(value(args, i, "--transport")?);
                i += 2;
            }
            "--graph" => {
                config.graph = GraphSource::parse(&value(args, i, "--graph")?)?;
                i += 2;
            }
            "--spill-dir" => {
                config.spill_dir = Some(PathBuf::from(value(args, i, "--spill-dir")?));
                i += 2;
            }
            "--mock" => {
                want_mock = true;
                i += 1;
            }
            "--mock-queries" => {
                mock.queries = number(args, i, "--mock-queries")?.max(1) as usize;
                want_mock = true;
                i += 2;
            }
            "--mock-deltas" => {
                mock.deltas = number(args, i, "--mock-deltas")? as usize;
                want_mock = true;
                i += 2;
            }
            "--mock-interval-ms" => {
                mock.interval_ms = number(args, i, "--mock-interval-ms")?;
                want_mock = true;
                i += 2;
            }
            "-h" | "--help" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown option {other:?}\n\n{USAGE}")),
        }
    }
    if want_mock {
        config.mock = Some(mock);
    }
    // Resolved after the loop so `--transport process` sizes its worker
    // pool from the final --workers value regardless of flag order.
    config.transport = match transport.as_deref() {
        None => None,
        Some("barrier") => Some(TransportSpec::Barrier),
        Some("channel") => Some(TransportSpec::Channel),
        Some("process") => Some(TransportSpec::Process {
            workers: config.workers,
        }),
        Some(other) => {
            return Err(format!(
                "unknown transport {other:?} (expected barrier|channel|process)"
            ))
        }
    };
    Ok(config)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let config = match parse_args(&args) {
        Ok(config) => config,
        Err(message) => {
            eprintln!("{message}");
            std::process::exit(2);
        }
    };
    let mock = config.mock.is_some();
    let handle = match GrapedHandle::spawn(config) {
        Ok(handle) => handle,
        Err(e) => {
            eprintln!("graped failed to start: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "graped listening on {}{}",
        handle.addr(),
        if mock { " (mock workload running)" } else { "" }
    );
    handle.wait();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<DaemonConfig, String> {
        parse_args(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn transport_flag_resolves_against_the_final_worker_count() {
        let config = parse(&[]).unwrap();
        assert_eq!(config.transport, None, "default: the mode's own substrate");
        let config = parse(&["--transport", "barrier"]).unwrap();
        assert_eq!(config.transport, Some(TransportSpec::Barrier));
        let config = parse(&["--transport", "channel"]).unwrap();
        assert_eq!(config.transport, Some(TransportSpec::Channel));
        // Flag order must not matter: the process pool is sized from the
        // final --workers value even when --transport comes first.
        let config = parse(&["--transport", "process", "--workers", "3"]).unwrap();
        assert_eq!(
            config.transport,
            Some(TransportSpec::Process { workers: 3 })
        );
        let err = parse(&["--transport", "carrier-pigeon"]).unwrap_err();
        assert!(err.contains("unknown transport"), "got: {err}");
    }
}
