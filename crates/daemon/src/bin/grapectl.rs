//! `grapectl` — the CLI for a running `graped`.
//!
//! All the logic lives in `grape_daemon::cli` (parsing) and
//! `grape_daemon::client` (the typed wire client); this binary only maps
//! `Ok`/`Err` onto stdout/stderr and the exit code.

use std::io::Write;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match grape_daemon::cli::run(&args) {
        // `writeln!` instead of `println!`: a downstream `head` closing the
        // pipe early must not turn a successful command into a panic.
        Ok(output) => {
            let _ = writeln!(std::io::stdout(), "{output}");
        }
        Err(message) => {
            let _ = writeln!(std::io::stderr(), "{message}");
            std::process::exit(1);
        }
    }
}
