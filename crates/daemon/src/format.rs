//! Rendering daemon replies for `grapectl`.
//!
//! `--format json` prints the reply body's canonical wire JSON (so shell
//! pipelines can consume `grapectl` output exactly as they would consume
//! the socket); `--format text` prints a compact human view.

use grape_core::output_delta::OutputEvent;

use crate::protocol::{EventFrame, MetricsInfo, QueryAnswer, QueryRow, ResponseBody, StatusInfo};

/// Output format selected by `--format`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Format {
    /// Compact human-readable text (the default).
    #[default]
    Text,
    /// The reply body's wire JSON, one value per line.
    Json,
}

impl Format {
    /// Parses a `--format` argument.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "text" => Ok(Format::Text),
            "json" => Ok(Format::Json),
            other => Err(format!("unknown format `{other}` (expected text|json)")),
        }
    }
}

/// Renders a reply body in the chosen format.
pub fn render(body: &ResponseBody, format: Format) -> String {
    match format {
        Format::Json => serde_json::to_string(body).unwrap_or_else(|e| {
            format!("{{\"reply\":\"error\",\"kind\":\"BadRequest\",\"message\":\"unserializable reply: {e}\"}}")
        }),
        Format::Text => render_text(body),
    }
}

fn render_text(body: &ResponseBody) -> String {
    match body {
        ResponseBody::Registered { query, spec } => {
            format!("registered query {query}: {spec}")
        }
        ResponseBody::Applied { reports, rejected } => {
            let mut out = String::new();
            for r in reports {
                out.push_str(&format!(
                    "v{}: {} delta(s), rebuilt {} fragment(s), refreshed {:?}",
                    r.version,
                    r.deltas,
                    r.rebuilt.len(),
                    r.refreshed
                ));
                if !r.failed.is_empty() {
                    out.push_str(&format!(", FAILED {:?}", r.failed));
                }
                if !r.deferred.is_empty() {
                    out.push_str(&format!(", deferred {:?}", r.deferred));
                }
                if !r.poisoned.is_empty() {
                    out.push_str(&format!(", poisoned {:?}", r.poisoned));
                }
                if !r.evicted.is_empty() {
                    out.push_str(&format!(", evicted {:?}", r.evicted));
                }
                out.push('\n');
            }
            if let Some(rej) = rejected {
                out.push_str(&format!("delta #{} rejected: {}\n", rej.index, rej.reason));
            }
            if out.is_empty() {
                out.push_str("nothing applied\n");
            }
            out.pop();
            out
        }
        ResponseBody::Answer { query, answer } => render_answer(*query, answer),
        ResponseBody::Evicted { query, spill } => {
            format!("evicted query {query} -> {spill}")
        }
        ResponseBody::Rehydrated {
            query,
            replayed,
            peval_calls,
        } => format!(
            "rehydrated query {query}: replayed {replayed} delta(s), {peval_calls} PEval call(s)"
        ),
        ResponseBody::Compacted { query, folded } => {
            if *folded {
                format!("compacted query {query}: spill chain folded into a fresh base")
            } else {
                format!("compacted query {query}: nothing to fold (no increments)")
            }
        }
        ResponseBody::Subscribed {
            query,
            subscription,
        } => format!("subscribed {subscription} to query {query}"),
        ResponseBody::Unsubscribed { subscription } => {
            format!("unsubscribed {subscription}")
        }
        ResponseBody::Status(info) => render_status(info),
        ResponseBody::Metrics(info) => render_metrics(info),
        ResponseBody::ShuttingDown => "daemon shutting down".to_string(),
        ResponseBody::Error { kind, message } => format!("error ({kind:?}): {message}"),
    }
}

fn render_answer(query: usize, answer: &QueryAnswer) -> String {
    match answer {
        QueryAnswer::Sssp { distances } => {
            let mut out = format!(
                "query {query} (sssp): {} reachable vertices\n",
                distances.len()
            );
            for &(v, d) in distances {
                out.push_str(&format!("  {v}\t{d}\n"));
            }
            out.pop();
            out
        }
        QueryAnswer::Cc { components } => {
            let distinct = {
                let mut ids: Vec<_> = components.iter().map(|&(_, c)| c).collect();
                ids.sort_unstable();
                ids.dedup();
                ids.len()
            };
            let mut out = format!(
                "query {query} (cc): {} vertices in {distinct} component(s)\n",
                components.len()
            );
            for &(v, c) in components {
                out.push_str(&format!("  {v}\t{c}\n"));
            }
            out.pop();
            out
        }
    }
}

fn render_rows(out: &mut String, queries: &[QueryRow]) {
    out.push_str("  id  spec              version  state     updates  inc/bnd  bytes     spill\n");
    for (id, row) in queries.iter().enumerate() {
        let s = &row.status;
        let state = if s.poisoned {
            "poisoned"
        } else if s.evicted {
            "evicted"
        } else {
            "resident"
        };
        let spill = if s.spill_bytes == 0 {
            "-".to_string()
        } else {
            // base + chain_len increments on disk, their total size, and
            // how many times the chain was folded.
            format!(
                "base+{} {}B fold:{}",
                s.spill_chain, s.spill_bytes, s.compactions
            )
        };
        out.push_str(&format!(
            "  {:<3} {:<17} {:<8} {:<9} {:<8} {:>3}/{:<4} {:<9} {}\n",
            id,
            row.spec.to_string(),
            s.version,
            state,
            s.updates_applied,
            s.incremental_updates,
            s.bounded_updates,
            s.partial_bytes,
            spill
        ));
    }
}

fn render_status(info: &StatusInfo) -> String {
    let mut out = format!(
        "version {} | {} delta(s) applied | {} version(s) retained | {} quer{} ({} evicted) | {} resident partial byte(s)\n",
        info.version,
        info.deltas_applied,
        info.retained_versions,
        info.num_queries,
        if info.num_queries == 1 { "y" } else { "ies" },
        info.num_evicted,
        info.resident_partial_bytes
    );
    out.push_str(&format!(
        "spill dir {} | {} compaction(s)\n",
        if info.spill_dir.is_empty() {
            "(unknown)"
        } else {
            info.spill_dir.as_str()
        },
        info.compactions
    ));
    render_rows(&mut out, &info.queries);
    out.pop();
    out
}

fn render_metrics(info: &MetricsInfo) -> String {
    let l = &info.latency;
    let mut out = format!(
        "uptime {:.1}s | version {} | {} delta(s) applied | {} resident partial byte(s) | {} compaction(s)\n",
        info.uptime_ms as f64 / 1e3,
        info.version,
        info.deltas_applied,
        info.resident_partial_bytes,
        info.compactions
    );
    out.push_str(&format!(
        "per-delta latency over last {} commit(s): mean {:.3}ms  p50 {:.3}ms  p99 {:.3}ms  max {:.3}ms\n",
        info.latency_samples, l.mean_ms, l.p50_ms, l.p99_ms, l.max_ms
    ));
    if let Some(samples) = &info.samples {
        out.push_str(&format!(
            "samples (ms): {}\n",
            samples
                .iter()
                .map(|s| format!("{s:.3}"))
                .collect::<Vec<_>>()
                .join(" ")
        ));
    }
    render_rows(&mut out, &info.queries);
    out.pop();
    out
}

/// Renders one pushed subscription event as a single line (the unit
/// `grapectl watch` streams).
pub fn render_event(event: &EventFrame, format: Format) -> String {
    match format {
        Format::Json => serde_json::to_string(event)
            .unwrap_or_else(|e| format!("{{\"event\":\"error\",\"message\":\"{e}\"}}")),
        Format::Text => match &event.event {
            OutputEvent::Delta(delta) => format!(
                "v{} query {} sub {}: {} changed, {} removed",
                event.version,
                event.query,
                event.subscription,
                delta.changed.len(),
                delta.removed.len()
            ),
            OutputEvent::Poisoned => format!(
                "v{} query {} sub {}: POISONED (terminal)",
                event.version, event.query, event.subscription
            ),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::ErrorKind;
    use grape_core::spec::QuerySpec;

    #[test]
    fn format_parses_and_rejects() {
        assert_eq!(Format::parse("text").unwrap(), Format::Text);
        assert_eq!(Format::parse("json").unwrap(), Format::Json);
        assert!(Format::parse("yaml").is_err());
    }

    #[test]
    fn text_rendering_is_stable_for_simple_replies() {
        let body = ResponseBody::Registered {
            query: 2,
            spec: QuerySpec::Sssp { source: 3 },
        };
        assert_eq!(
            render(&body, Format::Text),
            "registered query 2: sssp(source=3)"
        );
        let err = ResponseBody::Error {
            kind: ErrorKind::UnknownHandle,
            message: "no query 9".to_string(),
        };
        assert_eq!(
            render(&err, Format::Text),
            "error (UnknownHandle): no query 9"
        );
    }

    #[test]
    fn json_rendering_is_the_wire_body() {
        let body = ResponseBody::Answer {
            query: 0,
            answer: QueryAnswer::Sssp {
                distances: vec![(0, 0.0), (1, 1.5)],
            },
        };
        let json = render(&body, Format::Json);
        assert!(json.contains("\"reply\":\"answer\""), "{json}");
        assert!(json.contains("\"kind\":\"sssp\""), "{json}");
    }
}
