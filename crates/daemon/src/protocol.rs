//! The wire protocol `graped` speaks and `grapectl` consumes.
//!
//! # Framing
//!
//! Length-delimited JSON lines: every frame is
//!
//! ```text
//! <decimal payload length in bytes> '\n' <payload (one JSON value)> '\n'
//! ```
//!
//! The explicit length makes the reader robust against payloads that could
//! themselves contain newlines, and the trailing `'\n'` is *verified*: a
//! payload that overruns or underruns its declared length is a protocol
//! error, mirroring the `ensure_fully_consumed` discipline of the binary
//! snapshot readers.  The JSON parser additionally rejects trailing
//! characters after the value, so garbage cannot hide inside a
//! correctly-framed payload either.  Frames above [`MAX_FRAME_BYTES`] are
//! rejected before any allocation.
//!
//! # Requests and responses
//!
//! Every [`Request`] carries a client-chosen `id`; the matching
//! [`Response`] echoes it, so a client can pipeline requests over one
//! connection.  Bodies are tagged maps — `{"id":1,"op":"status"}` in,
//! `{"id":1,"reply":"status",...}` out.  The tagged enums are serialized
//! by hand (the derive shim only handles fieldless enums); the flat
//! payload structs derive.

use std::io::{BufRead, Write};

use grape_algorithms::cc::CcResult;
use grape_algorithms::sssp::SsspResult;
use grape_core::metrics::LatencySummary;
use grape_core::output_delta::{OutputEvent, WireOutputDelta};
use grape_core::serve::{QueryStatus, ServeError, ServeReport};
use grape_core::spec::QuerySpec;
use grape_core::EngineError;
use grape_graph::delta::GraphDelta;
use grape_graph::types::VertexId;
use serde::{Deserialize, Error, Serialize, Value};

/// Hard cap on a single frame's payload (64 MiB): a malicious or corrupt
/// length line cannot make the reader allocate unboundedly.
pub const MAX_FRAME_BYTES: usize = 64 << 20;

/// The default `graped` port.
pub const DEFAULT_PORT: u16 = 4817;

/// A framing- or transport-level failure (distinct from an in-protocol
/// [`ResponseBody::Error`], which is a well-formed reply).
#[derive(Debug)]
pub enum WireError {
    /// The underlying socket failed.
    Io(std::io::Error),
    /// The frame itself was malformed: bad length line, oversized,
    /// truncated, payload overrunning its declared length, or non-UTF-8.
    Frame(String),
    /// The payload was not the expected JSON value.
    Json(String),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "socket error: {e}"),
            WireError::Frame(m) => write!(f, "malformed frame: {m}"),
            WireError::Json(m) => write!(f, "malformed payload: {m}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e)
    }
}

/// Writes one frame: length line, payload, terminating newline, flush.
pub fn write_frame<W: Write>(w: &mut W, payload: &str) -> std::io::Result<()> {
    writeln!(w, "{}", payload.len())?;
    w.write_all(payload.as_bytes())?;
    w.write_all(b"\n")?;
    w.flush()
}

/// Reads one frame's payload.  `Ok(None)` on a clean EOF *before* the
/// length line — EOF anywhere else is a truncated frame.
pub fn read_frame<R: BufRead>(r: &mut R) -> Result<Option<String>, WireError> {
    let mut line = String::new();
    if r.read_line(&mut line)? == 0 {
        return Ok(None);
    }
    let trimmed = line.trim_end_matches(['\r', '\n']);
    let len: usize = trimmed
        .parse()
        .map_err(|_| WireError::Frame(format!("bad frame length line {trimmed:?}")))?;
    if len > MAX_FRAME_BYTES {
        return Err(WireError::Frame(format!(
            "frame of {len} bytes exceeds the {MAX_FRAME_BYTES}-byte cap"
        )));
    }
    let mut buf = vec![0u8; len + 1];
    r.read_exact(&mut buf).map_err(|e| match e.kind() {
        std::io::ErrorKind::UnexpectedEof => {
            WireError::Frame(format!("truncated frame (declared {len} bytes)"))
        }
        _ => WireError::Io(e),
    })?;
    if buf[len] != b'\n' {
        return Err(WireError::Frame(format!(
            "payload overruns its declared length of {len} bytes"
        )));
    }
    buf.pop();
    String::from_utf8(buf)
        .map(Some)
        .map_err(|_| WireError::Frame("payload is not valid UTF-8".to_string()))
}

/// Serializes `value` and writes it as one frame.
pub fn send<W: Write, T: Serialize>(w: &mut W, value: &T) -> Result<(), WireError> {
    let json = serde_json::to_string(value).map_err(|e| WireError::Json(e.to_string()))?;
    write_frame(w, &json).map_err(WireError::Io)
}

/// Reads one frame and deserializes it.  `Ok(None)` on clean EOF.
pub fn recv<R: BufRead, T: Deserialize>(r: &mut R) -> Result<Option<T>, WireError> {
    let Some(payload) = read_frame(r)? else {
        return Ok(None);
    };
    serde_json::from_str(&payload)
        .map(Some)
        .map_err(|e| WireError::Json(e.to_string()))
}

// ---------------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------------

/// What a client can ask the daemon to do.
#[derive(Debug, Clone, PartialEq)]
pub enum RequestBody {
    /// Server + per-query state.
    Status,
    /// Uptime, per-delta latency histogram, per-query counters.
    Metrics {
        /// Include the raw per-commit latency samples.  Off by default:
        /// the summary is a few scalars, the sample vector grows with the
        /// commit window and was serialized on every poll before this
        /// flag existed.
        samples: bool,
    },
    /// Register a standing query by spec; replies with its handle id.
    Register {
        /// The query to prepare.
        spec: QuerySpec,
    },
    /// Apply one `ΔG` (exactly one `Fragmentation::apply_delta`).
    Apply {
        /// The delta.
        delta: GraphDelta,
    },
    /// Apply a stream of deltas through the pipelined batch path.
    ApplyBatch {
        /// The deltas, in stream order.
        deltas: Vec<GraphDelta>,
    },
    /// Assemble a query's answer, lazily rehydrating if evicted.
    Output {
        /// The handle id from `Register`.
        query: usize,
    },
    /// Assemble a query's answer only if it is resident, caught up and
    /// healthy — never triggers rehydration or replay.
    TryOutput {
        /// The handle id.
        query: usize,
    },
    /// Spill a query into its tiered on-disk store (a base snapshot on the
    /// first eviction, a delta-encoded increment afterwards).
    Evict {
        /// The handle id.
        query: usize,
    },
    /// Reload an evicted query and replay the deltas it missed.
    Rehydrate {
        /// The handle id.
        query: usize,
    },
    /// Fold a query's spill-store increment chain into a fresh base
    /// snapshot.
    Compact {
        /// The handle id.
        query: usize,
    },
    /// Watch a query: the daemon pushes an [`EventFrame`] over **this**
    /// connection for every answer delta the query produces.
    Subscribe {
        /// The handle id.
        query: usize,
    },
    /// Stop a subscription previously opened on this daemon.
    Unsubscribe {
        /// The subscription id from the `subscribed` reply.
        subscription: usize,
    },
    /// Stop the daemon (replies before the listener goes down).
    Shutdown,
}

/// One framed request: a client-chosen id plus the operation.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Echoed verbatim in the response.
    pub id: u64,
    /// The operation.
    pub body: RequestBody,
}

fn tagged(entries: Vec<(String, Value)>, key: &str, tag: &str) -> Value {
    let mut map = vec![(key.to_string(), Value::Str(tag.to_string()))];
    map.extend(entries);
    Value::Map(map)
}

impl Serialize for RequestBody {
    fn to_value(&self) -> Value {
        let op = |tag: &str, extra: Vec<(String, Value)>| tagged(extra, "op", tag);
        match self {
            RequestBody::Status => op("status", vec![]),
            RequestBody::Metrics { samples } => {
                op("metrics", vec![("samples".to_string(), samples.to_value())])
            }
            RequestBody::Register { spec } => {
                op("register", vec![("spec".to_string(), spec.to_value())])
            }
            RequestBody::Apply { delta } => {
                op("apply", vec![("delta".to_string(), delta.to_value())])
            }
            RequestBody::ApplyBatch { deltas } => op(
                "apply_batch",
                vec![("deltas".to_string(), deltas.to_value())],
            ),
            RequestBody::Output { query } => {
                op("output", vec![("query".to_string(), query.to_value())])
            }
            RequestBody::TryOutput { query } => {
                op("try_output", vec![("query".to_string(), query.to_value())])
            }
            RequestBody::Evict { query } => {
                op("evict", vec![("query".to_string(), query.to_value())])
            }
            RequestBody::Rehydrate { query } => {
                op("rehydrate", vec![("query".to_string(), query.to_value())])
            }
            RequestBody::Compact { query } => {
                op("compact", vec![("query".to_string(), query.to_value())])
            }
            RequestBody::Subscribe { query } => {
                op("subscribe", vec![("query".to_string(), query.to_value())])
            }
            RequestBody::Unsubscribe { subscription } => op(
                "unsubscribe",
                vec![("subscription".to_string(), subscription.to_value())],
            ),
            RequestBody::Shutdown => op("shutdown", vec![]),
        }
    }
}

impl Serialize for Request {
    fn to_value(&self) -> Value {
        let mut entries = vec![("id".to_string(), self.id.to_value())];
        if let Value::Map(body) = self.body.to_value() {
            entries.extend(body);
        }
        Value::Map(entries)
    }
}

fn field<T: Deserialize>(value: &Value, name: &str) -> Result<T, Error> {
    T::from_value(
        value
            .get_field(name)
            .ok_or_else(|| Error::missing_field(name))?,
    )
}

fn tag<'v>(value: &'v Value, key: &str) -> Result<&'v str, Error> {
    value
        .get_field(key)
        .ok_or_else(|| Error::missing_field(key))?
        .as_str()
        .ok_or_else(|| Error::custom(format!("`{key}` must be a string")))
}

impl Deserialize for RequestBody {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let body = match tag(value, "op")? {
            "status" => RequestBody::Status,
            // `samples` is optional on the wire so pre-flag clients keep
            // working (absent == the cheap summary-only reply).
            "metrics" => RequestBody::Metrics {
                samples: match value.get_field("samples") {
                    Some(v) => bool::from_value(v)?,
                    None => false,
                },
            },
            "register" => RequestBody::Register {
                spec: field(value, "spec")?,
            },
            "apply" => RequestBody::Apply {
                delta: field(value, "delta")?,
            },
            "apply_batch" => RequestBody::ApplyBatch {
                deltas: field(value, "deltas")?,
            },
            "output" => RequestBody::Output {
                query: field(value, "query")?,
            },
            "try_output" => RequestBody::TryOutput {
                query: field(value, "query")?,
            },
            "evict" => RequestBody::Evict {
                query: field(value, "query")?,
            },
            "rehydrate" => RequestBody::Rehydrate {
                query: field(value, "query")?,
            },
            "compact" => RequestBody::Compact {
                query: field(value, "query")?,
            },
            "subscribe" => RequestBody::Subscribe {
                query: field(value, "query")?,
            },
            "unsubscribe" => RequestBody::Unsubscribe {
                subscription: field(value, "subscription")?,
            },
            "shutdown" => RequestBody::Shutdown,
            other => return Err(Error::custom(format!("unknown op `{other}`"))),
        };
        Ok(body)
    }
}

impl Deserialize for Request {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(Request {
            id: field(value, "id")?,
            body: RequestBody::from_value(value)?,
        })
    }
}

// ---------------------------------------------------------------------------
// Responses
// ---------------------------------------------------------------------------

/// Why a request failed — the in-protocol error taxonomy.  The daemon maps
/// [`ServeError`] onto these; transport-level failures never reach this
/// type (they surface as [`WireError`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ErrorKind {
    /// The request was well-framed but not a valid operation.
    BadRequest,
    /// The query id was never issued by this daemon.
    UnknownHandle,
    /// The subscription id is not active on this daemon (never issued, or
    /// already unsubscribed).
    UnknownSubscription,
    /// The query was quarantined by an earlier failed refresh.
    Poisoned,
    /// The partition layer rejected the delta; the timeline did not
    /// advance for it.
    RejectedDelta,
    /// The query is already evicted (for `evict`), or evicted/behind (for
    /// `try_output`, which never does work to fix that).
    NotResident,
    /// A spill file could not be written, read back, or decoded.
    Snapshot,
    /// The engine failed (refresh divergence, superstep limit, ...).
    Engine,
    /// The daemon is shutting down and no longer serves requests.
    ShuttingDown,
}

/// An apply/batch outcome flattened for the wire: the scalar facts of a
/// [`ServeReport`] plus the ids whose refresh failed.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ApplySummary {
    /// Timeline version after this commit.
    pub version: usize,
    /// Raw deltas the commit absorbed (> 1 under group-commit).
    pub deltas: usize,
    /// Fragments the single delta application rebuilt.
    pub rebuilt: Vec<usize>,
    /// Fragments every query kept sharing verbatim.
    pub reused: usize,
    /// Queries whose refresh succeeded.
    pub refreshed: Vec<usize>,
    /// Queries whose refresh failed (poisoned or left behind; see
    /// `status`).
    pub failed: Vec<usize>,
    /// Total PEval invocations across the successful refreshes.
    pub peval_calls: usize,
    /// Queries that were behind and caught up before this commit.
    pub caught_up: Vec<usize>,
    /// Evicted queries whose refresh is deferred until rehydration.
    pub deferred: Vec<usize>,
    /// Queries skipped because they are poisoned.
    pub poisoned: Vec<usize>,
    /// Queries the eviction policy spilled after this commit.
    pub evicted: Vec<usize>,
    /// Queries whose spill chains were folded into a fresh base after this
    /// commit (absent on the wire from older daemons).
    #[serde(default)]
    pub compacted: Vec<usize>,
}

impl From<&ServeReport> for ApplySummary {
    fn from(r: &ServeReport) -> Self {
        ApplySummary {
            version: r.version,
            deltas: r.deltas,
            rebuilt: r.rebuilt.clone(),
            reused: r.reused,
            refreshed: r
                .refreshed
                .iter()
                .filter(|q| q.result.is_ok())
                .map(|q| q.query)
                .collect(),
            failed: r
                .refreshed
                .iter()
                .filter(|q| q.result.is_err())
                .map(|q| q.query)
                .collect(),
            peval_calls: r.peval_calls(),
            caught_up: r.caught_up.clone(),
            deferred: r.deferred.clone(),
            poisoned: r.poisoned.clone(),
            evicted: r.evicted.clone(),
            compacted: r.compacted.clone(),
        }
    }
}

/// A delta the partition layer rejected mid-batch (wire mirror of
/// `BatchRejection`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RejectedDelta {
    /// Index into the submitted delta slice.
    pub index: usize,
    /// The partition layer's reason.
    pub reason: String,
}

/// One registered query's row in `status` / `metrics`: what it is (the
/// spec) plus where it stands (the engine-side [`QueryStatus`]).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueryRow {
    /// The spec it was registered with.
    pub spec: QuerySpec,
    /// Engine-side serving state.
    pub status: QueryStatus,
}

/// The `status` reply.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StatusInfo {
    /// Current timeline version.
    pub version: usize,
    /// Raw deltas absorbed since start.
    pub deltas_applied: usize,
    /// Timeline versions retained for replay.
    pub retained_versions: usize,
    /// Registered queries.
    pub num_queries: usize,
    /// Currently evicted queries.
    pub num_evicted: usize,
    /// Serialized size of all resident partials.
    pub resident_partial_bytes: usize,
    /// Where spill stores live on the daemon's filesystem (absent on the
    /// wire from older daemons).
    #[serde(default)]
    pub spill_dir: String,
    /// Spill-chain compactions performed since start (absent on the wire
    /// from older daemons).
    #[serde(default)]
    pub compactions: u64,
    /// Per-query rows, sorted by id.
    pub queries: Vec<QueryRow>,
}

/// The `metrics` reply.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsInfo {
    /// Milliseconds since the daemon started.
    pub uptime_ms: u64,
    /// Current timeline version.
    pub version: usize,
    /// Raw deltas absorbed since start.
    pub deltas_applied: usize,
    /// Per-commit latency histogram recorded by the server itself.
    pub latency: LatencySummary,
    /// Live samples behind `latency` (windowed; see
    /// `GrapeServer::latency_summary`).
    pub latency_samples: usize,
    /// The raw per-commit latency samples in milliseconds — only when the
    /// request set `samples: true` (`grapectl metrics --samples`).
    pub samples: Option<Vec<f64>>,
    /// Serialized size of all resident partials.
    pub resident_partial_bytes: usize,
    /// Spill-chain compactions performed since start (absent on the wire
    /// from older daemons).
    #[serde(default)]
    pub compactions: u64,
    /// Per-query rows, sorted by id.
    pub queries: Vec<QueryRow>,
}

/// A query's assembled answer in canonical wire form: rows sorted by
/// vertex id, so equal answers are byte-equal frames.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryAnswer {
    /// Shortest distances (vertex, distance), sorted by vertex;
    /// unreachable vertices are absent.
    Sssp {
        /// The (vertex, distance) rows.
        distances: Vec<(VertexId, f64)>,
    },
    /// Component labels (vertex, component id), sorted by vertex.
    Cc {
        /// The (vertex, component) rows.
        components: Vec<(VertexId, VertexId)>,
    },
}

impl QueryAnswer {
    /// Canonicalizes an [`SsspResult`] (sorted by vertex id).
    pub fn from_sssp(result: &SsspResult) -> Self {
        let mut distances: Vec<(VertexId, f64)> =
            result.distances().iter().map(|(&v, &d)| (v, d)).collect();
        distances.sort_by_key(|&(v, _)| v);
        QueryAnswer::Sssp { distances }
    }

    /// Canonicalizes a [`CcResult`] (sorted by vertex id).
    pub fn from_cc(result: &CcResult) -> Self {
        let mut components: Vec<(VertexId, VertexId)> =
            result.labels().iter().map(|(&v, &c)| (v, c)).collect();
        components.sort_by_key(|&(v, _)| v);
        QueryAnswer::Cc { components }
    }

    /// The answer's query kind tag (`"sssp"`, `"cc"`).
    pub fn kind(&self) -> &'static str {
        match self {
            QueryAnswer::Sssp { .. } => "sssp",
            QueryAnswer::Cc { .. } => "cc",
        }
    }
}

impl Serialize for QueryAnswer {
    fn to_value(&self) -> Value {
        match self {
            QueryAnswer::Sssp { distances } => tagged(
                vec![("distances".to_string(), distances.to_value())],
                "kind",
                "sssp",
            ),
            QueryAnswer::Cc { components } => tagged(
                vec![("components".to_string(), components.to_value())],
                "kind",
                "cc",
            ),
        }
    }
}

impl Deserialize for QueryAnswer {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match tag(value, "kind")? {
            "sssp" => Ok(QueryAnswer::Sssp {
                distances: field(value, "distances")?,
            }),
            "cc" => Ok(QueryAnswer::Cc {
                components: field(value, "components")?,
            }),
            other => Err(Error::custom(format!("unknown answer kind `{other}`"))),
        }
    }
}

/// What the daemon replies with.
#[derive(Debug, Clone, PartialEq)]
pub enum ResponseBody {
    /// A query was registered under `query`.
    Registered {
        /// The handle id to use in later requests.
        query: usize,
        /// The spec, echoed back.
        spec: QuerySpec,
    },
    /// An apply / apply_batch outcome: one summary per commit, plus the
    /// rejection that stopped a batch (commits before it are durable).
    Applied {
        /// Per-commit summaries, in stream order.
        reports: Vec<ApplySummary>,
        /// The rejection that stopped a batch, if any.
        rejected: Option<RejectedDelta>,
    },
    /// A query's assembled answer.
    Answer {
        /// The handle id.
        query: usize,
        /// The canonical answer.
        answer: QueryAnswer,
    },
    /// A query was spilled to `spill`.
    Evicted {
        /// The handle id.
        query: usize,
        /// The spill file path on the daemon's filesystem.
        spill: String,
    },
    /// A query was reloaded and caught up.
    Rehydrated {
        /// The handle id.
        query: usize,
        /// Deltas replayed to catch up.
        replayed: usize,
        /// PEval invocations of the replay (0 on the monotone path).
        peval_calls: usize,
    },
    /// A query's spill chain was compacted (or was already a lone base).
    Compacted {
        /// The handle id.
        query: usize,
        /// Whether a chain was actually folded (`false` when there were no
        /// increments to fold).
        folded: bool,
    },
    /// A subscription was opened; [`EventFrame`]s with this id follow on
    /// the same connection.
    Subscribed {
        /// The handle id.
        query: usize,
        /// The subscription id (echoed in every pushed event).
        subscription: usize,
    },
    /// A subscription was closed; no further events carry its id.
    Unsubscribed {
        /// The subscription id.
        subscription: usize,
    },
    /// The `status` reply.
    Status(StatusInfo),
    /// The `metrics` reply.
    Metrics(MetricsInfo),
    /// The daemon acknowledged `shutdown` and is going down.
    ShuttingDown,
    /// The request failed (the daemon keeps serving).
    Error {
        /// The error taxonomy entry.
        kind: ErrorKind,
        /// Human-readable detail.
        message: String,
    },
}

/// One framed response: the echoed request id plus the body.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// The id of the request this answers.
    pub id: u64,
    /// The reply.
    pub body: ResponseBody,
}

impl Serialize for ResponseBody {
    fn to_value(&self) -> Value {
        let reply = |tag: &str, extra: Vec<(String, Value)>| tagged(extra, "reply", tag);
        match self {
            ResponseBody::Registered { query, spec } => reply(
                "registered",
                vec![
                    ("query".to_string(), query.to_value()),
                    ("spec".to_string(), spec.to_value()),
                ],
            ),
            ResponseBody::Applied { reports, rejected } => reply(
                "applied",
                vec![
                    ("reports".to_string(), reports.to_value()),
                    ("rejected".to_string(), rejected.to_value()),
                ],
            ),
            ResponseBody::Answer { query, answer } => reply(
                "answer",
                vec![
                    ("query".to_string(), query.to_value()),
                    ("answer".to_string(), answer.to_value()),
                ],
            ),
            ResponseBody::Evicted { query, spill } => reply(
                "evicted",
                vec![
                    ("query".to_string(), query.to_value()),
                    ("spill".to_string(), spill.to_value()),
                ],
            ),
            ResponseBody::Rehydrated {
                query,
                replayed,
                peval_calls,
            } => reply(
                "rehydrated",
                vec![
                    ("query".to_string(), query.to_value()),
                    ("replayed".to_string(), replayed.to_value()),
                    ("peval_calls".to_string(), peval_calls.to_value()),
                ],
            ),
            ResponseBody::Compacted { query, folded } => reply(
                "compacted",
                vec![
                    ("query".to_string(), query.to_value()),
                    ("folded".to_string(), folded.to_value()),
                ],
            ),
            ResponseBody::Subscribed {
                query,
                subscription,
            } => reply(
                "subscribed",
                vec![
                    ("query".to_string(), query.to_value()),
                    ("subscription".to_string(), subscription.to_value()),
                ],
            ),
            ResponseBody::Unsubscribed { subscription } => reply(
                "unsubscribed",
                vec![("subscription".to_string(), subscription.to_value())],
            ),
            ResponseBody::Status(info) => {
                reply("status", vec![("status".to_string(), info.to_value())])
            }
            ResponseBody::Metrics(info) => {
                reply("metrics", vec![("metrics".to_string(), info.to_value())])
            }
            ResponseBody::ShuttingDown => reply("shutting_down", vec![]),
            ResponseBody::Error { kind, message } => reply(
                "error",
                vec![
                    ("kind".to_string(), kind.to_value()),
                    ("message".to_string(), message.to_value()),
                ],
            ),
        }
    }
}

impl Serialize for Response {
    fn to_value(&self) -> Value {
        let mut entries = vec![("id".to_string(), self.id.to_value())];
        if let Value::Map(body) = self.body.to_value() {
            entries.extend(body);
        }
        Value::Map(entries)
    }
}

impl Deserialize for ResponseBody {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let body = match tag(value, "reply")? {
            "registered" => ResponseBody::Registered {
                query: field(value, "query")?,
                spec: field(value, "spec")?,
            },
            "applied" => ResponseBody::Applied {
                reports: field(value, "reports")?,
                rejected: field(value, "rejected")?,
            },
            "answer" => ResponseBody::Answer {
                query: field(value, "query")?,
                answer: field(value, "answer")?,
            },
            "evicted" => ResponseBody::Evicted {
                query: field(value, "query")?,
                spill: field(value, "spill")?,
            },
            "rehydrated" => ResponseBody::Rehydrated {
                query: field(value, "query")?,
                replayed: field(value, "replayed")?,
                peval_calls: field(value, "peval_calls")?,
            },
            "compacted" => ResponseBody::Compacted {
                query: field(value, "query")?,
                folded: field(value, "folded")?,
            },
            "subscribed" => ResponseBody::Subscribed {
                query: field(value, "query")?,
                subscription: field(value, "subscription")?,
            },
            "unsubscribed" => ResponseBody::Unsubscribed {
                subscription: field(value, "subscription")?,
            },
            "status" => ResponseBody::Status(field(value, "status")?),
            "metrics" => ResponseBody::Metrics(field(value, "metrics")?),
            "shutting_down" => ResponseBody::ShuttingDown,
            "error" => ResponseBody::Error {
                kind: field(value, "kind")?,
                message: field(value, "message")?,
            },
            other => return Err(Error::custom(format!("unknown reply `{other}`"))),
        };
        Ok(body)
    }
}

impl Deserialize for Response {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(Response {
            id: field(value, "id")?,
            body: ResponseBody::from_value(value)?,
        })
    }
}

/// Maps a [`ServeError`] onto the wire taxonomy.
pub fn serve_error_body(e: &ServeError) -> ResponseBody {
    let kind = match e {
        ServeError::Engine(EngineError::PoisonedHandle) => ErrorKind::Poisoned,
        ServeError::Engine(_) => ErrorKind::Engine,
        ServeError::Delta(_) => ErrorKind::RejectedDelta,
        ServeError::UnknownHandle(_) => ErrorKind::UnknownHandle,
        ServeError::AlreadyEvicted(_) => ErrorKind::NotResident,
        ServeError::UnknownSubscription(_) => ErrorKind::UnknownSubscription,
        ServeError::Snapshot(_) => ErrorKind::Snapshot,
    };
    ResponseBody::Error {
        kind,
        message: e.to_string(),
    }
}

/// A server-initiated push: one [`OutputEvent`] for one subscription.
///
/// Event frames share the connection with replies; clients tell them apart
/// because an event frame carries an `event` tag and never an `id`/`reply`
/// pair. Within one subscription, frames arrive in `version` order.
#[derive(Debug, Clone, PartialEq)]
pub struct EventFrame {
    /// The subscription this event belongs to (wire id from `subscribed`).
    pub subscription: usize,
    /// The handle id of the watched query.
    pub query: usize,
    /// The server-side version the event advances the answer to.
    pub version: usize,
    /// The payload: an answer delta, or the terminal poison notice.
    pub event: OutputEvent,
}

impl Serialize for EventFrame {
    fn to_value(&self) -> Value {
        let mut entries = vec![
            ("subscription".to_string(), self.subscription.to_value()),
            ("query".to_string(), self.query.to_value()),
            ("version".to_string(), self.version.to_value()),
        ];
        match &self.event {
            OutputEvent::Delta(delta) => {
                entries.push(("event".to_string(), Value::Str("delta".to_string())));
                entries.push(("changed".to_string(), delta.changed.to_value()));
                entries.push(("removed".to_string(), delta.removed.to_value()));
            }
            OutputEvent::Poisoned => {
                entries.push(("event".to_string(), Value::Str("poisoned".to_string())));
            }
        }
        Value::Map(entries)
    }
}

impl Deserialize for EventFrame {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let event = match tag(value, "event")? {
            "delta" => OutputEvent::Delta(WireOutputDelta {
                changed: field(value, "changed")?,
                removed: field(value, "removed")?,
            }),
            "poisoned" => OutputEvent::Poisoned,
            other => return Err(Error::custom(format!("unknown event `{other}`"))),
        };
        Ok(EventFrame {
            subscription: field(value, "subscription")?,
            query: field(value, "query")?,
            version: field(value, "version")?,
            event,
        })
    }
}

/// Anything the daemon writes on a connection: a reply or a pushed event.
#[derive(Debug, Clone, PartialEq)]
#[allow(clippy::large_enum_variant)]
pub enum ServerFrame {
    /// A reply correlated to a request by id.
    Reply(Response),
    /// A server-initiated subscription event.
    Event(EventFrame),
}

impl Serialize for ServerFrame {
    fn to_value(&self) -> Value {
        match self {
            ServerFrame::Reply(response) => response.to_value(),
            ServerFrame::Event(frame) => frame.to_value(),
        }
    }
}

impl Deserialize for ServerFrame {
    fn from_value(value: &Value) -> Result<Self, Error> {
        if value.get_field("event").is_some() {
            Ok(ServerFrame::Event(EventFrame::from_value(value)?))
        } else {
            Ok(ServerFrame::Reply(Response::from_value(value)?))
        }
    }
}
