//! The `graped` daemon: TCP front, single-threaded engine back.
//!
//! Layout:
//!
//! ```text
//! client ──TCP──▶ connection thread ──┐
//! client ──TCP──▶ connection thread ──┼──mpsc──▶ engine thread (owns GrapeServer)
//! mock feeder ────────────────────────┘
//! ```
//!
//! Each accepted socket gets its own blocking reader thread; every parsed
//! request crosses the command channel with a private reply channel and is
//! executed **on the engine thread**, which is the only code that ever
//! touches the [`GrapeServer`].  Concurrent clients can interleave
//! requests however they like — applies still happen one at a time, in
//! channel arrival order, so each `ΔG` runs exactly one
//! `Fragmentation::apply_delta` (the invariant the serving layer is built
//! around, now enforced end-to-end by construction rather than by
//! caller discipline).
//!
//! Shutdown: a `shutdown` request (or [`GrapedHandle::shutdown`]) breaks
//! the engine loop, raises the stop flag and self-connects once to wake
//! the blocking `accept`.  In-flight requests on other connections get a
//! [`ErrorKind::ShuttingDown`] reply.

use std::io::{BufReader, BufWriter};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use grape_algorithms::cc::{Cc, CcQuery};
use grape_algorithms::sssp::{Sssp, SsspQuery};
use grape_core::config::EngineMode;
use grape_core::serve::{GrapeServer, QueryHandle, ServeError, SubscriptionId};
use grape_core::session::GrapeSession;
use grape_core::spec::QuerySpec;
use grape_core::transport::TransportSpec;
use grape_graph::generators;
use grape_graph::graph::Graph;
use grape_partition::metis_like::MetisLike;
use grape_partition::strategy::PartitionStrategy;

use crate::mock::{self, MockConfig};
use crate::protocol::{
    self, ApplySummary, ErrorKind, EventFrame, MetricsInfo, QueryAnswer, QueryRow, RejectedDelta,
    Request, RequestBody, Response, ResponseBody, ServerFrame, StatusInfo,
};

/// The graph a daemon starts from (deltas evolve it afterwards).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphSource {
    /// A `width × height` road grid with seeded random weights
    /// ([`generators::road_grid`]).
    Grid {
        /// Grid width.
        width: usize,
        /// Grid height.
        height: usize,
        /// Weight seed.
        seed: u64,
    },
    /// A path graph `0 → 1 → … → n-1` (tiny; for tests and smoke runs).
    Path {
        /// Number of vertices.
        n: usize,
    },
}

impl GraphSource {
    /// Builds the start graph.
    pub fn build(&self) -> Graph {
        match *self {
            GraphSource::Grid {
                width,
                height,
                seed,
            } => generators::road_grid(width, height, seed),
            GraphSource::Path { n } => {
                let mut b = grape_graph::builder::GraphBuilder::directed().ensure_vertices(n);
                for v in 1..n as u64 {
                    b = b.add_edge(v - 1, v);
                }
                b.build()
            }
        }
    }

    /// Parses `grid:<W>x<H>[@seed]` or `path:<N>`.
    pub fn parse(s: &str) -> Result<Self, String> {
        if let Some(rest) = s.strip_prefix("grid:") {
            let (dims, seed) = match rest.split_once('@') {
                Some((d, seed)) => (
                    d,
                    seed.parse::<u64>()
                        .map_err(|_| format!("bad grid seed in {s:?}"))?,
                ),
                None => (rest, 7),
            };
            let (w, h) = dims
                .split_once('x')
                .ok_or_else(|| format!("expected grid:<W>x<H> in {s:?}"))?;
            let width = w.parse().map_err(|_| format!("bad grid width in {s:?}"))?;
            let height = h.parse().map_err(|_| format!("bad grid height in {s:?}"))?;
            Ok(GraphSource::Grid {
                width,
                height,
                seed,
            })
        } else if let Some(n) = s.strip_prefix("path:") {
            Ok(GraphSource::Path {
                n: n.parse().map_err(|_| format!("bad path length in {s:?}"))?,
            })
        } else {
            Err(format!(
                "unknown graph source {s:?} (expected grid:<W>x<H>[@seed] or path:<N>)"
            ))
        }
    }
}

/// Everything needed to spawn a daemon.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Bind address; port `0` picks an ephemeral port (see
    /// [`GrapedHandle::addr`]).
    pub addr: String,
    /// Engine workers per query refresh.
    pub workers: usize,
    /// Refresh fan-out width of the `GrapeServer`.
    pub refresh_threads: usize,
    /// Fragments to partition the start graph into.
    pub fragments: usize,
    /// Engine mode (defaults to `GRAPE_ENGINE_MODE`).
    pub mode: EngineMode,
    /// Message transport; `None` picks the mode's natural in-process
    /// substrate.  `TransportSpec::Process` shards the fragments across
    /// `grape-worker` subprocesses.
    pub transport: Option<TransportSpec>,
    /// The start graph.
    pub graph: GraphSource,
    /// Explicit spill directory for evicted queries (temp dir otherwise).
    pub spill_dir: Option<PathBuf>,
    /// When set, registers the synthetic workload and feeds generated
    /// deltas (the `--mock` mode).
    pub mock: Option<MockConfig>,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            addr: format!("127.0.0.1:{}", protocol::DEFAULT_PORT),
            workers: 2,
            refresh_threads: 2,
            fragments: 4,
            mode: EngineMode::default_from_env(),
            transport: None,
            graph: GraphSource::Grid {
                width: 24,
                height: 24,
                seed: 7,
            },
            spill_dir: None,
            mock: None,
        }
    }
}

/// A failure to *start* the daemon (once running, failures are per-request
/// protocol errors).
#[derive(Debug)]
pub enum DaemonError {
    /// Binding or socket setup failed.
    Io(std::io::Error),
    /// Partitioning the start graph failed.
    Partition(String),
    /// Preparing the mock workload failed.
    Register(String),
}

impl std::fmt::Display for DaemonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DaemonError::Io(e) => write!(f, "cannot start daemon: {e}"),
            DaemonError::Partition(m) => write!(f, "cannot partition start graph: {m}"),
            DaemonError::Register(m) => write!(f, "cannot register mock workload: {m}"),
        }
    }
}

impl std::error::Error for DaemonError {}

impl From<std::io::Error> for DaemonError {
    fn from(e: std::io::Error) -> Self {
        DaemonError::Io(e)
    }
}

/// A registered query's typed handle, erased into the one enum the engine
/// thread dispatches on (specs arrive as data, not as types).
enum AnyHandle {
    Sssp(QueryHandle<Sssp>),
    Cc(QueryHandle<Cc>),
}

/// One live wire subscription: the serve-layer id, the watched query, and
/// the connection writer that receives its pushed [`EventFrame`]s.
struct Subscriber {
    sub: SubscriptionId,
    query: usize,
    tx: Sender<ServerFrame>,
}

/// The engine thread's state: the `GrapeServer` plus the spec/handle table
/// mapping wire-level query ids onto typed handles, plus the live wire
/// subscriptions fanning answer deltas back out to connections.
struct Engine {
    server: GrapeServer,
    entries: Vec<(QuerySpec, AnyHandle)>,
    subscribers: Vec<Subscriber>,
    started: Instant,
}

impl Engine {
    fn err(kind: ErrorKind, message: impl Into<String>) -> ResponseBody {
        ResponseBody::Error {
            kind,
            message: message.into(),
        }
    }

    fn register(&mut self, spec: QuerySpec) -> Result<usize, ServeError> {
        let id = match spec {
            QuerySpec::Sssp { source } => {
                let h = self.server.register(Sssp, SsspQuery::new(source))?;
                self.entries.push((spec, AnyHandle::Sssp(h)));
                h.id()
            }
            QuerySpec::Cc => {
                let h = self.server.register(Cc, CcQuery)?;
                self.entries.push((spec, AnyHandle::Cc(h)));
                h.id()
            }
        };
        debug_assert_eq!(id + 1, self.entries.len(), "slot ids are dense");
        Ok(id)
    }

    fn rows(&self) -> Vec<QueryRow> {
        self.server
            .query_statuses()
            .into_iter()
            .map(|status| QueryRow {
                spec: self.entries[status.query].0,
                status,
            })
            .collect()
    }

    fn output(&mut self, query: usize) -> Result<QueryAnswer, ServeError> {
        match &self.entries[query].1 {
            AnyHandle::Sssp(h) => {
                let h = *h;
                self.server.output(&h).map(|r| QueryAnswer::from_sssp(&r))
            }
            AnyHandle::Cc(h) => {
                let h = *h;
                self.server.output(&h).map(|r| QueryAnswer::from_cc(&r))
            }
        }
    }

    fn try_output(&self, query: usize) -> ResponseBody {
        let status = &self.server.query_statuses()[query];
        if status.evicted {
            return Self::err(
                ErrorKind::NotResident,
                format!("query {query} is evicted; use output or rehydrate"),
            );
        }
        if status.poisoned {
            return Self::err(
                ErrorKind::Poisoned,
                format!("query {query} was poisoned by an earlier failed refresh"),
            );
        }
        if status.version < self.server.version() {
            return Self::err(
                ErrorKind::NotResident,
                format!(
                    "query {query} is behind (version {} of {}); use output or rehydrate",
                    status.version,
                    self.server.version()
                ),
            );
        }
        let result = match &self.entries[query].1 {
            AnyHandle::Sssp(h) => self
                .server
                .prepared(h)
                .map(|p| p.expect("resident").try_output())
                .and_then(|r| r.map_err(ServeError::Engine))
                .map(|r| QueryAnswer::from_sssp(&r)),
            AnyHandle::Cc(h) => self
                .server
                .prepared(h)
                .map(|p| p.expect("resident").try_output())
                .and_then(|r| r.map_err(ServeError::Engine))
                .map(|r| QueryAnswer::from_cc(&r)),
        };
        match result {
            Ok(answer) => ResponseBody::Answer { query, answer },
            Err(e) => protocol::serve_error_body(&e),
        }
    }

    /// Fans every answer delta buffered by the `GrapeServer` out to the
    /// matching wire subscriptions.  A failed send means the connection's
    /// writer is gone: the subscriber is dropped and the serve-layer
    /// subscription closed (so the cold-watch buffer stops growing).
    fn pump_events(&mut self) {
        let deltas = self.server.drain_events();
        if deltas.is_empty() {
            return;
        }
        let mut dead: Vec<usize> = Vec::new();
        for delta in deltas {
            for (idx, sub) in self.subscribers.iter().enumerate() {
                if sub.query != delta.query || dead.contains(&idx) {
                    continue;
                }
                let frame = ServerFrame::Event(EventFrame {
                    subscription: sub.sub.id(),
                    query: delta.query,
                    version: delta.version,
                    event: delta.event.clone(),
                });
                if sub.tx.send(frame).is_err() {
                    dead.push(idx);
                }
            }
        }
        dead.sort_unstable();
        for idx in dead.into_iter().rev() {
            let gone = self.subscribers.remove(idx);
            let _ = self.server.unsubscribe(gone.sub);
        }
    }

    /// Executes one request body.  Runs on the engine thread only.
    /// `events` is the caller's event channel when the request arrived
    /// over a connection that can receive pushed frames.
    fn handle(&mut self, body: RequestBody, events: Option<&Sender<ServerFrame>>) -> ResponseBody {
        match body {
            RequestBody::Status => ResponseBody::Status(StatusInfo {
                version: self.server.version(),
                deltas_applied: self.server.deltas_applied(),
                retained_versions: self.server.retained_versions(),
                num_queries: self.server.num_queries(),
                num_evicted: self.server.num_evicted(),
                resident_partial_bytes: self.server.resident_partial_bytes(),
                spill_dir: self.server.spill_dir().display().to_string(),
                compactions: self.server.compactions(),
                queries: self.rows(),
            }),
            RequestBody::Metrics { samples } => ResponseBody::Metrics(MetricsInfo {
                uptime_ms: self.started.elapsed().as_millis() as u64,
                version: self.server.version(),
                deltas_applied: self.server.deltas_applied(),
                latency: self.server.latency_summary(),
                latency_samples: self.server.latency_samples(),
                // The raw vector is opt-in: the summary above is O(1) on
                // the wire, the samples are O(window).
                samples: if samples {
                    Some(self.server.latency_samples_ms())
                } else {
                    None
                },
                resident_partial_bytes: self.server.resident_partial_bytes(),
                compactions: self.server.compactions(),
                queries: self.rows(),
            }),
            RequestBody::Register { spec } => match self.register(spec) {
                Ok(query) => ResponseBody::Registered { query, spec },
                Err(e) => protocol::serve_error_body(&e),
            },
            RequestBody::Apply { delta } => match self.server.apply(&delta) {
                Ok(report) => ResponseBody::Applied {
                    reports: vec![ApplySummary::from(&report)],
                    rejected: None,
                },
                Err(e) => protocol::serve_error_body(&e),
            },
            RequestBody::ApplyBatch { deltas } => {
                let batch = self.server.apply_batch(&deltas);
                ResponseBody::Applied {
                    reports: batch.reports.iter().map(ApplySummary::from).collect(),
                    rejected: batch.rejected.map(|r| RejectedDelta {
                        index: r.index,
                        reason: r.reason,
                    }),
                }
            }
            RequestBody::Output { query } => {
                if query >= self.entries.len() {
                    return Self::err(
                        ErrorKind::UnknownHandle,
                        format!("query handle {query} was never registered"),
                    );
                }
                match self.output(query) {
                    Ok(answer) => ResponseBody::Answer { query, answer },
                    Err(e) => protocol::serve_error_body(&e),
                }
            }
            RequestBody::TryOutput { query } => {
                if query >= self.entries.len() {
                    return Self::err(
                        ErrorKind::UnknownHandle,
                        format!("query handle {query} was never registered"),
                    );
                }
                self.try_output(query)
            }
            RequestBody::Evict { query } => {
                if query >= self.entries.len() {
                    return Self::err(
                        ErrorKind::UnknownHandle,
                        format!("query handle {query} was never registered"),
                    );
                }
                let result = match &self.entries[query].1 {
                    AnyHandle::Sssp(h) => self.server.evict(h),
                    AnyHandle::Cc(h) => self.server.evict(h),
                };
                match result {
                    Ok(spill) => ResponseBody::Evicted {
                        query,
                        spill: spill.display().to_string(),
                    },
                    Err(e) => protocol::serve_error_body(&e),
                }
            }
            RequestBody::Rehydrate { query } => {
                if query >= self.entries.len() {
                    return Self::err(
                        ErrorKind::UnknownHandle,
                        format!("query handle {query} was never registered"),
                    );
                }
                let result = match &self.entries[query].1 {
                    AnyHandle::Sssp(h) => {
                        let h = *h;
                        self.server.rehydrate(&h)
                    }
                    AnyHandle::Cc(h) => {
                        let h = *h;
                        self.server.rehydrate(&h)
                    }
                };
                match result {
                    Ok(report) => ResponseBody::Rehydrated {
                        query,
                        replayed: report.replayed.len(),
                        peval_calls: report.peval_calls(),
                    },
                    Err(e) => protocol::serve_error_body(&e),
                }
            }
            RequestBody::Compact { query } => {
                if query >= self.entries.len() {
                    return Self::err(
                        ErrorKind::UnknownHandle,
                        format!("query handle {query} was never registered"),
                    );
                }
                let result = match &self.entries[query].1 {
                    AnyHandle::Sssp(h) => {
                        let h = *h;
                        self.server.compact(&h)
                    }
                    AnyHandle::Cc(h) => {
                        let h = *h;
                        self.server.compact(&h)
                    }
                };
                match result {
                    Ok(folded) => ResponseBody::Compacted { query, folded },
                    Err(e) => protocol::serve_error_body(&e),
                }
            }
            RequestBody::Subscribe { query } => {
                let Some(events) = events else {
                    return Self::err(
                        ErrorKind::BadRequest,
                        "subscribe needs a connection that can receive pushed events",
                    );
                };
                if query >= self.entries.len() {
                    return Self::err(
                        ErrorKind::UnknownHandle,
                        format!("query handle {query} was never registered"),
                    );
                }
                let result = match &self.entries[query].1 {
                    AnyHandle::Sssp(h) => self.server.subscribe(h),
                    AnyHandle::Cc(h) => self.server.subscribe(h),
                };
                match result {
                    Ok(sub) => {
                        let subscription = sub.id();
                        self.subscribers.push(Subscriber {
                            sub,
                            query,
                            tx: events.clone(),
                        });
                        ResponseBody::Subscribed {
                            query,
                            subscription,
                        }
                    }
                    Err(e) => protocol::serve_error_body(&e),
                }
            }
            RequestBody::Unsubscribe { subscription } => {
                match self
                    .subscribers
                    .iter()
                    .position(|s| s.sub.id() == subscription)
                {
                    Some(idx) => {
                        let gone = self.subscribers.remove(idx);
                        match self.server.unsubscribe(gone.sub) {
                            Ok(()) => ResponseBody::Unsubscribed { subscription },
                            Err(e) => protocol::serve_error_body(&e),
                        }
                    }
                    None => Self::err(
                        ErrorKind::UnknownSubscription,
                        format!("subscription {subscription} is not active"),
                    ),
                }
            }
            RequestBody::Shutdown => ResponseBody::ShuttingDown,
        }
    }
}

/// Where a command's reply goes: a private in-process channel (mock
/// feeder, [`GrapedHandle::shutdown`]) or a connection's writer thread,
/// where the reply is correlated to its request by id and interleaves
/// with pushed [`EventFrame`]s.
pub(crate) enum Replier {
    /// In-process caller; gets the bare body.
    Channel(Sender<ResponseBody>),
    /// A connection's writer; gets a framed [`Response`].
    Connection {
        /// The connection's outbound frame channel.
        tx: Sender<ServerFrame>,
        /// The request id to echo.
        id: u64,
    },
}

impl Replier {
    /// Delivers the reply; `false` when the receiving side is gone.
    fn send(&self, body: ResponseBody) -> bool {
        match self {
            Replier::Channel(tx) => tx.send(body).is_ok(),
            Replier::Connection { tx, id } => tx
                .send(ServerFrame::Reply(Response { id: *id, body }))
                .is_ok(),
        }
    }

    /// The caller's event channel, when it can receive pushed frames.
    fn events(&self) -> Option<&Sender<ServerFrame>> {
        match self {
            Replier::Channel(_) => None,
            Replier::Connection { tx, .. } => Some(tx),
        }
    }
}

/// One request crossing from a socket (or the mock feeder) to the engine
/// thread, with its reply route.
pub(crate) struct Command {
    pub(crate) body: RequestBody,
    pub(crate) replier: Replier,
}

/// A running daemon.  Dropping the handle does **not** stop the daemon;
/// call [`GrapedHandle::shutdown`] (or send a `shutdown` request) first,
/// or [`GrapedHandle::wait`] to serve until one arrives.
pub struct GrapedHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    tx: Sender<Command>,
    accept: Option<JoinHandle<()>>,
    engine: Option<JoinHandle<()>>,
    feeder: Option<JoinHandle<()>>,
}

impl GrapedHandle {
    /// Builds the graph, prepares the (possibly mock) workload, binds the
    /// listener and starts the accept + engine threads.  Returns once the
    /// daemon accepts connections.
    pub fn spawn(config: DaemonConfig) -> Result<GrapedHandle, DaemonError> {
        let graph = config.graph.build();
        let fragmentation = MetisLike::new(config.fragments)
            .partition(&graph)
            .map_err(|e| DaemonError::Partition(e.to_string()))?;
        let mut builder = GrapeSession::builder()
            .workers(config.workers)
            .mode(config.mode)
            .refresh_threads(config.refresh_threads);
        if let Some(transport) = config.transport {
            builder = builder.transport(transport);
        }
        let session = builder
            .build()
            .map_err(|e| DaemonError::Partition(e.to_string()))?;
        let server = match &config.spill_dir {
            Some(dir) => GrapeServer::with_spill_dir(session, fragmentation, dir.clone()),
            None => GrapeServer::new(session, fragmentation),
        };
        let mut engine = Engine {
            server,
            entries: Vec::new(),
            subscribers: Vec::new(),
            started: Instant::now(),
        };
        if let Some(mock_cfg) = &config.mock {
            for spec in mock::workload(mock_cfg, graph.num_vertices()) {
                engine
                    .register(spec)
                    .map_err(|e| DaemonError::Register(e.to_string()))?;
            }
        }

        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let (tx, rx) = std::sync::mpsc::channel::<Command>();

        let engine_thread = {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || run_engine(engine, rx, stop, addr))
        };
        let feeder = config.mock.as_ref().map(|mock_cfg| {
            let tx = tx.clone();
            let stop = Arc::clone(&stop);
            let cfg = mock_cfg.clone();
            let base_vertices = graph.num_vertices() as u64;
            std::thread::spawn(move || mock::feed(cfg, base_vertices, tx, stop))
        });
        let accept_thread = {
            let tx = tx.clone();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || run_accept(listener, tx, stop))
        };
        Ok(GrapedHandle {
            addr,
            stop,
            tx,
            accept: Some(accept_thread),
            engine: Some(engine_thread),
            feeder,
        })
    }

    /// The bound address (resolves port `0` to the real ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Blocks until the daemon stops (a `shutdown` request arrived).
    pub fn wait(mut self) {
        self.join();
    }

    /// Stops the daemon: engine loop breaks, listener wakes, threads join.
    pub fn shutdown(mut self) {
        let (reply, ack) = std::sync::mpsc::channel();
        if self
            .tx
            .send(Command {
                body: RequestBody::Shutdown,
                replier: Replier::Channel(reply),
            })
            .is_ok()
        {
            let _ = ack.recv();
        } else {
            // The engine is already down (a client's shutdown won); just
            // make sure the accept loop wakes too.
            self.stop.store(true, Ordering::SeqCst);
            let _ = TcpStream::connect(self.addr);
        }
        self.join();
    }

    fn join(&mut self) {
        if let Some(t) = self.engine.take() {
            let _ = t.join();
        }
        if let Some(t) = self.feeder.take() {
            let _ = t.join();
        }
        if let Some(t) = self.accept.take() {
            let _ = t.join();
        }
    }
}

/// The engine loop: the only code that touches the `GrapeServer`.  Breaks
/// on `shutdown` (after acking), then raises the stop flag and wakes the
/// accept loop.
fn run_engine(mut engine: Engine, rx: Receiver<Command>, stop: Arc<AtomicBool>, addr: SocketAddr) {
    while let Ok(cmd) = rx.recv() {
        let shutting_down = matches!(cmd.body, RequestBody::Shutdown);
        let response = engine.handle(cmd.body, cmd.replier.events());
        let _ = cmd.replier.send(response);
        // Push whatever the command produced (applies emit one delta per
        // watched query, rehydrations one compacted delta) before the
        // next command — and, on shutdown, before the writers go down.
        engine.pump_events();
        if shutting_down {
            break;
        }
    }
    stop.store(true, Ordering::SeqCst);
    // Wake the blocking accept() so the listener thread can observe the
    // flag and exit.
    let _ = TcpStream::connect(addr);
}

/// The accept loop: one blocking reader thread per connection.
fn run_accept(listener: TcpListener, tx: Sender<Command>, stop: Arc<AtomicBool>) {
    for stream in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let tx = tx.clone();
        std::thread::spawn(move || serve_connection(stream, tx));
    }
}

/// Reads frames off one socket, funnels each request through the command
/// channel.  A framing error ends the connection (the byte stream can no
/// longer be trusted); a *payload* error (well-framed but not a valid
/// request) gets an error reply and the connection continues.
///
/// All outbound traffic — replies *and* pushed subscription events — goes
/// through one writer thread per connection, so an event can never tear a
/// reply frame mid-write.  The reader does not wait for a reply before
/// parsing the next request (requests pipeline); ordering is preserved
/// because the engine thread executes commands and emits both replies and
/// events into the same channel in arrival order.
fn serve_connection(stream: TcpStream, tx: Sender<Command>) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let (frame_tx, frame_rx) = std::sync::mpsc::channel::<ServerFrame>();
    let writer = std::thread::spawn(move || {
        let mut writer = BufWriter::new(stream);
        while let Ok(frame) = frame_rx.recv() {
            if protocol::send(&mut writer, &frame).is_err() {
                break;
            }
        }
    });
    loop {
        let request: Request = match protocol::recv(&mut reader) {
            Ok(Some(request)) => request,
            Ok(None) => break,
            Err(protocol::WireError::Json(m)) => {
                let reply = ServerFrame::Reply(Response {
                    id: 0,
                    body: ResponseBody::Error {
                        kind: ErrorKind::BadRequest,
                        message: m,
                    },
                });
                if frame_tx.send(reply).is_err() {
                    break;
                }
                continue;
            }
            Err(e) => {
                let reply = ServerFrame::Reply(Response {
                    id: 0,
                    body: ResponseBody::Error {
                        kind: ErrorKind::BadRequest,
                        message: e.to_string(),
                    },
                });
                let _ = frame_tx.send(reply);
                break;
            }
        };
        let id = request.id;
        if tx
            .send(Command {
                body: request.body,
                replier: Replier::Connection {
                    tx: frame_tx.clone(),
                    id,
                },
            })
            .is_err()
        {
            let _ = frame_tx.send(ServerFrame::Reply(Response {
                id,
                body: ResponseBody::Error {
                    kind: ErrorKind::ShuttingDown,
                    message: "daemon is shutting down".to_string(),
                },
            }));
            break;
        }
    }
    // The writer drains until every sender is gone: ours (now), the
    // engine's per-reply cloned repliers, and any live subscribers (which
    // the engine drops when a send fails or the engine itself goes down).
    drop(frame_tx);
    let _ = writer.join();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn graph_sources_parse_and_build() {
        assert_eq!(
            GraphSource::parse("grid:4x3").unwrap(),
            GraphSource::Grid {
                width: 4,
                height: 3,
                seed: 7
            }
        );
        assert_eq!(
            GraphSource::parse("grid:4x3@42").unwrap(),
            GraphSource::Grid {
                width: 4,
                height: 3,
                seed: 42
            }
        );
        assert_eq!(
            GraphSource::parse("path:9").unwrap(),
            GraphSource::Path { n: 9 }
        );
        assert!(GraphSource::parse("ring:5").is_err());
        assert!(GraphSource::parse("grid:4").is_err());

        let g = GraphSource::Path { n: 5 }.build();
        assert_eq!(g.num_vertices(), 5);
        let g = GraphSource::Grid {
            width: 4,
            height: 3,
            seed: 7,
        }
        .build();
        assert_eq!(g.num_vertices(), 12);
    }
}
