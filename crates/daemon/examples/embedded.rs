//! An embedded `graped`: spawn the daemon in-process on an ephemeral
//! port, drive it over real TCP through the typed client — the exact
//! shape the e2e tests use, and a template for load harnesses.
//!
//! ```bash
//! cargo run --release -p grape-daemon --example embedded
//! ```

use grape_core::spec::QuerySpec;
use grape_daemon::client::GrapeClient;
use grape_daemon::mock::mock_delta;
use grape_daemon::server::{DaemonConfig, GrapedHandle, GraphSource};

fn main() {
    let handle = GrapedHandle::spawn(DaemonConfig {
        addr: "127.0.0.1:0".to_string(),
        graph: GraphSource::Grid {
            width: 12,
            height: 12,
            seed: 7,
        },
        ..DaemonConfig::default()
    })
    .expect("spawn daemon");
    println!("graped listening on {}", handle.addr());

    let mut client = GrapeClient::connect(handle.addr()).expect("connect");
    let sssp = client
        .register(QuerySpec::Sssp { source: 0 })
        .expect("register sssp");
    let cc = client.register(QuerySpec::Cc).expect("register cc");

    // Stream a few generated insert-only deltas (one commit each).
    for i in 0..5 {
        let applied = client.apply(mock_delta(7, 144, i)).expect("apply");
        println!(
            "v{}: rebuilt {} fragment(s), refreshed {:?}",
            applied.reports[0].version,
            applied.reports[0].rebuilt.len(),
            applied.reports[0].refreshed
        );
    }

    let status = client.status().expect("status");
    println!(
        "version {} after {} deltas across {} queries",
        status.version, status.deltas_applied, status.num_queries
    );

    // Evict the SSSP query, let a delta land while it is cold, bring it
    // back: the daemon replays exactly what was missed.
    let spill = client.evict(sssp).expect("evict");
    println!("sssp spilled to {spill}");
    client
        .apply(mock_delta(7, 144, 5))
        .expect("apply while cold");
    let (replayed, peval_calls) = client.rehydrate(sssp).expect("rehydrate");
    println!("rehydrated: replayed {replayed} delta(s), {peval_calls} PEval call(s)");

    let metrics = client.metrics().expect("metrics");
    println!(
        "per-delta latency: p50 {:.3}ms p99 {:.3}ms over {} commit(s)",
        metrics.latency.p50_ms, metrics.latency.p99_ms, metrics.latency_samples
    );

    for query in [sssp, cc] {
        let answer = client.output(query).expect("output");
        println!(
            "query {query}: {} answer rows",
            match &answer {
                grape_daemon::protocol::QueryAnswer::Sssp { distances } => distances.len(),
                grape_daemon::protocol::QueryAnswer::Cc { components } => components.len(),
            }
        );
    }

    client.shutdown().expect("shutdown");
    handle.wait();
    println!("daemon stopped cleanly");
}
