//! # grape-algorithms
//!
//! The PIE programs of Section 5 of the GRAPE paper, together with the
//! sequential (batch and incremental) algorithms they plug in:
//!
//! | query class | sequential algorithm (PEval) | incremental algorithm (IncEval) |
//! |---|---|---|
//! | [`sssp`] — single-source shortest paths | Dijkstra | Ramalingam–Reps bounded incremental |
//! | [`cc`] — connected components | DFS / union-find | root-linked component relabeling |
//! | [`sim`] — graph simulation | Henzinger–Henzinger–Kopke | incremental response to cross-edge deletions |
//! | [`subiso`] — subgraph isomorphism | VF2 | none needed (`d_Q`-neighborhood locality) |
//! | [`cf`] — collaborative filtering | SGD (Koren et al.) | ISGD |
//!
//! Each module exposes the sequential algorithms as free functions (reused by
//! the vertex-centric and block-centric baselines and by the tests as
//! correctness oracles) and the PIE program as a type implementing
//! [`grape_core::pie::PieProgram`].
//!
//! The extras used in the paper's evaluation are here too: the
//! index-optimized simulation ([`sim::Sim::with_index`], Exp-3) and the
//! non-incremental variant ([`sim::SimNi`], Exp-2).

pub mod cc;
pub mod cf;
pub mod sim;
pub mod sssp;
pub mod subiso;
pub mod util;

pub use cc::{Cc, CcQuery, CcResult};
pub use cf::{Cf, CfQuery, CfResult};
pub use sim::{Sim, SimNi, SimQuery, SimResult};
pub use sssp::{Sssp, SsspQuery, SsspResult};
pub use subiso::{SubIso, SubIsoQuery, SubIsoResult};
