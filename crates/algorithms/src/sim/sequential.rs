//! Sequential graph simulation over a whole graph.
//!
//! The algorithm is the counter-based refinement of Henzinger, Henzinger &
//! Kopke: start from the label-compatible candidate sets and repeatedly
//! remove `(u, v)` pairs for which some query edge `(u, u')` has no witness
//! `(v, v')`, maintaining for every `(u', v)` the number of out-neighbours of
//! `v` still simulating `u'` so each removal is processed in time
//! proportional to the in-degree of the removed vertex.

use grape_graph::graph::Graph;
use grape_graph::pattern::Pattern;
use grape_graph::types::VertexId;

/// The simulation relation: for every query node `u`, the set of graph
/// vertices that simulate it.  If the graph does not match the pattern
/// (some query node has no match), every set is empty — the paper's
/// `Q(G) = ∅` convention.
pub type SimRelation = Vec<Vec<VertexId>>;

/// Computes graph simulation of `pattern` in `graph`.
pub fn graph_simulation(graph: &Graph, pattern: &Pattern) -> SimRelation {
    simulation_impl(graph, pattern, false)
}

/// Index-optimized graph simulation: candidate sets are additionally pruned
/// by requiring that a vertex's out-neighbour labels cover the labels of the
/// query node's children (a neighbourhood index in the spirit of \[19\]).
/// Produces the same relation as [`graph_simulation`], usually faster.
pub fn graph_simulation_optimized(graph: &Graph, pattern: &Pattern) -> SimRelation {
    simulation_impl(graph, pattern, true)
}

fn simulation_impl(graph: &Graph, pattern: &Pattern, use_index: bool) -> SimRelation {
    let n = graph.num_vertices();
    let q = pattern.num_nodes();
    if q == 0 {
        return Vec::new();
    }

    // Optional neighbourhood index: the set of labels reachable over one hop.
    let out_label_index: Option<Vec<Vec<u32>>> = if use_index {
        Some(
            (0..n as VertexId)
                .map(|v| {
                    let mut labels: Vec<u32> = graph
                        .out_neighbors(v)
                        .iter()
                        .map(|x| graph.vertex_label(x.target))
                        .collect();
                    labels.sort_unstable();
                    labels.dedup();
                    labels
                })
                .collect(),
        )
    } else {
        None
    };

    // sim[u][v]: does v currently simulate u?
    let mut sim: Vec<Vec<bool>> = (0..q)
        .map(|u| {
            (0..n as VertexId)
                .map(|v| {
                    if graph.vertex_label(v) != pattern.label(u as u32) {
                        return false;
                    }
                    match &out_label_index {
                        Some(index) => pattern
                            .children(u as u32)
                            .iter()
                            .all(|&c| index[v as usize].binary_search(&pattern.label(c)).is_ok()),
                        None => true,
                    }
                })
                .collect()
        })
        .collect();

    // cnt[u][v]: number of out-neighbours of v simulating u.
    let mut cnt: Vec<Vec<u32>> = (0..q)
        .map(|u| {
            (0..n as VertexId)
                .map(|v| {
                    graph
                        .out_neighbors(v)
                        .iter()
                        .filter(|x| sim[u][x.target as usize])
                        .count() as u32
                })
                .collect()
        })
        .collect();

    // Initial violations.
    let mut worklist: Vec<(u32, VertexId)> = Vec::new();
    for u in 0..q as u32 {
        for v in 0..n as VertexId {
            if sim[u as usize][v as usize]
                && pattern
                    .children(u)
                    .iter()
                    .any(|&c| cnt[c as usize][v as usize] == 0)
            {
                sim[u as usize][v as usize] = false;
                worklist.push((u, v));
            }
        }
    }

    // Propagate removals.
    while let Some((u, v)) = worklist.pop() {
        for p in graph.in_neighbors(v) {
            let pv = p.target;
            if cnt[u as usize][pv as usize] > 0 {
                cnt[u as usize][pv as usize] -= 1;
                if cnt[u as usize][pv as usize] == 0 {
                    for &w in pattern.parents(u) {
                        if sim[w as usize][pv as usize] {
                            sim[w as usize][pv as usize] = false;
                            worklist.push((w, pv));
                        }
                    }
                }
            }
        }
    }

    let relation: SimRelation = (0..q)
        .map(|u| (0..n as VertexId).filter(|&v| sim[u][v as usize]).collect())
        .collect();
    if relation.iter().any(|matches| matches.is_empty()) {
        return vec![Vec::new(); q];
    }
    relation
}

#[cfg(test)]
mod tests {
    use super::*;
    use grape_graph::builder::GraphBuilder;
    use grape_graph::generators::labeled_kg;

    /// Graph: 1 -> 2 -> 3 with labels a=1, b=2, c=3, plus a stray 4 (label 2)
    /// with no outgoing edge to a label-3 vertex.
    fn chain_graph() -> Graph {
        GraphBuilder::directed()
            .add_edge(0, 1)
            .add_edge(1, 2)
            .add_edge(3, 2)
            .ensure_vertices(5)
            .set_vertex_label(0, 1)
            .set_vertex_label(1, 2)
            .set_vertex_label(2, 3)
            .set_vertex_label(3, 1)
            .set_vertex_label(4, 2)
            .build()
    }

    /// Pattern a -> b -> c.
    fn chain_pattern() -> Pattern {
        Pattern::new(vec![1, 2, 3], vec![(0, 1), (1, 2)])
    }

    #[test]
    fn chain_pattern_matches_chain_graph() {
        let rel = graph_simulation(&chain_graph(), &chain_pattern());
        assert_eq!(rel[0], vec![0]); // only vertex 0 (label a) has a b-child with a c-child
        assert_eq!(rel[1], vec![1]); // vertex 4 has label b but no c-child
        assert_eq!(rel[2], vec![2]);
    }

    #[test]
    fn no_match_returns_empty_relation() {
        let pattern = Pattern::new(vec![1, 9], vec![(0, 1)]); // label 9 absent
        let rel = graph_simulation(&chain_graph(), &pattern);
        assert!(rel.iter().all(|m| m.is_empty()));
    }

    #[test]
    fn simulation_allows_cycles_unlike_isomorphism() {
        // Graph is a 2-cycle a <-> b; pattern is an infinite-unfolding chain
        // a -> b -> a, which simulation accepts.
        let g = GraphBuilder::directed()
            .add_edge(0, 1)
            .add_edge(1, 0)
            .set_vertex_label(0, 1)
            .set_vertex_label(1, 2)
            .build();
        let p = Pattern::new(vec![1, 2, 1], vec![(0, 1), (1, 2)]);
        let rel = graph_simulation(&g, &p);
        assert_eq!(rel[0], vec![0]);
        assert_eq!(rel[1], vec![1]);
        assert_eq!(rel[2], vec![0]);
    }

    #[test]
    fn optimized_equals_basic_on_random_labeled_graphs() {
        for seed in 0..3 {
            let g = labeled_kg(300, 1200, 6, 3, seed);
            let alphabet: Vec<u32> = (1..=6).collect();
            let p = Pattern::random(4, 6, &alphabet, seed + 100);
            let basic = graph_simulation(&g, &p);
            let optimized = graph_simulation_optimized(&g, &p);
            assert_eq!(basic, optimized, "seed {seed}");
        }
    }

    #[test]
    fn single_node_pattern_matches_all_vertices_with_label() {
        let g = chain_graph();
        let p = Pattern::single(2);
        let rel = graph_simulation(&g, &p);
        assert_eq!(rel[0], vec![1, 4]);
    }

    #[test]
    fn empty_pattern_yields_empty_relation() {
        let g = chain_graph();
        let p = Pattern::new(vec![], vec![]);
        assert!(graph_simulation(&g, &p).is_empty());
    }
}
