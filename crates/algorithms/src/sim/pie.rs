//! The graph-simulation PIE program (Section 5.1).
//!
//! Message preamble: a Boolean status variable `x_(u, v)` for every query
//! node `u` and border vertex `v`, initially `true`; candidate set
//! `C_i = F_i.I`; `aggregateMsg = min` with the order `false ≺ true` (so a
//! variable flips to `false` at most once — the monotonic condition).
//!
//! * PEval — the sequential simulation algorithm run on the fragment, with
//!   outer copies treated optimistically (they simulate any query node whose
//!   label they carry, since their outgoing edges live elsewhere).
//! * IncEval — the incremental algorithm in response to "cross-edge
//!   deletions": a received `x_(u, v) = false` for an outer copy `v` triggers
//!   the counter-based removal propagation, touching only the affected area.
//! * Assemble — union of the per-fragment matches of inner vertices; if some
//!   query node ends up with no match anywhere, `Q(G) = ∅`.
//!
//! Sim also implements [`IncrementalPie`], with the monotone direction
//! *reversed* relative to SSSP/CC: **deletions** are monotone (removing
//! edges or vertices can only invalidate matches — `x_(u, v)` flips `true →
//! false`, never back), while insertions can resurrect matches.  The rebase
//! step is exactly the paper's incremental match invalidation: remap the
//! retained relation, recompute the witness counters on the shrunken
//! fragment, and propagate removals from the violations the deletion
//! introduced.  Insertions take the **bounded refresh** under
//! [`DamagePolicy::Reachability`] (over the `F_i.I` message-flow
//! direction): only the fragments whose match variables could depend on a
//! resurrected match are re-rooted, the rest keep their relation and
//! reseed their in-border falsifications.

use std::collections::{HashMap, HashSet};

use grape_core::output_delta::DeltaOutput;
use grape_core::pie::{
    DamagePolicy, IncrementalPie, Messages, PieProgram, ProcessCodec, SerdeProcessCodec,
};
use grape_graph::delta::GraphDelta;
use grape_graph::pattern::Pattern;
use grape_graph::types::VertexId;
use grape_partition::delta::FragmentDelta;
use grape_partition::fragment::Fragment;
use grape_partition::fragmentation_graph::BorderScope;
use serde::{Deserialize, Serialize};

/// A graph-simulation query: the pattern to match.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimQuery {
    /// The pattern `Q = (V_Q, E_Q, L_Q)`.
    pub pattern: Pattern,
}

impl SimQuery {
    /// Creates a query for `pattern`.
    pub fn new(pattern: Pattern) -> Self {
        SimQuery { pattern }
    }
}

/// The assembled simulation relation.
#[derive(Debug, Clone, Default)]
pub struct SimResult {
    matches: Vec<Vec<VertexId>>,
}

impl SimResult {
    /// Matches of query node `u`, sorted by vertex id.
    pub fn matches(&self, u: u32) -> &[VertexId] {
        &self.matches[u as usize]
    }

    /// Whether the graph matches the pattern (every query node has a match).
    pub fn is_match(&self) -> bool {
        !self.matches.is_empty() && self.matches.iter().all(|m| !m.is_empty())
    }

    /// Total number of `(query node, vertex)` pairs in the relation.
    pub fn total_pairs(&self) -> usize {
        self.matches.iter().map(Vec::len).sum()
    }

    /// The whole relation.
    pub fn relation(&self) -> &[Vec<VertexId>] {
        &self.matches
    }
}

/// Per-fragment partial result: the local simulation state.  Serializable so
/// a served Sim query can spill to disk and rehydrate.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimPartial {
    /// `sim[u][l]`: does local vertex `l` currently simulate query node `u`?
    pub(crate) sim: Vec<Vec<bool>>,
    /// `cnt[u][l]`: number of local out-neighbours of `l` simulating `u`.
    pub(crate) cnt: Vec<Vec<u32>>,
    /// Global id of each local vertex.
    pub(crate) globals: Vec<VertexId>,
    /// Number of inner vertices.
    pub(crate) num_inner: usize,
}

/// The graph-simulation PIE program.  [`Sim::new`] plugs in the plain
/// sequential algorithm; [`Sim::with_index`] plugs in the index-optimized one
/// (Exp-3 measures that the optimization's speedup survives parallelization).
#[derive(Debug, Clone, Copy, Default)]
pub struct Sim {
    use_index: bool,
}

impl Sim {
    /// Plain simulation (candidates filtered by label only).
    pub fn new() -> Self {
        Sim { use_index: false }
    }

    /// Index-optimized simulation (candidates additionally filtered by the
    /// labels of their out-neighbours).
    pub fn with_index() -> Self {
        Sim { use_index: true }
    }
}

/// Initializes the candidate sets over all local vertices.  Public because
/// the block-centric baseline reuses the same local refinement machinery.
pub fn init_sim(frag: &Fragment, pattern: &Pattern, use_index: bool) -> Vec<Vec<bool>> {
    let k = frag.num_local();
    let q = pattern.num_nodes();
    // Optional one-hop label index for inner vertices.
    let out_labels: Option<Vec<Vec<u32>>> = if use_index {
        Some(
            (0..k as u32)
                .map(|l| {
                    let mut labels: Vec<u32> = frag
                        .out_edges(l)
                        .iter()
                        .map(|n| frag.label(n.target as u32))
                        .collect();
                    labels.sort_unstable();
                    labels.dedup();
                    labels
                })
                .collect(),
        )
    } else {
        None
    };
    (0..q)
        .map(|u| {
            (0..k as u32)
                .map(|l| {
                    if frag.label(l) != pattern.label(u as u32) {
                        return false;
                    }
                    if frag.is_inner(l) {
                        if let Some(index) = &out_labels {
                            return pattern.children(u as u32).iter().all(|&c| {
                                index[l as usize].binary_search(&pattern.label(c)).is_ok()
                            });
                        }
                    }
                    true
                })
                .collect()
        })
        .collect()
}

/// Computes the witness counters from a candidate matrix.
pub fn compute_cnt(frag: &Fragment, pattern: &Pattern, sim: &[Vec<bool>]) -> Vec<Vec<u32>> {
    let k = frag.num_local();
    (0..pattern.num_nodes())
        .map(|u| {
            (0..k as u32)
                .map(|l| {
                    frag.out_edges(l)
                        .iter()
                        .filter(|n| sim[u][n.target as usize])
                        .count() as u32
                })
                .collect()
        })
        .collect()
}

/// Seeds the worklist with the inner vertices violating some query edge.
pub fn initial_violations(
    frag: &Fragment,
    pattern: &Pattern,
    sim: &mut [Vec<bool>],
    cnt: &[Vec<u32>],
) -> Vec<(u32, u32)> {
    let mut worklist = Vec::new();
    for u in 0..pattern.num_nodes() as u32 {
        for l in frag.inner_locals() {
            if sim[u as usize][l as usize]
                && pattern
                    .children(u)
                    .iter()
                    .any(|&c| cnt[c as usize][l as usize] == 0)
            {
                sim[u as usize][l as usize] = false;
                worklist.push((u, l));
            }
        }
    }
    worklist
}

/// Propagates removals until the local fixpoint.  Returns the removed pairs
/// whose vertex lies on the inner border `F_i.I` (these are the update
/// parameters that must be shipped).
pub fn propagate(
    frag: &Fragment,
    pattern: &Pattern,
    sim: &mut [Vec<bool>],
    cnt: &mut [Vec<u32>],
    mut worklist: Vec<(u32, u32)>,
    in_border: &HashSet<u32>,
) -> Vec<(u32, u32)> {
    let mut removed_on_border: Vec<(u32, u32)> = worklist
        .iter()
        .filter(|(_, l)| in_border.contains(l))
        .copied()
        .collect();
    while let Some((u, l)) = worklist.pop() {
        for p in frag.in_edges(l) {
            let pl = p.target as u32;
            if cnt[u as usize][pl as usize] > 0 {
                cnt[u as usize][pl as usize] -= 1;
                if cnt[u as usize][pl as usize] == 0 && frag.is_inner(pl) {
                    for &w in pattern.parents(u) {
                        if sim[w as usize][pl as usize] {
                            sim[w as usize][pl as usize] = false;
                            if in_border.contains(&pl) {
                                removed_on_border.push((w, pl));
                            }
                            worklist.push((w, pl));
                        }
                    }
                }
            }
        }
    }
    removed_on_border
}

impl PieProgram for Sim {
    type Query = SimQuery;
    type Partial = SimPartial;
    type Key = (u32, VertexId);
    type Value = bool;
    type Output = SimResult;

    fn name(&self) -> &str {
        if self.use_index {
            "sim-optimized"
        } else {
            "sim"
        }
    }

    fn process_codec(&self) -> Option<&dyn ProcessCodec<Self>> {
        Some(&SerdeProcessCodec)
    }

    fn scope(&self) -> BorderScope {
        BorderScope::In
    }

    fn peval(
        &self,
        query: &SimQuery,
        frag: &Fragment,
        ctx: &mut Messages<(u32, VertexId), bool>,
    ) -> SimPartial {
        let pattern = &query.pattern;
        let mut sim = init_sim(frag, pattern, self.use_index);
        let mut cnt = compute_cnt(frag, pattern, &sim);
        let in_border: HashSet<u32> = frag.in_border_locals().iter().copied().collect();
        let worklist = initial_violations(frag, pattern, &mut sim, &cnt);
        propagate(frag, pattern, &mut sim, &mut cnt, worklist, &in_border);

        // Message segment: x_(u, v) for v ∈ F_i.I that are false even though
        // the label matches (the receiver's optimistic assumption is wrong).
        for &l in frag.in_border_locals() {
            for u in 0..pattern.num_nodes() as u32 {
                if frag.label(l) == pattern.label(u) && !sim[u as usize][l as usize] {
                    ctx.send((u, frag.global_of(l)), false);
                }
            }
        }
        SimPartial {
            sim,
            cnt,
            globals: frag.all_locals().map(|l| frag.global_of(l)).collect(),
            num_inner: frag.num_inner(),
        }
    }

    fn inc_eval(
        &self,
        query: &SimQuery,
        frag: &Fragment,
        partial: &mut SimPartial,
        messages: &[((u32, VertexId), bool)],
        ctx: &mut Messages<(u32, VertexId), bool>,
    ) {
        let pattern = &query.pattern;
        let in_border: HashSet<u32> = frag.in_border_locals().iter().copied().collect();
        // Apply the received falsifications to our outer copies (equivalent to
        // deleting the cross edges that relied on them).
        let mut worklist = Vec::new();
        for ((u, v), value) in messages {
            if *value {
                continue; // only false updates carry information
            }
            if let Some(l) = frag.local_of(*v) {
                if partial.sim[*u as usize][l as usize] {
                    partial.sim[*u as usize][l as usize] = false;
                    worklist.push((*u, l));
                }
            }
        }
        if worklist.is_empty() {
            return;
        }
        let newly_false = propagate(
            frag,
            pattern,
            &mut partial.sim,
            &mut partial.cnt,
            worklist,
            &in_border,
        );
        for (u, l) in newly_false {
            ctx.send((u, frag.global_of(l)), false);
        }
    }

    fn assemble(&self, query: &SimQuery, partials: Vec<SimPartial>) -> SimResult {
        let q = query.pattern.num_nodes();
        let mut matches: Vec<Vec<VertexId>> = vec![Vec::new(); q];
        let mut seen: Vec<HashMap<VertexId, bool>> = vec![HashMap::new(); q];
        for partial in partials {
            for (u, seen_u) in seen.iter_mut().enumerate().take(q) {
                for l in 0..partial.num_inner {
                    if partial.sim[u][l] {
                        seen_u.entry(partial.globals[l]).or_insert(true);
                    }
                }
            }
        }
        for (u, map) in seen.into_iter().enumerate() {
            let mut vs: Vec<VertexId> = map.into_keys().collect();
            vs.sort_unstable();
            matches[u] = vs;
        }
        if matches.iter().any(|m| m.is_empty()) {
            matches = vec![Vec::new(); q];
        }
        SimResult { matches }
    }

    fn aggregate(&self, _key: &(u32, VertexId), a: bool, b: bool) -> bool {
        // false ≺ true: once any worker falsifies a variable, it stays false.
        a && b
    }
}

impl IncrementalPie for Sim {
    /// The monotone direction is *deletions*: they can only flip match
    /// variables `true → false` (the order of the preamble).  Insertions can
    /// make a falsified variable true again, which the retained relation
    /// cannot express.
    fn delta_is_monotone(&self, delta: &GraphDelta) -> bool {
        !delta.has_insertions()
    }

    /// Match invalidation: remap the retained relation onto the shrunken
    /// fragment (dropped vertices leave the matrices), recompute the witness
    /// counters against the new adjacency, and run the counter-based removal
    /// propagation from the violations the deleted edges introduced.  The
    /// newly falsified in-border pairs are the seeds.
    fn rebase(
        &self,
        query: &SimQuery,
        _old_frag: &Fragment,
        new_frag: &Fragment,
        partial: SimPartial,
        _delta: &FragmentDelta,
    ) -> (SimPartial, Vec<((u32, VertexId), bool)>) {
        let pattern = &query.pattern;
        let q = pattern.num_nodes();
        let k = new_frag.num_local();
        let old_index: HashMap<VertexId, usize> = partial
            .globals
            .iter()
            .enumerate()
            .map(|(i, &g)| (g, i))
            .collect();
        let mut sim: Vec<Vec<bool>> = (0..q)
            .map(|u| {
                (0..k as u32)
                    .map(|l| match old_index.get(&new_frag.global_of(l)) {
                        Some(&i) => partial.sim[u][i],
                        // Unreachable for a deletion-only delta, but keep
                        // PEval's optimistic label-match initialization.
                        None => new_frag.label(l) == pattern.label(u as u32),
                    })
                    .collect()
            })
            .collect();
        let mut cnt = compute_cnt(new_frag, pattern, &sim);
        let in_border: HashSet<u32> = new_frag.in_border_locals().iter().copied().collect();
        let worklist = initial_violations(new_frag, pattern, &mut sim, &cnt);
        let newly_false = propagate(new_frag, pattern, &mut sim, &mut cnt, worklist, &in_border);
        let sends = newly_false
            .into_iter()
            .map(|(u, l)| ((u, new_frag.global_of(l)), false))
            .collect();
        (
            SimPartial {
                sim,
                cnt,
                globals: new_frag
                    .all_locals()
                    .map(|l| new_frag.global_of(l))
                    .collect(),
                num_inner: new_frag.num_inner(),
            },
            sends,
        )
    }

    /// The match-invalidation fixpoint is schedule-independent given fixed
    /// border inputs: insertions re-root only the message-flow closure of
    /// the damage (under the `F_i.I` scope).
    fn damage_policy(&self, _query: &SimQuery) -> DamagePolicy {
        DamagePolicy::Reachability
    }

    /// The full border segment of a retained partial: every in-border
    /// falsification whose label would otherwise let the copy holder stay
    /// optimistic (same candidate set as PEval's message segment).
    fn reseed(
        &self,
        query: &SimQuery,
        frag: &Fragment,
        partial: &SimPartial,
    ) -> Vec<((u32, VertexId), bool)> {
        let pattern = &query.pattern;
        let mut sends = Vec::new();
        for &l in frag.in_border_locals() {
            for u in 0..pattern.num_nodes() as u32 {
                if frag.label(l) == pattern.label(u) && !partial.sim[u as usize][l as usize] {
                    sends.push(((u, frag.global_of(l)), false));
                }
            }
        }
        sends
    }
}

impl DeltaOutput for Sim {
    type OutKey = (u32, VertexId);
    type OutVal = bool;

    /// One row per `(query node, matched vertex)` pair in the relation —
    /// rows exist only while the pair matches, so an invalidated match shows
    /// up as a `removed` key.
    fn canonical(&self, _query: &SimQuery, output: &SimResult) -> Vec<((u32, VertexId), bool)> {
        let mut rows: Vec<((u32, VertexId), bool)> = Vec::with_capacity(output.total_pairs());
        for (u, matches) in output.relation().iter().enumerate() {
            for &v in matches {
                rows.push(((u as u32, v), true));
            }
        }
        // Already sorted (node index ascending, matches sorted per node) —
        // kept explicit so the canonical contract never silently breaks.
        rows.sort_unstable_by_key(|r| r.0);
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grape_core::session::GrapeSession;
    use grape_graph::generators::labeled_kg;
    use grape_graph::graph::Graph;
    use grape_partition::edge_cut::HashEdgeCut;
    use grape_partition::metis_like::MetisLike;
    use grape_partition::strategy::PartitionStrategy;

    use crate::sim::sequential::graph_simulation;

    fn run_sim(g: &Graph, pattern: &Pattern, fragments: usize, program: Sim) -> SimResult {
        let frag = HashEdgeCut::new(fragments).partition(g).unwrap();
        GrapeSession::with_workers(4)
            .run(&frag, &program, &SimQuery::new(pattern.clone()))
            .unwrap()
            .output
    }

    fn assert_matches_sequential(g: &Graph, pattern: &Pattern, result: &SimResult) {
        let expected = graph_simulation(g, pattern);
        for (u, expected_u) in expected.iter().enumerate() {
            assert_eq!(
                result.matches(u as u32),
                expected_u.as_slice(),
                "query node {u}"
            );
        }
    }

    #[test]
    fn matches_sequential_on_labeled_graphs() {
        for seed in 0..3u64 {
            let g = labeled_kg(250, 1000, 5, 3, seed);
            let alphabet: Vec<u32> = (1..=5).collect();
            let pattern = Pattern::random(4, 6, &alphabet, seed + 10);
            let result = run_sim(&g, &pattern, 4, Sim::new());
            assert_matches_sequential(&g, &pattern, &result);
        }
    }

    #[test]
    fn optimized_variant_gives_identical_relation() {
        let g = labeled_kg(300, 1200, 6, 3, 7);
        let alphabet: Vec<u32> = (1..=6).collect();
        let pattern = Pattern::random(5, 8, &alphabet, 99);
        let basic = run_sim(&g, &pattern, 4, Sim::new());
        let optimized = run_sim(&g, &pattern, 4, Sim::with_index());
        assert_eq!(basic.relation(), optimized.relation());
    }

    #[test]
    fn fragment_count_does_not_change_the_relation() {
        let g = labeled_kg(200, 800, 4, 2, 3);
        let alphabet: Vec<u32> = (1..=4).collect();
        let pattern = Pattern::random(3, 4, &alphabet, 55);
        let one = run_sim(&g, &pattern, 1, Sim::new());
        let many = run_sim(&g, &pattern, 8, Sim::new());
        assert_eq!(one.relation(), many.relation());
    }

    #[test]
    fn metis_partition_also_matches_sequential() {
        let g = labeled_kg(200, 900, 5, 3, 11);
        let alphabet: Vec<u32> = (1..=5).collect();
        let pattern = Pattern::random(4, 6, &alphabet, 4);
        let frag = MetisLike::new(4).partition(&g).unwrap();
        let result = GrapeSession::with_workers(2)
            .run(&frag, &Sim::new(), &SimQuery::new(pattern.clone()))
            .unwrap()
            .output;
        assert_matches_sequential(&g, &pattern, &result);
    }

    #[test]
    fn prepared_update_invalidates_matches_without_peval() {
        use grape_graph::delta::GraphDelta;

        let g = labeled_kg(200, 900, 4, 2, 21);
        let alphabet: Vec<u32> = (1..=4).collect();
        let pattern = Pattern::random(3, 4, &alphabet, 33);
        let frag = HashEdgeCut::new(4).partition(&g).unwrap();
        let session = GrapeSession::with_workers(2);
        let mut prepared = session
            .prepare(frag, Sim::new(), SimQuery::new(pattern.clone()))
            .unwrap();

        // Delete a handful of edges (the monotone direction for Sim).
        let mut delta = GraphDelta::new();
        for e in g.edges().iter().step_by(97).take(6) {
            delta = delta.remove_edge(e.src, e.dst);
        }
        let report = prepared.update(&delta).unwrap();
        assert!(
            report.incremental,
            "deletions take the IncEval path for Sim"
        );
        assert_eq!(report.metrics.peval_calls, 0);
        assert_matches_sequential(
            prepared.fragmentation().source(),
            &pattern,
            &prepared.output(),
        );
    }

    #[test]
    fn prepared_update_falls_back_on_insertion() {
        use grape_graph::delta::GraphDelta;

        let g = labeled_kg(120, 500, 3, 2, 8);
        let alphabet: Vec<u32> = (1..=3).collect();
        let pattern = Pattern::random(3, 4, &alphabet, 5);
        let frag = HashEdgeCut::new(3).partition(&g).unwrap();
        let session = GrapeSession::with_workers(2);
        let mut prepared = session
            .prepare(frag, Sim::new(), SimQuery::new(pattern.clone()))
            .unwrap();
        let report = prepared.update(&GraphDelta::new().add_edge(0, 1)).unwrap();
        assert!(!report.incremental, "insertions can resurrect matches");
        assert!(report.metrics.peval_calls > 0);
        assert_matches_sequential(
            prepared.fragmentation().source(),
            &pattern,
            &prepared.output(),
        );
    }

    #[test]
    fn upstream_insertion_repevals_a_bounded_frontier() {
        use grape_core::prepared::RefreshKind;
        use grape_graph::builder::GraphBuilder;
        use grape_graph::delta::GraphDelta;
        use grape_partition::edge_cut::RangeEdgeCut;

        // A forward chain with alternating labels over four range fragments.
        // Sim's messages flow along F_i.I — against the edge direction — so
        // an insertion inside fragment 0 (which nothing points into) damages
        // fragment 0 alone; fragment 1 reseeds its in-border falsifications.
        let mut b = GraphBuilder::directed();
        for v in 0..15u64 {
            b.push_edge(grape_graph::types::Edge::unweighted(v, v + 1));
        }
        for v in 0..16u64 {
            b.push_vertex_label(v, 1 + (v % 2) as u32);
        }
        let g = b.build();
        let frag = RangeEdgeCut::new(4).partition(&g).unwrap();
        let pattern = Pattern::new(vec![1, 1], vec![(0, 1)]);
        let session = GrapeSession::with_workers(2);
        let query = SimQuery::new(pattern.clone());
        let mut prepared = session.prepare(frag, Sim::new(), query).unwrap();
        // No label-1 vertex has a label-1 child on the alternating chain.
        assert!(!prepared.output().is_match());

        // 0 and 2 both carry label 1: the new edge resurrects matches.
        let report = prepared.update(&GraphDelta::new().add_edge(0, 2)).unwrap();
        assert_eq!(report.kind, RefreshKind::Bounded);
        assert_eq!(report.repeval, vec![0], "nothing points into fragment 0");
        assert_eq!(report.metrics.peval_calls, 1);

        let refreshed = prepared.output();
        assert!(refreshed.is_match());
        assert_matches_sequential(prepared.fragmentation().source(), &pattern, &refreshed);
    }

    #[test]
    fn unmatched_pattern_yields_empty_relation_everywhere() {
        let g = labeled_kg(100, 400, 3, 2, 5);
        // Label 50 does not exist in the graph.
        let pattern = Pattern::new(vec![50, 1], vec![(0, 1)]);
        let result = run_sim(&g, &pattern, 4, Sim::new());
        assert!(!result.is_match());
        assert_eq!(result.total_pairs(), 0);
    }
}
