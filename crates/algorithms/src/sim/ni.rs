//! `GRAPE_NI`: the non-incremental variant of the graph-simulation PIE
//! program used by Exp-2 (Fig. 7a).
//!
//! Instead of reacting incrementally to the received falsifications, IncEval
//! re-runs the *batch* PEval logic over the whole fragment in every
//! superstep, merely seeding it with all border knowledge accumulated so far.
//! The final relation is identical; the point of the experiment is that the
//! redundant local recomputation makes every superstep pay `O(|F_i|)` again,
//! which is exactly what bounded IncEval avoids.

use std::collections::HashSet;

use grape_core::pie::{Messages, PieProgram};
use grape_graph::types::VertexId;
use grape_partition::fragment::Fragment;
use grape_partition::fragmentation_graph::BorderScope;

use crate::sim::pie::{compute_cnt, init_sim, initial_violations, propagate, SimQuery, SimResult};

/// Per-fragment state of the non-incremental variant.
#[derive(Debug, Clone)]
pub struct SimNiPartial {
    /// Falsifications received so far, as (query node, local id) pairs.
    received_false: HashSet<(u32, u32)>,
    /// Falsifications already reported to the coordinator.
    sent: HashSet<(u32, u32)>,
    /// The latest locally computed relation.
    sim: Vec<Vec<bool>>,
    /// Global id of each local vertex.
    globals: Vec<VertexId>,
    /// Number of inner vertices.
    num_inner: usize,
}

/// The non-incremental graph-simulation program (`GRAPE_NI` in the paper).
#[derive(Debug, Clone, Copy, Default)]
pub struct SimNi;

impl SimNi {
    /// Runs the full batch computation over the fragment with the current
    /// border knowledge, returning the relation and the falsified border
    /// pairs.
    fn recompute(
        frag: &Fragment,
        query: &SimQuery,
        received_false: &HashSet<(u32, u32)>,
    ) -> (Vec<Vec<bool>>, Vec<(u32, u32)>) {
        let pattern = &query.pattern;
        let mut sim = init_sim(frag, pattern, false);
        // Apply everything we know about outer copies.
        let mut seeds = Vec::new();
        for &(u, l) in received_false {
            if sim[u as usize][l as usize] {
                sim[u as usize][l as usize] = false;
                seeds.push((u, l));
            }
        }
        let mut cnt = compute_cnt(frag, pattern, &sim);
        let in_border: HashSet<u32> = frag.in_border_locals().iter().copied().collect();
        let mut worklist = initial_violations(frag, pattern, &mut sim, &cnt);
        worklist.extend(seeds);
        propagate(frag, pattern, &mut sim, &mut cnt, worklist, &in_border);

        let mut false_on_border = Vec::new();
        for &l in frag.in_border_locals() {
            for u in 0..pattern.num_nodes() as u32 {
                if frag.label(l) == pattern.label(u) && !sim[u as usize][l as usize] {
                    false_on_border.push((u, l));
                }
            }
        }
        (sim, false_on_border)
    }
}

impl PieProgram for SimNi {
    type Query = SimQuery;
    type Partial = SimNiPartial;
    type Key = (u32, VertexId);
    type Value = bool;
    type Output = SimResult;

    fn name(&self) -> &str {
        "sim-ni"
    }

    fn scope(&self) -> BorderScope {
        BorderScope::In
    }

    fn peval(
        &self,
        query: &SimQuery,
        frag: &Fragment,
        ctx: &mut Messages<(u32, VertexId), bool>,
    ) -> SimNiPartial {
        let received_false = HashSet::new();
        let (sim, false_on_border) = Self::recompute(frag, query, &received_false);
        let mut sent = HashSet::new();
        for &(u, l) in &false_on_border {
            ctx.send((u, frag.global_of(l)), false);
            sent.insert((u, l));
        }
        SimNiPartial {
            received_false,
            sent,
            sim,
            globals: frag.all_locals().map(|l| frag.global_of(l)).collect(),
            num_inner: frag.num_inner(),
        }
    }

    fn inc_eval(
        &self,
        query: &SimQuery,
        frag: &Fragment,
        partial: &mut SimNiPartial,
        messages: &[((u32, VertexId), bool)],
        ctx: &mut Messages<(u32, VertexId), bool>,
    ) {
        let mut new_information = false;
        for ((u, v), value) in messages {
            if *value {
                continue;
            }
            if let Some(l) = frag.local_of(*v) {
                if partial.received_false.insert((*u, l)) {
                    new_information = true;
                }
            }
        }
        if !new_information {
            return;
        }
        // Recompute everything from scratch — this is what makes the variant
        // "non-incremental".
        let (sim, false_on_border) = Self::recompute(frag, query, &partial.received_false);
        partial.sim = sim;
        for (u, l) in false_on_border {
            if partial.sent.insert((u, l)) {
                ctx.send((u, frag.global_of(l)), false);
            }
        }
    }

    fn assemble(&self, query: &SimQuery, partials: Vec<SimNiPartial>) -> SimResult {
        // Re-use Sim's assembly by converting the partial shape.
        let sim_partials: Vec<crate::sim::pie::SimPartial> = partials
            .into_iter()
            .map(|p| crate::sim::pie::SimPartial {
                cnt: Vec::new(),
                sim: p.sim,
                globals: p.globals,
                num_inner: p.num_inner,
            })
            .collect();
        crate::sim::pie::Sim::new().assemble(query, sim_partials)
    }

    fn aggregate(&self, _key: &(u32, VertexId), a: bool, b: bool) -> bool {
        a && b
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grape_core::session::GrapeSession;
    use grape_graph::generators::labeled_kg;
    use grape_graph::pattern::Pattern;
    use grape_partition::edge_cut::HashEdgeCut;
    use grape_partition::strategy::PartitionStrategy;

    use crate::sim::pie::Sim;

    #[test]
    fn ni_variant_computes_the_same_relation_as_incremental() {
        for seed in 0..2u64 {
            let g = labeled_kg(250, 1000, 5, 3, seed);
            let alphabet: Vec<u32> = (1..=5).collect();
            let pattern = Pattern::random(4, 6, &alphabet, seed + 20);
            let frag = HashEdgeCut::new(4).partition(&g).unwrap();
            let engine = GrapeSession::with_workers(2);
            let query = SimQuery::new(pattern);
            let incremental = engine.run(&frag, &Sim::new(), &query).unwrap();
            let batch = engine.run(&frag, &SimNi, &query).unwrap();
            assert_eq!(incremental.output.relation(), batch.output.relation());
        }
    }

    #[test]
    fn ni_variant_spends_at_least_as_much_eval_time_shape() {
        // Not a strict timing assertion (too flaky); instead check that the
        // NI variant does at least as many supersteps and never fewer
        // messages, which is the structural reason it is slower.  The
        // superstep comparison is a BSP property, so pin synchronous mode.
        let g = labeled_kg(400, 1600, 5, 3, 9);
        let alphabet: Vec<u32> = (1..=5).collect();
        let pattern = Pattern::random(5, 8, &alphabet, 33);
        let frag = HashEdgeCut::new(6).partition(&g).unwrap();
        let engine = GrapeSession::builder()
            .workers(2)
            .mode(grape_core::config::EngineMode::Sync)
            .build()
            .unwrap();
        let query = SimQuery::new(pattern);
        let incremental = engine.run(&frag, &Sim::new(), &query).unwrap();
        let batch = engine.run(&frag, &SimNi, &query).unwrap();
        assert!(batch.metrics.supersteps >= incremental.metrics.supersteps);
    }
}
