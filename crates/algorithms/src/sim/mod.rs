//! Graph pattern matching via graph simulation (Sim), Section 5.1.
//!
//! * [`sequential`] — the Henzinger–Henzinger–Kopke style cubic algorithm
//!   over a whole graph, plus an index-optimized variant that prunes
//!   candidates by neighbourhood labels (the optimization of Exp-3).
//! * [`pie`] — the PIE program: PEval computes the local simulation relation
//!   treating outer copies optimistically, IncEval reacts to `x_(u,v) = false`
//!   messages exactly like the incremental algorithm of \[21\] reacts to
//!   cross-edge deletions, Assemble unions the per-fragment matches.
//! * [`ni`] — the non-incremental variant `GRAPE_NI` used by Exp-2, which
//!   recomputes the local relation from scratch in every superstep.

pub mod ni;
pub mod pie;
pub mod sequential;

pub use ni::SimNi;
pub use pie::{Sim, SimQuery, SimResult};
pub use sequential::{graph_simulation, graph_simulation_optimized};
