//! The CC PIE program (Section 5.2).
//!
//! * Message preamble: an integer variable `v.cid` per vertex, initialised to
//!   the vertex id; candidate set `C_i = F_i.O`; `aggregateMsg = min`.
//! * PEval: one DFS/union-find pass computes the *local* connected components
//!   of the fragment, creates a root per component and links every local
//!   vertex to its root.
//! * IncEval: a received smaller `cid` for a border vertex is applied to that
//!   vertex's **root**, which immediately relabels all members via the root
//!   link — `O(|M_i| + |AFF|)`, independent of `|F_i|` (the paper's bounded
//!   incremental step).
//! * Assemble: vertices with equal `cid` form one component.
//!
//! CC also implements [`IncrementalPie`]: *insert-only* deltas are monotone
//! (components only merge, minimum ids only decrease), so `Q(G ⊕ ΔG)` is
//! refreshed by re-deriving the local component structure of the affected
//! fragments — seeded with the retained cids — and shipping the border cids
//! that decreased.  Deletions can split components; they take the **bounded
//! refresh** under [`DamagePolicy::Reachability`]: only the fragments whose
//! retained cids could have flowed through a deleted edge are re-rooted
//! with PEval, everyone else keeps its partial and reseeds its border cids.

use std::collections::HashMap;

use grape_core::output_delta::{diff_sorted, DeltaOutput, OutputDelta};
use grape_core::pie::{
    DamagePolicy, IncrementalPie, Messages, PieProgram, ProcessCodec, SerdeProcessCodec,
};
use grape_graph::delta::GraphDelta;
use grape_graph::types::VertexId;
use grape_partition::delta::FragmentDelta;
use grape_partition::fragment::Fragment;
use grape_partition::fragmentation_graph::BorderScope;
use serde::{Deserialize, Serialize, Value};

use crate::cc::sequential::UnionFind;

/// CC takes no parameters; the query type exists for API uniformity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CcQuery;

// Hand-written (the derive shim does not cover unit structs): a CC query
// carries no data, so it crosses worker pipes as an empty map.
impl Serialize for CcQuery {
    fn to_value(&self) -> Value {
        Value::Map(Vec::new())
    }
}

impl Deserialize for CcQuery {
    fn from_value(_v: &Value) -> Result<Self, serde::Error> {
        Ok(CcQuery)
    }
}

/// The assembled CC answer: a component id (the smallest vertex id of the
/// component) for every vertex.
#[derive(Debug, Clone, Default)]
pub struct CcResult {
    labels: HashMap<VertexId, VertexId>,
}

impl CcResult {
    /// Component id of `v`.
    pub fn component(&self, v: VertexId) -> Option<VertexId> {
        self.labels.get(&v).copied()
    }

    /// Whether two vertices are in the same component.
    pub fn same_component(&self, a: VertexId, b: VertexId) -> bool {
        match (self.component(a), self.component(b)) {
            (Some(x), Some(y)) => x == y,
            _ => false,
        }
    }

    /// Number of connected components.
    pub fn num_components(&self) -> usize {
        let mut ids: Vec<VertexId> = self.labels.values().copied().collect();
        ids.sort_unstable();
        ids.dedup();
        ids.len()
    }

    /// All vertex → component-id labels.
    pub fn labels(&self) -> &HashMap<VertexId, VertexId> {
        &self.labels
    }
}

/// Per-fragment partial result: the local component structure.  It
/// round-trips through the serde value encoding so a served CC query can be
/// evicted to a spill file and rehydrated (see `grape_core::serve`).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CcPartial {
    /// Local component index of each local vertex ("link to the root").
    component_of: Vec<usize>,
    /// Current `cid` of each local component (the root's variable).  Updating
    /// this single cell relabels every member at once, which is what makes
    /// IncEval's cost `O(|M_i| + |AFF|)` rather than `O(|F_i|)`.
    component_cid: Vec<VertexId>,
    /// Out-border members of each local component (the only vertices whose
    /// new cid must be shipped when the component is relabelled).
    border_members: Vec<Vec<u32>>,
    /// Global id of each local vertex.
    globals: Vec<VertexId>,
}

/// The CC PIE program.
#[derive(Debug, Clone, Copy, Default)]
pub struct Cc;

impl Cc {
    /// Derives the local component structure of a fragment — union-find over
    /// *all* local vertices (outer copies included: the cross edge that
    /// brought them in connects them locally), root numbering, border-member
    /// lists — seeding each component's cid with `seed_cid(global)` over its
    /// members.  PEval seeds with the vertex's own id; the incremental
    /// rebase additionally folds in the retained cids, which is what makes
    /// component *merges* (the only change an insert-only delta can cause)
    /// pick up the previously-propagated minima.
    fn local_structure(frag: &Fragment, seed_cid: impl Fn(VertexId) -> VertexId) -> CcPartial {
        let k = frag.num_local();
        let mut uf = UnionFind::new(k);
        for l in frag.all_locals() {
            for n in frag.out_edges(l) {
                uf.union(l as usize, n.target as usize);
            }
        }
        let mut root_index: HashMap<usize, usize> = HashMap::new();
        let mut component_of = vec![0usize; k];
        let mut component_cid: Vec<VertexId> = Vec::new();
        let mut border_members: Vec<Vec<u32>> = Vec::new();
        for (l, slot) in component_of.iter_mut().enumerate() {
            let root = uf.find(l);
            let idx = *root_index.entry(root).or_insert_with(|| {
                component_cid.push(VertexId::MAX);
                border_members.push(Vec::new());
                component_cid.len() - 1
            });
            *slot = idx;
            let g = frag.global_of(l as u32);
            component_cid[idx] = component_cid[idx].min(seed_cid(g));
        }
        // The inner border is included alongside F_i.O so that vertex-cut
        // partitions (shared vertices) also propagate component ids; under
        // edge-cut these extra values have no destination and cost nothing.
        for &l in frag
            .out_border_locals()
            .iter()
            .chain(frag.in_border_locals())
        {
            border_members[component_of[l as usize]].push(l);
        }
        CcPartial {
            component_of,
            component_cid,
            border_members,
            globals: frag.all_locals().map(|l| frag.global_of(l)).collect(),
        }
    }
}

impl PieProgram for Cc {
    type Query = CcQuery;
    type Partial = CcPartial;
    type Key = VertexId;
    type Value = VertexId;
    type Output = CcResult;

    fn name(&self) -> &str {
        "cc"
    }

    fn process_codec(&self) -> Option<&dyn ProcessCodec<Self>> {
        Some(&SerdeProcessCodec)
    }

    fn scope(&self) -> BorderScope {
        BorderScope::Out
    }

    fn peval(
        &self,
        _query: &CcQuery,
        frag: &Fragment,
        ctx: &mut Messages<VertexId, VertexId>,
    ) -> CcPartial {
        let partial = Self::local_structure(frag, |g| g);
        // Message segment: cid of every border vertex.
        for &l in frag
            .out_border_locals()
            .iter()
            .chain(frag.in_border_locals())
        {
            ctx.send(
                frag.global_of(l),
                partial.component_cid[partial.component_of[l as usize]],
            );
        }
        partial
    }

    fn inc_eval(
        &self,
        _query: &CcQuery,
        frag: &Fragment,
        partial: &mut CcPartial,
        messages: &[(VertexId, VertexId)],
        ctx: &mut Messages<VertexId, VertexId>,
    ) {
        // Apply the smaller cids to the roots of the affected components.
        let mut changed_components: Vec<usize> = Vec::new();
        for &(v, cid) in messages {
            if let Some(l) = frag.local_of(v) {
                let c = partial.component_of[l as usize];
                if cid < partial.component_cid[c] {
                    partial.component_cid[c] = cid;
                    changed_components.push(c);
                }
            }
        }
        if changed_components.is_empty() {
            return;
        }
        changed_components.sort_unstable();
        changed_components.dedup();
        // Relabel: the root's cid already covers every member; only the
        // out-border members of the changed components must notify other
        // fragments.
        for &c in &changed_components {
            let cid = partial.component_cid[c];
            for &l in &partial.border_members[c] {
                ctx.send(frag.global_of(l), cid);
            }
        }
    }

    fn assemble(&self, _query: &CcQuery, partials: Vec<CcPartial>) -> CcResult {
        let mut labels: HashMap<VertexId, VertexId> = HashMap::new();
        for partial in partials {
            for (l, &v) in partial.globals.iter().enumerate() {
                let cid = partial.component_cid[partial.component_of[l]];
                labels
                    .entry(v)
                    .and_modify(|existing| *existing = (*existing).min(cid))
                    .or_insert(cid);
            }
        }
        CcResult { labels }
    }

    fn aggregate(&self, _key: &VertexId, a: VertexId, b: VertexId) -> VertexId {
        a.min(b)
    }
}

impl IncrementalPie for Cc {
    /// Insertions only merge components and decrease minimum ids — monotone
    /// under the `min` order.  Removals can split components.
    fn delta_is_monotone(&self, delta: &GraphDelta) -> bool {
        !delta.has_removals()
    }

    /// Component merge: re-derive the fragment's local structure with cids
    /// seeded from the retained values (so merged components inherit the
    /// smaller propagated minimum), then ship every border cid that
    /// decreased — including those of brand-new border vertices, whose
    /// holders have no value yet.
    fn rebase(
        &self,
        _query: &CcQuery,
        _old_frag: &Fragment,
        new_frag: &Fragment,
        partial: CcPartial,
        _delta: &FragmentDelta,
    ) -> (CcPartial, Vec<(VertexId, VertexId)>) {
        let old_cid_of: HashMap<VertexId, VertexId> = partial
            .globals
            .iter()
            .enumerate()
            .map(|(l, &g)| (g, partial.component_cid[partial.component_of[l]]))
            .collect();
        let rebased = Self::local_structure(new_frag, |g| {
            old_cid_of.get(&g).copied().unwrap_or(g).min(g)
        });
        let mut sends = Vec::new();
        for &l in new_frag
            .out_border_locals()
            .iter()
            .chain(new_frag.in_border_locals())
        {
            let g = new_frag.global_of(l);
            let new_cid = rebased.component_cid[rebased.component_of[l as usize]];
            let old_cid = old_cid_of.get(&g).copied().unwrap_or(VertexId::MAX);
            if new_cid < old_cid {
                sends.push((g, new_cid));
            }
        }
        (rebased, sends)
    }

    /// The min-cid fixpoint is schedule-independent given fixed border
    /// inputs: deletions re-root only the message-flow closure of the
    /// damage.
    fn damage_policy(&self, _query: &CcQuery) -> DamagePolicy {
        DamagePolicy::Reachability
    }

    /// The full border segment of a retained partial: the current cid of
    /// every border vertex (same candidate set as PEval's message segment).
    fn reseed(
        &self,
        _query: &CcQuery,
        frag: &Fragment,
        partial: &CcPartial,
    ) -> Vec<(VertexId, VertexId)> {
        frag.out_border_locals()
            .iter()
            .chain(frag.in_border_locals())
            .map(|&l| {
                (
                    frag.global_of(l),
                    partial.component_cid[partial.component_of[l as usize]],
                )
            })
            .collect()
    }
}

impl DeltaOutput for Cc {
    type OutKey = VertexId;
    type OutVal = VertexId;

    /// One row per vertex: `(v, cid)`, sorted by id.
    fn canonical(&self, _query: &CcQuery, output: &CcResult) -> Vec<(VertexId, VertexId)> {
        let mut rows: Vec<(VertexId, VertexId)> =
            output.labels.iter().map(|(&v, &cid)| (v, cid)).collect();
        rows.sort_unstable();
        rows
    }

    /// Min-merges the per-fragment cids straight off the partials — the same
    /// rows `canonical(assemble(...))` yields, minus the intermediate
    /// [`CcResult`].
    fn diff_output(
        &self,
        _query: &CcQuery,
        previous: &[(VertexId, VertexId)],
        partials: &[CcPartial],
    ) -> Option<OutputDelta<VertexId, VertexId>> {
        let mut labels: HashMap<VertexId, VertexId> = HashMap::new();
        for partial in partials {
            for (l, &v) in partial.globals.iter().enumerate() {
                let cid = partial.component_cid[partial.component_of[l]];
                labels
                    .entry(v)
                    .and_modify(|existing| *existing = (*existing).min(cid))
                    .or_insert(cid);
            }
        }
        let mut next: Vec<(VertexId, VertexId)> = labels.into_iter().collect();
        next.sort_unstable();
        Some(diff_sorted(previous, &next))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grape_core::session::GrapeSession;
    use grape_graph::builder::GraphBuilder;
    use grape_graph::generators::{erdos_renyi, power_law, road_grid};
    use grape_graph::graph::Directedness;
    use grape_partition::edge_cut::{HashEdgeCut, RangeEdgeCut};
    use grape_partition::strategy::PartitionStrategy;

    use crate::cc::sequential::connected_components;

    fn run_cc(g: &grape_graph::graph::Graph, fragments: usize, workers: usize) -> CcResult {
        let frag = HashEdgeCut::new(fragments).partition(g).unwrap();
        GrapeSession::with_workers(workers)
            .run(&frag, &Cc, &CcQuery)
            .unwrap()
            .output
    }

    fn assert_matches_sequential(g: &grape_graph::graph::Graph, result: &CcResult) {
        let expected = connected_components(g);
        for v in g.vertices() {
            assert_eq!(
                result.component(v),
                Some(expected[v as usize]),
                "vertex {v} labels diverge"
            );
        }
    }

    #[test]
    fn matches_sequential_on_undirected_random_graph() {
        let g = erdos_renyi(300, 350, 0, Directedness::Undirected, 1);
        let result = run_cc(&g, 4, 2);
        assert_matches_sequential(&g, &result);
    }

    #[test]
    fn matches_sequential_on_power_law() {
        let g = power_law(400, 900, 0, 2).to_undirected();
        let result = run_cc(&g, 6, 3);
        assert_matches_sequential(&g, &result);
    }

    #[test]
    fn grid_is_one_component() {
        let g = road_grid(8, 8, 3);
        let result = run_cc(&g, 4, 2);
        assert_eq!(result.num_components(), 1);
        assert!(result.same_component(0, 63));
    }

    #[test]
    fn disconnected_pieces_stay_separate() {
        let g = GraphBuilder::undirected()
            .add_edge(0, 1)
            .add_edge(1, 2)
            .add_edge(10, 11)
            .ensure_vertices(13)
            .build();
        let frag = RangeEdgeCut::new(3).partition(&g).unwrap();
        let result = GrapeSession::with_workers(2)
            .run(&frag, &Cc, &CcQuery)
            .unwrap()
            .output;
        assert!(result.same_component(0, 2));
        assert!(result.same_component(10, 11));
        assert!(!result.same_component(0, 10));
        assert_eq!(result.component(12), Some(12));
        assert_matches_sequential(&g, &result);
    }

    #[test]
    fn component_ids_are_minimum_member_ids() {
        let g = GraphBuilder::undirected()
            .add_edge(5, 9)
            .add_edge(9, 3)
            .build();
        let result = run_cc(&g, 2, 1);
        assert_eq!(result.component(5), Some(3));
        assert_eq!(result.component(9), Some(3));
    }

    #[test]
    fn prepared_update_merges_components_without_peval() {
        use grape_graph::delta::GraphDelta;

        let g = GraphBuilder::undirected()
            .add_edge(0, 1)
            .add_edge(1, 2)
            .add_edge(10, 11)
            .add_edge(11, 12)
            .ensure_vertices(13)
            .build();
        let frag = RangeEdgeCut::new(3).partition(&g).unwrap();
        let session = GrapeSession::with_workers(2);
        let mut prepared = session.prepare(frag, Cc, CcQuery).unwrap();
        assert!(!prepared.output().same_component(2, 10));

        // Bridge the two components across fragments.
        let report = prepared.update(&GraphDelta::new().add_edge(2, 10)).unwrap();
        assert!(report.incremental);
        assert_eq!(report.metrics.peval_calls, 0);

        let merged = prepared.output();
        assert!(merged.same_component(0, 12));
        assert_eq!(merged.component(12), Some(0));
        assert_matches_sequential(prepared.fragmentation().source(), &merged);

        // A second, purely redundant edge changes nothing but stays cheap.
        let report = prepared.update(&GraphDelta::new().add_edge(0, 12)).unwrap();
        assert!(report.incremental);
        assert_eq!(report.metrics.peval_calls, 0);
        assert_matches_sequential(prepared.fragmentation().source(), &prepared.output());
    }

    #[test]
    fn prepared_update_falls_back_on_vertex_removal() {
        use grape_graph::delta::GraphDelta;

        let g = erdos_renyi(60, 80, 0, Directedness::Undirected, 4);
        let frag = HashEdgeCut::new(3).partition(&g).unwrap();
        let session = GrapeSession::with_workers(2);
        let mut prepared = session.prepare(frag, Cc, CcQuery).unwrap();
        let report = prepared
            .update(&GraphDelta::new().remove_vertex(7))
            .unwrap();
        assert!(!report.incremental, "removals can split components");
        assert!(report.metrics.peval_calls > 0);
        assert_matches_sequential(prepared.fragmentation().source(), &prepared.output());
    }

    #[test]
    fn deletion_in_an_isolated_component_repevals_only_that_component() {
        use grape_core::prepared::RefreshKind;
        use grape_graph::delta::GraphDelta;

        // Two disjoint chains over four range fragments of 3: {0,1,2} and
        // {3,4,5} form one quotient component, {6,7,8} and {9,10,11} the
        // other.  Splitting the second chain damages only its fragments.
        let g = GraphBuilder::undirected()
            .add_edge(0, 1)
            .add_edge(1, 2)
            .add_edge(2, 3)
            .add_edge(3, 4)
            .add_edge(4, 5)
            .add_edge(6, 7)
            .add_edge(7, 8)
            .add_edge(8, 9)
            .add_edge(9, 10)
            .add_edge(10, 11)
            .build();
        let frag = RangeEdgeCut::new(4).partition(&g).unwrap();
        let session = GrapeSession::with_workers(2);
        let mut prepared = session.prepare(frag, Cc, CcQuery).unwrap();
        assert!(prepared.output().same_component(6, 11));

        let report = prepared
            .update(&GraphDelta::new().remove_edge(9, 10))
            .unwrap();
        assert_eq!(report.kind, RefreshKind::Bounded);
        assert!(
            report.repeval.iter().all(|&i| i >= 2),
            "the first chain's fragments stay untouched: {:?}",
            report.repeval
        );
        assert!(report.metrics.peval_calls < 4);

        let split = prepared.output();
        assert!(!split.same_component(6, 11));
        assert!(split.same_component(0, 5));
        assert_matches_sequential(prepared.fragmentation().source(), &split);
    }

    #[test]
    fn fragment_count_does_not_change_components() {
        let g = erdos_renyi(200, 250, 0, Directedness::Undirected, 9);
        let a = run_cc(&g, 1, 1);
        let b = run_cc(&g, 8, 4);
        assert_eq!(a.num_components(), b.num_components());
        for v in g.vertices() {
            assert_eq!(a.component(v), b.component(v));
        }
    }
}
