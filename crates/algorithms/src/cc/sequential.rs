//! Sequential connected components over an entire graph (union-find), the
//! `O(|G|)` algorithm the paper plugs in as PEval.

use grape_graph::graph::Graph;
use grape_graph::types::VertexId;

/// A small union-find (disjoint set) structure with path compression and
/// union by size.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<usize>,
    size: Vec<usize>,
}

impl UnionFind {
    /// Creates `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
            size: vec![1; n],
        }
    }

    /// Finds the representative of `x` with path compression.
    pub fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] != root {
            root = self.parent[root];
        }
        let mut cur = x;
        while self.parent[cur] != root {
            let next = self.parent[cur];
            self.parent[cur] = root;
            cur = next;
        }
        root
    }

    /// Unions the sets of `a` and `b`; returns `true` if they were disjoint.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (big, small) = if self.size[ra] >= self.size[rb] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small] = big;
        self.size[big] += self.size[small];
        true
    }
}

/// Computes connected components treating edges as undirected.  Returns, for
/// every vertex, the smallest vertex id in its component — the same component
/// naming convention the PIE program converges to, which makes the two
/// directly comparable in tests.
pub fn connected_components(graph: &Graph) -> Vec<VertexId> {
    let n = graph.num_vertices();
    let mut uf = UnionFind::new(n);
    for e in graph.edges() {
        uf.union(e.src as usize, e.dst as usize);
    }
    // Smallest member id per component root.
    let mut min_of_root = vec![VertexId::MAX; n];
    for v in 0..n {
        let r = uf.find(v);
        min_of_root[r] = min_of_root[r].min(v as VertexId);
    }
    (0..n).map(|v| min_of_root[uf.find(v)]).collect()
}

/// Number of connected components of a graph.
pub fn num_components(graph: &Graph) -> usize {
    let labels = connected_components(graph);
    let mut distinct: Vec<VertexId> = labels.clone();
    distinct.sort_unstable();
    distinct.dedup();
    if graph.num_vertices() == 0 {
        0
    } else {
        distinct.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grape_graph::builder::GraphBuilder;
    use grape_graph::generators::{erdos_renyi, road_grid};
    use grape_graph::graph::Directedness;

    #[test]
    fn union_find_basics() {
        let mut uf = UnionFind::new(4);
        assert!(uf.union(0, 1));
        assert!(!uf.union(1, 0));
        assert!(uf.union(2, 3));
        assert_eq!(uf.find(0), uf.find(1));
        assert_ne!(uf.find(0), uf.find(2));
        assert!(uf.union(0, 3));
        assert_eq!(uf.find(1), uf.find(2));
    }

    #[test]
    fn two_components_get_their_minimum_ids() {
        let g = GraphBuilder::undirected()
            .add_edge(0, 1)
            .add_edge(1, 2)
            .add_edge(3, 4)
            .build();
        let labels = connected_components(&g);
        assert_eq!(labels, vec![0, 0, 0, 3, 3]);
        assert_eq!(num_components(&g), 2);
    }

    #[test]
    fn isolated_vertices_are_their_own_component() {
        let g = GraphBuilder::undirected()
            .add_edge(0, 1)
            .ensure_vertices(4)
            .build();
        assert_eq!(num_components(&g), 3);
    }

    #[test]
    fn grid_is_a_single_component() {
        let g = road_grid(8, 8, 1);
        assert_eq!(num_components(&g), 1);
    }

    #[test]
    fn directed_edges_are_treated_as_undirected() {
        let g = GraphBuilder::directed()
            .add_edge(0, 1)
            .add_edge(2, 1)
            .build();
        assert_eq!(num_components(&g), 1);
    }

    #[test]
    fn sparse_random_graph_has_many_components() {
        let g = erdos_renyi(500, 100, 0, Directedness::Undirected, 1);
        assert!(num_components(&g) > 300);
    }

    #[test]
    fn empty_graph_has_zero_components() {
        let g = GraphBuilder::undirected().build();
        assert_eq!(num_components(&g), 0);
    }
}
