//! Connected Components (CC), Section 5.2 of the paper.
//!
//! * [`sequential`] — DFS/union-find connected components over a whole graph,
//!   used by the baselines and as the correctness oracle.
//! * [`pie`] — the PIE program: PEval computes local components per fragment
//!   and links every vertex to a component root; IncEval merges components
//!   across fragments by monotonically propagating the smallest component id,
//!   touching only the affected roots (the paper's bounded incremental step).

pub mod pie;
pub mod sequential;

pub use pie::{Cc, CcQuery, CcResult};
pub use sequential::connected_components;
