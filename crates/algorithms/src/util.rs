//! Small shared utilities for the algorithm implementations.

use std::cmp::Ordering;

/// A `(distance, vertex)` entry for min-heaps over `f64` distances.
///
/// `f64` is not `Ord`; distances produced by shortest-path algorithms are
/// never NaN, so comparing through `partial_cmp` with an `Equal` fallback is
/// safe and keeps the heap total-ordered.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MinDist<V> {
    /// Distance (priority; smaller pops first).
    pub dist: f64,
    /// Payload vertex.
    pub vertex: V,
}

impl<V: PartialEq> Eq for MinDist<V> {}

impl<V: PartialEq> PartialOrd for MinDist<V> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<V: PartialEq> Ord for MinDist<V> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we want the smallest distance on top.
        other
            .dist
            .partial_cmp(&self.dist)
            .unwrap_or(Ordering::Equal)
    }
}

/// Positive infinity used as the "unreached" distance (paper: `dist(s, v) = ∞`).
pub const INF: f64 = f64::INFINITY;

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BinaryHeap;

    #[test]
    fn heap_pops_smallest_distance_first() {
        let mut heap = BinaryHeap::new();
        heap.push(MinDist {
            dist: 3.0,
            vertex: 3u32,
        });
        heap.push(MinDist {
            dist: 1.0,
            vertex: 1u32,
        });
        heap.push(MinDist {
            dist: 2.0,
            vertex: 2u32,
        });
        assert_eq!(heap.pop().unwrap().vertex, 1);
        assert_eq!(heap.pop().unwrap().vertex, 2);
        assert_eq!(heap.pop().unwrap().vertex, 3);
    }

    #[test]
    fn infinity_sorts_last() {
        let mut heap = BinaryHeap::new();
        heap.push(MinDist {
            dist: INF,
            vertex: 0u32,
        });
        heap.push(MinDist {
            dist: 5.0,
            vertex: 1u32,
        });
        assert_eq!(heap.pop().unwrap().vertex, 1);
    }
}
