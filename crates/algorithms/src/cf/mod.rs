//! Collaborative Filtering (CF) via matrix factorization, Section 5.3.
//!
//! * [`sequential`] — stochastic gradient descent (SGD) over a bipartite
//!   rating graph, the algorithm of Koren et al. the paper plugs in as PEval,
//!   plus the incremental ISGD step used by IncEval.
//! * [`pie`] — the PIE program: each fragment trains on its local ratings,
//!   factor vectors of shared (border) vertices are exchanged with a
//!   timestamp-based "latest wins" `aggregateMsg`, and training stops after a
//!   fixed number of epochs (the paper's convergence criterion is likewise a
//!   bounded number of supersteps or an error threshold).

pub mod pie;
pub mod sequential;

pub use pie::{Cf, CfQuery, CfResult};
pub use sequential::{sgd_train, CfConfig, CfModel};
