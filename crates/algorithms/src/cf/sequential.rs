//! Sequential SGD matrix factorization for collaborative filtering.

use std::collections::HashMap;

use grape_graph::graph::Graph;
use grape_graph::types::VertexId;

/// Hyper-parameters of the factorization.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CfConfig {
    /// Dimensionality of the latent factors.
    pub num_factors: usize,
    /// SGD learning rate (the paper's `λ` in equations (1)–(2)).
    pub learning_rate: f64,
    /// L2 regularization strength.
    pub regularization: f64,
    /// Number of passes over the training edges.
    pub epochs: usize,
}

impl Default for CfConfig {
    fn default() -> Self {
        CfConfig {
            num_factors: 8,
            learning_rate: 0.05,
            regularization: 0.05,
            epochs: 10,
        }
    }
}

/// A trained model: one factor vector per vertex (users and items alike).
#[derive(Debug, Clone, Default)]
pub struct CfModel {
    factors: HashMap<VertexId, Vec<f64>>,
}

impl CfModel {
    /// Creates a model from raw factors.
    pub fn new(factors: HashMap<VertexId, Vec<f64>>) -> Self {
        CfModel { factors }
    }

    /// The factor vector of a vertex.
    pub fn factors_of(&self, v: VertexId) -> Option<&[f64]> {
        self.factors.get(&v).map(Vec::as_slice)
    }

    /// Predicted rating of the (user, item) pair: the dot product of the two
    /// factor vectors (0 when either vertex is unknown).
    pub fn predict(&self, user: VertexId, item: VertexId) -> f64 {
        match (self.factors.get(&user), self.factors.get(&item)) {
            (Some(u), Some(p)) => u.iter().zip(p).map(|(a, b)| a * b).sum(),
            _ => 0.0,
        }
    }

    /// Root-mean-square error over the edges of a rating graph (edge weight =
    /// observed rating), the convergence measure used in Section 7 Exp-1(5).
    pub fn rmse(&self, graph: &Graph) -> f64 {
        let mut total = 0.0;
        let mut count = 0usize;
        for e in graph.edges() {
            let err = e.weight - self.predict(e.src, e.dst);
            total += err * err;
            count += 1;
        }
        if count == 0 {
            0.0
        } else {
            (total / count as f64).sqrt()
        }
    }

    /// Number of vertices with a factor vector.
    pub fn len(&self) -> usize {
        self.factors.len()
    }

    /// Whether the model is empty.
    pub fn is_empty(&self) -> bool {
        self.factors.is_empty()
    }

    /// The raw factors.
    pub fn into_factors(self) -> HashMap<VertexId, Vec<f64>> {
        self.factors
    }

    /// The raw factors, borrowed.
    pub fn factors(&self) -> &HashMap<VertexId, Vec<f64>> {
        &self.factors
    }
}

/// Deterministic initial factor vector of a vertex: a small pseudo-random but
/// reproducible vector derived from the vertex id, so that the sequential and
/// distributed trainers start from the same point.
pub fn initial_factors(v: VertexId, num_factors: usize) -> Vec<f64> {
    (0..num_factors)
        .map(|i| {
            let h = v
                .wrapping_mul(6364136223846793005)
                .wrapping_add(i as u64 * 1442695040888963407);
            0.1 + 0.4 * ((h >> 33) as f64 / u32::MAX as f64)
        })
        .collect()
}

/// One SGD update for a single observed rating (the paper's equations (1)
/// and (2)).  Returns the signed prediction error before the update.
pub fn sgd_step(
    user_factors: &mut [f64],
    item_factors: &mut [f64],
    rating: f64,
    learning_rate: f64,
    regularization: f64,
) -> f64 {
    let prediction: f64 = user_factors
        .iter()
        .zip(item_factors.iter())
        .map(|(a, b)| a * b)
        .sum();
    let error = rating - prediction;
    for i in 0..user_factors.len() {
        let u = user_factors[i];
        let p = item_factors[i];
        user_factors[i] = u + learning_rate * (error * p - regularization * u);
        item_factors[i] = p + learning_rate * (error * u - regularization * p);
    }
    error
}

/// Trains a model on the whole rating graph with plain sequential SGD.
pub fn sgd_train(graph: &Graph, config: &CfConfig) -> CfModel {
    let mut factors: HashMap<VertexId, Vec<f64>> = HashMap::new();
    for e in graph.edges() {
        factors
            .entry(e.src)
            .or_insert_with(|| initial_factors(e.src, config.num_factors));
        factors
            .entry(e.dst)
            .or_insert_with(|| initial_factors(e.dst, config.num_factors));
    }
    for _ in 0..config.epochs {
        for e in graph.edges() {
            // Split-borrow the two entries through a temporary copy of the
            // user vector (the map cannot hand out two &mut at once).
            let mut user = factors.get(&e.src).expect("user factors exist").clone();
            let item = factors.get_mut(&e.dst).expect("item factors exist");
            sgd_step(
                &mut user,
                item,
                e.weight,
                config.learning_rate,
                config.regularization,
            );
            factors.insert(e.src, user);
        }
    }
    CfModel { factors }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grape_graph::generators::bipartite_ratings;

    #[test]
    fn initial_factors_are_deterministic_and_in_range() {
        let a = initial_factors(42, 8);
        let b = initial_factors(42, 8);
        assert_eq!(a, b);
        assert!(a.iter().all(|&x| (0.1..=0.5).contains(&x)));
        assert_ne!(initial_factors(1, 4), initial_factors(2, 4));
    }

    #[test]
    fn sgd_step_reduces_error_for_that_rating() {
        let mut u = vec![0.2, 0.3];
        let mut p = vec![0.1, 0.4];
        let rating = 4.0;
        let before = f64::abs(rating - (u[0] * p[0] + u[1] * p[1]));
        for _ in 0..50 {
            sgd_step(&mut u, &mut p, rating, 0.1, 0.01);
        }
        let after = (rating - (u[0] * p[0] + u[1] * p[1])).abs();
        assert!(after < before * 0.2, "error {before} -> {after}");
    }

    #[test]
    fn training_reduces_rmse_on_generated_ratings() {
        let data = bipartite_ratings(60, 30, 600, 4, 1);
        let config = CfConfig {
            epochs: 15,
            ..Default::default()
        };
        let untrained = CfModel {
            factors: data
                .graph
                .edges()
                .iter()
                .flat_map(|e| [e.src, e.dst])
                .map(|v| (v, initial_factors(v, config.num_factors)))
                .collect(),
        };
        let trained = sgd_train(&data.graph, &config);
        assert!(
            trained.rmse(&data.graph) < untrained.rmse(&data.graph) * 0.5,
            "rmse {} vs {}",
            trained.rmse(&data.graph),
            untrained.rmse(&data.graph)
        );
        assert!(trained.rmse(&data.graph) < 0.8);
    }

    #[test]
    fn more_epochs_do_not_hurt() {
        let data = bipartite_ratings(40, 20, 400, 3, 2);
        let short = sgd_train(
            &data.graph,
            &CfConfig {
                epochs: 2,
                ..Default::default()
            },
        );
        let long = sgd_train(
            &data.graph,
            &CfConfig {
                epochs: 20,
                ..Default::default()
            },
        );
        assert!(long.rmse(&data.graph) <= short.rmse(&data.graph) + 0.05);
    }

    #[test]
    fn predict_unknown_vertex_is_zero() {
        let model = CfModel::default();
        assert_eq!(model.predict(1, 2), 0.0);
        assert!(model.is_empty());
    }

    #[test]
    fn rmse_of_empty_graph_is_zero() {
        let g = grape_graph::builder::GraphBuilder::directed().build();
        assert_eq!(CfModel::default().rmse(&g), 0.0);
    }
}
