//! The CF PIE program (Section 5.3).
//!
//! Message preamble: a status variable `v.x = (v.f, t)` per vertex — the
//! factor vector plus the timestamp of its last update; candidate set
//! `C_i = F_i.O` (and, symmetrically, updated master copies are pushed back
//! to the replicas, hence [`BorderScope::Both`]); `aggregateMsg = max` on the
//! timestamp (latest update wins).
//!
//! * PEval — the sequential SGD of Koren et al. over the fragment's local
//!   ratings (a "mini-batch" in the paper's wording).
//! * IncEval — ISGD: apply the received factor vectors, then run another
//!   local epoch touching only the affected vectors, until the configured
//!   number of epochs is exhausted.
//! * Assemble — union of the factor vectors (master copies win).
//!
//! CF also implements [`IncrementalPie`] for prepared queries over evolving
//! rating graphs: **rating inserts are an epoch-seeded factor refresh** over
//! the affected user/item vertices.  SGD training is trajectory-dependent —
//! a new rating participates in *every* epoch, so no delta is monotone and
//! there is no sound way to splice boundary factors mid-training.  The
//! damage policy is therefore [`DamagePolicy::Component`]: the refresh
//! re-initializes the factors of every fragment in the quotient connected
//! component(s) the new ratings touch and re-runs their epoch budget from
//! epoch 1, while fragments of untouched components keep their trained
//! factors verbatim (no message ever crossed the component boundary, so
//! they equal a full retraining's by construction).
//!
//! On a rating graph whose quotient is one connected component the frontier
//! degenerates to a full retrain — the honest answer for a model whose
//! every factor depends on every rating.

use std::collections::HashMap;

use grape_core::output_delta::DeltaOutput;
use grape_core::pie::{
    DamagePolicy, IncrementalPie, Messages, PieProgram, ProcessCodec, SerdeProcessCodec,
};
use grape_graph::delta::GraphDelta;
use grape_graph::types::VertexId;
use grape_partition::delta::FragmentDelta;
use grape_partition::fragment::Fragment;
use grape_partition::fragmentation_graph::BorderScope;
use serde::{Deserialize, Serialize};

use crate::cf::sequential::{initial_factors, sgd_step, CfModel};

/// A collaborative-filtering query: the training hyper-parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CfQuery {
    /// Latent factor dimensionality.
    pub num_factors: usize,
    /// SGD learning rate.
    pub learning_rate: f64,
    /// L2 regularization.
    pub regularization: f64,
    /// Number of local epochs (supersteps) each fragment performs — the
    /// convergence criterion, as in the paper, is a predetermined number of
    /// rounds.
    pub epochs: usize,
}

impl Default for CfQuery {
    fn default() -> Self {
        CfQuery {
            num_factors: 8,
            learning_rate: 0.05,
            regularization: 0.05,
            epochs: 8,
        }
    }
}

/// The assembled answer: a trained [`CfModel`].
pub type CfResult = CfModel;

/// The value of the `v.x = (v.f, t)` status variable.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FactorUpdate {
    /// The factor vector `v.f`.
    pub factors: Vec<f64>,
    /// The epoch (timestamp) at which it was last updated.
    pub timestamp: u64,
}

/// Per-fragment partial result: the local factor vectors and the epoch count.
/// Serializable so a served CF query can spill to disk and rehydrate.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CfPartial {
    factors: Vec<Vec<f64>>,
    timestamps: Vec<u64>,
    epoch: u64,
    globals: Vec<VertexId>,
    num_inner: usize,
}

/// The CF PIE program.
#[derive(Debug, Clone, Copy, Default)]
pub struct Cf;

impl Cf {
    /// One local SGD epoch over the fragment's edges.
    fn local_epoch(frag: &Fragment, query: &CfQuery, partial: &mut CfPartial) {
        for l in frag.inner_locals() {
            for n in frag.out_edges(l) {
                let t = n.target as usize;
                let rating = n.weight;
                // Split borrow: clone the smaller (user) vector, mutate in place.
                let mut user = partial.factors[l as usize].clone();
                let item = &mut partial.factors[t];
                sgd_step(
                    &mut user,
                    item,
                    rating,
                    query.learning_rate,
                    query.regularization,
                );
                partial.factors[l as usize] = user;
                partial.timestamps[l as usize] = partial.epoch;
                partial.timestamps[t] = partial.epoch;
            }
        }
    }

    /// Emits the factor vectors of all border vertices.
    fn send_border(
        frag: &Fragment,
        partial: &CfPartial,
        ctx: &mut Messages<VertexId, FactorUpdate>,
    ) {
        let mut border: Vec<u32> = frag.out_border_locals().to_vec();
        border.extend_from_slice(frag.in_border_locals());
        border.sort_unstable();
        border.dedup();
        for l in border {
            ctx.send(
                frag.global_of(l),
                FactorUpdate {
                    factors: partial.factors[l as usize].clone(),
                    timestamp: partial.timestamps[l as usize],
                },
            );
        }
    }
}

impl PieProgram for Cf {
    type Query = CfQuery;
    type Partial = CfPartial;
    type Key = VertexId;
    type Value = FactorUpdate;
    type Output = CfResult;

    fn name(&self) -> &str {
        "cf"
    }

    fn process_codec(&self) -> Option<&dyn ProcessCodec<Self>> {
        Some(&SerdeProcessCodec)
    }

    fn scope(&self) -> BorderScope {
        BorderScope::Both
    }

    fn peval(
        &self,
        query: &CfQuery,
        frag: &Fragment,
        ctx: &mut Messages<VertexId, FactorUpdate>,
    ) -> CfPartial {
        let k = frag.num_local();
        let mut partial = CfPartial {
            factors: (0..k)
                .map(|l| initial_factors(frag.global_of(l as u32), query.num_factors))
                .collect(),
            timestamps: vec![0; k],
            epoch: 1,
            globals: frag.all_locals().map(|l| frag.global_of(l)).collect(),
            num_inner: frag.num_inner(),
        };
        Self::local_epoch(frag, query, &mut partial);
        if query.epochs > 1 {
            Self::send_border(frag, &partial, ctx);
        }
        partial
    }

    fn inc_eval(
        &self,
        query: &CfQuery,
        frag: &Fragment,
        partial: &mut CfPartial,
        messages: &[(VertexId, FactorUpdate)],
        ctx: &mut Messages<VertexId, FactorUpdate>,
    ) {
        // ISGD: adopt the freshest factor vectors for shared vertices.
        for (v, update) in messages {
            if let Some(l) = frag.local_of(*v) {
                if update.timestamp >= partial.timestamps[l as usize] {
                    partial.factors[l as usize] = update.factors.clone();
                    partial.timestamps[l as usize] = update.timestamp;
                }
            }
        }
        if partial.epoch as usize >= query.epochs {
            return; // converged (epoch budget exhausted): no further messages
        }
        partial.epoch += 1;
        Self::local_epoch(frag, query, partial);
        Self::send_border(frag, partial, ctx);
    }

    fn assemble(&self, _query: &CfQuery, partials: Vec<CfPartial>) -> CfResult {
        let mut factors: HashMap<VertexId, Vec<f64>> = HashMap::new();
        let mut stamps: HashMap<VertexId, u64> = HashMap::new();
        for partial in partials {
            for (idx, &v) in partial.globals.iter().enumerate() {
                let is_master = idx < partial.num_inner;
                let stamp = partial.timestamps[idx] * 2 + u64::from(is_master);
                if stamps.get(&v).is_none_or(|&s| stamp > s) {
                    stamps.insert(v, stamp);
                    factors.insert(v, partial.factors[idx].clone());
                }
            }
        }
        CfModel::new(factors)
    }

    fn aggregate(&self, _key: &VertexId, a: FactorUpdate, b: FactorUpdate) -> FactorUpdate {
        // Latest timestamp wins; equal timestamps are averaged (deterministic
        // and commutative, which keeps the run reproducible).
        match a.timestamp.cmp(&b.timestamp) {
            std::cmp::Ordering::Greater => a,
            std::cmp::Ordering::Less => b,
            std::cmp::Ordering::Equal => FactorUpdate {
                factors: a
                    .factors
                    .iter()
                    .zip(&b.factors)
                    .map(|(x, y)| (x + y) / 2.0)
                    .collect(),
                timestamp: a.timestamp,
            },
        }
    }

    fn value_size(&self, value: &FactorUpdate) -> usize {
        value.factors.len() * std::mem::size_of::<f64>() + std::mem::size_of::<u64>()
    }
}

impl IncrementalPie for Cf {
    /// SGD training has no monotone direction: a new rating participates in
    /// every epoch, so both inserts and removals change the trajectory of
    /// their whole component.  Every non-empty delta takes the bounded
    /// (component-closed) refresh.
    fn delta_is_monotone(&self, delta: &GraphDelta) -> bool {
        delta.is_empty()
    }

    /// Only reachable for deltas that changed no fragment structurally
    /// (empty `ΔG`), where there is nothing to repair.
    fn rebase(
        &self,
        _query: &CfQuery,
        _old_frag: &Fragment,
        _new_frag: &Fragment,
        partial: CfPartial,
        _delta: &FragmentDelta,
    ) -> (CfPartial, Vec<(VertexId, FactorUpdate)>) {
        (partial, Vec::new())
    }

    /// Epoch-seeded factor refresh: the whole quotient component of every
    /// changed fragment retrains from epoch 1 (PEval re-initializes the
    /// affected user/item factor vectors); untouched components keep their
    /// trained factors.
    fn damage_policy(&self, _query: &CfQuery) -> DamagePolicy {
        DamagePolicy::Component
    }
}

impl DeltaOutput for Cf {
    type OutKey = VertexId;
    type OutVal = Vec<f64>;

    /// One row per vertex: `(v, factor vector)`, sorted by id — a retrained
    /// component surfaces as the changed rows of exactly its members (the
    /// "re-ranked items").
    fn canonical(&self, _query: &CfQuery, output: &CfResult) -> Vec<(VertexId, Vec<f64>)> {
        let mut rows: Vec<(VertexId, Vec<f64>)> = output
            .factors()
            .iter()
            .map(|(&v, f)| (v, f.clone()))
            .collect();
        rows.sort_unstable_by_key(|&(v, _)| v);
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grape_core::session::GrapeSession;
    use grape_graph::generators::bipartite_ratings;
    use grape_partition::edge_cut::HashEdgeCut;
    use grape_partition::strategy::PartitionStrategy;

    use crate::cf::sequential::{sgd_train, CfConfig};

    fn train_distributed(
        fragments: usize,
        epochs: usize,
        seed: u64,
    ) -> (
        CfModel,
        grape_core::metrics::EngineMetrics,
        grape_graph::graph::Graph,
    ) {
        // CF's epoch accounting is superstep-aligned (one epoch per IncEval
        // round), so the training pipeline pins synchronous mode.
        let data = bipartite_ratings(60, 30, 800, 4, seed);
        let frag = HashEdgeCut::new(fragments).partition(&data.graph).unwrap();
        let query = CfQuery {
            epochs,
            num_factors: 4,
            ..Default::default()
        };
        let result = GrapeSession::builder()
            .workers(4)
            .mode(grape_core::config::EngineMode::Sync)
            .build()
            .unwrap()
            .run(&frag, &Cf, &query)
            .unwrap();
        (result.output, result.metrics, data.graph)
    }

    #[test]
    fn distributed_training_reduces_rmse_close_to_sequential() {
        let (model, _, graph) = train_distributed(4, 10, 1);
        let sequential = sgd_train(
            &graph,
            &CfConfig {
                epochs: 10,
                num_factors: 4,
                ..Default::default()
            },
        );
        let dist_rmse = model.rmse(&graph);
        let seq_rmse = sequential.rmse(&graph);
        assert!(dist_rmse < 1.0, "distributed rmse too high: {dist_rmse}");
        assert!(
            dist_rmse < seq_rmse * 2.0 + 0.2,
            "distributed rmse {dist_rmse} far from sequential {seq_rmse}"
        );
    }

    #[test]
    fn every_rated_vertex_gets_factors() {
        let (model, _, graph) = train_distributed(3, 4, 2);
        for e in graph.edges() {
            assert!(model.factors_of(e.src).is_some());
            assert!(model.factors_of(e.dst).is_some());
        }
    }

    #[test]
    fn supersteps_match_epoch_budget() {
        let (_, metrics, _) = train_distributed(4, 5, 3);
        // PEval + (epochs - 1) IncEval rounds + the final quiescent exchange.
        assert!(
            metrics.supersteps >= 5 && metrics.supersteps <= 7,
            "{}",
            metrics.supersteps
        );
    }

    #[test]
    fn single_epoch_terminates_after_peval() {
        let (_, metrics, _) = train_distributed(4, 1, 4);
        assert_eq!(metrics.supersteps, 1);
        assert_eq!(metrics.total_messages, 0);
    }

    #[test]
    fn prepared_rating_insert_refreshes_only_the_touched_component() {
        use grape_core::prepared::RefreshKind;
        use grape_graph::builder::GraphBuilder;
        use grape_graph::delta::GraphDelta;
        use grape_graph::types::Edge;
        use grape_partition::edge_cut::RangeEdgeCut;

        // Two disjoint rating blocks: users 0–3 rate items 4–7, users 8–11
        // rate items 12–15.  Four range fragments of 4 vertices — fragments
        // {0,1} form one quotient component, {2,3} the other.
        let mut b = GraphBuilder::directed();
        for u in 0..4u64 {
            for i in 0..3u64 {
                b.push_edge(Edge::weighted(
                    u,
                    4 + (u + i) % 4,
                    1.0 + ((u + i) % 5) as f64,
                ));
            }
        }
        for u in 8..12u64 {
            for i in 0..3u64 {
                b.push_edge(Edge::weighted(
                    u,
                    12 + (u + i) % 4,
                    1.0 + ((u * (i + 1)) % 5) as f64,
                ));
            }
        }
        let g = b.build();
        let frag = RangeEdgeCut::new(4).partition(&g).unwrap();
        let session = GrapeSession::builder()
            .workers(2)
            .mode(grape_core::config::EngineMode::Sync)
            .build()
            .unwrap();
        let query = CfQuery {
            epochs: 4,
            num_factors: 4,
            ..Default::default()
        };
        let mut prepared = session.prepare(frag, Cf, query.clone()).unwrap();

        // A new rating inside the second block: epoch-seeded factor refresh
        // over that component's user/item vertices only.
        let report = prepared
            .update(&GraphDelta::new().add_weighted_edge(9, 15, 5.0))
            .unwrap();
        assert_eq!(report.kind, RefreshKind::Bounded);
        assert_eq!(report.repeval, vec![2, 3], "only the touched component");
        assert_eq!(report.metrics.peval_calls, 2);
        assert_eq!(prepared.bounded_updates(), 1);

        // Exact equivalence with a full retraining on the updated graph:
        // the untouched component's factors never depended on the other's.
        let recompute = session.run(prepared.fragmentation(), &Cf, &query).unwrap();
        assert_eq!(
            prepared.output().into_factors(),
            recompute.output.into_factors()
        );
    }

    #[test]
    fn rating_insert_in_a_connected_quotient_retrains_fully() {
        use grape_core::prepared::RefreshKind;
        use grape_graph::delta::GraphDelta;

        // One bipartite block: every fragment shares items with the others,
        // so the honest frontier is everything — a full retrain.
        let data = bipartite_ratings(40, 16, 400, 4, 9);
        let frag = HashEdgeCut::new(3).partition(&data.graph).unwrap();
        let session = GrapeSession::builder()
            .workers(2)
            .mode(grape_core::config::EngineMode::Sync)
            .build()
            .unwrap();
        let query = CfQuery {
            epochs: 3,
            num_factors: 4,
            ..Default::default()
        };
        let mut prepared = session.prepare(frag, Cf, query.clone()).unwrap();
        let report = prepared
            .update(&GraphDelta::new().add_weighted_edge(0, 45, 3.0))
            .unwrap();
        assert_eq!(report.kind, RefreshKind::Full);
        assert_eq!(report.metrics.peval_calls, 3);
        let recompute = session.run(prepared.fragmentation(), &Cf, &query).unwrap();
        assert_eq!(
            prepared.output().into_factors(),
            recompute.output.into_factors()
        );
    }

    #[test]
    fn more_epochs_do_not_increase_rmse() {
        let (short_model, _, graph) = train_distributed(4, 2, 5);
        let (long_model, _, graph2) = train_distributed(4, 12, 5);
        // Same seed → same graph; guard against generator drift.
        assert_eq!(graph.num_edges(), graph2.num_edges());
        assert!(long_model.rmse(&graph) <= short_model.rmse(&graph) + 0.05);
    }
}
