//! VF2-style subgraph isomorphism enumeration over a whole graph.
//!
//! This is the sequential algorithm the SubIso PIE program plugs in, and the
//! oracle the distributed tests compare against.  It enumerates *injective*
//! mappings `φ : V_Q → V` such that labels match and every query edge
//! `(u, u')` has the edge `(φ(u), φ(u'))` in the graph.

use std::collections::HashSet;

use grape_graph::graph::Graph;
use grape_graph::pattern::Pattern;
use grape_graph::types::VertexId;

/// One match: `mapping[u]` is the graph vertex matched to query node `u`.
pub type Match = Vec<VertexId>;

/// Enumerates subgraph-isomorphism matches of `pattern` in `graph`, stopping
/// after `max_matches` matches (SubIso is NP-complete; the cap keeps dense
/// benchmark graphs tractable, as any practical system must).
pub fn subgraph_isomorphism(graph: &Graph, pattern: &Pattern, max_matches: usize) -> Vec<Match> {
    let q = pattern.num_nodes();
    if q == 0 {
        return Vec::new();
    }
    let order = matching_order(pattern);
    let mut matches = Vec::new();
    let mut mapping = vec![VertexId::MAX; q];
    let mut used: HashSet<VertexId> = HashSet::new();
    extend(
        graph,
        pattern,
        &order,
        0,
        &mut mapping,
        &mut used,
        &mut matches,
        max_matches,
        &|_v| true,
    );
    matches
}

/// Same as [`subgraph_isomorphism`] but only keeps matches whose *anchor*
/// (the vertex matched to the first query node of the matching order, which
/// is query node 0) satisfies `anchor_filter`.  The PIE program uses this to
/// count every match exactly once: only the fragment owning the anchor
/// reports it.
pub fn subgraph_isomorphism_filtered<F: Fn(VertexId) -> bool>(
    graph: &Graph,
    pattern: &Pattern,
    max_matches: usize,
    anchor_filter: &F,
) -> Vec<Match> {
    let q = pattern.num_nodes();
    if q == 0 {
        return Vec::new();
    }
    let order = matching_order(pattern);
    let mut matches = Vec::new();
    let mut mapping = vec![VertexId::MAX; q];
    let mut used: HashSet<VertexId> = HashSet::new();
    extend(
        graph,
        pattern,
        &order,
        0,
        &mut mapping,
        &mut used,
        &mut matches,
        max_matches,
        anchor_filter,
    );
    matches
}

/// Chooses a matching order where, whenever possible, each query node is
/// adjacent (in either direction) to an already-placed one; query node 0
/// always comes first so the anchor semantics are stable.
fn matching_order(pattern: &Pattern) -> Vec<u32> {
    let q = pattern.num_nodes();
    let mut order = Vec::with_capacity(q);
    let mut placed = vec![false; q];
    order.push(0u32);
    placed[0] = true;
    while order.len() < q {
        let next = (0..q as u32)
            .filter(|&u| !placed[u as usize])
            .max_by_key(|&u| {
                pattern
                    .children(u)
                    .iter()
                    .chain(pattern.parents(u))
                    .filter(|&&w| placed[w as usize])
                    .count()
            })
            .expect("unplaced node exists");
        placed[next as usize] = true;
        order.push(next);
    }
    order
}

#[allow(clippy::too_many_arguments)]
fn extend<F: Fn(VertexId) -> bool>(
    graph: &Graph,
    pattern: &Pattern,
    order: &[u32],
    depth: usize,
    mapping: &mut Vec<VertexId>,
    used: &mut HashSet<VertexId>,
    matches: &mut Vec<Match>,
    max_matches: usize,
    anchor_filter: &F,
) {
    if matches.len() >= max_matches {
        return;
    }
    if depth == order.len() {
        matches.push(mapping.clone());
        return;
    }
    let u = order[depth];
    let candidates = candidate_vertices(graph, pattern, order, depth, mapping);
    for v in candidates {
        if matches.len() >= max_matches {
            return;
        }
        if used.contains(&v) || graph.vertex_label(v) != pattern.label(u) {
            continue;
        }
        if depth == 0 && !anchor_filter(v) {
            continue;
        }
        if !consistent(graph, pattern, mapping, u, v) {
            continue;
        }
        mapping[u as usize] = v;
        used.insert(v);
        extend(
            graph,
            pattern,
            order,
            depth + 1,
            mapping,
            used,
            matches,
            max_matches,
            anchor_filter,
        );
        used.remove(&v);
        mapping[u as usize] = VertexId::MAX;
    }
}

/// Candidate vertices for the query node at `order[depth]`: neighbours of an
/// already-mapped pattern neighbour when one exists, otherwise every vertex.
fn candidate_vertices(
    graph: &Graph,
    pattern: &Pattern,
    order: &[u32],
    depth: usize,
    mapping: &[VertexId],
) -> Vec<VertexId> {
    let u = order[depth];
    // A mapped parent w with edge (w, u): candidates are out-neighbours of φ(w).
    for &w in pattern.parents(u) {
        let m = mapping[w as usize];
        if m != VertexId::MAX {
            return graph.out_neighbors(m).iter().map(|n| n.target).collect();
        }
    }
    // A mapped child w with edge (u, w): candidates are in-neighbours of φ(w).
    for &w in pattern.children(u) {
        let m = mapping[w as usize];
        if m != VertexId::MAX {
            return graph.in_neighbors(m).iter().map(|n| n.target).collect();
        }
    }
    graph.vertices().collect()
}

/// Checks that mapping `u → v` preserves every query edge between `u` and the
/// already-mapped query nodes.
fn consistent(graph: &Graph, pattern: &Pattern, mapping: &[VertexId], u: u32, v: VertexId) -> bool {
    for &child in pattern.children(u) {
        let m = mapping[child as usize];
        if m != VertexId::MAX && !graph.out_neighbors(v).iter().any(|n| n.target == m) {
            return false;
        }
    }
    for &parent in pattern.parents(u) {
        let m = mapping[parent as usize];
        if m != VertexId::MAX && !graph.out_neighbors(m).iter().any(|n| n.target == v) {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use grape_graph::builder::GraphBuilder;
    use grape_graph::generators::labeled_kg;

    fn labeled_triangle_graph() -> Graph {
        // Two triangles sharing labels: (0,1,2) and (3,4,5), labels 1,2,3.
        GraphBuilder::directed()
            .add_edge(0, 1)
            .add_edge(1, 2)
            .add_edge(2, 0)
            .add_edge(3, 4)
            .add_edge(4, 5)
            .add_edge(5, 3)
            .set_vertex_label(0, 1)
            .set_vertex_label(1, 2)
            .set_vertex_label(2, 3)
            .set_vertex_label(3, 1)
            .set_vertex_label(4, 2)
            .set_vertex_label(5, 3)
            .build()
    }

    fn triangle_pattern() -> Pattern {
        Pattern::new(vec![1, 2, 3], vec![(0, 1), (1, 2), (2, 0)])
    }

    #[test]
    fn finds_both_triangles() {
        let matches = subgraph_isomorphism(&labeled_triangle_graph(), &triangle_pattern(), 100);
        assert_eq!(matches.len(), 2);
        assert!(matches.contains(&vec![0, 1, 2]));
        assert!(matches.contains(&vec![3, 4, 5]));
    }

    #[test]
    fn respects_edge_directions() {
        let g = GraphBuilder::directed()
            .add_edge(0, 1)
            .set_vertex_label(0, 1)
            .set_vertex_label(1, 2)
            .build();
        let forward = Pattern::new(vec![1, 2], vec![(0, 1)]);
        let backward = Pattern::new(vec![1, 2], vec![(1, 0)]);
        assert_eq!(subgraph_isomorphism(&g, &forward, 10).len(), 1);
        assert_eq!(subgraph_isomorphism(&g, &backward, 10).len(), 0);
    }

    #[test]
    fn injectivity_prevents_vertex_reuse() {
        // Pattern: two distinct nodes of label 1 pointing at a label-2 node.
        let g = GraphBuilder::directed()
            .add_edge(0, 2)
            .set_vertex_label(0, 1)
            .set_vertex_label(1, 1)
            .set_vertex_label(2, 2)
            .build();
        let p = Pattern::new(vec![1, 1, 2], vec![(0, 2), (1, 2)]);
        // Only vertex 0 has an edge to 2, so no injective match exists.
        assert!(subgraph_isomorphism(&g, &p, 10).is_empty());
    }

    #[test]
    fn max_matches_caps_enumeration() {
        let g = labeled_kg(200, 1500, 3, 2, 1);
        let p = Pattern::new(vec![1, 1], vec![(0, 1)]);
        let capped = subgraph_isomorphism(&g, &p, 5);
        assert_eq!(capped.len(), 5);
    }

    #[test]
    fn anchor_filter_restricts_first_node() {
        let g = labeled_triangle_graph();
        let matches = subgraph_isomorphism_filtered(&g, &triangle_pattern(), 100, &|v| v < 3);
        assert_eq!(matches.len(), 1);
        assert_eq!(matches[0], vec![0, 1, 2]);
    }

    #[test]
    fn empty_pattern_has_no_matches() {
        let g = labeled_triangle_graph();
        let p = Pattern::new(vec![], vec![]);
        assert!(subgraph_isomorphism(&g, &p, 10).is_empty());
    }
}
