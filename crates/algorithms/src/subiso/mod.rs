//! Graph pattern matching via subgraph isomorphism (SubIso), Section 5.1.
//!
//! * [`vf2`] — a VF2-style sequential backtracking enumerator over a whole
//!   graph (the algorithm of Cordella et al. the paper plugs in).
//! * [`pie`] — the PIE program: the engine ships the `d_Q`-neighborhood of
//!   every fragment's border (the candidate set `C_i` with `d = d_Q`), after
//!   which each fragment enumerates, with VF2, the matches anchored at its
//!   inner vertices; no further messages are needed, so the computation takes
//!   a constant number of supersteps regardless of the graph.

pub mod pie;
pub mod vf2;

pub use pie::{SubIso, SubIsoQuery, SubIsoResult};
pub use vf2::subgraph_isomorphism;
