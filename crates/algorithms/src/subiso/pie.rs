//! The SubIso PIE program (Section 5.1).
//!
//! Message preamble: the candidate set `C_i` is the `d_Q`-neighborhood of the
//! border, where `d_Q` is the pattern diameter; the status variables are the
//! (immutable) ids of the shipped nodes and edges, so no partial order is
//! needed and no further messages flow after the neighborhood exchange.
//!
//! * The engine performs the neighborhood exchange (fragment expansion) and
//!   charges it to the communication account.
//! * PEval then runs VF2 on the expanded fragment, keeping only matches whose
//!   anchor (the vertex matched to query node 0) is an *inner* vertex — every
//!   match is therefore reported by exactly one fragment (locality of
//!   subgraph isomorphism).
//! * IncEval is never triggered (no messages), so the whole computation takes
//!   a constant number of supersteps.
//! * Assemble concatenates the per-fragment match lists.
//!
//! SubIso also implements [`IncrementalPie`]: a fragment's match list is a
//! pure function of its `d_Q`-hop expanded subgraph, so **any** delta
//! (insert or delete — neither direction is monotone for match sets) takes
//! the bounded refresh with a *pattern-radius* damage frontier,
//! [`DamagePolicy::Halo`]`(d_Q + 1)`: a changed edge can only enter a
//! fragment's expansion if the fragment is within `d_Q + 1` quotient-graph
//! hops of the edge's owner.  Damaged fragments re-expand and re-match;
//! everyone else keeps its retained matches verbatim.  No messages flow, so
//! no reseeding is needed.

use grape_core::output_delta::DeltaOutput;
use grape_core::pie::{
    DamagePolicy, IncrementalPie, Messages, PieProgram, ProcessCodec, SerdeProcessCodec,
};
use grape_graph::delta::GraphDelta;
use grape_graph::pattern::Pattern;
use grape_graph::types::VertexId;
use grape_partition::delta::FragmentDelta;
use grape_partition::fragment::Fragment;
use grape_partition::fragmentation_graph::BorderScope;
use serde::{Deserialize, Serialize};

use crate::subiso::vf2::{subgraph_isomorphism_filtered, Match};

/// A subgraph-isomorphism query.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SubIsoQuery {
    /// The pattern to match.
    pub pattern: Pattern,
    /// Cap on the number of matches reported per fragment (SubIso is
    /// NP-complete; the paper's workloads use small patterns, ours
    /// additionally bound the enumeration).
    pub max_matches_per_fragment: usize,
}

impl SubIsoQuery {
    /// Creates a query with the default per-fragment cap of 10 000 matches.
    pub fn new(pattern: Pattern) -> Self {
        SubIsoQuery {
            pattern,
            max_matches_per_fragment: 10_000,
        }
    }

    /// Overrides the per-fragment match cap.
    pub fn with_max_matches(mut self, cap: usize) -> Self {
        self.max_matches_per_fragment = cap;
        self
    }
}

/// The assembled answer: all matches, each a mapping query node → vertex.
#[derive(Debug, Clone, Default)]
pub struct SubIsoResult {
    matches: Vec<Match>,
}

impl SubIsoResult {
    /// All matches.
    pub fn matches(&self) -> &[Match] {
        &self.matches
    }

    /// Number of matches found.
    pub fn num_matches(&self) -> usize {
        self.matches.len()
    }
}

/// Per-fragment partial result: the locally found matches (already in global
/// vertex ids).  Serializable so a served SubIso query can spill to disk and
/// rehydrate.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SubIsoPartial {
    matches: Vec<Match>,
}

/// The SubIso PIE program.
#[derive(Debug, Clone, Copy, Default)]
pub struct SubIso;

impl PieProgram for SubIso {
    type Query = SubIsoQuery;
    type Partial = SubIsoPartial;
    type Key = VertexId;
    type Value = bool;
    type Output = SubIsoResult;

    fn name(&self) -> &str {
        "subiso"
    }

    fn process_codec(&self) -> Option<&dyn ProcessCodec<Self>> {
        Some(&SerdeProcessCodec)
    }

    fn scope(&self) -> BorderScope {
        BorderScope::Out
    }

    fn expansion_hops(&self, query: &SubIsoQuery) -> usize {
        query.pattern.diameter()
    }

    fn peval(
        &self,
        query: &SubIsoQuery,
        frag: &Fragment,
        _ctx: &mut Messages<VertexId, bool>,
    ) -> SubIsoPartial {
        // The fragment's local graph uses local ids; VF2 runs on it directly
        // and the matches are translated back to global ids.  Anchors are
        // restricted to inner vertices so every match is counted exactly once
        // across fragments.
        let local_matches = subgraph_isomorphism_filtered(
            frag.local_graph(),
            &query.pattern,
            query.max_matches_per_fragment,
            &|v| frag.is_inner(v as u32),
        );
        let matches = local_matches
            .into_iter()
            .map(|m| m.into_iter().map(|l| frag.global_of(l as u32)).collect())
            .collect();
        SubIsoPartial { matches }
    }

    fn inc_eval(
        &self,
        _query: &SubIsoQuery,
        _frag: &Fragment,
        _partial: &mut SubIsoPartial,
        _messages: &[(VertexId, bool)],
        _ctx: &mut Messages<VertexId, bool>,
    ) {
        // The update parameters (shipped node/edge ids) never change, so no
        // incremental work is ever required (Section 5.1: "IncEval sends no
        // messages since the values of variables in C_i.x̄ remain unchanged").
    }

    fn assemble(&self, _query: &SubIsoQuery, partials: Vec<SubIsoPartial>) -> SubIsoResult {
        let mut matches: Vec<Match> = partials.into_iter().flat_map(|p| p.matches).collect();
        matches.sort_unstable();
        matches.dedup();
        SubIsoResult { matches }
    }

    fn aggregate(&self, _key: &VertexId, a: bool, _b: bool) -> bool {
        a
    }
}

impl IncrementalPie for SubIso {
    /// Match sets have no monotone direction: inserts create matches,
    /// deletes destroy them.  Every non-empty delta takes the bounded
    /// (pattern-radius) refresh.
    fn delta_is_monotone(&self, delta: &GraphDelta) -> bool {
        delta.is_empty()
    }

    /// Only reachable for deltas that changed no fragment structurally
    /// (empty `ΔG`): the retained matches are already exact.
    fn rebase(
        &self,
        _query: &SubIsoQuery,
        _old_frag: &Fragment,
        _new_frag: &Fragment,
        partial: SubIsoPartial,
        _delta: &FragmentDelta,
    ) -> (SubIsoPartial, Vec<(VertexId, bool)>) {
        (partial, Vec::new())
    }

    /// Delta-scoped candidate invalidation: re-match only the fragments
    /// whose `d_Q`-hop expansion can see a changed edge — within
    /// `d_Q + 1` quotient hops of the structurally changed fragments.
    fn damage_policy(&self, query: &SubIsoQuery) -> DamagePolicy {
        DamagePolicy::Halo(query.pattern.diameter() + 1)
    }
}

impl DeltaOutput for SubIso {
    type OutKey = Match;
    type OutVal = bool;

    /// One row per match — the match itself is the key (the value carries no
    /// information), so added and retracted matches surface as `changed` and
    /// `removed` rows respectively.
    fn canonical(&self, _query: &SubIsoQuery, output: &SubIsoResult) -> Vec<(Match, bool)> {
        // `assemble` already sorts and dedups the concatenated match lists.
        output.matches().iter().map(|m| (m.clone(), true)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grape_core::session::GrapeSession;
    use grape_graph::generators::labeled_kg;
    use grape_graph::graph::Graph;
    use grape_partition::edge_cut::HashEdgeCut;
    use grape_partition::metis_like::MetisLike;
    use grape_partition::strategy::PartitionStrategy;

    use crate::subiso::vf2::subgraph_isomorphism;

    fn run_subiso(g: &Graph, pattern: &Pattern, fragments: usize) -> (SubIsoResult, usize) {
        let frag = HashEdgeCut::new(fragments).partition(g).unwrap();
        let result = GrapeSession::with_workers(4)
            .run(&frag, &SubIso, &SubIsoQuery::new(pattern.clone()))
            .unwrap();
        (result.output, result.metrics.supersteps)
    }

    fn sorted(mut m: Vec<Match>) -> Vec<Match> {
        m.sort_unstable();
        m
    }

    #[test]
    fn matches_sequential_on_labeled_graphs() {
        for seed in 0..3u64 {
            let g = labeled_kg(150, 450, 4, 2, seed);
            let alphabet: Vec<u32> = (1..=4).collect();
            let pattern = Pattern::random(3, 3, &alphabet, seed + 40);
            let expected = sorted(subgraph_isomorphism(&g, &pattern, usize::MAX));
            let (result, _) = run_subiso(&g, &pattern, 4);
            assert_eq!(sorted(result.matches().to_vec()), expected, "seed {seed}");
        }
    }

    #[test]
    fn terminates_in_constant_supersteps() {
        let g = labeled_kg(200, 600, 4, 2, 9);
        let alphabet: Vec<u32> = (1..=4).collect();
        let pattern = Pattern::random(3, 4, &alphabet, 3);
        let (_, supersteps) = run_subiso(&g, &pattern, 6);
        assert!(
            supersteps <= 2,
            "SubIso should not iterate, took {supersteps}"
        );
    }

    #[test]
    fn expansion_is_charged_to_communication() {
        let g = labeled_kg(300, 900, 4, 2, 5);
        let alphabet: Vec<u32> = (1..=4).collect();
        let pattern = Pattern::random(3, 4, &alphabet, 8);
        let frag = MetisLike::new(4).partition(&g).unwrap();
        let result = GrapeSession::with_workers(2)
            .run(&frag, &SubIso, &SubIsoQuery::new(pattern))
            .unwrap();
        assert!(result.metrics.expansion_bytes > 0);
        assert_eq!(result.metrics.total_messages, 0);
    }

    #[test]
    fn no_duplicate_matches_across_fragments() {
        let g = labeled_kg(120, 500, 3, 2, 2);
        let alphabet: Vec<u32> = (1..=3).collect();
        let pattern = Pattern::random(2, 2, &alphabet, 17);
        let (result, _) = run_subiso(&g, &pattern, 5);
        let mut seen = std::collections::HashSet::new();
        for m in result.matches() {
            assert!(seen.insert(m.clone()), "duplicate match {m:?}");
        }
    }

    #[test]
    fn prepared_update_rematches_only_the_pattern_radius() {
        use grape_core::prepared::RefreshKind;
        use grape_graph::builder::GraphBuilder;
        use grape_graph::delta::GraphDelta;
        use grape_partition::edge_cut::RangeEdgeCut;

        // A labeled path over six range fragments of 5; the 2-node pattern
        // has diameter 1, so the damage halo is 2 quotient hops.
        let mut b = GraphBuilder::directed();
        for v in 0..29u64 {
            b.push_edge(grape_graph::types::Edge::unweighted(v, v + 1));
        }
        for v in 0..30u64 {
            b.push_vertex_label(v, 1 + (v % 2) as u32);
        }
        let g = b.build();
        let pattern = Pattern::new(vec![1, 2], vec![(0, 1)]);
        assert_eq!(pattern.diameter(), 1);
        let frag = RangeEdgeCut::new(6).partition(&g).unwrap();
        let session = GrapeSession::with_workers(2);
        let query = SubIsoQuery::new(pattern.clone());
        let mut prepared = session.prepare(frag, SubIso, query.clone()).unwrap();
        let before = prepared.output().num_matches();
        assert!(before > 0);

        // Delete the fragment-local edge 2 → 3: matches further than the
        // pattern radius away cannot change, so fragments 3..6 keep their
        // retained match lists without re-expansion or re-matching.
        let report = prepared
            .update(&GraphDelta::new().remove_edge(2, 3))
            .unwrap();
        assert_eq!(report.kind, RefreshKind::Bounded);
        assert_eq!(report.repeval, vec![0, 1, 2], "pattern-radius halo");
        assert_eq!(report.metrics.peval_calls, 3, "3 of 6 fragments re-matched");
        assert!(
            report.metrics.expansion_bytes > 0,
            "damaged re-expansion is charged"
        );

        let recompute = session
            .run(prepared.fragmentation(), &SubIso, &query)
            .unwrap();
        assert_eq!(
            sorted(prepared.output().matches().to_vec()),
            sorted(recompute.output.matches().to_vec())
        );
        assert_eq!(prepared.output().num_matches(), before - 1);
    }

    #[test]
    fn prepared_update_handles_insertions_too() {
        use grape_core::prepared::RefreshKind;
        use grape_graph::delta::GraphDelta;

        let g = labeled_kg(150, 450, 4, 2, 12);
        let alphabet: Vec<u32> = (1..=4).collect();
        let pattern = Pattern::random(3, 3, &alphabet, 77);
        let frag = HashEdgeCut::new(4).partition(&g).unwrap();
        let session = GrapeSession::with_workers(2);
        let query = SubIsoQuery::new(pattern.clone());
        let mut prepared = session.prepare(frag, SubIso, query.clone()).unwrap();

        let e = g.edges()[17];
        let delta = GraphDelta::new()
            .add_edge_record(grape_graph::types::Edge::new(e.src, e.dst, 1.0, e.label));
        let report = prepared.update(&delta).unwrap();
        assert!(matches!(
            report.kind,
            RefreshKind::Bounded | RefreshKind::Full
        ));
        let recompute = session
            .run(prepared.fragmentation(), &SubIso, &query)
            .unwrap();
        assert_eq!(
            sorted(prepared.output().matches().to_vec()),
            sorted(recompute.output.matches().to_vec())
        );
    }

    #[test]
    fn fragment_count_does_not_change_match_set() {
        let g = labeled_kg(100, 350, 3, 2, 4);
        let alphabet: Vec<u32> = (1..=3).collect();
        let pattern = Pattern::random(3, 3, &alphabet, 21);
        let (one, _) = run_subiso(&g, &pattern, 1);
        let (eight, _) = run_subiso(&g, &pattern, 8);
        assert_eq!(
            sorted(one.matches().to_vec()),
            sorted(eight.matches().to_vec())
        );
    }
}
