//! The SSSP PIE program (Figures 3 and 4 of the paper).
//!
//! * Message preamble: a variable `dist(s, v)` per vertex, candidate set
//!   `C_i = F_i.O`, `aggregateMsg = min`.
//! * PEval: Dijkstra over the local fragment.
//! * IncEval: bounded incremental Dijkstra seeded with the decreased border
//!   distances received in `M_i`.
//! * Assemble: union of the per-fragment distances, taking the minimum for
//!   border vertices.
//!
//! SSSP also implements [`IncrementalPie`]: *insert-only* deltas are
//! monotone (a new edge can only shorten distances), so `Q(G ⊕ ΔG)` is
//! refreshed by re-relaxing around the inserted edges and letting IncEval
//! propagate the improvements — no PEval.  Deletions can lengthen shortest
//! paths, which the min-aggregated variables cannot express; they take the
//! **bounded refresh** under [`DamagePolicy::Reachability`]: only the
//! fragments whose retained distances could depend on a deleted edge
//! (the message-flow closure of the structurally changed fragments) are
//! re-rooted with PEval, while every other fragment keeps its partial and
//! reseeds its border distances into the fixpoint.

use std::collections::BinaryHeap;
use std::collections::HashMap;

use grape_core::output_delta::{diff_sorted, DeltaOutput, OutputDelta};
use grape_core::pie::{
    DamagePolicy, IncrementalPie, Messages, PieProgram, ProcessCodec, SerdeProcessCodec,
};
use grape_graph::delta::GraphDelta;
use grape_graph::types::VertexId;
use grape_partition::delta::FragmentDelta;
use grape_partition::fragment::Fragment;
use grape_partition::fragmentation_graph::BorderScope;
use serde::{Deserialize, Serialize};

use crate::util::{MinDist, INF};

/// An SSSP query: the source vertex `s`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SsspQuery {
    /// Source vertex (global id).
    pub source: VertexId,
}

impl SsspQuery {
    /// Creates a query for source `s`.
    pub fn new(source: VertexId) -> Self {
        SsspQuery { source }
    }
}

/// The assembled SSSP answer: the shortest distance from the source to every
/// reachable vertex.
#[derive(Debug, Clone, Default)]
pub struct SsspResult {
    distances: HashMap<VertexId, f64>,
}

impl SsspResult {
    /// Shortest distance to `v`, or `None` when unreachable.
    pub fn distance(&self, v: VertexId) -> Option<f64> {
        self.distances.get(&v).copied().filter(|d| d.is_finite())
    }

    /// All finite distances, keyed by global vertex id.
    pub fn distances(&self) -> &HashMap<VertexId, f64> {
        &self.distances
    }

    /// Number of reachable vertices (including the source).
    pub fn num_reached(&self) -> usize {
        self.distances.values().filter(|d| d.is_finite()).count()
    }
}

/// Per-fragment partial result `Q(F_i)`: `dist(s, v)` for every local vertex,
/// together with the local→global id mapping so Assemble can merge fragments.
///
/// Serializable so a prepared SSSP query can be **evicted** by
/// `grape_core::serve::GrapeServer` (partials spill to disk next to the
/// per-fragment binary snapshots and reload without re-running PEval).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SsspPartial {
    /// Distance per local vertex id.
    dist: Vec<f64>,
    /// Global id of each local vertex.  Outer-copy distances are valid upper
    /// bounds, so Assemble can merge everything with `min`.
    globals: Vec<VertexId>,
}

/// The SSSP PIE program.
#[derive(Debug, Clone, Copy, Default)]
pub struct Sssp;

impl Sssp {
    /// Local Dijkstra continuation: relaxes edges starting from the given
    /// seed heap until exhaustion (the tail of PEval and the whole of
    /// IncEval).
    fn relax(frag: &Fragment, dist: &mut [f64], mut heap: BinaryHeap<MinDist<u32>>) {
        while let Some(MinDist { dist: d, vertex: u }) = heap.pop() {
            if d > dist[u as usize] {
                continue;
            }
            for n in frag.out_edges(u) {
                let t = n.target as u32;
                let alt = d + n.weight;
                if alt < dist[t as usize] {
                    dist[t as usize] = alt;
                    heap.push(MinDist {
                        dist: alt,
                        vertex: t,
                    });
                }
            }
        }
    }

    /// Sends the (finite) distances of the border vertices that improved —
    /// the message segment `M_i = {dist(s, v) | v ∈ F_i.O, dist decreased}`.
    /// The inner border is included as well so that vertex-cut partitions
    /// (where a shared vertex's edges are spread over several fragments) stay
    /// consistent; under edge-cut those values have no destination and are
    /// dropped for free by the router.
    fn send_border(
        frag: &Fragment,
        dist: &[f64],
        previous: Option<&[f64]>,
        ctx: &mut Messages<VertexId, f64>,
    ) {
        for &l in frag
            .out_border_locals()
            .iter()
            .chain(frag.in_border_locals())
        {
            let d = dist[l as usize];
            if !d.is_finite() {
                continue;
            }
            let improved = match previous {
                Some(prev) => d < prev[l as usize],
                None => true,
            };
            if improved {
                ctx.send(frag.global_of(l), d);
            }
        }
    }
}

impl PieProgram for Sssp {
    type Query = SsspQuery;
    type Partial = SsspPartial;
    type Key = VertexId;
    type Value = f64;
    type Output = SsspResult;

    fn name(&self) -> &str {
        "sssp"
    }

    fn process_codec(&self) -> Option<&dyn ProcessCodec<Self>> {
        Some(&SerdeProcessCodec)
    }

    fn scope(&self) -> BorderScope {
        BorderScope::Out
    }

    fn peval(
        &self,
        query: &SsspQuery,
        frag: &Fragment,
        ctx: &mut Messages<VertexId, f64>,
    ) -> SsspPartial {
        let mut dist = vec![INF; frag.num_local()];
        let mut heap = BinaryHeap::new();
        if let Some(source_local) = frag.local_of(query.source) {
            dist[source_local as usize] = 0.0;
            heap.push(MinDist {
                dist: 0.0,
                vertex: source_local,
            });
        }
        Self::relax(frag, &mut dist, heap);
        Self::send_border(frag, &dist, None, ctx);
        SsspPartial {
            dist,
            globals: frag.all_locals().map(|l| frag.global_of(l)).collect(),
        }
    }

    fn inc_eval(
        &self,
        _query: &SsspQuery,
        frag: &Fragment,
        partial: &mut SsspPartial,
        messages: &[(VertexId, f64)],
        ctx: &mut Messages<VertexId, f64>,
    ) {
        let previous = partial.dist.clone();
        let mut heap = BinaryHeap::new();
        for &(v, d) in messages {
            if let Some(l) = frag.local_of(v) {
                if d < partial.dist[l as usize] {
                    partial.dist[l as usize] = d;
                    heap.push(MinDist { dist: d, vertex: l });
                }
            }
        }
        if heap.is_empty() {
            return;
        }
        Self::relax(frag, &mut partial.dist, heap);
        Self::send_border(frag, &partial.dist, Some(&previous), ctx);
    }

    fn assemble(&self, _query: &SsspQuery, partials: Vec<SsspPartial>) -> SsspResult {
        let mut distances: HashMap<VertexId, f64> = HashMap::new();
        for partial in partials {
            // Every locally computed distance is an upper bound on the true
            // shortest distance, and the owning fragment holds the exact
            // value at the fixpoint, so merging with `min` is correct.
            for (idx, &v) in partial.globals.iter().enumerate() {
                let d = partial.dist[idx];
                if !d.is_finite() {
                    continue;
                }
                distances
                    .entry(v)
                    .and_modify(|existing| *existing = existing.min(d))
                    .or_insert(d);
            }
        }
        SsspResult { distances }
    }

    fn aggregate(&self, _key: &VertexId, a: f64, b: f64) -> f64 {
        a.min(b)
    }
}

impl IncrementalPie for Sssp {
    /// Edge/vertex insertions only decrease distances — monotone under the
    /// `min` order.  Any removal can increase them, which the retained
    /// variables cannot express.
    fn delta_is_monotone(&self, delta: &GraphDelta) -> bool {
        !delta.has_removals()
    }

    /// Edge-insert relaxation: remap the retained distances onto the rebuilt
    /// fragment (new vertices start at `∞`, the source at `0`), re-relax
    /// from every endpoint of an inserted local edge, and ship the border
    /// distances that improved.
    fn rebase(
        &self,
        query: &SsspQuery,
        _old_frag: &Fragment,
        new_frag: &Fragment,
        partial: SsspPartial,
        delta: &FragmentDelta,
    ) -> (SsspPartial, Vec<(VertexId, f64)>) {
        let old_index: HashMap<VertexId, usize> = partial
            .globals
            .iter()
            .enumerate()
            .map(|(i, &g)| (g, i))
            .collect();
        let mut dist = vec![INF; new_frag.num_local()];
        for l in new_frag.all_locals() {
            if let Some(&i) = old_index.get(&new_frag.global_of(l)) {
                dist[l as usize] = partial.dist[i];
            }
        }
        let previous = dist.clone();

        let mut heap = BinaryHeap::new();
        // A newly local copy of the source (new vertex, or fresh outer copy)
        // anchors at distance 0, exactly as PEval would.
        if let Some(sl) = new_frag.local_of(query.source) {
            if dist[sl as usize] > 0.0 {
                dist[sl as usize] = 0.0;
                heap.push(MinDist {
                    dist: 0.0,
                    vertex: sl,
                });
            }
        }
        // Re-relax from the endpoints of every inserted local edge; the new
        // adjacency (which includes those edges) does the rest.
        for e in &delta.added_edges {
            for v in [e.src, e.dst] {
                if let Some(l) = new_frag.local_of(v) {
                    let d = dist[l as usize];
                    if d.is_finite() {
                        heap.push(MinDist { dist: d, vertex: l });
                    }
                }
            }
        }
        Self::relax(new_frag, &mut dist, heap);

        let mut msgs = Messages::new();
        Self::send_border(new_frag, &dist, Some(&previous), &mut msgs);
        let sends = msgs.take();
        (
            SsspPartial {
                dist,
                globals: new_frag
                    .all_locals()
                    .map(|l| new_frag.global_of(l))
                    .collect(),
            },
            sends,
        )
    }

    /// Dijkstra's fixpoint is schedule-independent given fixed border
    /// inputs, so deletions only need to re-root the fragments reachable
    /// from the damage through `G_P`.
    fn damage_policy(&self, _query: &SsspQuery) -> DamagePolicy {
        DamagePolicy::Reachability
    }

    /// The full border segment of a retained partial: every finite border
    /// distance, so a freshly re-rooted downstream fragment re-learns the
    /// entry distances this (undamaged) fragment feeds it.
    fn reseed(
        &self,
        _query: &SsspQuery,
        frag: &Fragment,
        partial: &SsspPartial,
    ) -> Vec<(VertexId, f64)> {
        let mut msgs = Messages::new();
        Self::send_border(frag, &partial.dist, None, &mut msgs);
        msgs.take()
    }
}

impl DeltaOutput for Sssp {
    type OutKey = VertexId;
    type OutVal = f64;

    /// One row per reachable vertex: `(v, dist(s, v))`, sorted by id.
    fn canonical(&self, _query: &SsspQuery, output: &SsspResult) -> Vec<(VertexId, f64)> {
        let mut rows: Vec<(VertexId, f64)> = output
            .distances
            .iter()
            .filter(|(_, d)| d.is_finite())
            .map(|(&v, &d)| (v, d))
            .collect();
        rows.sort_unstable_by_key(|&(v, _)| v);
        rows
    }

    /// Min-merges the retained distances straight off the partials — the
    /// same rows `canonical(assemble(...))` yields, minus the intermediate
    /// [`SsspResult`].
    fn diff_output(
        &self,
        _query: &SsspQuery,
        previous: &[(VertexId, f64)],
        partials: &[SsspPartial],
    ) -> Option<OutputDelta<VertexId, f64>> {
        let mut merged: HashMap<VertexId, f64> = HashMap::new();
        for partial in partials {
            for (idx, &v) in partial.globals.iter().enumerate() {
                let d = partial.dist[idx];
                if !d.is_finite() {
                    continue;
                }
                merged
                    .entry(v)
                    .and_modify(|existing| *existing = existing.min(d))
                    .or_insert(d);
            }
        }
        let mut next: Vec<(VertexId, f64)> = merged.into_iter().collect();
        next.sort_unstable_by_key(|&(v, _)| v);
        Some(diff_sorted(previous, &next))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grape_core::session::GrapeSession;
    use grape_graph::generators::{power_law, road_grid};
    use grape_partition::edge_cut::HashEdgeCut;
    use grape_partition::metis_like::MetisLike;
    use grape_partition::strategy::PartitionStrategy;

    use crate::sssp::sequential::dijkstra;

    fn check_against_sequential(
        g: &grape_graph::graph::Graph,
        strategy: &dyn PartitionStrategy,
        workers: usize,
        source: VertexId,
    ) {
        let frag = strategy.partition(g).unwrap();
        let engine = GrapeSession::with_workers(workers);
        let result = engine.run(&frag, &Sssp, &SsspQuery::new(source)).unwrap();
        let expected = dijkstra(g, source);
        for (v, d) in expected.iter().enumerate() {
            match result.output.distance(v as VertexId) {
                Some(got) => assert!((got - d).abs() < 1e-9, "vertex {v}: {got} vs {d}"),
                None => assert!(!d.is_finite(), "vertex {v} should be reachable with {d}"),
            }
        }
    }

    #[test]
    fn matches_sequential_on_road_grid() {
        let g = road_grid(10, 10, 1);
        check_against_sequential(&g, &MetisLike::new(4), 4, 0);
    }

    #[test]
    fn matches_sequential_on_power_law() {
        let g = power_law(300, 1500, 0, 2);
        check_against_sequential(&g, &HashEdgeCut::new(4), 2, 5);
    }

    #[test]
    fn unreachable_vertices_are_reported_as_none() {
        let g = grape_graph::builder::GraphBuilder::directed()
            .add_weighted_edge(0, 1, 1.0)
            .ensure_vertices(4)
            .build();
        let frag = HashEdgeCut::new(2).partition(&g).unwrap();
        let engine = GrapeSession::with_workers(2);
        let result = engine.run(&frag, &Sssp, &SsspQuery::new(0)).unwrap();
        assert_eq!(result.output.distance(3), None);
        assert_eq!(result.output.distance(1), Some(1.0));
        assert_eq!(result.output.num_reached(), 2);
    }

    #[test]
    fn source_outside_graph_reaches_nothing() {
        let g = road_grid(4, 4, 1);
        let frag = HashEdgeCut::new(2).partition(&g).unwrap();
        let engine = GrapeSession::with_workers(1);
        let result = engine.run(&frag, &Sssp, &SsspQuery::new(999)).unwrap();
        assert_eq!(result.output.num_reached(), 0);
    }

    #[test]
    fn fragment_count_does_not_change_distances() {
        let g = power_law(200, 800, 0, 3);
        let base = {
            let frag = HashEdgeCut::new(1).partition(&g).unwrap();
            GrapeSession::with_workers(1)
                .run(&frag, &Sssp, &SsspQuery::new(0))
                .unwrap()
                .output
        };
        for m in [2, 4, 8] {
            let frag = HashEdgeCut::new(m).partition(&g).unwrap();
            let out = GrapeSession::with_workers(4)
                .run(&frag, &Sssp, &SsspQuery::new(0))
                .unwrap()
                .output;
            assert_eq!(out.num_reached(), base.num_reached(), "m = {m}");
            for (v, d) in base.distances() {
                assert!((out.distance(*v).unwrap() - d).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn prepared_update_relaxes_inserted_edges_without_peval() {
        use grape_graph::delta::GraphDelta;

        let g = road_grid(8, 8, 3);
        let frag = HashEdgeCut::new(3).partition(&g).unwrap();
        let session = GrapeSession::with_workers(2);
        let mut prepared = session.prepare(frag, Sssp, SsspQuery::new(0)).unwrap();

        // A shortcut from the source into the far corner's neighborhood.
        let far = (g.num_vertices() - 1) as VertexId;
        let delta = GraphDelta::new().add_weighted_edge(0, far, 0.25);
        let report = prepared.update(&delta).unwrap();
        assert!(
            report.incremental,
            "insert-only deltas take the IncEval path"
        );
        assert_eq!(report.metrics.peval_calls, 0);
        assert!(report.affected_fragments >= 1);

        let expected = dijkstra(prepared.fragmentation().source(), 0);
        for (v, d) in expected.iter().enumerate() {
            match prepared.output().distance(v as VertexId) {
                Some(got) => assert!((got - d).abs() < 1e-9, "vertex {v}: {got} vs {d}"),
                None => assert!(!d.is_finite(), "vertex {v}"),
            }
        }
        assert_eq!(prepared.output().distance(far), Some(0.25));
    }

    #[test]
    fn prepared_update_falls_back_on_deletion() {
        use grape_graph::delta::GraphDelta;

        let g = road_grid(6, 6, 9);
        let frag = HashEdgeCut::new(2).partition(&g).unwrap();
        let session = GrapeSession::with_workers(2);
        let mut prepared = session.prepare(frag, Sssp, SsspQuery::new(0)).unwrap();
        let e = g.edges()[0];
        let report = prepared
            .update(&GraphDelta::new().remove_edge(e.src, e.dst))
            .unwrap();
        assert!(!report.incremental, "deletions are not monotone for SSSP");
        assert!(report.metrics.peval_calls > 0);

        let expected = dijkstra(prepared.fragmentation().source(), 0);
        for (v, d) in expected.iter().enumerate() {
            match prepared.output().distance(v as VertexId) {
                Some(got) => assert!((got - d).abs() < 1e-9, "vertex {v}: {got} vs {d}"),
                None => assert!(!d.is_finite(), "vertex {v}"),
            }
        }
    }

    #[test]
    fn localized_deletion_repevals_only_the_downstream_frontier() {
        use grape_core::prepared::RefreshKind;
        use grape_graph::builder::GraphBuilder;
        use grape_graph::delta::GraphDelta;
        use grape_partition::edge_cut::RangeEdgeCut;

        // Weighted path 0 → 1 → … → 11 over four range fragments of 3.
        // Deleting the fragment-local edge 4 → 5 can only lengthen distances
        // downstream: the damage frontier is {1, 2, 3}, never fragment 0.
        let mut b = GraphBuilder::directed();
        for v in 0..11u64 {
            b.push_edge(grape_graph::types::Edge::weighted(v, v + 1, 1.0 + v as f64));
        }
        let g = b.build();
        let frag = RangeEdgeCut::new(4).partition(&g).unwrap();
        let session = GrapeSession::with_workers(2);
        let mut prepared = session.prepare(frag, Sssp, SsspQuery::new(0)).unwrap();

        let report = prepared
            .update(&GraphDelta::new().remove_edge(4, 5))
            .unwrap();
        assert_eq!(report.kind, RefreshKind::Bounded);
        assert_eq!(report.rebuilt, vec![1], "the edge is local to fragment 1");
        assert_eq!(report.repeval, vec![1, 2, 3]);
        assert_eq!(report.metrics.peval_calls, 3, "3 of 4 fragments re-rooted");
        assert_eq!(prepared.bounded_updates(), 1);

        let expected = dijkstra(prepared.fragmentation().source(), 0);
        for (v, d) in expected.iter().enumerate() {
            match prepared.output().distance(v as VertexId) {
                Some(got) => assert!((got - d).abs() < 1e-9, "vertex {v}: {got} vs {d}"),
                None => assert!(!d.is_finite(), "vertex {v} expected {d}"),
            }
        }
        // The cut really disconnects 5..12.
        assert_eq!(prepared.output().distance(6), None);
    }

    #[test]
    fn incremental_supersteps_ship_only_improvements() {
        // On a long path partitioned into ranges, distances propagate one
        // fragment per superstep and every border value is shipped at most a
        // handful of times.  Superstep-per-fragment propagation is a BSP
        // property, so pin synchronous mode.
        let g = road_grid(30, 1, 5);
        let frag = grape_partition::edge_cut::RangeEdgeCut::new(5)
            .partition(&g)
            .unwrap();
        let engine = GrapeSession::builder()
            .workers(2)
            .mode(grape_core::config::EngineMode::Sync)
            .build()
            .unwrap();
        let result = engine.run(&frag, &Sssp, &SsspQuery::new(0)).unwrap();
        assert!(
            result.metrics.supersteps >= 5,
            "propagation crosses 5 fragments"
        );
        assert!(
            result.metrics.total_messages <= 4 * frag.num_border_vertices() + 8,
            "messages {} too high",
            result.metrics.total_messages
        );
    }
}
