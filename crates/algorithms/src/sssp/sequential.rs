//! Sequential SSSP building blocks: Dijkstra (the PEval of Fig. 3) and the
//! bounded incremental algorithm of Ramalingam–Reps (the IncEval of Fig. 4).

use std::collections::BinaryHeap;

use grape_graph::graph::Graph;
use grape_graph::types::VertexId;

use crate::util::{MinDist, INF};

/// Textbook Dijkstra over the whole graph.  Returns `dist[v]` for every
/// vertex (`INF` when unreachable).  Used directly by the baselines and by
/// the correctness tests of the PIE program.
pub fn dijkstra(graph: &Graph, source: VertexId) -> Vec<f64> {
    let n = graph.num_vertices();
    let mut dist = vec![INF; n];
    if (source as usize) >= n {
        return dist;
    }
    dist[source as usize] = 0.0;
    let mut heap = BinaryHeap::new();
    heap.push(MinDist {
        dist: 0.0,
        vertex: source,
    });
    while let Some(MinDist { dist: d, vertex: u }) = heap.pop() {
        if d > dist[u as usize] {
            continue; // stale entry
        }
        for n in graph.out_neighbors(u) {
            let alt = d + n.weight;
            if alt < dist[n.target as usize] {
                dist[n.target as usize] = alt;
                heap.push(MinDist {
                    dist: alt,
                    vertex: n.target,
                });
            }
        }
    }
    dist
}

/// Bounded incremental SSSP (Ramalingam–Reps): given current distances and a
/// set of vertices whose distance just *decreased*, propagates the decreases.
/// The work is proportional to the number of vertices whose distance actually
/// changes (`|CHANGED|`), not to the size of the graph — this is what makes
/// IncEval "bounded" in the paper's sense.
///
/// `dist` is updated in place; the function returns the vertices whose
/// distance changed (excluding the seeds themselves unless they changed
/// again).
pub fn incremental_dijkstra(
    graph: &Graph,
    dist: &mut [f64],
    decreased: &[(VertexId, f64)],
) -> Vec<VertexId> {
    let mut heap = BinaryHeap::new();
    let mut changed = Vec::new();
    for &(v, d) in decreased {
        if d < dist[v as usize] {
            dist[v as usize] = d;
            changed.push(v);
        }
        heap.push(MinDist {
            dist: dist[v as usize],
            vertex: v,
        });
    }
    while let Some(MinDist { dist: d, vertex: u }) = heap.pop() {
        if d > dist[u as usize] {
            continue;
        }
        for n in graph.out_neighbors(u) {
            let alt = d + n.weight;
            if alt < dist[n.target as usize] {
                dist[n.target as usize] = alt;
                changed.push(n.target);
                heap.push(MinDist {
                    dist: alt,
                    vertex: n.target,
                });
            }
        }
    }
    changed.sort_unstable();
    changed.dedup();
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use grape_graph::builder::GraphBuilder;
    use grape_graph::generators::road_grid;

    fn diamond() -> Graph {
        GraphBuilder::directed()
            .add_weighted_edge(0, 1, 1.0)
            .add_weighted_edge(0, 2, 4.0)
            .add_weighted_edge(1, 2, 2.0)
            .add_weighted_edge(2, 3, 1.0)
            .add_weighted_edge(1, 3, 7.0)
            .build()
    }

    #[test]
    fn dijkstra_finds_shortest_distances() {
        let d = dijkstra(&diamond(), 0);
        assert_eq!(d[0], 0.0);
        assert_eq!(d[1], 1.0);
        assert_eq!(d[2], 3.0);
        assert_eq!(d[3], 4.0);
    }

    #[test]
    fn unreachable_vertices_stay_infinite() {
        let g = GraphBuilder::directed()
            .add_weighted_edge(0, 1, 1.0)
            .ensure_vertices(3)
            .build();
        let d = dijkstra(&g, 0);
        assert_eq!(d[2], INF);
    }

    #[test]
    fn source_out_of_range_returns_all_infinite() {
        let g = diamond();
        let d = dijkstra(&g, 99);
        assert!(d.iter().all(|&x| x == INF));
    }

    #[test]
    fn incremental_matches_recomputation_after_shortcut() {
        let g = diamond();
        let mut dist = dijkstra(&g, 0);
        // Simulate a message: vertex 2 got a shorter distance 1.5 from elsewhere.
        let changed = incremental_dijkstra(&g, &mut dist, &[(2, 1.5)]);
        assert_eq!(dist[2], 1.5);
        assert_eq!(dist[3], 2.5);
        assert!(changed.contains(&2) && changed.contains(&3));
        assert!(!changed.contains(&1), "vertex 1 unaffected");
    }

    #[test]
    fn incremental_ignores_non_improving_updates() {
        let g = diamond();
        let mut dist = dijkstra(&g, 0);
        let before = dist.clone();
        let changed = incremental_dijkstra(&g, &mut dist, &[(2, 100.0)]);
        assert!(changed.is_empty());
        assert_eq!(dist, before);
    }

    #[test]
    fn incremental_equals_batch_on_road_grid() {
        let g = road_grid(12, 12, 7);
        let full = dijkstra(&g, 0);
        // Start from a partial state: run Dijkstra truncated by seeding only
        // the source, then feed a decreased distance for a far vertex and
        // check the final state is dominated by the true distances.
        let mut dist = vec![INF; g.num_vertices()];
        dist[0] = 0.0;
        incremental_dijkstra(&g, &mut dist, &[(0, 0.0)]);
        for v in 0..g.num_vertices() {
            assert!(
                (dist[v] - full[v]).abs() < 1e-9,
                "vertex {v}: {} vs {}",
                dist[v],
                full[v]
            );
        }
    }
}
