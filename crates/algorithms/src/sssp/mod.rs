//! Single-Source Shortest Paths (SSSP) — the paper's running example
//! (Sections 1–3, Figures 3 and 4).
//!
//! * [`sequential`] — textbook Dijkstra over the whole graph (the algorithm
//!   that gets "plugged in" as PEval) and the Ramalingam–Reps style bounded
//!   incremental update used by IncEval.
//! * [`pie`] — the PIE program: PEval = Dijkstra on the fragment, IncEval =
//!   incremental Dijkstra seeded with the changed border distances, Assemble
//!   = union with `min` aggregation.

pub mod pie;
pub mod sequential;

pub use pie::{Sssp, SsspQuery, SsspResult};
pub use sequential::{dijkstra, incremental_dijkstra};
