//! The `Scale::Large` nightly profile: millions of edges, minutes of
//! runtime — **excluded from the tier-1 CI gate** by `#[ignore]` (plain
//! `cargo test -q` skips these).  The scheduled nightly CI job runs
//!
//! ```text
//! cargo test --release -p grape-bench --test nightly_large -- --ignored
//! ```
//!
//! to check that the paper's trends — GRAPE beating the vertex-centric
//! baseline on communication, and the prepared-query update path beating a
//! full recompute — survive at realistic graph sizes.

use grape_bench::runner::{run_incremental_sssp, run_sssp, System};
use grape_bench::workloads::{self, Scale};

#[test]
#[ignore = "nightly profile: millions of edges, minutes of runtime"]
fn grape_still_ships_less_than_vertex_centric_at_large_scale() {
    let g = workloads::traffic(Scale::Large);
    assert!(g.num_edges() >= 900_000, "large traffic is ~1M edges");
    let grape = run_sssp(System::Grape, &g, 0, 8, "traffic");
    let vertex = run_sssp(System::VertexCentric, &g, 0, 8, "traffic");
    assert!(
        grape.comm_mb < vertex.comm_mb,
        "GRAPE {} MB vs vertex-centric {} MB",
        grape.comm_mb,
        vertex.comm_mb
    );
    assert!(grape.supersteps < vertex.supersteps);
}

#[test]
#[ignore = "nightly profile: millions of edges, minutes of runtime"]
fn incremental_update_beats_recompute_at_large_scale() {
    let g = workloads::livejournal(Scale::Large);
    assert!(
        g.num_edges() >= 2_000_000,
        "large liveJournal is ~2.4M edges"
    );
    let delta = workloads::insertion_delta(&g, workloads::delta_batch_size(Scale::Large), 0x17);
    let rows = run_incremental_sssp(&g, &delta, 0, 8, "livejournal");
    let incr = rows
        .iter()
        .find(|r| r.system == "GRAPE (incremental)")
        .unwrap();
    let full = rows
        .iter()
        .find(|r| r.system == "GRAPE (recompute)")
        .unwrap();
    assert!(
        incr.messages <= full.messages,
        "incremental {} msgs vs recompute {} msgs",
        incr.messages,
        full.messages
    );
    assert!(
        incr.seconds < full.seconds,
        "incremental {}s vs recompute {}s",
        incr.seconds,
        full.seconds
    );
}
