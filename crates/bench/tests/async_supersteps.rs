//! Superstep savings of the barrier-free runtime on the paper's workloads.
//!
//! The Fig. 7 stand-in (graph simulation over the liveJournal power-law
//! graph) plus the Table 1 stand-in (SSSP over the traffic road grid) are
//! run under both engine modes: the outputs must be identical (Assurance
//! Theorem) and the barrier-free runtime must need no more supersteps —
//! the max evaluation rounds of the slowest fragment — than the BSP run.
//! These are the numbers CHANGES.md records as "superstep savings".

use grape_bench::runner::partition;
use grape_bench::workloads::{self, Scale};

use grape_algorithms::sim::{Sim, SimQuery};
use grape_algorithms::sssp::{Sssp, SsspQuery};
use grape_core::config::EngineMode;
use grape_core::session::GrapeSession;

fn session(workers: usize, mode: EngineMode) -> GrapeSession {
    GrapeSession::builder()
        .workers(workers)
        .mode(mode)
        .build()
        .unwrap()
}

#[test]
fn fig7_sim_async_saves_supersteps_and_keeps_the_answer() {
    let g = workloads::livejournal(Scale::Small);
    let pattern = workloads::sim_pattern(&g, Scale::Small, 0x71);
    let frag = partition(&g, 4);
    let query = SimQuery::new(pattern);

    let sync = session(4, EngineMode::Sync)
        .run(&frag, &Sim::new(), &query)
        .unwrap();
    let async_ = session(4, EngineMode::Async)
        .run(&frag, &Sim::new(), &query)
        .unwrap();

    assert_eq!(
        sync.output.relation(),
        async_.output.relation(),
        "fig7 sim: async output must equal sync output"
    );
    assert!(
        async_.metrics.supersteps <= sync.metrics.supersteps,
        "fig7 sim: async supersteps {} vs sync {}",
        async_.metrics.supersteps,
        sync.metrics.supersteps
    );
}

#[test]
fn table1_sssp_async_saves_supersteps_and_keeps_the_answer() {
    let g = workloads::traffic(Scale::Small);
    let frag = partition(&g, 4);
    let query = SsspQuery::new(0);

    let sync = session(4, EngineMode::Sync)
        .run(&frag, &Sssp, &query)
        .unwrap();
    let async_ = session(4, EngineMode::Async)
        .run(&frag, &Sssp, &query)
        .unwrap();

    for v in g.vertices() {
        assert_eq!(
            sync.output.distance(v),
            async_.output.distance(v),
            "traffic sssp: distance of vertex {v}"
        );
    }
    assert!(
        async_.metrics.supersteps <= sync.metrics.supersteps,
        "traffic sssp: async supersteps {} vs sync {}",
        async_.metrics.supersteps,
        sync.metrics.supersteps
    );
}
