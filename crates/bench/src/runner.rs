//! Runners that execute one query class on one workload under each of the
//! three systems (GRAPE, vertex-centric, block-centric) and report the
//! metrics the paper plots: response time, communication volume, supersteps.

use grape_core::metrics::EngineMetrics;
use grape_core::session::GrapeSession;
use grape_graph::generators::RatingData;
use grape_graph::graph::Graph;
use grape_graph::pattern::Pattern;
use grape_graph::types::VertexId;
use grape_partition::edge_cut::RangeEdgeCut;
use grape_partition::fragment::Fragmentation;
use grape_partition::metis_like::MetisLike;
use grape_partition::strategy::PartitionStrategy;
use serde::Serialize;

use grape_algorithms::cc::{Cc, CcQuery};
use grape_algorithms::cf::CfQuery;
use grape_algorithms::sim::{Sim, SimNi, SimQuery};
use grape_algorithms::sssp::{Sssp, SsspQuery};
use grape_algorithms::subiso::{SubIso, SubIsoQuery};

use grape_baselines::block_centric::{
    run_block_subiso, BlockCc, BlockCentricEngine, BlockCf, BlockSim,
};
use grape_baselines::vertex_centric::{
    VertexCc, VertexCentricEngine, VertexCf, VertexSim, VertexSssp, VertexSubIso, VertexSubIsoQuery,
};

/// The systems compared in the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum System {
    /// The GRAPE engine running PIE programs.
    Grape,
    /// The vertex-centric baseline (Giraph / synchronous GraphLab model).
    VertexCentric,
    /// The block-centric baseline (Blogel model).
    BlockCentric,
}

impl System {
    /// All systems, in the order the paper's tables list them.
    pub fn all() -> [System; 3] {
        [System::VertexCentric, System::BlockCentric, System::Grape]
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            System::Grape => "GRAPE",
            System::VertexCentric => "vertex-centric",
            System::BlockCentric => "block-centric",
        }
    }
}

/// One measured configuration — a row of a paper table / one point of a
/// figure.
#[derive(Debug, Clone, Serialize)]
pub struct RunRow {
    /// Query class (sssp, cc, sim, subiso, cf).
    pub query: String,
    /// Workload name.
    pub workload: String,
    /// System measured.
    pub system: String,
    /// Number of workers `n`.
    pub workers: usize,
    /// Response time in seconds.
    pub seconds: f64,
    /// Communication volume in megabytes.
    pub comm_mb: f64,
    /// Supersteps executed.
    pub supersteps: usize,
    /// Messages shipped (for incremental refreshes this includes the
    /// `ΔG`-derived seed messages) — what the `incremental` experiment's
    /// messages-saved comparison reads.
    pub messages: usize,
    /// `PEval` invocations: `fragments` for a full run, `0` for a monotone
    /// refresh, the damage-frontier size for a bounded refresh — what the
    /// `refresh_comparison` experiment's locality claim reads.
    pub peval_calls: usize,
}

impl RunRow {
    fn from_metrics(
        query: &str,
        workload: &str,
        system: System,
        workers: usize,
        m: &EngineMetrics,
    ) -> Self {
        RunRow {
            query: query.to_string(),
            workload: workload.to_string(),
            system: system.name().to_string(),
            workers,
            seconds: m.seconds(),
            comm_mb: m.comm_megabytes(),
            supersteps: m.supersteps,
            messages: m.total_messages,
            peval_calls: m.peval_calls,
        }
    }
}

/// Partitions `graph` into `workers` fragments with the default strategy
/// (METIS-like, as in the paper).
pub fn partition(graph: &Graph, workers: usize) -> Fragmentation {
    MetisLike::new(workers.max(1))
        .partition(graph)
        .expect("partition")
}

fn grape_session(workers: usize) -> GrapeSession {
    GrapeSession::with_workers(workers)
}

/// Runs SSSP on one system.
pub fn run_sssp(
    system: System,
    graph: &Graph,
    source: VertexId,
    workers: usize,
    workload: &str,
) -> RunRow {
    let query = SsspQuery::new(source);
    let metrics = match system {
        System::Grape => {
            let frag = partition(graph, workers);
            grape_session(workers)
                .run(&frag, &Sssp, &query)
                .expect("grape sssp")
                .metrics
        }
        System::VertexCentric => {
            VertexCentricEngine::new(workers)
                .run(graph, &VertexSssp, &query)
                .1
        }
        System::BlockCentric => {
            let frag = partition(graph, workers);
            grape_baselines::block_centric::run_block_sssp(&frag, &query, workers).1
        }
    };
    RunRow::from_metrics("sssp", workload, system, workers, &metrics)
}

/// Runs CC on one system.
pub fn run_cc(system: System, graph: &Graph, workers: usize, workload: &str) -> RunRow {
    let metrics = match system {
        System::Grape => {
            let frag = partition(graph, workers);
            grape_session(workers)
                .run(&frag, &Cc, &CcQuery)
                .expect("grape cc")
                .metrics
        }
        System::VertexCentric => {
            VertexCentricEngine::new(workers)
                .run(graph, &VertexCc, &())
                .1
        }
        System::BlockCentric => {
            let frag = partition(graph, workers);
            BlockCentricEngine::new(workers).run(&frag, &BlockCc, &()).1
        }
    };
    RunRow::from_metrics("cc", workload, system, workers, &metrics)
}

/// Runs graph simulation on one system.
pub fn run_sim(
    system: System,
    graph: &Graph,
    pattern: &Pattern,
    workers: usize,
    workload: &str,
) -> RunRow {
    let metrics = match system {
        System::Grape => {
            let frag = partition(graph, workers);
            grape_session(workers)
                .run(&frag, &Sim::new(), &SimQuery::new(pattern.clone()))
                .expect("grape sim")
                .metrics
        }
        System::VertexCentric => {
            VertexCentricEngine::new(workers)
                .run(graph, &VertexSim, pattern)
                .1
        }
        System::BlockCentric => {
            let frag = partition(graph, workers);
            BlockCentricEngine::new(workers)
                .run(&frag, &BlockSim, &SimQuery::new(pattern.clone()))
                .1
        }
    };
    RunRow::from_metrics("sim", workload, system, workers, &metrics)
}

/// Runs the GRAPE_NI (non-incremental) simulation variant — Exp-2.
pub fn run_sim_ni(graph: &Graph, pattern: &Pattern, workers: usize, workload: &str) -> RunRow {
    let frag = partition(graph, workers);
    let metrics = grape_session(workers)
        .run(&frag, &SimNi, &SimQuery::new(pattern.clone()))
        .expect("grape sim-ni")
        .metrics;
    RunRow {
        system: "GRAPE_NI".to_string(),
        ..RunRow::from_metrics("sim", workload, System::Grape, workers, &metrics)
    }
}

/// Runs the index-optimized simulation variant — Exp-3.
pub fn run_sim_optimized(
    graph: &Graph,
    pattern: &Pattern,
    workers: usize,
    workload: &str,
) -> RunRow {
    let frag = partition(graph, workers);
    let metrics = grape_session(workers)
        .run(&frag, &Sim::with_index(), &SimQuery::new(pattern.clone()))
        .expect("grape sim-opt")
        .metrics;
    RunRow {
        system: "GRAPE (optimized)".to_string(),
        ..RunRow::from_metrics("sim", workload, System::Grape, workers, &metrics)
    }
}

/// Runs subgraph isomorphism on one system.
pub fn run_subiso(
    system: System,
    graph: &Graph,
    pattern: &Pattern,
    workers: usize,
    workload: &str,
) -> RunRow {
    const MAX_MATCHES: usize = 20_000;
    let metrics = match system {
        System::Grape => {
            let frag = partition(graph, workers);
            grape_session(workers)
                .run(
                    &frag,
                    &SubIso,
                    &SubIsoQuery::new(pattern.clone()).with_max_matches(MAX_MATCHES),
                )
                .expect("grape subiso")
                .metrics
        }
        System::VertexCentric => {
            let query = VertexSubIsoQuery {
                pattern: pattern.clone(),
                max_matches_per_vertex: MAX_MATCHES,
            };
            VertexCentricEngine::new(workers)
                .run(graph, &VertexSubIso, &query)
                .1
        }
        System::BlockCentric => {
            let frag = partition(graph, workers);
            run_block_subiso(&frag, pattern, MAX_MATCHES, workers).1
        }
    };
    RunRow::from_metrics("subiso", workload, system, workers, &metrics)
}

/// Runs collaborative filtering on one system.
pub fn run_cf(
    system: System,
    data: &RatingData,
    epochs: usize,
    workers: usize,
    workload: &str,
) -> RunRow {
    let query = CfQuery {
        epochs,
        num_factors: 8,
        ..Default::default()
    };
    let metrics = match system {
        System::Grape => {
            let frag = partition(&data.graph, workers);
            grape_session(workers)
                .run(&frag, &grape_algorithms::cf::Cf, &query)
                .expect("grape cf")
                .metrics
        }
        System::VertexCentric => {
            VertexCentricEngine::new(workers)
                .run(&data.graph, &VertexCf, &query)
                .1
        }
        System::BlockCentric => {
            let frag = partition(&data.graph, workers);
            BlockCentricEngine::new(workers)
                .run(&frag, &BlockCf, &query)
                .1
        }
    };
    RunRow::from_metrics("cf", workload, system, workers, &metrics)
}

/// A GRAPE row with an explicit system label (the refresh-path tags of the
/// incremental experiments: `GRAPE (incremental)`, `GRAPE (bounded)`, …).
fn labeled_row(
    query_name: &str,
    workload: &str,
    workers: usize,
    metrics: &EngineMetrics,
    system: &str,
) -> RunRow {
    RunRow {
        system: system.to_string(),
        ..RunRow::from_metrics(query_name, workload, System::Grape, workers, metrics)
    }
}

/// Prices a full recompute of the prepared query's *current* graph — the
/// `GRAPE (recompute)` baseline row shared by every refresh experiment.
fn recompute_row<P: grape_core::pie::IncrementalPie>(
    session: &GrapeSession,
    prepared: &grape_core::prepared::PreparedQuery<P>,
    query_name: &str,
    workload: &str,
    workers: usize,
) -> RunRow {
    let recompute = session
        .run(
            prepared.fragmentation(),
            prepared.program(),
            prepared.query(),
        )
        .expect("full recompute on the updated graph");
    labeled_row(
        query_name,
        workload,
        workers,
        &recompute.metrics,
        "GRAPE (recompute)",
    )
}

/// Prepares `program` over `graph`, applies `delta` through
/// [`grape_core::prepared::PreparedQuery::update`], and measures the refresh
/// against a full recompute on the updated graph (same partition, same
/// session): two rows, `GRAPE (incremental)` and `GRAPE (recompute)`.
/// Update latency is the row's `seconds`; messages saved is the difference
/// of the two rows' `messages`.
fn run_incremental_pair<P>(
    query_name: &str,
    workload: &str,
    graph: &Graph,
    delta: &grape_graph::delta::GraphDelta,
    program: P,
    query: P::Query,
    workers: usize,
) -> Vec<RunRow>
where
    P: grape_core::pie::IncrementalPie,
{
    let frag = partition(graph, workers);
    let session = grape_session(workers);
    let mut prepared = session
        .prepare(frag, program, query)
        .expect("prepare for incremental experiment");
    let report = prepared.update(delta).expect("apply delta");
    assert!(
        report.incremental,
        "the incremental experiment feeds monotone deltas only"
    );
    vec![
        labeled_row(
            query_name,
            workload,
            workers,
            &report.metrics,
            "GRAPE (incremental)",
        ),
        recompute_row(&session, &prepared, query_name, workload, workers),
    ]
}

/// The update-latency experiment for SSSP: a batch of edge insertions.
pub fn run_incremental_sssp(
    graph: &Graph,
    delta: &grape_graph::delta::GraphDelta,
    source: VertexId,
    workers: usize,
    workload: &str,
) -> Vec<RunRow> {
    run_incremental_pair(
        "sssp",
        workload,
        graph,
        delta,
        Sssp,
        SsspQuery::new(source),
        workers,
    )
}

/// The update-latency experiment for CC: a batch of edge insertions.
pub fn run_incremental_cc(
    graph: &Graph,
    delta: &grape_graph::delta::GraphDelta,
    workers: usize,
    workload: &str,
) -> Vec<RunRow> {
    run_incremental_pair("cc", workload, graph, delta, Cc, CcQuery, workers)
}

/// The update-latency experiment for Sim: a batch of edge deletions.
pub fn run_incremental_sim(
    graph: &Graph,
    pattern: &Pattern,
    delta: &grape_graph::delta::GraphDelta,
    workers: usize,
    workload: &str,
) -> Vec<RunRow> {
    run_incremental_pair(
        "sim",
        workload,
        graph,
        delta,
        Sim::new(),
        SimQuery::new(pattern.clone()),
        workers,
    )
}

/// Prepares over an explicit (locality-aligned) fragmentation, applies one
/// `ΔG` through the update path it naturally takes, and pairs it with a
/// full recompute on the updated graph.  The first row's system name
/// records the refresh kind — `GRAPE (monotone)`, `GRAPE (bounded)` or
/// `GRAPE (full)` — so the experiment output shows which decision-table row
/// fired; `supersteps`/`messages`/`seconds` quantify what it saved.
fn run_refresh_pair<P>(
    query_name: &str,
    workload: &str,
    frag: Fragmentation,
    delta: &grape_graph::delta::GraphDelta,
    program: P,
    query: P::Query,
    workers: usize,
) -> Vec<RunRow>
where
    P: grape_core::pie::IncrementalPie,
{
    let session = grape_session(workers);
    let mut prepared = session
        .prepare(frag, program, query)
        .expect("prepare for refresh experiment");
    let report = prepared.update(delta).expect("apply delta");
    let label = match report.kind {
        grape_core::prepared::RefreshKind::Monotone => "GRAPE (monotone)",
        grape_core::prepared::RefreshKind::Bounded => "GRAPE (bounded)",
        grape_core::prepared::RefreshKind::Full => "GRAPE (full)",
    };
    vec![
        labeled_row(query_name, workload, workers, &report.metrics, label),
        recompute_row(&session, &prepared, query_name, workload, workers),
    ]
}

/// The update-latency experiment for CF: a burst of new ratings confined to
/// one catalog segment of a [`crate::workloads::segmented_movielens`]
/// workload.  The epoch-seeded refresh retrains only the quotient
/// component(s) of the touched segment (`GRAPE (bounded)` row) against a
/// full retrain (`GRAPE (recompute)` row).  Range-partitioned so fragments
/// align with the segments' contiguous id ranges.
pub fn run_incremental_cf(
    graph: &Graph,
    delta: &grape_graph::delta::GraphDelta,
    epochs: usize,
    workers: usize,
    workload: &str,
) -> Vec<RunRow> {
    let query = CfQuery {
        epochs,
        num_factors: 8,
        ..Default::default()
    };
    let frag = RangeEdgeCut::new(workers.max(1))
        .partition(graph)
        .expect("partition");
    run_refresh_pair(
        "cf",
        workload,
        frag,
        delta,
        grape_algorithms::cf::Cf,
        query,
        workers,
    )
}

/// The update-latency experiment for SubIso: a batch of edge deletions;
/// the pattern-radius halo re-expands and re-matches only the fragments
/// within `d_Q + 1` quotient hops of the damage.
pub fn run_incremental_subiso(
    graph: &Graph,
    pattern: &Pattern,
    delta: &grape_graph::delta::GraphDelta,
    workers: usize,
    workload: &str,
) -> Vec<RunRow> {
    const MAX_MATCHES: usize = 20_000;
    let frag = partition(graph, workers);
    run_refresh_pair(
        "subiso",
        workload,
        frag,
        delta,
        SubIso,
        SubIsoQuery::new(pattern.clone()).with_max_matches(MAX_MATCHES),
        workers,
    )
}

/// The `recompute vs bounded vs monotone` comparison on the regional
/// traffic workload: from one prepared SSSP query, (1) a batch of new road
/// segments takes the monotone IncEval-only path, then (2) a batch of road
/// closures confined to the first region takes the bounded refresh, and
/// (3) the recompute row prices answering the final graph from scratch.
/// Range-partitioned into **two fragments per region**, so fragments align
/// with regions (the closure stays regional: `peval_calls ≤ 2`) while
/// intra-region borders keep real message traffic in every row.
pub fn run_refresh_comparison_sssp(
    graph: &Graph,
    insert_delta: &grape_graph::delta::GraphDelta,
    delete_delta: &grape_graph::delta::GraphDelta,
    source: VertexId,
    workers: usize,
    workload: &str,
) -> Vec<RunRow> {
    let session = grape_session(workers);
    let frag = RangeEdgeCut::new(2 * workers.max(1))
        .partition(graph)
        .expect("partition");
    let query = SsspQuery::new(source);
    let mut prepared = session.prepare(frag, Sssp, query).expect("prepare");
    let m = prepared.fragmentation().num_fragments();

    let monotone = prepared.update(insert_delta).expect("insert batch");
    assert!(
        monotone.incremental,
        "road-segment insertions take the monotone path"
    );
    let bounded = prepared.update(delete_delta).expect("deletion batch");
    assert_eq!(
        bounded.kind,
        grape_core::prepared::RefreshKind::Bounded,
        "regional closures keep the frontier regional"
    );
    assert!(bounded.metrics.peval_calls < m);

    vec![
        labeled_row(
            "sssp",
            workload,
            workers,
            &monotone.metrics,
            "GRAPE (monotone)",
        ),
        labeled_row(
            "sssp",
            workload,
            workers,
            &bounded.metrics,
            "GRAPE (bounded)",
        ),
        recompute_row(&session, &prepared, "sssp", workload, workers),
    ]
}

/// The serving experiment: `K` standing SSSP queries multiplexed by one
/// [`grape_core::serve::GrapeServer`] over a stream of insertion deltas,
/// priced against `K` independent [`grape_core::prepared::PreparedQuery`]
/// handles absorbing the same stream.  The server applies each `ΔG` to the
/// fragmentation **once** and fans the shared
/// [`grape_partition::delta::DeltaApplication`] out to every query; the
/// independent handles re-run `apply_delta` `K` times per delta.
///
/// Row semantics: `seconds` is the **mean per-delta latency** of the whole
/// apply step (partition maintenance + every query's refresh);
/// `messages` / `comm_mb` / `supersteps` / `peval_calls` are totals across
/// the stream and all queries (identical refresh work on both sides — the
/// amortization shows up purely in `seconds`).  The two sides' answers are
/// asserted identical before the rows are emitted.
pub fn run_serving(
    graph: &Graph,
    sources: &[VertexId],
    deltas: &[grape_graph::delta::GraphDelta],
    workers: usize,
    workload: &str,
) -> Vec<RunRow> {
    use grape_core::serve::GrapeServer;
    use std::time::Instant;

    let session = grape_session(workers);
    let k = sources.len();

    #[derive(Default)]
    struct Tally {
        messages: usize,
        bytes: usize,
        supersteps: usize,
        peval_calls: usize,
    }
    impl Tally {
        fn add(&mut self, m: &EngineMetrics) {
            self.messages += m.total_messages;
            self.bytes += m.total_bytes;
            self.supersteps += m.supersteps;
            self.peval_calls += m.peval_calls;
        }
        fn row(&self, system: &str, workload: &str, workers: usize, seconds: f64) -> RunRow {
            RunRow {
                query: "sssp".to_string(),
                workload: workload.to_string(),
                system: system.to_string(),
                workers,
                seconds,
                comm_mb: self.bytes as f64 / (1024.0 * 1024.0),
                supersteps: self.supersteps,
                messages: self.messages,
                peval_calls: self.peval_calls,
            }
        }
    }

    // One server, K handles, one apply_delta per delta.
    let mut server = GrapeServer::new(session.clone(), partition(graph, workers));
    let handles: Vec<_> = sources
        .iter()
        .map(|&src| {
            server
                .register(Sssp, SsspQuery::new(src))
                .expect("register serving query")
        })
        .collect();
    let mut server_tally = Tally::default();
    let server_start = Instant::now();
    for delta in deltas {
        let report = server.apply(delta).expect("server apply");
        for refresh in report.refreshed {
            server_tally.add(&refresh.result.expect("server refresh").metrics);
        }
    }
    let server_per_delta = server_start.elapsed().as_secs_f64() / deltas.len().max(1) as f64;
    assert_eq!(server.deltas_applied(), deltas.len());

    // K independent handles: K apply_delta calls per delta.
    let mut independent: Vec<_> = sources
        .iter()
        .map(|&src| {
            session
                .prepare(partition(graph, workers), Sssp, SsspQuery::new(src))
                .expect("prepare independent handle")
        })
        .collect();
    let mut independent_tally = Tally::default();
    let independent_start = Instant::now();
    for delta in deltas {
        for prepared in independent.iter_mut() {
            let report = prepared.update(delta).expect("independent update");
            independent_tally.add(&report.metrics);
        }
    }
    let independent_per_delta =
        independent_start.elapsed().as_secs_f64() / deltas.len().max(1) as f64;

    // The amortization must not change a single answer.
    for (handle, prepared) in handles.iter().zip(&independent) {
        let served = server.output(handle).expect("server output");
        let alone = prepared.output();
        assert_eq!(
            served.distances().len(),
            alone.distances().len(),
            "serving changed an answer"
        );
        for (v, d) in served.distances() {
            let other = alone.distances()[v];
            assert!(
                (d - other).abs() < 1e-9,
                "serving changed dist({v}): {d} vs {other}"
            );
        }
    }

    vec![
        server_tally.row(
            &format!("GRAPE (server, K={k})"),
            workload,
            workers,
            server_per_delta,
        ),
        independent_tally.row(
            &format!("GRAPE (independent, K={k})"),
            workload,
            workers,
            independent_per_delta,
        ),
    ]
}

/// One cell of the serving-scaling experiment: `K` standing queries, a
/// refresh fan-out width, an arrival pattern, and the per-delta latency
/// distribution it produced.
#[derive(Debug, Clone, Serialize)]
pub struct ScalingRow {
    /// Workload name.
    pub workload: String,
    /// Number of standing queries.
    pub k: usize,
    /// Refresh fan-out width ([`grape_core::serve::GrapeServer::threads`]).
    pub threads: usize,
    /// Arrival pattern: `stream` (one `apply` per delta) or `batch`
    /// (pipelined `apply_batch` in chunks).
    pub arrival: String,
    /// Median per-delta latency in milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile per-delta latency in milliseconds.
    pub p99_ms: f64,
    /// Mean per-delta latency in milliseconds.
    pub mean_ms: f64,
    /// Sustained throughput over the whole stream.
    pub deltas_per_sec: f64,
}

/// The serving-scaling experiment: `K` standing SSSP queries on one
/// [`grape_core::serve::GrapeServer`], swept over refresh fan-out widths
/// and two arrival patterns.  The engine runs **one** worker per refresh so
/// the fan-out is the only parallelism being measured; the per-delta
/// latency distribution ([`grape_core::metrics::LatencySummary`]) and the
/// sustained deltas/sec are the tracked artifact.
///
/// Answer equality is asserted *inside* the runner: every (threads,
/// arrival) cell must produce distances identical to the first cell and to
/// a from-scratch recompute on the final graph — the fan-out and the
/// pipeline are not allowed to buy latency with wrong answers.
pub fn run_serving_scaling(
    graph: &Graph,
    sources: &[VertexId],
    deltas: &[grape_graph::delta::GraphDelta],
    thread_counts: &[usize],
    fragments: usize,
    workload: &str,
) -> Vec<ScalingRow> {
    use grape_core::serve::GrapeServer;
    use std::time::Instant;

    let session = grape_session(1);
    let k = sources.len();
    let frag = partition(graph, fragments);
    const BATCH_CHUNK: usize = 4;

    let mut rows = Vec::new();
    let mut reference: Option<Vec<grape_algorithms::sssp::SsspResult>> = None;
    for &threads in thread_counts {
        for arrival in ["stream", "batch"] {
            let mut server = GrapeServer::new(session.clone(), frag.clone()).threads(threads);
            let handles: Vec<_> = sources
                .iter()
                .map(|&src| {
                    server
                        .register(Sssp, SsspQuery::new(src))
                        .expect("register scaling query")
                })
                .collect();

            // The server records one latency sample per commit itself (the
            // same histogram `graped` exports over the wire), so the bench
            // no longer stopwatches each apply caller-side.
            let start = Instant::now();
            match arrival {
                "stream" => {
                    for delta in deltas {
                        let report = server.apply(delta).expect("scaling apply");
                        for refresh in &report.refreshed {
                            assert!(refresh.result.is_ok(), "scaling refresh failed");
                        }
                    }
                }
                _ => {
                    for chunk in deltas.chunks(BATCH_CHUNK) {
                        let batch = server.apply_batch(chunk);
                        assert!(batch.rejected.is_none(), "scaling batch rejected");
                    }
                }
            }
            let total = start.elapsed().as_secs_f64();
            assert_eq!(server.deltas_applied(), deltas.len());
            assert_eq!(
                server.latency_samples(),
                deltas.len(),
                "one latency sample per commit"
            );

            // Answer equality across every cell — and vs a recompute.
            let outputs: Vec<_> = handles
                .iter()
                .map(|h| server.output(h).expect("scaling output"))
                .collect();
            match &reference {
                None => {
                    for (i, (&src, out)) in sources.iter().zip(&outputs).enumerate() {
                        let recompute = session
                            .run(server.fragmentation(), &Sssp, &SsspQuery::new(src))
                            .expect("scaling recompute");
                        assert_eq!(
                            out.distances().len(),
                            recompute.output.distances().len(),
                            "query {i} diverged from recompute"
                        );
                        for (v, d) in out.distances() {
                            let other = recompute.output.distances()[v];
                            assert!(
                                (d - other).abs() < 1e-9,
                                "query {i}: dist({v}) {d} vs recompute {other}"
                            );
                        }
                    }
                    reference = Some(outputs);
                }
                Some(reference) => {
                    for (i, (out, base)) in outputs.iter().zip(reference).enumerate() {
                        assert_eq!(out.distances().len(), base.distances().len());
                        for (v, d) in out.distances() {
                            let other = base.distances()[v];
                            assert!(
                                (d - other).abs() < 1e-9,
                                "threads={threads} {arrival} query {i}: \
                                 dist({v}) {d} vs {other}"
                            );
                        }
                    }
                }
            }

            let summary = server.latency_summary();
            rows.push(ScalingRow {
                workload: workload.to_string(),
                k,
                threads,
                arrival: arrival.to_string(),
                p50_ms: summary.p50_ms,
                p99_ms: summary.p99_ms,
                mean_ms: summary.mean_ms,
                deltas_per_sec: deltas.len() as f64 / total.max(1e-12),
            });
        }
    }
    rows
}

/// A [`ScalingRow`] tagged with its experiment and scale — the record of
/// the `BENCH_serving_scaling.json` baseline.
#[derive(Debug, Clone, Serialize)]
pub struct ScalingExport {
    /// Experiment id (`serving_scaling`).
    pub experiment: String,
    /// Workload scale (`small`, `medium`, `large`).
    pub scale: String,
    /// Workload name.
    pub workload: String,
    /// Number of standing queries.
    pub k: usize,
    /// Refresh fan-out width.
    pub threads: usize,
    /// Arrival pattern (`stream` / `batch`).
    pub arrival: String,
    /// Median per-delta latency in milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile per-delta latency in milliseconds.
    pub p99_ms: f64,
    /// Mean per-delta latency in milliseconds.
    pub mean_ms: f64,
    /// Sustained throughput over the whole stream.
    pub deltas_per_sec: f64,
}

/// Formats scaling rows as JSON Lines (the `BENCH_serving_scaling.json`
/// format).
pub fn format_scaling_json(experiment: &str, scale: &str, rows: &[ScalingRow]) -> String {
    let mut out = String::new();
    for row in rows {
        let export = ScalingExport {
            experiment: experiment.to_string(),
            scale: scale.to_string(),
            workload: row.workload.clone(),
            k: row.k,
            threads: row.threads,
            arrival: row.arrival.clone(),
            p50_ms: row.p50_ms,
            p99_ms: row.p99_ms,
            mean_ms: row.mean_ms,
            deltas_per_sec: row.deltas_per_sec,
        };
        out.push_str(&serde_json::to_string(&export).expect("ScalingExport serializes"));
        out.push('\n');
    }
    out
}

/// Formats scaling rows as an aligned text table.
pub fn format_scaling_table(title: &str, rows: &[ScalingRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!("\n== {title} ==\n"));
    out.push_str(&format!(
        "{:<16} {:>3} {:>7} {:<8} {:>10} {:>10} {:>10} {:>12}\n",
        "workload", "K", "threads", "arrival", "p50 (ms)", "p99 (ms)", "mean (ms)", "deltas/sec"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<16} {:>3} {:>7} {:<8} {:>10.3} {:>10.3} {:>10.3} {:>12.2}\n",
            r.workload, r.k, r.threads, r.arrival, r.p50_ms, r.p99_ms, r.mean_ms, r.deltas_per_sec
        ));
    }
    out
}

/// One cell of the serving-watchers experiment: `K` standing queries, `W`
/// subscribers per query, and the push-vs-poll byte economics the
/// subscription subsystem exists to win.
#[derive(Debug, Clone, Serialize)]
pub struct WatcherRow {
    /// Workload name.
    pub workload: String,
    /// Number of standing queries.
    pub k: usize,
    /// Subscribers per query (each gets its own copy of every event).
    pub watchers: usize,
    /// Deltas in the stream.
    pub deltas: usize,
    /// Total bytes pushed: `W ×` the serialized size of every per-commit
    /// `OutputDelta` — what the daemon writes to the `W` sockets.
    pub pushed_bytes: usize,
    /// Total bytes the same `W` clients would pull by polling the full
    /// answer after every commit instead.
    pub polled_bytes: usize,
    /// `pushed_bytes / polled_bytes` — below 1.0 whenever answers are
    /// larger than their per-commit change.
    pub push_ratio: f64,
    /// Mean per-commit latency in milliseconds (the server's own
    /// histogram, including delta derivation for the watched queries).
    pub mean_ms: f64,
}

/// Exact row-level diff size between two canonical sorted answers — the
/// `|change|` that the pushed delta is asserted to be proportional to.
fn answer_diff_rows(
    before: &[(serde::Value, serde::Value)],
    after: &[(serde::Value, serde::Value)],
) -> usize {
    use grape_core::output_delta::value_cmp;
    use std::cmp::Ordering;
    let (mut i, mut j, mut count) = (0usize, 0usize, 0usize);
    while i < before.len() && j < after.len() {
        match value_cmp(&before[i].0, &after[j].0) {
            Ordering::Less => {
                count += 1; // removed
                i += 1;
            }
            Ordering::Greater => {
                count += 1; // added
                j += 1;
            }
            Ordering::Equal => {
                if before[i].1 != after[j].1 {
                    count += 1; // changed
                }
                i += 1;
                j += 1;
            }
        }
    }
    count + (before.len() - i) + (after.len() - j)
}

/// The serving-watchers experiment: `K` standing SSSP queries on one
/// [`grape_core::serve::GrapeServer`], each watched by `W` subscribers,
/// absorbing a stream of insertion deltas.  Per commit the server derives
/// **one** `OutputDelta` per watched query and the wire layer copies it to
/// every subscriber, so pushed bytes are `W ×` the delta size — priced here
/// against the `W ×` full-answer bytes the same clients would pull by
/// polling after every commit.
///
/// Two properties are asserted inside the runner, per commit and per query:
///
/// * **O(|change|)**: the pushed delta's row count equals the exact row
///   diff of the answer before/after the commit — never the answer size;
/// * **equality**: folding every pushed delta over the initial answer
///   reproduces the final `output()` byte-for-byte (and the final answers
///   are identical across all `W` cells).
pub fn run_serving_watchers(
    graph: &Graph,
    sources: &[VertexId],
    deltas: &[grape_graph::delta::GraphDelta],
    watcher_counts: &[usize],
    fragments: usize,
    workload: &str,
) -> Vec<WatcherRow> {
    use grape_core::output_delta::{wire_rows, DeltaOutput, OutputEvent};
    use grape_core::serve::GrapeServer;

    let session = grape_session(1);
    let k = sources.len();
    let frag = partition(graph, fragments);
    let queries: Vec<SsspQuery> = sources.iter().map(|&src| SsspQuery::new(src)).collect();

    let mut rows = Vec::new();
    let mut reference: Option<Vec<String>> = None;
    for &w in watcher_counts {
        let mut server = GrapeServer::new(session.clone(), frag.clone());
        let handles: Vec<_> = queries
            .iter()
            .map(|q| server.register(Sssp, *q).expect("register watched query"))
            .collect();
        let mut subs = Vec::new();
        for h in &handles {
            for _ in 0..w {
                subs.push(server.subscribe(h).expect("subscribe watcher"));
            }
        }

        // Each subscriber starts from the initial answer and folds pushed
        // deltas — `replay` is that client-side copy, one per query.
        let mut replay: Vec<Vec<(serde::Value, serde::Value)>> = handles
            .iter()
            .zip(&queries)
            .map(|(h, q)| {
                wire_rows(&Sssp.canonical(q, &server.output(h).expect("baseline output")))
            })
            .collect();

        let mut pushed_bytes = 0usize;
        let mut polled_bytes = 0usize;
        for delta in deltas {
            let report = server.apply(delta).expect("watchers apply");
            for refresh in &report.refreshed {
                assert!(refresh.result.is_ok(), "watchers refresh failed");
            }
            for qd in server.drain_events() {
                let idx = handles
                    .iter()
                    .position(|h| h.id() == qd.query)
                    .expect("event for a watched query");
                let OutputEvent::Delta(d) = qd.event else {
                    panic!("healthy query pushed a poison event");
                };
                let before = replay[idx].clone();
                d.apply_to(&mut replay[idx]);
                // O(|change|): pushed rows are exactly the answer diff.
                assert_eq!(
                    d.len(),
                    answer_diff_rows(&before, &replay[idx]),
                    "pushed delta must carry exactly the changed rows"
                );
                let event_bytes = serde_json::to_string(&d.changed)
                    .expect("delta serializes")
                    .len()
                    + serde_json::to_string(&d.removed)
                        .expect("delta serializes")
                        .len();
                pushed_bytes += w * event_bytes;
                polled_bytes += w * serde_json::to_string(&replay[idx])
                    .expect("answer serializes")
                    .len();
            }
        }
        assert_eq!(server.deltas_applied(), deltas.len());
        assert!(
            pushed_bytes <= polled_bytes,
            "pushing deltas must not cost more than polling answers \
             ({pushed_bytes} vs {polled_bytes})"
        );

        // Equality: every subscriber's folded copy is byte-identical to the
        // final answer, and the final answers agree across all W cells.
        let finals: Vec<String> = handles
            .iter()
            .zip(&queries)
            .zip(&replay)
            .map(|((h, q), folded)| {
                let expect = serde_json::to_string(&wire_rows(
                    &Sssp.canonical(q, &server.output(h).expect("final output")),
                ))
                .expect("answer serializes");
                let got = serde_json::to_string(folded).expect("answer serializes");
                assert_eq!(got, expect, "folded deltas diverged from output()");
                expect
            })
            .collect();
        match &reference {
            None => reference = Some(finals),
            Some(reference) => assert_eq!(
                &finals, reference,
                "final answers must not depend on the watcher count"
            ),
        }
        for sub in subs {
            server.unsubscribe(sub).expect("unsubscribe watcher");
        }

        rows.push(WatcherRow {
            workload: workload.to_string(),
            k,
            watchers: w,
            deltas: deltas.len(),
            pushed_bytes,
            polled_bytes,
            push_ratio: pushed_bytes as f64 / polled_bytes.max(1) as f64,
            mean_ms: server.latency_summary().mean_ms,
        });
    }
    rows
}

/// A [`WatcherRow`] tagged with its experiment and scale — the record of
/// the `BENCH_serving_watchers.json` baseline.
#[derive(Debug, Clone, Serialize)]
pub struct WatcherExport {
    /// Experiment id (`serving_watchers`).
    pub experiment: String,
    /// Workload scale (`small`, `medium`, `large`).
    pub scale: String,
    /// Workload name.
    pub workload: String,
    /// Number of standing queries.
    pub k: usize,
    /// Subscribers per query.
    pub watchers: usize,
    /// Deltas in the stream.
    pub deltas: usize,
    /// Total bytes pushed to all subscribers.
    pub pushed_bytes: usize,
    /// Total bytes the same clients would poll.
    pub polled_bytes: usize,
    /// `pushed_bytes / polled_bytes`.
    pub push_ratio: f64,
    /// Mean per-commit latency in milliseconds.
    pub mean_ms: f64,
}

/// Formats watcher rows as JSON Lines (the `BENCH_serving_watchers.json`
/// format).
pub fn format_watchers_json(experiment: &str, scale: &str, rows: &[WatcherRow]) -> String {
    let mut out = String::new();
    for row in rows {
        let export = WatcherExport {
            experiment: experiment.to_string(),
            scale: scale.to_string(),
            workload: row.workload.clone(),
            k: row.k,
            watchers: row.watchers,
            deltas: row.deltas,
            pushed_bytes: row.pushed_bytes,
            polled_bytes: row.polled_bytes,
            push_ratio: row.push_ratio,
            mean_ms: row.mean_ms,
        };
        out.push_str(&serde_json::to_string(&export).expect("WatcherExport serializes"));
        out.push('\n');
    }
    out
}

/// Formats watcher rows as an aligned text table.
pub fn format_watchers_table(title: &str, rows: &[WatcherRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!("\n== {title} ==\n"));
    out.push_str(&format!(
        "{:<16} {:>3} {:>8} {:>7} {:>13} {:>13} {:>7} {:>10}\n",
        "workload", "K", "watchers", "deltas", "pushed (B)", "polled (B)", "ratio", "mean (ms)"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<16} {:>3} {:>8} {:>7} {:>13} {:>13} {:>7.3} {:>10.3}\n",
            r.workload,
            r.k,
            r.watchers,
            r.deltas,
            r.pushed_bytes,
            r.polled_bytes,
            r.push_ratio,
            r.mean_ms
        ));
    }
    out
}

/// One eviction round of the rehydrate-latency experiment: what this
/// round's spill wrote to disk and how long the rehydration took.
#[derive(Debug, Clone, Serialize)]
pub struct RehydrateRow {
    /// Workload name.
    pub workload: String,
    /// Store flavor: `tiered` (delta increments, default compaction) or
    /// `wholesale` (compaction threshold 0 — the chain is folded into a
    /// lone base after every evict, the pre-LSM behavior).
    pub store: String,
    /// Eviction round, 0-based (round 0 writes the base).
    pub round: usize,
    /// Bytes of the file this round's eviction wrote (the increment under
    /// `tiered` after round 0; the freshly folded base under `wholesale`).
    pub spill_bytes: u64,
    /// Increment-chain length on disk after this round's eviction.
    pub chain_len: usize,
    /// Wall time of this round's `rehydrate` call, in milliseconds
    /// (store load + fold + replay of the deltas applied while cold).
    pub rehydrate_ms: f64,
}

/// The rehydrate-latency experiment: one standing SSSP query is repeatedly
/// evicted, left behind by one delta batch, and rehydrated — once with the
/// tiered store (round 0 writes a base, later rounds append delta-encoded
/// increments, the chain compacting at the default threshold) and once
/// with compaction threshold 0 (`wholesale`: the store folds to a lone
/// base after every evict, reproducing the cost profile of full-snapshot
/// spills).
///
/// Three properties are asserted inside the runner:
///
/// * **O(|ΔG|) spills**: under `tiered`, every post-base eviction writes
///   less than half the base's bytes;
/// * **bounded chains**: the on-disk chain never exceeds the compaction
///   threshold + 1;
/// * **flat rehydration**: the mean latency of the later rounds stays
///   within 2× of the earlier rounds' (plus a 1 ms floor for CI noise) —
///   i.e. rehydration does not slow down as the evict count grows — and
///   every rehydrated answer equals a never-evicted twin's.
pub fn run_rehydrate_latency(
    graph: &Graph,
    source: VertexId,
    deltas: &[grape_graph::delta::GraphDelta],
    fragments: usize,
    workload: &str,
) -> Vec<RehydrateRow> {
    use grape_core::serve::GrapeServer;
    use std::time::Instant;

    let session = grape_session(1);
    // Range partition, not METIS-like: the callers pair this runner with
    // region-aligned workloads whose deltas land in one contiguous id
    // range, so contiguous fragments are what keeps an increment's
    // changed-fragment set — and therefore its byte size — O(|ΔG|).
    let frag = grape_partition::edge_cut::RangeEdgeCut::new(fragments)
        .partition(graph)
        .expect("partition");
    let query = SsspQuery::new(source);

    let mut rows = Vec::new();
    for (store, threshold) in [("tiered", 4usize), ("wholesale", 0usize)] {
        let mut server =
            GrapeServer::new(session.clone(), frag.clone()).compaction_threshold(threshold);
        let handle = server.register(Sssp, query).expect("register");
        let mut twin = GrapeServer::new(session.clone(), frag.clone());
        let twin_handle = twin.register(Sssp, query).expect("register twin");

        let mut base_bytes = 0u64;
        let mut latencies = Vec::new();
        for (round, delta) in deltas.iter().enumerate() {
            let spill = server.evict(&handle).expect("evict");
            let spill_bytes = std::fs::metadata(&spill).expect("spill written").len();
            // evict returns the increment it appended — or the freshly
            // folded base when the eviction tripped a compaction.
            let wrote_base = spill.extension().is_some_and(|e| e == "base");
            if wrote_base {
                base_bytes = spill_bytes;
            } else {
                assert!(
                    spill_bytes < base_bytes / 2,
                    "round {round}: a tiered increment ({spill_bytes} B) must stay \
                     well under the base ({base_bytes} B)"
                );
            }
            server.apply(delta).expect("apply while cold");
            twin.apply(delta).expect("twin apply");

            let start = Instant::now();
            server.rehydrate(&handle).expect("rehydrate");
            let rehydrate_ms = start.elapsed().as_secs_f64() * 1e3;
            latencies.push(rehydrate_ms);

            let status = &server.query_statuses()[handle.id()];
            assert!(
                status.spill_chain <= threshold + 1,
                "round {round}: chain {} exceeds compaction threshold {threshold}",
                status.spill_chain
            );
            assert_eq!(
                server.output(&handle).expect("output").distances(),
                twin.output(&twin_handle).expect("twin output").distances(),
                "round {round}: rehydrated answer diverged from the never-evicted twin"
            );
            rows.push(RehydrateRow {
                workload: workload.to_string(),
                store: store.to_string(),
                round,
                spill_bytes,
                chain_len: status.spill_chain,
                rehydrate_ms,
            });
        }
        // Flatness is a trend claim, not a per-round one: within a
        // compaction cycle a rehydrate folding a 4-file chain is
        // legitimately slower than one reading a lone base.  Compare the
        // mean of the later rounds against the earlier ones — linear
        // growth with the evict count (the pre-tiering replay-from-
        // scratch behavior) triples the later mean, while cycle shape and
        // timer noise leave the two halves alike.
        let (early, late) = latencies.split_at(latencies.len() / 2);
        let mean = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len() as f64;
        assert!(
            mean(late) <= 2.0 * mean(early) + 1.0,
            "{store}: rehydrate latency grew with the evict count \
             (first-half mean {:.3} ms, second-half mean {:.3} ms)",
            mean(early),
            mean(late)
        );
    }
    rows
}

/// A [`RehydrateRow`] tagged with its experiment and scale — the record of
/// the `BENCH_rehydrate_latency.json` baseline.
#[derive(Debug, Clone, Serialize)]
pub struct RehydrateExport {
    /// Experiment id (`rehydrate_latency`).
    pub experiment: String,
    /// Workload scale (`small`, `medium`, `large`).
    pub scale: String,
    /// Workload name.
    pub workload: String,
    /// Store flavor (`tiered` | `wholesale`).
    pub store: String,
    /// Eviction round, 0-based.
    pub round: usize,
    /// Bytes this round's eviction wrote.
    pub spill_bytes: u64,
    /// On-disk chain length after this round's eviction.
    pub chain_len: usize,
    /// Rehydrate wall time in milliseconds.
    pub rehydrate_ms: f64,
}

/// Formats rehydrate rows as JSON Lines (the `BENCH_rehydrate_latency.json`
/// format).
pub fn format_rehydrate_json(experiment: &str, scale: &str, rows: &[RehydrateRow]) -> String {
    let mut out = String::new();
    for row in rows {
        let export = RehydrateExport {
            experiment: experiment.to_string(),
            scale: scale.to_string(),
            workload: row.workload.clone(),
            store: row.store.clone(),
            round: row.round,
            spill_bytes: row.spill_bytes,
            chain_len: row.chain_len,
            rehydrate_ms: row.rehydrate_ms,
        };
        out.push_str(&serde_json::to_string(&export).expect("RehydrateExport serializes"));
        out.push('\n');
    }
    out
}

/// Formats rehydrate rows as an aligned text table.
pub fn format_rehydrate_table(title: &str, rows: &[RehydrateRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!("\n== {title} ==\n"));
    out.push_str(&format!(
        "{:<16} {:<10} {:>5} {:>11} {:>6} {:>14}\n",
        "workload", "store", "round", "spill (B)", "chain", "rehydrate (ms)"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<16} {:<10} {:>5} {:>11} {:>6} {:>14.3}\n",
            r.workload, r.store, r.round, r.spill_bytes, r.chain_len, r.rehydrate_ms
        ));
    }
    out
}

/// One measured cell of the **process-transport** experiment: the same
/// query over the same fragmentation, evaluated either in-process (the
/// mode's natural substrate) or sharded across `grape-worker` subprocesses
/// (`TransportSpec::Process`).  `pipe_mb` is the traffic that crossed the
/// worker pipes — handshake fragments, per-evaluation messages, collected
/// partials — and is 0 by definition for the in-process cells.
#[derive(Debug, Clone, Serialize)]
pub struct ProcessRow {
    /// Query class (sssp, cc).
    pub query: String,
    /// Workload name.
    pub workload: String,
    /// Engine mode (`sync` / `async`).
    pub mode: String,
    /// Transport name (`barrier` / `channel` / `process`).
    pub transport: String,
    /// Engine workers; for `process`, also the subprocess count.
    pub workers: usize,
    /// Response time in seconds.
    pub seconds: f64,
    /// Megabytes that crossed worker-subprocess pipes.
    pub pipe_mb: f64,
    /// Supersteps executed.
    pub supersteps: usize,
    /// Messages routed between fragments.
    pub messages: usize,
}

/// The process-transport experiment: SSSP and CC over the traffic network,
/// each mode's in-process substrate head-to-head with the subprocess
/// transport at the same worker count.  Answer equality between the two
/// placements is asserted inside the runner (via the canonical key-sorted
/// row form), so a row is only emitted for runs that produced identical
/// answers — the latency/pipe-bytes gap is the price of process isolation,
/// not of divergent work.
pub fn run_process_transport(
    graph: &Graph,
    source: VertexId,
    workers: usize,
    workload: &str,
) -> Vec<ProcessRow> {
    use grape_core::config::EngineMode;
    use grape_core::output_delta::DeltaOutput;
    use grape_core::transport::TransportSpec;

    /// Everything a cell shares with its in-process twin: only the
    /// transport placement differs between the two runs being compared.
    struct Cell<'a> {
        mode: EngineMode,
        workers: usize,
        workload: &'a str,
    }

    fn cell<P: DeltaOutput>(
        program: &P,
        query: &P::Query,
        frag: &Fragmentation,
        ctx: &Cell<'_>,
        spec: TransportSpec,
        baseline: &mut Option<String>,
    ) -> ProcessRow {
        let Cell {
            mode,
            workers,
            workload,
        } = *ctx;
        let session = GrapeSession::builder()
            .workers(workers)
            .mode(mode)
            .transport(spec)
            .build()
            .expect("process-transport session");
        let run = session
            .run(frag, program, query)
            .expect("process-transport run");
        let answer =
            serde_json::to_string(&program.canonical(query, &run.output)).expect("canonical rows");
        match baseline {
            None => *baseline = Some(answer),
            Some(base) => assert_eq!(
                &answer,
                base,
                "{} over {} diverges from the in-process answer ({mode:?})",
                program.name(),
                spec.name()
            ),
        }
        ProcessRow {
            query: program.name().to_string(),
            workload: workload.to_string(),
            mode: format!("{mode:?}").to_lowercase(),
            transport: spec.name().to_string(),
            workers,
            seconds: run.metrics.seconds(),
            pipe_mb: run.metrics.pipe_bytes as f64 / (1024.0 * 1024.0),
            supersteps: run.metrics.supersteps,
            messages: run.metrics.total_messages,
        }
    }

    let frag = partition(graph, workers);
    let undirected = graph.to_undirected();
    let cc_frag = partition(&undirected, workers);
    let sssp_query = SsspQuery::new(source);
    let mut rows = Vec::new();
    for mode in [EngineMode::Sync, EngineMode::Async] {
        let in_process = match mode {
            EngineMode::Sync => TransportSpec::Barrier,
            EngineMode::Async => TransportSpec::Channel,
        };
        let specs = [in_process, TransportSpec::Process { workers }];
        let ctx = Cell {
            mode,
            workers,
            workload,
        };
        let mut sssp_answer = None;
        for spec in specs {
            rows.push(cell(
                &Sssp,
                &sssp_query,
                &frag,
                &ctx,
                spec,
                &mut sssp_answer,
            ));
        }
        let mut cc_answer = None;
        for spec in specs {
            rows.push(cell(&Cc, &CcQuery, &cc_frag, &ctx, spec, &mut cc_answer));
        }
    }
    rows
}

/// A [`ProcessRow`] tagged with its experiment and scale — the record of
/// the `BENCH_process_transport.json` baseline.
#[derive(Debug, Clone, Serialize)]
pub struct ProcessExport {
    /// Experiment id (`process_transport`).
    pub experiment: String,
    /// Workload scale (`small`, `medium`, `large`).
    pub scale: String,
    /// Query class.
    pub query: String,
    /// Workload name.
    pub workload: String,
    /// Engine mode.
    pub mode: String,
    /// Transport name.
    pub transport: String,
    /// Engine workers / subprocess count.
    pub workers: usize,
    /// Response time in seconds.
    pub seconds: f64,
    /// Megabytes over worker pipes.
    pub pipe_mb: f64,
    /// Supersteps executed.
    pub supersteps: usize,
    /// Messages routed.
    pub messages: usize,
}

/// Formats process-transport rows as JSON Lines.
pub fn format_process_json(experiment: &str, scale: &str, rows: &[ProcessRow]) -> String {
    let mut out = String::new();
    for row in rows {
        let export = ProcessExport {
            experiment: experiment.to_string(),
            scale: scale.to_string(),
            query: row.query.clone(),
            workload: row.workload.clone(),
            mode: row.mode.clone(),
            transport: row.transport.clone(),
            workers: row.workers,
            seconds: row.seconds,
            pipe_mb: row.pipe_mb,
            supersteps: row.supersteps,
            messages: row.messages,
        };
        out.push_str(&serde_json::to_string(&export).expect("ProcessExport serializes"));
        out.push('\n');
    }
    out
}

/// Formats process-transport rows as an aligned text table.
pub fn format_process_table(title: &str, rows: &[ProcessRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!("\n== {title} ==\n"));
    out.push_str(&format!(
        "{:<8} {:<16} {:<6} {:<9} {:>7} {:>10} {:>9} {:>10} {:>9}\n",
        "query",
        "workload",
        "mode",
        "transport",
        "workers",
        "time (s)",
        "pipe (MB)",
        "supersteps",
        "messages"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<8} {:<16} {:<6} {:<9} {:>7} {:>10.4} {:>9.3} {:>10} {:>9}\n",
            r.query,
            r.workload,
            r.mode,
            r.transport,
            r.workers,
            r.seconds,
            r.pipe_mb,
            r.supersteps,
            r.messages
        ));
    }
    out
}

/// A [`RunRow`] tagged with the experiment (table/figure) and scale it came
/// from — the machine-readable record emitted by `experiments --format
/// json|csv`, one per (algorithm, system, scale) run, so figures can be
/// regenerated and regressions tracked.
#[derive(Debug, Clone, Serialize)]
pub struct ExportRow {
    /// Experiment id, e.g. `table1` or `fig6_sssp`.
    pub experiment: String,
    /// Workload scale (`small`, `medium`, `large`).
    pub scale: String,
    /// Query class (sssp, cc, sim, subiso, cf).
    pub query: String,
    /// Workload name.
    pub workload: String,
    /// System measured.
    pub system: String,
    /// Number of workers `n`.
    pub workers: usize,
    /// Response time in seconds.
    pub seconds: f64,
    /// Communication volume in megabytes.
    pub comm_mb: f64,
    /// Supersteps executed.
    pub supersteps: usize,
    /// Messages shipped.
    pub messages: usize,
    /// `PEval` invocations (see [`RunRow::peval_calls`]).
    pub peval_calls: usize,
}

impl ExportRow {
    /// Tags a measured row with its experiment and scale.
    pub fn new(experiment: &str, scale: &str, row: &RunRow) -> Self {
        ExportRow {
            experiment: experiment.to_string(),
            scale: scale.to_string(),
            query: row.query.clone(),
            workload: row.workload.clone(),
            system: row.system.clone(),
            workers: row.workers,
            seconds: row.seconds,
            comm_mb: row.comm_mb,
            supersteps: row.supersteps,
            messages: row.messages,
            peval_calls: row.peval_calls,
        }
    }
}

/// The CSV header matching [`format_rows_csv`].
pub const CSV_HEADER: &str =
    "experiment,scale,query,workload,system,workers,seconds,comm_mb,supersteps,messages,peval_calls";

/// Formats rows as JSON Lines — one self-describing object per run.
pub fn format_rows_json(experiment: &str, scale: &str, rows: &[RunRow]) -> String {
    let mut out = String::new();
    for row in rows {
        let export = ExportRow::new(experiment, scale, row);
        out.push_str(&serde_json::to_string(&export).expect("ExportRow serializes"));
        out.push('\n');
    }
    out
}

/// Formats rows as CSV records (no header; see [`CSV_HEADER`]).  Fields are
/// simple identifiers and numbers, except system names, which may contain
/// spaces/parentheses and are therefore quoted.
pub fn format_rows_csv(experiment: &str, scale: &str, rows: &[RunRow]) -> String {
    let mut out = String::new();
    for row in rows {
        out.push_str(&format!(
            "{},{},{},{},\"{}\",{},{:.6},{:.6},{},{},{}\n",
            experiment,
            scale,
            row.query,
            row.workload,
            row.system.replace('"', "\"\""),
            row.workers,
            row.seconds,
            row.comm_mb,
            row.supersteps,
            row.messages,
            row.peval_calls
        ));
    }
    out
}

/// Formats a slice of rows as an aligned text table (what the `experiments`
/// binary prints for every table/figure).
pub fn format_table(title: &str, rows: &[RunRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!("\n== {title} ==\n"));
    out.push_str(&format!(
        "{:<10} {:<16} {:<20} {:>3} {:>12} {:>12} {:>10} {:>10} {:>7}\n",
        "query",
        "workload",
        "system",
        "n",
        "time (s)",
        "comm (MB)",
        "supersteps",
        "messages",
        "pevals"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<10} {:<16} {:<20} {:>3} {:>12.4} {:>12.4} {:>10} {:>10} {:>7}\n",
            r.query,
            r.workload,
            r.system,
            r.workers,
            r.seconds,
            r.comm_mb,
            r.supersteps,
            r.messages,
            r.peval_calls
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::{self, Scale};

    #[test]
    fn all_systems_produce_rows_for_sssp() {
        let g = workloads::traffic(Scale::Small);
        for system in System::all() {
            let row = run_sssp(system, &g, 0, 2, "traffic");
            assert_eq!(row.query, "sssp");
            assert!(row.seconds >= 0.0);
            assert!(row.supersteps >= 1);
        }
    }

    #[test]
    fn grape_ships_less_than_vertex_centric_on_traffic_sssp() {
        let g = workloads::traffic(Scale::Small);
        let grape = run_sssp(System::Grape, &g, 0, 4, "traffic");
        let vertex = run_sssp(System::VertexCentric, &g, 0, 4, "traffic");
        assert!(
            grape.comm_mb < vertex.comm_mb,
            "{} vs {}",
            grape.comm_mb,
            vertex.comm_mb
        );
        assert!(grape.supersteps < vertex.supersteps);
    }

    #[test]
    fn incremental_rows_come_in_pairs() {
        let g = workloads::traffic(Scale::Small);
        let delta = workloads::insertion_delta(&g, 16, 1);
        let rows = run_incremental_sssp(&g, &delta, 0, 2, "traffic");
        assert_eq!(rows.len(), 2);
        let incr = rows
            .iter()
            .find(|r| r.system == "GRAPE (incremental)")
            .unwrap();
        let full = rows
            .iter()
            .find(|r| r.system == "GRAPE (recompute)")
            .unwrap();
        assert_eq!(incr.query, "sssp");
        // The whole point: refreshing from retained partials ships less than
        // recomputing from scratch.
        assert!(
            incr.messages <= full.messages,
            "incremental {} vs recompute {}",
            incr.messages,
            full.messages
        );
    }

    #[test]
    fn table_formatting_contains_all_rows() {
        let g = workloads::livejournal(Scale::Small);
        let rows = vec![run_cc(System::Grape, &g, 2, "livejournal")];
        let table = format_table("test", &rows);
        assert!(table.contains("GRAPE"));
        assert!(table.contains("livejournal"));
    }

    #[test]
    fn json_rows_are_one_parsable_object_per_run() {
        let g = workloads::traffic(Scale::Small);
        let rows = vec![
            run_sssp(System::Grape, &g, 0, 2, "traffic"),
            run_sssp(System::VertexCentric, &g, 0, 2, "traffic"),
        ];
        let json = format_rows_json("table1", "small", &rows);
        let lines: Vec<&str> = json.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            let value: serde::Value = serde_json::from_str(line).expect("valid JSON");
            assert_eq!(
                value.get_field("experiment").and_then(|v| v.as_str()),
                Some("table1")
            );
            assert_eq!(
                value.get_field("scale").and_then(|v| v.as_str()),
                Some("small")
            );
            assert!(value.get_field("supersteps").is_some());
            assert!(value.get_field("seconds").is_some());
        }
    }

    #[test]
    fn csv_rows_match_the_header_arity() {
        let g = workloads::traffic(Scale::Small);
        let rows = vec![run_cc(System::Grape, &g, 2, "traffic")];
        let csv = format_rows_csv("fig6_cc", "small", &rows);
        let header_fields = CSV_HEADER.split(',').count();
        for line in csv.lines() {
            assert_eq!(line.split(',').count(), header_fields, "line: {line}");
            assert!(line.starts_with("fig6_cc,small,cc,traffic,"));
        }
    }
}
