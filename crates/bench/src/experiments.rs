//! Per-table / per-figure experiment drivers (the experiment index of
//! DESIGN.md §4).  Each function returns the rows of the corresponding paper
//! artifact; the `experiments` binary prints them, the Criterion benches time
//! the underlying runners.

use crate::runner::{
    run_cc, run_cf, run_incremental_cc, run_incremental_cf, run_incremental_sim,
    run_incremental_sssp, run_incremental_subiso, run_process_transport,
    run_refresh_comparison_sssp, run_rehydrate_latency, run_serving, run_serving_scaling,
    run_serving_watchers, run_sim, run_sim_ni, run_sim_optimized, run_sssp, run_subiso, ProcessRow,
    RehydrateRow, RunRow, ScalingRow, System, WatcherRow,
};
use crate::workloads::{self, Scale};

/// The worker counts swept in Figures 6 and 8 (the paper uses 4..24 physical
/// machines; we sweep threads).
pub fn worker_counts(scale: Scale) -> Vec<usize> {
    match scale {
        Scale::Small => vec![2, 4],
        Scale::Medium => vec![1, 2, 4, 8],
        Scale::Large => vec![4, 8, 16],
    }
}

/// Table 1: SSSP over traffic on all systems at the largest worker count.
pub fn table1(scale: Scale) -> Vec<RunRow> {
    let g = workloads::traffic(scale);
    let n = *worker_counts(scale).last().unwrap();
    System::all()
        .iter()
        .map(|&s| run_sssp(s, &g, 0, n, "traffic"))
        .collect()
}

/// Figures 6(a)–(c) and 8(a)–(c): SSSP time / communication vs `n` on the
/// three graph datasets.
pub fn fig6_sssp(scale: Scale) -> Vec<RunRow> {
    let datasets = [
        ("traffic", workloads::traffic(scale)),
        ("livejournal", workloads::livejournal(scale)),
        ("dbpedia", workloads::dbpedia(scale)),
    ];
    let mut rows = Vec::new();
    for (name, g) in &datasets {
        for &n in &worker_counts(scale) {
            for system in System::all() {
                rows.push(run_sssp(system, g, 0, n, name));
            }
        }
    }
    rows
}

/// Figures 6(d)–(f) and 8(d)–(f): CC vs `n` on the three graph datasets.
pub fn fig6_cc(scale: Scale) -> Vec<RunRow> {
    let datasets = [
        ("traffic", workloads::traffic(scale)),
        ("livejournal", workloads::livejournal(scale).to_undirected()),
        ("dbpedia", workloads::dbpedia(scale).to_undirected()),
    ];
    let mut rows = Vec::new();
    for (name, g) in &datasets {
        for &n in &worker_counts(scale) {
            for system in System::all() {
                rows.push(run_cc(system, g, n, name));
            }
        }
    }
    rows
}

/// Figures 6(g)–(h) and 8(g)–(h): Sim vs `n` on liveJournal and DBpedia.
pub fn fig6_sim(scale: Scale) -> Vec<RunRow> {
    let datasets = [
        ("livejournal", workloads::livejournal(scale)),
        ("dbpedia", workloads::dbpedia(scale)),
    ];
    let mut rows = Vec::new();
    for (name, g) in &datasets {
        let pattern = workloads::sim_pattern(g, scale, 0x51);
        for &n in &worker_counts(scale) {
            for system in System::all() {
                rows.push(run_sim(system, g, &pattern, n, name));
            }
        }
    }
    rows
}

/// Figures 6(i)–(j) and 8(i)–(j): SubIso vs `n` on liveJournal and DBpedia.
pub fn fig6_subiso(scale: Scale) -> Vec<RunRow> {
    let datasets = [
        ("livejournal", workloads::livejournal(scale)),
        ("dbpedia", workloads::dbpedia(scale)),
    ];
    let mut rows = Vec::new();
    for (name, g) in &datasets {
        let pattern = workloads::subiso_pattern(g, scale, 0x52);
        for &n in &worker_counts(scale) {
            for system in System::all() {
                rows.push(run_subiso(system, g, &pattern, n, name));
            }
        }
    }
    rows
}

/// Figures 6(k)–(l) and 8(k)–(l): CF vs `n` with 90% and 50% training sets.
pub fn fig6_cf(scale: Scale) -> Vec<RunRow> {
    let mut rows = Vec::new();
    for (name, fraction) in [("movielens-90", 0.9), ("movielens-50", 0.5)] {
        let data = workloads::movielens(scale, fraction);
        for &n in &worker_counts(scale) {
            for system in System::all() {
                rows.push(run_cf(system, &data, 6, n, name));
            }
        }
    }
    rows
}

/// Figure 7(a), Exp-2: incremental GRAPE vs the non-incremental GRAPE_NI for
/// Sim over liveJournal.
pub fn fig7_incremental(scale: Scale) -> Vec<RunRow> {
    let g = workloads::livejournal(scale);
    let pattern = workloads::sim_pattern(&g, scale, 0x71);
    let mut rows = Vec::new();
    for &n in &worker_counts(scale) {
        rows.push(run_sim(System::Grape, &g, &pattern, n, "livejournal"));
        rows.push(run_sim_ni(&g, &pattern, n, "livejournal"));
    }
    rows
}

/// Figure 7(b), Exp-3: the speedup of the index-optimized sequential Sim is
/// preserved by GRAPE parallelization.
pub fn fig7_optimization(scale: Scale) -> Vec<RunRow> {
    let g = workloads::livejournal(scale);
    let pattern = workloads::sim_pattern(&g, scale, 0x72);
    let mut rows = Vec::new();
    for &n in &worker_counts(scale) {
        rows.push(run_sim(System::Grape, &g, &pattern, n, "livejournal"));
        rows.push(run_sim_optimized(&g, &pattern, n, "livejournal"));
    }
    rows
}

/// The prepared-query update experiment (the repo's extension of Exp-2 to
/// *whole-computation* incrementality): for each of the **five** query
/// classes, prepare `Q(G)`, apply one `ΔG` batch, and compare the refresh
/// with a full recompute on the updated graph.  SSSP/CC take insertions
/// (monotone, `GRAPE (incremental)` rows) and Sim deletions (its monotone
/// direction); CF takes a burst of new ratings in one catalog segment and
/// SubIso a deletion batch — both non-monotone, refreshed by the bounded
/// path (`GRAPE (bounded)` rows, `peval_calls == |damaged|`).  Update
/// latency is the `seconds` column, messages saved is the difference of the
/// `messages` columns.
pub fn incremental(scale: Scale) -> Vec<RunRow> {
    let n = *worker_counts(scale).last().unwrap();
    let batch = workloads::delta_batch_size(scale);
    let mut rows = Vec::new();

    let traffic = workloads::traffic(scale);
    let delta = workloads::insertion_delta(&traffic, batch, 0xD1);
    rows.extend(run_incremental_sssp(&traffic, &delta, 0, n, "traffic"));

    let lj_undirected = workloads::livejournal(scale).to_undirected();
    let delta = workloads::insertion_delta(&lj_undirected, batch, 0xD2);
    rows.extend(run_incremental_cc(&lj_undirected, &delta, n, "livejournal"));

    let lj = workloads::livejournal(scale);
    let pattern = workloads::sim_pattern(&lj, scale, 0xD3);
    let delta = workloads::deletion_delta(&lj, batch, 0xD4);
    rows.extend(run_incremental_sim(&lj, &pattern, &delta, n, "livejournal"));

    // CF: new ratings confined to one catalog segment of a segmented
    // movielens; fragment count = segment multiple so the component-closed
    // frontier stays segmental.
    let (ratings, segments, users) = workloads::segmented_movielens(scale, 2 * n);
    let (lo, hi) = segments[0];
    let delta = workloads::segment_rating_delta(lo, hi, users, batch.min(64), 0xD5);
    rows.extend(run_incremental_cf(&ratings, &delta, 6, n, "movielens-seg"));

    // SubIso: a deletion batch on the knowledge graph; the pattern-radius
    // halo bounds the re-matching.
    let db = workloads::dbpedia(scale);
    let pattern = workloads::subiso_pattern(&db, scale, 0xD6);
    let delta = workloads::deletion_delta(&db, batch.min(16), 0xD7);
    rows.extend(run_incremental_subiso(&db, &pattern, &delta, n, "dbpedia"));

    rows
}

/// The `recompute vs bounded vs monotone` comparison: one prepared SSSP
/// query over the regional traffic network absorbs a batch of new road
/// segments (monotone path), then a batch of road closures confined to one
/// region (bounded path, `peval_calls < num_fragments`), priced against a
/// full recompute of the final graph.
pub fn refresh_comparison(scale: Scale) -> Vec<RunRow> {
    let n = *worker_counts(scale).last().unwrap();
    let batch = workloads::delta_batch_size(scale);
    let regions = n.max(2);
    let g = workloads::regional_traffic(scale, regions);
    let region = workloads::regional_size(scale);
    // New road segments, then road closures, both inside the source's
    // region — kept regional so each path's footprint stays visible (and
    // reachable from the source, so both refreshes do real work).
    let insert_delta = workloads::ranged_insertion_delta(0, region, batch.min(64), 0xD9);
    let delete_delta = workloads::ranged_deletion_delta(&g, 0, region, batch.min(64), 0xD8);
    run_refresh_comparison_sssp(&g, &insert_delta, &delete_delta, 0, n, "regional-traffic")
}

/// The **process-transport** experiment (the location-transparency claim):
/// SSSP and CC over the traffic network, each engine mode's in-process
/// substrate head-to-head with `TransportSpec::Process` at the same worker
/// count — per-run latency plus the bytes that crossed the worker pipes.
/// Answer equality between the two placements is asserted inside the
/// runner before a row is emitted.
///
/// The checked-in `BENCH_process_transport.json` baseline records the gap
/// on the CI machine (single-CPU container: the subprocess cells pay the
/// pipe serialization without gaining real parallelism, so the checked-in
/// overhead is an upper bound).
pub fn process_transport(scale: Scale) -> Vec<ProcessRow> {
    let n = *worker_counts(scale).last().unwrap();
    let g = workloads::traffic(scale);
    run_process_transport(&g, 0, n, "traffic")
}

/// The prepared-query **serving** experiment (the ROADMAP's
/// "server loop multiplexing many `PreparedQuery` handles over one delta
/// stream"): `K` standing SSSP queries with distinct sources over the
/// traffic network absorb a stream of road-segment insertion batches, once
/// through a `GrapeServer` (one `apply_delta` per `ΔG`, shared
/// `Arc<Fragment>` storage) and once as `K` independent prepared handles
/// (`K` `apply_delta` calls per `ΔG`).  The `seconds` column is the mean
/// per-delta latency of each regime; the refresh work (messages, PEval
/// calls) is identical by construction, so the gap is pure partition-layer
/// amortization.
pub fn serving(scale: Scale) -> Vec<RunRow> {
    let n = *worker_counts(scale).last().unwrap();
    let g = workloads::traffic(scale);
    let k = match scale {
        Scale::Small => 4,
        Scale::Medium => 8,
        Scale::Large => 16,
    };
    let v = g.num_vertices() as u64;
    let sources: Vec<u64> = (0..k).map(|i| (i as u64 * 17) % v).collect();
    let batch = workloads::delta_batch_size(scale).min(32);
    let deltas: Vec<grape_graph::delta::GraphDelta> = (0..6)
        .map(|i| workloads::insertion_delta(&g, batch, 0xE0 + i))
        .collect();
    run_serving(&g, &sources, &deltas, n, "traffic")
}

/// The serving-**scaling** experiment (ROADMAP: "parallel refresh fan-out +
/// delta pipelining"): `K` standing SSSP queries on one `GrapeServer`,
/// swept over refresh fan-out widths {1, 2, 4} and the two arrival
/// patterns (`stream` = one `apply` per delta, `batch` = pipelined
/// `apply_batch` chunks).  The engine runs a single worker per refresh so
/// the fan-out width is the only concurrency knob; each cell reports the
/// per-delta latency distribution (p50/p99/mean) and sustained deltas/sec.
/// Answer equality across every cell — and against a from-scratch
/// recompute — is asserted inside the runner.
///
/// The checked-in `BENCH_serving_scaling.json` baseline records the curve
/// on the CI machine; on a single-CPU host the widths collapse to the same
/// latency (the fan-out still runs, the hardware just serializes it).
pub fn serving_scaling(scale: Scale) -> Vec<ScalingRow> {
    let g = workloads::traffic(scale);
    let k = match scale {
        Scale::Small => 8,
        Scale::Medium => 12,
        Scale::Large => 24,
    };
    let v = g.num_vertices() as u64;
    let sources: Vec<u64> = (0..k).map(|i| (i as u64 * 23 + 1) % v).collect();
    let batch = workloads::delta_batch_size(scale).min(32);
    let deltas: Vec<grape_graph::delta::GraphDelta> = (0..8)
        .map(|i| workloads::insertion_delta(&g, batch, 0xF0 + i))
        .collect();
    run_serving_scaling(&g, &sources, &deltas, &[1, 2, 4], 4, "traffic")
}

/// The serving-**watchers** experiment (the push-based answer-delta
/// subsystem): `K` standing SSSP queries on one `GrapeServer`, each watched
/// by `W` subscribers, absorbing a stream of insertion batches.  Each cell
/// reports total bytes pushed (`W ×` the per-commit `OutputDelta`s) against
/// the bytes the same `W` clients would pull by polling the full answer
/// after every commit.  Two pins run inside the runner: pushed rows per
/// commit equal the exact answer diff (O(|change|), never O(|answer|)),
/// and folding the pushed stream over the initial answer reproduces
/// `output()` byte-for-byte, identically across all `W` cells.
///
/// The checked-in `BENCH_serving_watchers.json` baseline records the
/// byte-economics curve on the CI machine (see `docs/baselines/README.md`:
/// single-CPU-container numbers).
pub fn serving_watchers(scale: Scale) -> Vec<WatcherRow> {
    let g = workloads::traffic(scale);
    let k = match scale {
        Scale::Small => 4,
        Scale::Medium => 8,
        Scale::Large => 12,
    };
    let v = g.num_vertices() as u64;
    let sources: Vec<u64> = (0..k).map(|i| (i as u64 * 29 + 3) % v).collect();
    let batch = workloads::delta_batch_size(scale).min(24);
    let deltas: Vec<grape_graph::delta::GraphDelta> = (0..6)
        .map(|i| workloads::insertion_delta(&g, batch, 0xB0 + i))
        .collect();
    run_serving_watchers(&g, &sources, &deltas, &[1, 2, 4], 4, "traffic")
}

/// The rehydrate-latency experiment (the tiered spill store): one standing
/// SSSP query cycles through evict → delta → rehydrate, once under the
/// tiered store (base + delta-encoded increments, default compaction) and
/// once with compaction threshold 0 (`wholesale`, the full-snapshot cost
/// profile).  The runner pins the store's contract — post-base evictions
/// write O(|ΔG|) bytes, the chain stays bounded, rehydrate latency stays
/// flat within 2× as the evict count grows, answers equal a never-evicted
/// twin — and the rows record the spill-byte and latency curves the
/// checked-in `BENCH_rehydrate_latency.json` baseline tracks.
pub fn rehydrate_latency(scale: Scale) -> Vec<RehydrateRow> {
    // Regional traffic with range fragments aligned to the regions, and
    // every delta confined to region 0: each round's changes stay inside
    // one fragment, which is what makes a tiered increment O(|ΔG|)
    // instead of a re-spill of everything.
    let regions = 8;
    let g = workloads::regional_traffic(scale, regions);
    let region = g.num_vertices() as u64 / regions as u64;
    let rounds = 8;
    let batch = workloads::delta_batch_size(scale).min(16);
    let deltas: Vec<grape_graph::delta::GraphDelta> = (0..rounds)
        .map(|i| workloads::ranged_insertion_delta(0, region, batch, 0xD0 + i))
        .collect();
    run_rehydrate_latency(&g, 1, &deltas, regions, "regional_traffic")
}

/// Figure 8 is the communication view of the Figure 6 runs; the same rows are
/// reused (every row already carries `comm_mb`).
pub fn fig8_comm(scale: Scale) -> Vec<RunRow> {
    let mut rows = Vec::new();
    rows.extend(fig6_sssp(scale));
    rows.extend(fig6_cc(scale));
    rows.extend(fig6_sim(scale));
    rows.extend(fig6_subiso(scale));
    rows.extend(fig6_cf(scale));
    rows
}

/// Figure 9: scalability over the synthetic size sweep at the largest worker
/// count (SSSP, CC, Sim, SubIso).
pub fn fig9_scalability(scale: Scale) -> Vec<RunRow> {
    let n = *worker_counts(scale).last().unwrap();
    let mut rows = Vec::new();
    for step in 0..5 {
        let g = workloads::synthetic(step, scale);
        let name = format!("synthetic-{}", step + 1);
        for system in System::all() {
            rows.push(run_sssp(system, &g, 0, n, &name));
            rows.push(run_cc(system, &g.to_undirected(), n, &name));
        }
        let sim_pattern = workloads::sim_pattern(&g, scale, 0x90 + step as u64);
        let subiso_pattern = workloads::subiso_pattern(&g, scale, 0xA0 + step as u64);
        for system in System::all() {
            rows.push(run_sim(system, &g, &sim_pattern, n, &name));
            rows.push(run_subiso(system, &g, &subiso_pattern, n, &name));
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_one_row_per_system() {
        let rows = table1(Scale::Small);
        assert_eq!(rows.len(), 3);
        assert!(rows.iter().any(|r| r.system == "GRAPE"));
    }

    #[test]
    fn fig7_incremental_compares_two_variants() {
        let rows = fig7_incremental(Scale::Small);
        assert!(rows.iter().any(|r| r.system == "GRAPE_NI"));
        assert!(rows.iter().any(|r| r.system == "GRAPE"));
    }

    #[test]
    fn worker_counts_are_increasing() {
        let counts = worker_counts(Scale::Medium);
        assert!(counts.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn incremental_emits_a_pair_per_query_class() {
        let rows = incremental(Scale::Small);
        assert_eq!(rows.len(), 10, "five query classes, two rows each");
        for query in ["sssp", "cc", "sim"] {
            let pair: Vec<_> = rows.iter().filter(|r| r.query == query).collect();
            assert_eq!(pair.len(), 2, "{query}");
            assert!(pair.iter().any(|r| r.system == "GRAPE (incremental)"));
            assert!(pair.iter().any(|r| r.system == "GRAPE (recompute)"));
        }
        // CF and SubIso updates are non-monotone: their refresh rows record
        // the bounded path (never a silent full re-preparation for CF's
        // segment-local burst).
        let cf: Vec<_> = rows.iter().filter(|r| r.query == "cf").collect();
        assert_eq!(cf.len(), 2);
        assert!(cf.iter().any(|r| r.system == "GRAPE (bounded)"));
        assert!(cf.iter().any(|r| r.system == "GRAPE (recompute)"));
        let subiso: Vec<_> = rows.iter().filter(|r| r.query == "subiso").collect();
        assert_eq!(subiso.len(), 2);
        assert!(subiso
            .iter()
            .any(|r| r.system == "GRAPE (bounded)" || r.system == "GRAPE (full)"));
        assert!(subiso.iter().any(|r| r.system == "GRAPE (recompute)"));
    }

    #[test]
    fn serving_prices_the_server_against_independent_handles() {
        let rows = serving(Scale::Small);
        assert_eq!(rows.len(), 2);
        let server = rows
            .iter()
            .find(|r| r.system.starts_with("GRAPE (server"))
            .expect("server row");
        let independent = rows
            .iter()
            .find(|r| r.system.starts_with("GRAPE (independent"))
            .expect("independent row");
        // The stream is insertion-only, so every refresh on both sides is
        // monotone: zero PEval calls anywhere.
        assert_eq!(server.peval_calls, 0);
        assert_eq!(independent.peval_calls, 0);
        // (Exact message counts can differ between the legs under the
        // barrier-free runtime's scheduling, so only the PEval-free shape
        // is pinned here; answer equality is asserted inside run_serving.)
    }

    #[test]
    fn serving_watchers_pushes_less_than_polling() {
        let rows = serving_watchers(Scale::Small);
        assert_eq!(rows.len(), 3, "one row per watcher count");
        for r in &rows {
            // The asserts inside the runner pin O(|change|) and replay
            // equality; the row-level claim is the byte economics.
            assert!(r.pushed_bytes <= r.polled_bytes, "{r:?}");
            assert!(r.push_ratio <= 1.0, "{r:?}");
        }
        // Pushed bytes scale linearly with the watcher count (same deltas,
        // W copies): W=4 pushes exactly 4x the W=1 bytes.
        assert_eq!(rows[0].watchers, 1);
        assert_eq!(rows[2].watchers, 4);
        assert_eq!(rows[2].pushed_bytes, 4 * rows[0].pushed_bytes);
    }

    #[test]
    fn rehydrate_latency_covers_both_store_flavors() {
        let rows = rehydrate_latency(Scale::Small);
        assert_eq!(rows.len(), 16, "8 rounds x 2 store flavors");
        let tiered: Vec<&RehydrateRow> = rows.iter().filter(|r| r.store == "tiered").collect();
        let wholesale: Vec<&RehydrateRow> =
            rows.iter().filter(|r| r.store == "wholesale").collect();
        assert_eq!(tiered.len(), 8);
        assert_eq!(wholesale.len(), 8);
        // The runner pins O(|ΔG|) increments, bounded chains, flat latency
        // and twin equality; the row-level claim is the byte curve:
        // increment rounds (chain_len > 0) are cheap, base rounds (round 0
        // and compaction folds) pay the full snapshot — which is every
        // wholesale round.
        let tiered_base = tiered[0].spill_bytes;
        for r in &tiered[1..] {
            if r.chain_len > 0 {
                assert!(
                    r.spill_bytes < tiered_base / 2,
                    "tiered round {} spilled {} B against a {} B base",
                    r.round,
                    r.spill_bytes,
                    tiered_base
                );
            }
        }
        assert!(
            tiered[1..].iter().any(|r| r.chain_len == 0),
            "8 rounds at the default threshold must fold the chain at least once"
        );
        for r in &wholesale[1..] {
            assert!(
                r.spill_bytes >= tiered_base / 2,
                "wholesale round {} spilled only {} B — it must rewrite a base",
                r.round,
                r.spill_bytes
            );
            assert_eq!(r.chain_len, 0, "wholesale folds the chain every round");
        }
    }

    #[test]
    fn refresh_comparison_emits_all_three_paths() {
        let rows = refresh_comparison(Scale::Small);
        assert_eq!(rows.len(), 3);
        let systems: Vec<&str> = rows.iter().map(|r| r.system.as_str()).collect();
        assert!(systems.contains(&"GRAPE (monotone)"));
        assert!(systems.contains(&"GRAPE (bounded)"));
        assert!(systems.contains(&"GRAPE (recompute)"));
        // The decision table's locality claim, in PEval calls: the monotone
        // path never re-roots, the bounded path re-roots only the damaged
        // region's fragments, the recompute re-roots everything.
        let pevals_of = |s: &str| rows.iter().find(|r| r.system == s).unwrap().peval_calls;
        assert_eq!(pevals_of("GRAPE (monotone)"), 0);
        assert!(pevals_of("GRAPE (bounded)") > 0);
        assert!(pevals_of("GRAPE (bounded)") < pevals_of("GRAPE (recompute)"));
    }
}
