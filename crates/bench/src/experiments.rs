//! Per-table / per-figure experiment drivers (the experiment index of
//! DESIGN.md §4).  Each function returns the rows of the corresponding paper
//! artifact; the `experiments` binary prints them, the Criterion benches time
//! the underlying runners.

use crate::runner::{
    run_cc, run_cf, run_incremental_cc, run_incremental_sim, run_incremental_sssp, run_sim,
    run_sim_ni, run_sim_optimized, run_sssp, run_subiso, RunRow, System,
};
use crate::workloads::{self, Scale};

/// The worker counts swept in Figures 6 and 8 (the paper uses 4..24 physical
/// machines; we sweep threads).
pub fn worker_counts(scale: Scale) -> Vec<usize> {
    match scale {
        Scale::Small => vec![2, 4],
        Scale::Medium => vec![1, 2, 4, 8],
        Scale::Large => vec![4, 8, 16],
    }
}

/// Table 1: SSSP over traffic on all systems at the largest worker count.
pub fn table1(scale: Scale) -> Vec<RunRow> {
    let g = workloads::traffic(scale);
    let n = *worker_counts(scale).last().unwrap();
    System::all()
        .iter()
        .map(|&s| run_sssp(s, &g, 0, n, "traffic"))
        .collect()
}

/// Figures 6(a)–(c) and 8(a)–(c): SSSP time / communication vs `n` on the
/// three graph datasets.
pub fn fig6_sssp(scale: Scale) -> Vec<RunRow> {
    let datasets = [
        ("traffic", workloads::traffic(scale)),
        ("livejournal", workloads::livejournal(scale)),
        ("dbpedia", workloads::dbpedia(scale)),
    ];
    let mut rows = Vec::new();
    for (name, g) in &datasets {
        for &n in &worker_counts(scale) {
            for system in System::all() {
                rows.push(run_sssp(system, g, 0, n, name));
            }
        }
    }
    rows
}

/// Figures 6(d)–(f) and 8(d)–(f): CC vs `n` on the three graph datasets.
pub fn fig6_cc(scale: Scale) -> Vec<RunRow> {
    let datasets = [
        ("traffic", workloads::traffic(scale)),
        ("livejournal", workloads::livejournal(scale).to_undirected()),
        ("dbpedia", workloads::dbpedia(scale).to_undirected()),
    ];
    let mut rows = Vec::new();
    for (name, g) in &datasets {
        for &n in &worker_counts(scale) {
            for system in System::all() {
                rows.push(run_cc(system, g, n, name));
            }
        }
    }
    rows
}

/// Figures 6(g)–(h) and 8(g)–(h): Sim vs `n` on liveJournal and DBpedia.
pub fn fig6_sim(scale: Scale) -> Vec<RunRow> {
    let datasets = [
        ("livejournal", workloads::livejournal(scale)),
        ("dbpedia", workloads::dbpedia(scale)),
    ];
    let mut rows = Vec::new();
    for (name, g) in &datasets {
        let pattern = workloads::sim_pattern(g, scale, 0x51);
        for &n in &worker_counts(scale) {
            for system in System::all() {
                rows.push(run_sim(system, g, &pattern, n, name));
            }
        }
    }
    rows
}

/// Figures 6(i)–(j) and 8(i)–(j): SubIso vs `n` on liveJournal and DBpedia.
pub fn fig6_subiso(scale: Scale) -> Vec<RunRow> {
    let datasets = [
        ("livejournal", workloads::livejournal(scale)),
        ("dbpedia", workloads::dbpedia(scale)),
    ];
    let mut rows = Vec::new();
    for (name, g) in &datasets {
        let pattern = workloads::subiso_pattern(g, scale, 0x52);
        for &n in &worker_counts(scale) {
            for system in System::all() {
                rows.push(run_subiso(system, g, &pattern, n, name));
            }
        }
    }
    rows
}

/// Figures 6(k)–(l) and 8(k)–(l): CF vs `n` with 90% and 50% training sets.
pub fn fig6_cf(scale: Scale) -> Vec<RunRow> {
    let mut rows = Vec::new();
    for (name, fraction) in [("movielens-90", 0.9), ("movielens-50", 0.5)] {
        let data = workloads::movielens(scale, fraction);
        for &n in &worker_counts(scale) {
            for system in System::all() {
                rows.push(run_cf(system, &data, 6, n, name));
            }
        }
    }
    rows
}

/// Figure 7(a), Exp-2: incremental GRAPE vs the non-incremental GRAPE_NI for
/// Sim over liveJournal.
pub fn fig7_incremental(scale: Scale) -> Vec<RunRow> {
    let g = workloads::livejournal(scale);
    let pattern = workloads::sim_pattern(&g, scale, 0x71);
    let mut rows = Vec::new();
    for &n in &worker_counts(scale) {
        rows.push(run_sim(System::Grape, &g, &pattern, n, "livejournal"));
        rows.push(run_sim_ni(&g, &pattern, n, "livejournal"));
    }
    rows
}

/// Figure 7(b), Exp-3: the speedup of the index-optimized sequential Sim is
/// preserved by GRAPE parallelization.
pub fn fig7_optimization(scale: Scale) -> Vec<RunRow> {
    let g = workloads::livejournal(scale);
    let pattern = workloads::sim_pattern(&g, scale, 0x72);
    let mut rows = Vec::new();
    for &n in &worker_counts(scale) {
        rows.push(run_sim(System::Grape, &g, &pattern, n, "livejournal"));
        rows.push(run_sim_optimized(&g, &pattern, n, "livejournal"));
    }
    rows
}

/// The prepared-query update experiment (the repo's extension of Exp-2 to
/// *whole-computation* incrementality): for each query class, prepare
/// `Q(G)`, apply one `ΔG` batch in its monotone direction — insertions for
/// SSSP/CC, deletions for Sim — and compare the IncEval-only refresh with a
/// full recompute on the updated graph.  Each configuration emits two rows,
/// `GRAPE (incremental)` and `GRAPE (recompute)`; update latency is the
/// `seconds` column, messages saved is the difference of the `messages`
/// columns.
pub fn incremental(scale: Scale) -> Vec<RunRow> {
    let n = *worker_counts(scale).last().unwrap();
    let batch = workloads::delta_batch_size(scale);
    let mut rows = Vec::new();

    let traffic = workloads::traffic(scale);
    let delta = workloads::insertion_delta(&traffic, batch, 0xD1);
    rows.extend(run_incremental_sssp(&traffic, &delta, 0, n, "traffic"));

    let lj_undirected = workloads::livejournal(scale).to_undirected();
    let delta = workloads::insertion_delta(&lj_undirected, batch, 0xD2);
    rows.extend(run_incremental_cc(&lj_undirected, &delta, n, "livejournal"));

    let lj = workloads::livejournal(scale);
    let pattern = workloads::sim_pattern(&lj, scale, 0xD3);
    let delta = workloads::deletion_delta(&lj, batch, 0xD4);
    rows.extend(run_incremental_sim(&lj, &pattern, &delta, n, "livejournal"));

    rows
}

/// Figure 8 is the communication view of the Figure 6 runs; the same rows are
/// reused (every row already carries `comm_mb`).
pub fn fig8_comm(scale: Scale) -> Vec<RunRow> {
    let mut rows = Vec::new();
    rows.extend(fig6_sssp(scale));
    rows.extend(fig6_cc(scale));
    rows.extend(fig6_sim(scale));
    rows.extend(fig6_subiso(scale));
    rows.extend(fig6_cf(scale));
    rows
}

/// Figure 9: scalability over the synthetic size sweep at the largest worker
/// count (SSSP, CC, Sim, SubIso).
pub fn fig9_scalability(scale: Scale) -> Vec<RunRow> {
    let n = *worker_counts(scale).last().unwrap();
    let mut rows = Vec::new();
    for step in 0..5 {
        let g = workloads::synthetic(step, scale);
        let name = format!("synthetic-{}", step + 1);
        for system in System::all() {
            rows.push(run_sssp(system, &g, 0, n, &name));
            rows.push(run_cc(system, &g.to_undirected(), n, &name));
        }
        let sim_pattern = workloads::sim_pattern(&g, scale, 0x90 + step as u64);
        let subiso_pattern = workloads::subiso_pattern(&g, scale, 0xA0 + step as u64);
        for system in System::all() {
            rows.push(run_sim(system, &g, &sim_pattern, n, &name));
            rows.push(run_subiso(system, &g, &subiso_pattern, n, &name));
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_one_row_per_system() {
        let rows = table1(Scale::Small);
        assert_eq!(rows.len(), 3);
        assert!(rows.iter().any(|r| r.system == "GRAPE"));
    }

    #[test]
    fn fig7_incremental_compares_two_variants() {
        let rows = fig7_incremental(Scale::Small);
        assert!(rows.iter().any(|r| r.system == "GRAPE_NI"));
        assert!(rows.iter().any(|r| r.system == "GRAPE"));
    }

    #[test]
    fn worker_counts_are_increasing() {
        let counts = worker_counts(Scale::Medium);
        assert!(counts.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn incremental_emits_a_pair_per_query_class() {
        let rows = incremental(Scale::Small);
        assert_eq!(rows.len(), 6);
        for query in ["sssp", "cc", "sim"] {
            let pair: Vec<_> = rows.iter().filter(|r| r.query == query).collect();
            assert_eq!(pair.len(), 2, "{query}");
            assert!(pair.iter().any(|r| r.system == "GRAPE (incremental)"));
            assert!(pair.iter().any(|r| r.system == "GRAPE (recompute)"));
        }
    }
}
