//! Benchmark workloads: scaled-down synthetic stand-ins for the paper's
//! datasets (see DESIGN.md §3 for the substitution rationale), plus the
//! random delta batches of the prepared-query update experiment.

use grape_graph::delta::GraphDelta;
use grape_graph::generators::{bipartite_ratings, labeled_kg, power_law, road_grid, RatingData};
use grape_graph::graph::Graph;
use grape_graph::pattern::Pattern;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Workload scale: `Small` keeps Criterion benches and CI fast; `Medium` is
/// what the `experiments` binary uses to regenerate the paper's tables and
/// figures; `Large` is the CI-excluded nightly profile that checks the
/// paper's trends at millions of edges (see
/// `crates/bench/tests/nightly_large.rs`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// A few thousand vertices — seconds for the whole suite.
    Small,
    /// Tens of thousands of vertices — minutes for the whole suite.
    Medium,
    /// Hundreds of thousands of vertices, millions of edges — nightly only.
    Large,
}

impl Scale {
    /// Parses the `--scale` CLI flag value.
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "small" => Some(Scale::Small),
            "medium" | "full" => Some(Scale::Medium),
            "large" | "nightly" => Some(Scale::Large),
            _ => None,
        }
    }

    /// The flag value / machine-readable name of the scale.
    pub fn name(&self) -> &'static str {
        match self {
            Scale::Small => "small",
            Scale::Medium => "medium",
            Scale::Large => "large",
        }
    }
}

/// Stand-in for the `traffic` US road network: a grid with huge diameter.
pub fn traffic(scale: Scale) -> Graph {
    match scale {
        Scale::Small => road_grid(48, 48, 0xF00D),
        Scale::Medium => road_grid(120, 120, 0xF00D),
        Scale::Large => road_grid(700, 700, 0xF00D),
    }
}

/// Stand-in for `liveJournal`: a power-law social graph with 100 labels.
pub fn livejournal(scale: Scale) -> Graph {
    match scale {
        Scale::Small => power_law(3_000, 15_000, 100, 0xBEEF),
        Scale::Medium => power_law(20_000, 120_000, 100, 0xBEEF),
        Scale::Large => power_law(400_000, 2_400_000, 100, 0xBEEF),
    }
}

/// Stand-in for `DBpedia`: a knowledge graph with 200 node / 160 edge types.
pub fn dbpedia(scale: Scale) -> Graph {
    match scale {
        Scale::Small => labeled_kg(3_000, 12_000, 200, 160, 0xCAFE),
        Scale::Medium => labeled_kg(20_000, 80_000, 200, 160, 0xCAFE),
        Scale::Large => labeled_kg(300_000, 1_500_000, 200, 160, 0xCAFE),
    }
}

/// Stand-in for `movieLens`: a bipartite rating graph.  `training_fraction`
/// scales the number of observed ratings (the paper uses 90% and 50%).
pub fn movielens(scale: Scale, training_fraction: f64) -> RatingData {
    let (users, items, base_ratings) = match scale {
        Scale::Small => (400, 120, 6_000),
        Scale::Medium => (2_000, 600, 40_000),
        Scale::Large => (30_000, 8_000, 1_000_000),
    };
    let ratings = ((base_ratings as f64) * training_fraction).round() as usize;
    bipartite_ratings(users, items, ratings, 8, 0xD00D)
}

/// Synthetic graphs for the Fig. 9 scalability sweep; `step` indexes the
/// paper's sizes (10M,40M) … (50M,200M), scaled down by three orders of
/// magnitude (one order at `Scale::Large`).
pub fn synthetic(step: usize, scale: Scale) -> Graph {
    let factor = match scale {
        Scale::Small => 1_000,
        Scale::Medium => 5_000,
        Scale::Large => 100_000,
    };
    let vertices = (step + 1) * 10 * factor / 10;
    let edges = vertices * 4;
    power_law(vertices, edges, 50, 0xACE + step as u64)
}

/// Size of one `ΔG` batch in the prepared-query update experiment.
pub fn delta_batch_size(scale: Scale) -> usize {
    match scale {
        Scale::Small => 64,
        Scale::Medium => 512,
        Scale::Large => 8_192,
    }
}

/// A batch of `count` random weighted edge insertions between existing
/// vertices — the monotone update direction for SSSP and CC.
///
/// Insertions are *localized*: each new edge connects a random vertex to one
/// at most 32 ids away.  This models the update streams of the evolving-
/// graph setting (new road segments join nearby intersections, new social
/// edges cluster) and is what makes the incremental refresh's affected
/// region — and therefore its message bill — small relative to a recompute;
/// a batch of random long-range shortcuts would legitimately invalidate
/// distances almost everywhere.
pub fn insertion_delta(graph: &Graph, count: usize, seed: u64) -> GraphDelta {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = graph.num_vertices() as u64;
    let mut delta = GraphDelta::new();
    let mut added = 0usize;
    while added < count && n > 1 {
        let src = rng.gen_range(0..n);
        let dst = (src + 1 + rng.gen_range(0u64..32.min(n - 1))) % n;
        if src == dst {
            continue;
        }
        let weight = 1.0 + rng.gen_range(0u32..8) as f64;
        delta = delta.add_weighted_edge(src, dst, weight);
        added += 1;
    }
    delta
}

/// A batch of `count` distinct random edge deletions drawn from the existing
/// edge list — the monotone update direction for graph simulation.
pub fn deletion_delta(graph: &Graph, count: usize, seed: u64) -> GraphDelta {
    let mut rng = StdRng::seed_from_u64(seed);
    let m = graph.num_edges();
    let mut seen = std::collections::HashSet::new();
    let mut delta = GraphDelta::new();
    // Attempts are bounded: the graph may contain parallel edges, so the
    // number of distinct (src, dst) pairs can be below `count.min(m)`.
    for _ in 0..count.saturating_mul(4) {
        if seen.len() >= count.min(m) {
            break;
        }
        let idx = rng.gen_range(0..m as u64) as usize;
        let e = graph.edges()[idx];
        if seen.insert((e.src, e.dst)) {
            delta = delta.remove_edge(e.src, e.dst);
        }
    }
    delta
}

/// A pattern of the paper's Sim workload shape `|Q| = (8, 15)` (scaled to
/// (4, 7) at small scale so that the quadratic sequential oracle in the tests
/// stays fast), drawn from the labels of `graph`.
pub fn sim_pattern(graph: &Graph, scale: Scale, seed: u64) -> Pattern {
    let alphabet = graph.distinct_vertex_labels();
    let alphabet = if alphabet.len() > 1 {
        alphabet
    } else {
        vec![1]
    };
    match scale {
        Scale::Small => Pattern::random(4, 7, &alphabet, seed),
        Scale::Medium | Scale::Large => Pattern::random(8, 15, &alphabet, seed),
    }
}

/// A pattern of the paper's SubIso workload shape `|Q| = (6, 10)` (scaled to
/// (3, 4) at small scale).
pub fn subiso_pattern(graph: &Graph, scale: Scale, seed: u64) -> Pattern {
    let alphabet = graph.distinct_vertex_labels();
    let alphabet = if alphabet.len() > 1 {
        alphabet
    } else {
        vec![1]
    };
    match scale {
        Scale::Small => Pattern::random(3, 4, &alphabet, seed),
        Scale::Medium | Scale::Large => Pattern::random(6, 10, &alphabet, seed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_parse() {
        assert_eq!(Scale::parse("small"), Some(Scale::Small));
        assert_eq!(Scale::parse("medium"), Some(Scale::Medium));
        assert_eq!(Scale::parse("large"), Some(Scale::Large));
        assert_eq!(Scale::parse("nightly"), Some(Scale::Large));
        assert_eq!(Scale::parse("huge"), None);
        assert_eq!(Scale::Large.name(), "large");
    }

    #[test]
    fn insertion_delta_is_insert_only_and_sized() {
        let g = traffic(Scale::Small);
        let delta = insertion_delta(&g, 32, 7);
        assert_eq!(delta.added_edges().len(), 32);
        assert!(!delta.has_removals());
        // Deterministic per seed.
        assert_eq!(
            insertion_delta(&g, 32, 7).added_edges(),
            delta.added_edges()
        );
    }

    #[test]
    fn deletion_delta_removes_existing_distinct_edges() {
        let g = livejournal(Scale::Small);
        let delta = deletion_delta(&g, 16, 3);
        assert_eq!(delta.removed_edges().len(), 16);
        assert!(!delta.has_insertions());
        // Every removal refers to a real edge: applying must succeed.
        assert!(g.apply_delta(&delta).is_ok());
    }

    #[test]
    fn workloads_have_expected_shapes() {
        let t = traffic(Scale::Small);
        assert_eq!(t.num_vertices(), 48 * 48);
        let lj = livejournal(Scale::Small);
        assert_eq!(lj.num_vertices(), 3_000);
        assert!(lj.distinct_vertex_labels().len() > 10);
        let db = dbpedia(Scale::Small);
        assert!(db.num_edges() > 10_000);
        let ml = movielens(Scale::Small, 0.5);
        assert!(ml.graph.num_edges() <= 3_000);
    }

    #[test]
    fn synthetic_sizes_grow_with_step() {
        let a = synthetic(0, Scale::Small);
        let b = synthetic(4, Scale::Small);
        assert!(b.num_vertices() > a.num_vertices());
        assert!(b.num_edges() > a.num_edges());
    }

    #[test]
    fn patterns_fit_the_workload_shape() {
        let g = dbpedia(Scale::Small);
        let p = sim_pattern(&g, Scale::Small, 1);
        assert_eq!(p.num_nodes(), 4);
        let p2 = subiso_pattern(&g, Scale::Small, 2);
        assert_eq!(p2.num_nodes(), 3);
    }
}
