//! Benchmark workloads: scaled-down synthetic stand-ins for the paper's
//! datasets (see DESIGN.md §3 for the substitution rationale), plus the
//! random delta batches of the prepared-query update experiment.

use grape_graph::delta::GraphDelta;
use grape_graph::generators::{bipartite_ratings, labeled_kg, power_law, road_grid, RatingData};
use grape_graph::graph::Graph;
use grape_graph::pattern::Pattern;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Workload scale: `Small` keeps Criterion benches and CI fast; `Medium` is
/// what the `experiments` binary uses to regenerate the paper's tables and
/// figures; `Large` is the CI-excluded nightly profile that checks the
/// paper's trends at millions of edges (see
/// `crates/bench/tests/nightly_large.rs`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// A few thousand vertices — seconds for the whole suite.
    Small,
    /// Tens of thousands of vertices — minutes for the whole suite.
    Medium,
    /// Hundreds of thousands of vertices, millions of edges — nightly only.
    Large,
}

impl Scale {
    /// Parses the `--scale` CLI flag value.
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "small" => Some(Scale::Small),
            "medium" | "full" => Some(Scale::Medium),
            "large" | "nightly" => Some(Scale::Large),
            _ => None,
        }
    }

    /// The flag value / machine-readable name of the scale.
    pub fn name(&self) -> &'static str {
        match self {
            Scale::Small => "small",
            Scale::Medium => "medium",
            Scale::Large => "large",
        }
    }
}

/// Stand-in for the `traffic` US road network: a grid with huge diameter.
pub fn traffic(scale: Scale) -> Graph {
    match scale {
        Scale::Small => road_grid(48, 48, 0xF00D),
        Scale::Medium => road_grid(120, 120, 0xF00D),
        Scale::Large => road_grid(700, 700, 0xF00D),
    }
}

/// Stand-in for `liveJournal`: a power-law social graph with 100 labels.
pub fn livejournal(scale: Scale) -> Graph {
    match scale {
        Scale::Small => power_law(3_000, 15_000, 100, 0xBEEF),
        Scale::Medium => power_law(20_000, 120_000, 100, 0xBEEF),
        Scale::Large => power_law(400_000, 2_400_000, 100, 0xBEEF),
    }
}

/// Stand-in for `DBpedia`: a knowledge graph with 200 node / 160 edge types.
pub fn dbpedia(scale: Scale) -> Graph {
    match scale {
        Scale::Small => labeled_kg(3_000, 12_000, 200, 160, 0xCAFE),
        Scale::Medium => labeled_kg(20_000, 80_000, 200, 160, 0xCAFE),
        Scale::Large => labeled_kg(300_000, 1_500_000, 200, 160, 0xCAFE),
    }
}

/// Stand-in for `movieLens`: a bipartite rating graph.  `training_fraction`
/// scales the number of observed ratings (the paper uses 90% and 50%).
pub fn movielens(scale: Scale, training_fraction: f64) -> RatingData {
    let (users, items, base_ratings) = match scale {
        Scale::Small => (400, 120, 6_000),
        Scale::Medium => (2_000, 600, 40_000),
        Scale::Large => (30_000, 8_000, 1_000_000),
    };
    let ratings = ((base_ratings as f64) * training_fraction).round() as usize;
    bipartite_ratings(users, items, ratings, 8, 0xD00D)
}

/// Synthetic graphs for the Fig. 9 scalability sweep; `step` indexes the
/// paper's sizes (10M,40M) … (50M,200M), scaled down by three orders of
/// magnitude (one order at `Scale::Large`).
pub fn synthetic(step: usize, scale: Scale) -> Graph {
    let factor = match scale {
        Scale::Small => 1_000,
        Scale::Medium => 5_000,
        Scale::Large => 100_000,
    };
    let vertices = (step + 1) * 10 * factor / 10;
    let edges = vertices * 4;
    power_law(vertices, edges, 50, 0xACE + step as u64)
}

/// Size of one `ΔG` batch in the prepared-query update experiment.
pub fn delta_batch_size(scale: Scale) -> usize {
    match scale {
        Scale::Small => 64,
        Scale::Medium => 512,
        Scale::Large => 8_192,
    }
}

/// A batch of `count` random weighted edge insertions between existing
/// vertices — the monotone update direction for SSSP and CC.
///
/// Insertions are *localized*: each new edge connects a random vertex to one
/// at most 32 ids away.  This models the update streams of the evolving-
/// graph setting (new road segments join nearby intersections, new social
/// edges cluster) and is what makes the incremental refresh's affected
/// region — and therefore its message bill — small relative to a recompute;
/// a batch of random long-range shortcuts would legitimately invalidate
/// distances almost everywhere.
pub fn insertion_delta(graph: &Graph, count: usize, seed: u64) -> GraphDelta {
    ranged_insertion_delta(0, graph.num_vertices() as u64, count, seed)
}

/// A batch of `count` distinct random edge deletions drawn from the existing
/// edge list — the monotone update direction for graph simulation.
pub fn deletion_delta(graph: &Graph, count: usize, seed: u64) -> GraphDelta {
    ranged_deletion_delta(graph, 0, graph.num_vertices() as u64, count, seed)
}

/// A *regional* traffic network: `regions` disjoint road grids (think
/// separate metropolitan areas with no connecting road in the dataset).
/// Region `r` owns the contiguous id range `r * region_size(scale) ..
/// (r + 1) * region_size(scale)`, so a range partition with a fragment
/// count dividing `regions` aligns fragments to regions — the workload of
/// the `recompute vs bounded vs monotone` comparison, where a road closure
/// in one region must not re-prepare the others.
pub fn regional_traffic(scale: Scale, regions: usize) -> Graph {
    use grape_graph::builder::GraphBuilder;
    use grape_graph::types::Edge;

    let side = regional_side(scale);
    let region_size = (side * side) as u64;
    let mut b = GraphBuilder::directed().ensure_vertices(side * side * regions);
    for r in 0..regions {
        let grid = road_grid(side, side, 0xF00D + r as u64);
        let offset = r as u64 * region_size;
        for e in grid.edges() {
            b.push_edge(Edge::weighted(e.src + offset, e.dst + offset, e.weight));
        }
    }
    b.build()
}

fn regional_side(scale: Scale) -> usize {
    match scale {
        Scale::Small => 12,
        Scale::Medium => 40,
        Scale::Large => 220,
    }
}

/// Number of vertices per region of [`regional_traffic`].
pub fn regional_size(scale: Scale) -> u64 {
    let side = regional_side(scale) as u64;
    side * side
}

/// A batch of `count` distinct edge deletions confined to the id range
/// `[lo, hi)` — the "road closures in one region" / "updates to one catalog
/// segment" shape that keeps a non-monotone delta's damage frontier local.
pub fn ranged_deletion_delta(
    graph: &Graph,
    lo: u64,
    hi: u64,
    count: usize,
    seed: u64,
) -> GraphDelta {
    let mut rng = StdRng::seed_from_u64(seed);
    let local: Vec<_> = graph
        .edges()
        .iter()
        .filter(|e| (lo..hi).contains(&e.src) && (lo..hi).contains(&e.dst))
        .collect();
    let mut seen = std::collections::HashSet::new();
    let mut delta = GraphDelta::new();
    // Attempts are bounded: the graph may contain parallel edges, so the
    // number of distinct (src, dst) pairs can be below `count.min(len)`.
    for _ in 0..count.saturating_mul(4) {
        if local.is_empty() || seen.len() >= count.min(local.len()) {
            break;
        }
        let e = local[rng.gen_range(0..local.len() as u64) as usize];
        if seen.insert((e.src, e.dst)) {
            delta = delta.remove_edge(e.src, e.dst);
        }
    }
    delta
}

/// A batch of `count` weighted edge insertions confined to the id range
/// `[lo, hi)` — the regional counterpart of [`insertion_delta`].
pub fn ranged_insertion_delta(lo: u64, hi: u64, count: usize, seed: u64) -> GraphDelta {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut delta = GraphDelta::new();
    let mut added = 0usize;
    while added < count && hi - lo > 1 {
        let src = rng.gen_range(lo..hi);
        let dst = lo + (src - lo + 1 + rng.gen_range(0u64..32.min(hi - lo - 1))) % (hi - lo);
        if src == dst {
            continue;
        }
        let weight = 1.0 + rng.gen_range(0u32..8) as f64;
        delta = delta.add_weighted_edge(src, dst, weight);
        added += 1;
    }
    delta
}

/// A *segmented* rating workload: `segments` disjoint bipartite blocks
/// (catalogs that share no users or items), each a scaled-down
/// [`movielens`]-like block occupying a contiguous id range.  Returns the
/// graph, the `[lo, hi)` range of each segment, and the number of users per
/// segment (ids `lo .. lo + users` are the segment's users — returned so
/// delta generators can never drift from the workload's shape).  The
/// workload of the CF incremental experiment: new ratings land in one
/// segment, and the epoch-seeded (component-closed) refresh must retrain
/// only that segment.
pub fn segmented_movielens(scale: Scale, segments: usize) -> (Graph, Vec<(u64, u64)>, u64) {
    use grape_graph::builder::GraphBuilder;
    use grape_graph::types::Edge;

    let (users, items, ratings) = match scale {
        Scale::Small => (60, 20, 900),
        Scale::Medium => (400, 120, 8_000),
        Scale::Large => (6_000, 1_600, 200_000),
    };
    let block = (users + items) as u64;
    let mut b = GraphBuilder::directed().ensure_vertices((users + items) * segments);
    let mut ranges = Vec::with_capacity(segments);
    for s in 0..segments {
        let data = bipartite_ratings(users, items, ratings, 8, 0xD00D + s as u64);
        let offset = s as u64 * block;
        for e in data.graph.edges() {
            b.push_edge(Edge::weighted(e.src + offset, e.dst + offset, e.weight));
        }
        ranges.push((offset, offset + block));
    }
    (b.build(), ranges, users as u64)
}

/// A batch of `count` new ratings confined to one segment of
/// [`segmented_movielens`] (user → item edges inside `[lo, hi)`).
pub fn segment_rating_delta(
    lo: u64,
    hi: u64,
    num_users: u64,
    count: usize,
    seed: u64,
) -> GraphDelta {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut delta = GraphDelta::new();
    for _ in 0..count {
        let user = lo + rng.gen_range(0..num_users);
        let item = lo + num_users + rng.gen_range(0..hi - lo - num_users);
        let rating = 1.0 + rng.gen_range(0u32..40) as f64 / 10.0;
        delta = delta.add_weighted_edge(user, item, rating);
    }
    delta
}

/// A pattern of the paper's Sim workload shape `|Q| = (8, 15)` (scaled to
/// (4, 7) at small scale so that the quadratic sequential oracle in the tests
/// stays fast), drawn from the labels of `graph`.
pub fn sim_pattern(graph: &Graph, scale: Scale, seed: u64) -> Pattern {
    let alphabet = graph.distinct_vertex_labels();
    let alphabet = if alphabet.len() > 1 {
        alphabet
    } else {
        vec![1]
    };
    match scale {
        Scale::Small => Pattern::random(4, 7, &alphabet, seed),
        Scale::Medium | Scale::Large => Pattern::random(8, 15, &alphabet, seed),
    }
}

/// A pattern of the paper's SubIso workload shape `|Q| = (6, 10)` (scaled to
/// (3, 4) at small scale).
pub fn subiso_pattern(graph: &Graph, scale: Scale, seed: u64) -> Pattern {
    let alphabet = graph.distinct_vertex_labels();
    let alphabet = if alphabet.len() > 1 {
        alphabet
    } else {
        vec![1]
    };
    match scale {
        Scale::Small => Pattern::random(3, 4, &alphabet, seed),
        Scale::Medium | Scale::Large => Pattern::random(6, 10, &alphabet, seed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_parse() {
        assert_eq!(Scale::parse("small"), Some(Scale::Small));
        assert_eq!(Scale::parse("medium"), Some(Scale::Medium));
        assert_eq!(Scale::parse("large"), Some(Scale::Large));
        assert_eq!(Scale::parse("nightly"), Some(Scale::Large));
        assert_eq!(Scale::parse("huge"), None);
        assert_eq!(Scale::Large.name(), "large");
    }

    #[test]
    fn insertion_delta_is_insert_only_and_sized() {
        let g = traffic(Scale::Small);
        let delta = insertion_delta(&g, 32, 7);
        assert_eq!(delta.added_edges().len(), 32);
        assert!(!delta.has_removals());
        // Deterministic per seed.
        assert_eq!(
            insertion_delta(&g, 32, 7).added_edges(),
            delta.added_edges()
        );
    }

    #[test]
    fn deletion_delta_removes_existing_distinct_edges() {
        let g = livejournal(Scale::Small);
        let delta = deletion_delta(&g, 16, 3);
        assert_eq!(delta.removed_edges().len(), 16);
        assert!(!delta.has_insertions());
        // Every removal refers to a real edge: applying must succeed.
        assert!(g.apply_delta(&delta).is_ok());
    }

    #[test]
    fn workloads_have_expected_shapes() {
        let t = traffic(Scale::Small);
        assert_eq!(t.num_vertices(), 48 * 48);
        let lj = livejournal(Scale::Small);
        assert_eq!(lj.num_vertices(), 3_000);
        assert!(lj.distinct_vertex_labels().len() > 10);
        let db = dbpedia(Scale::Small);
        assert!(db.num_edges() > 10_000);
        let ml = movielens(Scale::Small, 0.5);
        assert!(ml.graph.num_edges() <= 3_000);
    }

    #[test]
    fn synthetic_sizes_grow_with_step() {
        let a = synthetic(0, Scale::Small);
        let b = synthetic(4, Scale::Small);
        assert!(b.num_vertices() > a.num_vertices());
        assert!(b.num_edges() > a.num_edges());
    }

    #[test]
    fn regional_traffic_keeps_regions_disjoint() {
        let g = regional_traffic(Scale::Small, 4);
        let size = regional_size(Scale::Small);
        assert_eq!(g.num_vertices() as u64, 4 * size);
        for e in g.edges() {
            assert_eq!(e.src / size, e.dst / size, "edge crosses regions");
        }
        let delta = ranged_deletion_delta(&g, 0, size, 16, 5);
        assert_eq!(delta.removed_edges().len(), 16);
        assert!(delta
            .removed_edges()
            .iter()
            .all(|&(s, d)| s < size && d < size));
        assert!(g.apply_delta(&delta).is_ok());
    }

    #[test]
    fn segmented_movielens_keeps_segments_disjoint() {
        let (g, ranges, users) = segmented_movielens(Scale::Small, 3);
        assert_eq!(ranges.len(), 3);
        for e in g.edges() {
            let seg = ranges
                .iter()
                .position(|&(lo, hi)| (lo..hi).contains(&e.src))
                .unwrap();
            let (lo, hi) = ranges[seg];
            assert!((lo..hi).contains(&e.dst), "rating crosses segments");
            // Ratings run user → item within the segment.
            assert!(e.src < lo + users && e.dst >= lo + users);
        }
        let (lo, hi) = ranges[1];
        let delta = segment_rating_delta(lo, hi, users, 12, 3);
        assert_eq!(delta.added_edges().len(), 12);
        assert!(delta
            .added_edges()
            .iter()
            .all(|e| (lo..hi).contains(&e.src) && (lo..hi).contains(&e.dst)));
    }

    #[test]
    fn patterns_fit_the_workload_shape() {
        let g = dbpedia(Scale::Small);
        let p = sim_pattern(&g, Scale::Small, 1);
        assert_eq!(p.num_nodes(), 4);
        let p2 = subiso_pattern(&g, Scale::Small, 2);
        assert_eq!(p2.num_nodes(), 3);
    }
}
