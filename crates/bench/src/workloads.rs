//! Benchmark workloads: scaled-down synthetic stand-ins for the paper's
//! datasets (see DESIGN.md §3 for the substitution rationale).

use grape_graph::generators::{bipartite_ratings, labeled_kg, power_law, road_grid, RatingData};
use grape_graph::graph::Graph;
use grape_graph::pattern::Pattern;

/// Workload scale: `Small` keeps Criterion benches fast; `Medium` is what the
/// `experiments` binary uses to regenerate the paper's tables and figures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// A few thousand vertices — seconds for the whole suite.
    Small,
    /// Tens of thousands of vertices — minutes for the whole suite.
    Medium,
}

impl Scale {
    /// Parses the `--scale` CLI flag value.
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "small" => Some(Scale::Small),
            "medium" | "full" => Some(Scale::Medium),
            _ => None,
        }
    }
}

/// Stand-in for the `traffic` US road network: a grid with huge diameter.
pub fn traffic(scale: Scale) -> Graph {
    match scale {
        Scale::Small => road_grid(48, 48, 0xF00D),
        Scale::Medium => road_grid(120, 120, 0xF00D),
    }
}

/// Stand-in for `liveJournal`: a power-law social graph with 100 labels.
pub fn livejournal(scale: Scale) -> Graph {
    match scale {
        Scale::Small => power_law(3_000, 15_000, 100, 0xBEEF),
        Scale::Medium => power_law(20_000, 120_000, 100, 0xBEEF),
    }
}

/// Stand-in for `DBpedia`: a knowledge graph with 200 node / 160 edge types.
pub fn dbpedia(scale: Scale) -> Graph {
    match scale {
        Scale::Small => labeled_kg(3_000, 12_000, 200, 160, 0xCAFE),
        Scale::Medium => labeled_kg(20_000, 80_000, 200, 160, 0xCAFE),
    }
}

/// Stand-in for `movieLens`: a bipartite rating graph.  `training_fraction`
/// scales the number of observed ratings (the paper uses 90% and 50%).
pub fn movielens(scale: Scale, training_fraction: f64) -> RatingData {
    let (users, items, base_ratings) = match scale {
        Scale::Small => (400, 120, 6_000),
        Scale::Medium => (2_000, 600, 40_000),
    };
    let ratings = ((base_ratings as f64) * training_fraction).round() as usize;
    bipartite_ratings(users, items, ratings, 8, 0xD00D)
}

/// Synthetic graphs for the Fig. 9 scalability sweep; `step` indexes the
/// paper's sizes (10M,40M) … (50M,200M), scaled down by three orders of
/// magnitude.
pub fn synthetic(step: usize, scale: Scale) -> Graph {
    let factor = match scale {
        Scale::Small => 1_000,
        Scale::Medium => 5_000,
    };
    let vertices = (step + 1) * 10 * factor / 10;
    let edges = vertices * 4;
    power_law(vertices, edges, 50, 0xACE + step as u64)
}

/// A pattern of the paper's Sim workload shape `|Q| = (8, 15)` (scaled to
/// (4, 7) at small scale so that the quadratic sequential oracle in the tests
/// stays fast), drawn from the labels of `graph`.
pub fn sim_pattern(graph: &Graph, scale: Scale, seed: u64) -> Pattern {
    let alphabet = graph.distinct_vertex_labels();
    let alphabet = if alphabet.len() > 1 {
        alphabet
    } else {
        vec![1]
    };
    match scale {
        Scale::Small => Pattern::random(4, 7, &alphabet, seed),
        Scale::Medium => Pattern::random(8, 15, &alphabet, seed),
    }
}

/// A pattern of the paper's SubIso workload shape `|Q| = (6, 10)` (scaled to
/// (3, 4) at small scale).
pub fn subiso_pattern(graph: &Graph, scale: Scale, seed: u64) -> Pattern {
    let alphabet = graph.distinct_vertex_labels();
    let alphabet = if alphabet.len() > 1 {
        alphabet
    } else {
        vec![1]
    };
    match scale {
        Scale::Small => Pattern::random(3, 4, &alphabet, seed),
        Scale::Medium => Pattern::random(6, 10, &alphabet, seed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_parse() {
        assert_eq!(Scale::parse("small"), Some(Scale::Small));
        assert_eq!(Scale::parse("medium"), Some(Scale::Medium));
        assert_eq!(Scale::parse("huge"), None);
    }

    #[test]
    fn workloads_have_expected_shapes() {
        let t = traffic(Scale::Small);
        assert_eq!(t.num_vertices(), 48 * 48);
        let lj = livejournal(Scale::Small);
        assert_eq!(lj.num_vertices(), 3_000);
        assert!(lj.distinct_vertex_labels().len() > 10);
        let db = dbpedia(Scale::Small);
        assert!(db.num_edges() > 10_000);
        let ml = movielens(Scale::Small, 0.5);
        assert!(ml.graph.num_edges() <= 3_000);
    }

    #[test]
    fn synthetic_sizes_grow_with_step() {
        let a = synthetic(0, Scale::Small);
        let b = synthetic(4, Scale::Small);
        assert!(b.num_vertices() > a.num_vertices());
        assert!(b.num_edges() > a.num_edges());
    }

    #[test]
    fn patterns_fit_the_workload_shape() {
        let g = dbpedia(Scale::Small);
        let p = sim_pattern(&g, Scale::Small, 1);
        assert_eq!(p.num_nodes(), 4);
        let p2 = subiso_pattern(&g, Scale::Small, 2);
        assert_eq!(p2.num_nodes(), 3);
    }
}
