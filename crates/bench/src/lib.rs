//! # grape-bench
//!
//! The benchmark harness that regenerates every table and figure of the
//! GRAPE (SIGMOD 2017) evaluation:
//!
//! * [`workloads`] — scaled-down synthetic stand-ins for the paper's datasets
//!   (traffic, liveJournal, DBpedia, movieLens, Fig. 9 synthetic sweep),
//! * [`runner`] — functions that run one query class on one workload under
//!   GRAPE, the vertex-centric baseline and the block-centric baseline, and
//!   report time / communication / supersteps,
//! * [`experiments`] — the per-table/figure drivers shared by the
//!   `experiments` binary and the Criterion benches.
//!
//! `cargo run -p grape-bench --release --bin experiments -- all` prints every
//! table and figure as text; `cargo bench` runs the Criterion benches (one
//! file per table/figure) at small scale.

pub mod experiments;
pub mod runner;
pub mod workloads;
