//! Regenerates every table and figure of the GRAPE (SIGMOD 2017) evaluation
//! as text tables.
//!
//! ```text
//! experiments [--scale small|medium] [table1|fig6|fig7|fig8|fig9|loc|all]
//! ```
//!
//! Absolute numbers are not expected to match the paper (24-node cluster vs
//! threads on one machine, scaled-down synthetic datasets); the *shapes* —
//! which system wins, by roughly what factor, and how the curves move with
//! `n` and `|G|` — are what EXPERIMENTS.md records.

use grape_bench::experiments;
use grape_bench::runner::format_table;
use grape_bench::workloads::Scale;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Small;
    let mut targets: Vec<String> = Vec::new();
    let mut iter = args.iter().peekable();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--scale" => {
                let value = iter.next().map(String::as_str).unwrap_or("small");
                scale = Scale::parse(value).unwrap_or_else(|| {
                    eprintln!("unknown scale {value:?}, using small");
                    Scale::Small
                });
            }
            other => targets.push(other.to_string()),
        }
    }
    if targets.is_empty() {
        targets.push("all".to_string());
    }

    for target in &targets {
        match target.as_str() {
            "table1" => print!(
                "{}",
                format_table("Table 1: SSSP on traffic", &experiments::table1(scale))
            ),
            "fig6" => print_fig6(scale),
            "fig7" => print_fig7(scale),
            "fig8" => print!(
                "{}",
                format_table(
                    "Fig 8(a-l): communication cost (see comm column)",
                    &experiments::fig8_comm(scale)
                )
            ),
            "fig9" => print!(
                "{}",
                format_table(
                    "Fig 9: scalability on synthetic graphs",
                    &experiments::fig9_scalability(scale)
                )
            ),
            "loc" => print_loc(),
            "all" => {
                print!(
                    "{}",
                    format_table("Table 1: SSSP on traffic", &experiments::table1(scale))
                );
                print_fig6(scale);
                print_fig7(scale);
                print!(
                    "{}",
                    format_table(
                        "Fig 9: scalability on synthetic graphs",
                        &experiments::fig9_scalability(scale)
                    )
                );
                print_loc();
            }
            other => {
                eprintln!("unknown experiment {other:?} (use table1|fig6|fig7|fig8|fig9|loc|all)")
            }
        }
    }
}

fn print_fig6(scale: Scale) {
    print!(
        "{}",
        format_table(
            "Fig 6(a-c) / 8(a-c): SSSP, time & comm vs n",
            &experiments::fig6_sssp(scale)
        )
    );
    print!(
        "{}",
        format_table(
            "Fig 6(d-f) / 8(d-f): CC, time & comm vs n",
            &experiments::fig6_cc(scale)
        )
    );
    print!(
        "{}",
        format_table(
            "Fig 6(g-h) / 8(g-h): Sim, time & comm vs n",
            &experiments::fig6_sim(scale)
        )
    );
    print!(
        "{}",
        format_table(
            "Fig 6(i-j) / 8(i-j): SubIso, time & comm vs n",
            &experiments::fig6_subiso(scale)
        )
    );
    print!(
        "{}",
        format_table(
            "Fig 6(k-l) / 8(k-l): CF, time & comm vs n",
            &experiments::fig6_cf(scale)
        )
    );
}

fn print_fig7(scale: Scale) {
    print!(
        "{}",
        format_table(
            "Fig 7(a): incremental vs non-incremental Sim",
            &experiments::fig7_incremental(scale)
        )
    );
    print!(
        "{}",
        format_table(
            "Fig 7(b): optimized sequential Sim under GRAPE",
            &experiments::fig7_optimization(scale)
        )
    );
}

/// Exp-6 (ease of programming): lines of code of the PIE programs vs the
/// vertex/block programs, the analogue of Figures 10–11.
fn print_loc() {
    let entries = [
        (
            "PIE SSSP (crates/algorithms/src/sssp/pie.rs)",
            include_str!("../../../algorithms/src/sssp/pie.rs"),
        ),
        (
            "PIE CC (crates/algorithms/src/cc/pie.rs)",
            include_str!("../../../algorithms/src/cc/pie.rs"),
        ),
        (
            "PIE Sim (crates/algorithms/src/sim/pie.rs)",
            include_str!("../../../algorithms/src/sim/pie.rs"),
        ),
        (
            "vertex programs, all five (crates/baselines/src/vertex_centric/programs.rs)",
            include_str!("../../../baselines/src/vertex_centric/programs.rs"),
        ),
        (
            "block programs, all five (crates/baselines/src/block_centric/programs.rs)",
            include_str!("../../../baselines/src/block_centric/programs.rs"),
        ),
    ];
    println!("\n== Exp-6: ease of programming (non-test, non-comment lines) ==");
    for (name, source) in entries {
        let loc = source
            .lines()
            .take_while(|l| !l.contains("#[cfg(test)]"))
            .filter(|l| {
                let t = l.trim();
                !t.is_empty() && !t.starts_with("//")
            })
            .count();
        println!("{loc:>6}  {name}");
    }
}
