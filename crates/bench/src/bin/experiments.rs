//! Regenerates every table and figure of the GRAPE (SIGMOD 2017) evaluation.
//!
//! ```text
//! experiments [--scale small|medium|large] [--format text|json|csv]
//!             [table1|fig6|fig7|fig8|fig9|incremental|serving|serving_scaling|
//!              serving_watchers|rehydrate_latency|process_transport|loc|all]
//! ```
//!
//! `incremental` is the prepared-query update experiment: update latency and
//! messages saved of `PreparedQuery::update` (IncEval-only refresh) vs a
//! full recompute on the updated graph, per query class.
//!
//! `--format text` (the default) prints aligned tables; `--format json`
//! emits one self-describing JSON object per (algorithm, system, scale) run
//! (JSON Lines); `--format csv` emits one CSV record per run with a single
//! header line.  The machine-readable formats are what figure-regeneration
//! and regression-tracking scripts consume.  The `loc` section (Exp-6) has
//! no run rows and is text-only: it is skipped — with a note on stderr —
//! under the machine-readable formats, including within `all`.
//!
//! `serving_scaling` has its own row shape (per-delta latency percentiles
//! per (K, threads, arrival) cell rather than a `RunRow`): it prints a text
//! table or JSON Lines (the `BENCH_serving_scaling.json` baseline format)
//! and is skipped — with a note on stderr — under `--format csv`.
//!
//! Absolute numbers are not expected to match the paper (24-node cluster vs
//! threads on one machine, scaled-down synthetic datasets); the *shapes* —
//! which system wins, by roughly what factor, and how the curves move with
//! `n` and `|G|` — are what EXPERIMENTS.md records.

use grape_bench::experiments;
use grape_bench::runner::{
    format_process_json, format_process_table, format_rehydrate_json, format_rehydrate_table,
    format_rows_csv, format_rows_json, format_scaling_json, format_scaling_table, format_table,
    format_watchers_json, format_watchers_table, RunRow, CSV_HEADER,
};
use grape_bench::workloads::Scale;

/// Output format of the run rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Format {
    Text,
    Json,
    Csv,
}

impl Format {
    fn parse(s: &str) -> Option<Format> {
        match s {
            "text" => Some(Format::Text),
            "json" => Some(Format::Json),
            "csv" => Some(Format::Csv),
            _ => None,
        }
    }
}

/// One experiment section: a stable id (used as the machine-readable
/// `experiment` field), a human title, and its rows.
struct Section {
    id: &'static str,
    title: String,
    rows: Vec<RunRow>,
}

fn section(id: &'static str, title: &str, rows: Vec<RunRow>) -> Section {
    Section {
        id,
        title: title.to_string(),
        rows,
    }
}

fn fig6_sections(scale: Scale) -> Vec<Section> {
    vec![
        section(
            "fig6_sssp",
            "Fig 6(a-c) / 8(a-c): SSSP, time & comm vs n",
            experiments::fig6_sssp(scale),
        ),
        section(
            "fig6_cc",
            "Fig 6(d-f) / 8(d-f): CC, time & comm vs n",
            experiments::fig6_cc(scale),
        ),
        section(
            "fig6_sim",
            "Fig 6(g-h) / 8(g-h): Sim, time & comm vs n",
            experiments::fig6_sim(scale),
        ),
        section(
            "fig6_subiso",
            "Fig 6(i-j) / 8(i-j): SubIso, time & comm vs n",
            experiments::fig6_subiso(scale),
        ),
        section(
            "fig6_cf",
            "Fig 6(k-l) / 8(k-l): CF, time & comm vs n",
            experiments::fig6_cf(scale),
        ),
    ]
}

fn fig7_sections(scale: Scale) -> Vec<Section> {
    vec![
        section(
            "fig7_incremental",
            "Fig 7(a): incremental vs non-incremental Sim",
            experiments::fig7_incremental(scale),
        ),
        section(
            "fig7_optimization",
            "Fig 7(b): optimized sequential Sim under GRAPE",
            experiments::fig7_optimization(scale),
        ),
    ]
}

fn sections_for(target: &str, scale: Scale) -> Option<Vec<Section>> {
    match target {
        "table1" => Some(vec![section(
            "table1",
            "Table 1: SSSP on traffic",
            experiments::table1(scale),
        )]),
        "fig6" => Some(fig6_sections(scale)),
        "fig7" => Some(fig7_sections(scale)),
        "fig8" => Some(vec![section(
            "fig8",
            "Fig 8(a-l): communication cost (see comm column)",
            experiments::fig8_comm(scale),
        )]),
        "fig9" => Some(vec![section(
            "fig9",
            "Fig 9: scalability on synthetic graphs",
            experiments::fig9_scalability(scale),
        )]),
        "incremental" => Some(vec![
            section(
                "incremental",
                "Prepared queries: update latency & messages saved vs recompute",
                experiments::incremental(scale),
            ),
            section(
                "refresh_comparison",
                "Bounded refresh: recompute vs bounded vs monotone (regional traffic)",
                experiments::refresh_comparison(scale),
            ),
        ]),
        "serving" => Some(vec![section(
            "serving",
            "GrapeServer: K standing queries, one delta stream (per-delta latency)",
            experiments::serving(scale),
        )]),
        "all" => {
            let mut all = vec![section(
                "table1",
                "Table 1: SSSP on traffic",
                experiments::table1(scale),
            )];
            all.extend(fig6_sections(scale));
            all.extend(fig7_sections(scale));
            all.push(section(
                "fig9",
                "Fig 9: scalability on synthetic graphs",
                experiments::fig9_scalability(scale),
            ));
            all.push(section(
                "incremental",
                "Prepared queries: update latency & messages saved vs recompute",
                experiments::incremental(scale),
            ));
            all.push(section(
                "refresh_comparison",
                "Bounded refresh: recompute vs bounded vs monotone (regional traffic)",
                experiments::refresh_comparison(scale),
            ));
            all.push(section(
                "serving",
                "GrapeServer: K standing queries, one delta stream (per-delta latency)",
                experiments::serving(scale),
            ));
            Some(all)
        }
        _ => None,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Small;
    let mut format = Format::Text;
    let mut targets: Vec<String> = Vec::new();
    let mut iter = args.iter().peekable();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--scale" => {
                let value = iter.next().map(String::as_str).unwrap_or("small");
                scale = Scale::parse(value).unwrap_or_else(|| {
                    eprintln!("unknown scale {value:?}, using small");
                    Scale::Small
                });
            }
            "--format" => {
                let value = iter.next().map(String::as_str).unwrap_or("text");
                format = Format::parse(value).unwrap_or_else(|| {
                    eprintln!("unknown format {value:?} (use text|json|csv), using text");
                    Format::Text
                });
            }
            other => targets.push(other.to_string()),
        }
    }
    if targets.is_empty() {
        targets.push("all".to_string());
    }

    let scale_name = scale.name();
    let mut csv_header_printed = false;
    for target in &targets {
        if target == "loc" {
            // The lines-of-code comparison has no RunRow shape; emitting it
            // into a JSON/CSV stream would corrupt the output for parsers.
            if format == Format::Text {
                print_loc();
            } else {
                eprintln!("loc is text-only (Exp-6 has no run rows); skipping under --format");
            }
            continue;
        }
        if target == "serving_scaling" {
            print_serving_scaling(scale, format, scale_name);
            continue;
        }
        if target == "serving_watchers" {
            print_serving_watchers(scale, format, scale_name);
            continue;
        }
        if target == "rehydrate_latency" {
            print_rehydrate_latency(scale, format, scale_name);
            continue;
        }
        if target == "process_transport" {
            print_process_transport(scale, format, scale_name);
            continue;
        }
        let Some(sections) = sections_for(target, scale) else {
            eprintln!(
                "unknown experiment {target:?} \
                 (use table1|fig6|fig7|fig8|fig9|incremental|serving|serving_scaling|\
                 serving_watchers|rehydrate_latency|process_transport|loc|all)"
            );
            continue;
        };
        for s in &sections {
            match format {
                Format::Text => print!("{}", format_table(&s.title, &s.rows)),
                Format::Json => print!("{}", format_rows_json(s.id, scale_name, &s.rows)),
                Format::Csv => {
                    if !csv_header_printed {
                        println!("{CSV_HEADER}");
                        csv_header_printed = true;
                    }
                    print!("{}", format_rows_csv(s.id, scale_name, &s.rows));
                }
            }
        }
        if target == "all" {
            print_serving_scaling(scale, format, scale_name);
            print_serving_watchers(scale, format, scale_name);
            print_rehydrate_latency(scale, format, scale_name);
            print_process_transport(scale, format, scale_name);
            if format == Format::Text {
                print_loc();
            } else {
                eprintln!("loc is text-only (Exp-6 has no run rows); skipping under --format");
            }
        }
    }
}

/// Prints the serving-scaling section in its own row shape; CSV has no
/// column set for it, so it is skipped there with a note on stderr.
fn print_serving_scaling(scale: Scale, format: Format, scale_name: &str) {
    match format {
        Format::Csv => {
            eprintln!(
                "serving_scaling has its own row shape (latency percentiles); \
                 use --format text|json"
            );
        }
        Format::Text => {
            let rows = experiments::serving_scaling(scale);
            print!(
                "{}",
                format_scaling_table(
                    "GrapeServer scaling: K queries x refresh threads x arrival",
                    &rows
                )
            );
        }
        Format::Json => {
            let rows = experiments::serving_scaling(scale);
            print!(
                "{}",
                format_scaling_json("serving_scaling", scale_name, &rows)
            );
        }
    }
}

/// Prints the serving-watchers section in its own row shape (push-vs-poll
/// byte totals per watcher count); CSV has no column set for it, so it is
/// skipped there with a note on stderr.
fn print_serving_watchers(scale: Scale, format: Format, scale_name: &str) {
    match format {
        Format::Csv => {
            eprintln!(
                "serving_watchers has its own row shape (pushed/polled bytes); \
                 use --format text|json"
            );
        }
        Format::Text => {
            let rows = experiments::serving_watchers(scale);
            print!(
                "{}",
                format_watchers_table(
                    "GrapeServer watchers: K queries x W subscribers, pushed vs polled bytes",
                    &rows
                )
            );
        }
        Format::Json => {
            let rows = experiments::serving_watchers(scale);
            print!(
                "{}",
                format_watchers_json("serving_watchers", scale_name, &rows)
            );
        }
    }
}

/// Prints the rehydrate-latency section in its own row shape (spill bytes
/// and rehydrate wall time per eviction round, tiered vs wholesale store);
/// CSV has no column set for it, so it is skipped there with a note on
/// stderr.
fn print_rehydrate_latency(scale: Scale, format: Format, scale_name: &str) {
    match format {
        Format::Csv => {
            eprintln!(
                "rehydrate_latency has its own row shape (spill bytes / latency \
                 per round); use --format text|json"
            );
        }
        Format::Text => {
            let rows = experiments::rehydrate_latency(scale);
            print!(
                "{}",
                format_rehydrate_table(
                    "GrapeServer rehydrate latency: tiered vs wholesale spill store",
                    &rows
                )
            );
        }
        Format::Json => {
            let rows = experiments::rehydrate_latency(scale);
            print!(
                "{}",
                format_rehydrate_json("rehydrate_latency", scale_name, &rows)
            );
        }
    }
}

/// Prints the process-transport section in its own row shape (per-run
/// latency + pipe megabytes per transport cell); CSV has no column set for
/// it, so it is skipped there with a note on stderr.  Requires the
/// `grape-worker` binary next to this one (`cargo build --release -p
/// grape-daemon --bin grape-worker`).
fn print_process_transport(scale: Scale, format: Format, scale_name: &str) {
    if grape_core::worker_proto::locate_worker_binary().is_none() {
        eprintln!(
            "process_transport needs the grape-worker binary; build it with \
             `cargo build -p grape-daemon --bin grape-worker` (same profile) \
             or point GRAPE_WORKER_BIN at it — skipping"
        );
        return;
    }
    match format {
        Format::Csv => {
            eprintln!(
                "process_transport has its own row shape (pipe megabytes per \
                 transport cell); use --format text|json"
            );
        }
        Format::Text => {
            let rows = experiments::process_transport(scale);
            print!(
                "{}",
                format_process_table(
                    "Process transport: in-process vs grape-worker subprocesses",
                    &rows
                )
            );
        }
        Format::Json => {
            let rows = experiments::process_transport(scale);
            print!(
                "{}",
                format_process_json("process_transport", scale_name, &rows)
            );
        }
    }
}

/// Exp-6 (ease of programming): lines of code of the PIE programs vs the
/// vertex/block programs, the analogue of Figures 10–11.
fn print_loc() {
    let entries = [
        (
            "PIE SSSP (crates/algorithms/src/sssp/pie.rs)",
            include_str!("../../../algorithms/src/sssp/pie.rs"),
        ),
        (
            "PIE CC (crates/algorithms/src/cc/pie.rs)",
            include_str!("../../../algorithms/src/cc/pie.rs"),
        ),
        (
            "PIE Sim (crates/algorithms/src/sim/pie.rs)",
            include_str!("../../../algorithms/src/sim/pie.rs"),
        ),
        (
            "vertex programs, all five (crates/baselines/src/vertex_centric/programs.rs)",
            include_str!("../../../baselines/src/vertex_centric/programs.rs"),
        ),
        (
            "block programs, all five (crates/baselines/src/block_centric/programs.rs)",
            include_str!("../../../baselines/src/block_centric/programs.rs"),
        ),
    ];
    println!("\n== Exp-6: ease of programming (non-test, non-comment lines) ==");
    for (name, source) in entries {
        let loc = source
            .lines()
            .take_while(|l| !l.contains("#[cfg(test)]"))
            .filter(|l| {
                let t = l.trim();
                !t.is_empty() && !t.starts_with("//")
            })
            .count();
        println!("{loc:>6}  {name}");
    }
}
