//! Figure 7(a), Exp-2: the impact of incremental IncEval — GRAPE vs the
//! non-incremental GRAPE_NI variant for graph simulation.

mod common;

use criterion::{criterion_group, criterion_main, Criterion};

use grape_bench::runner::{run_sim, run_sim_ni, System};
use grape_bench::workloads::{self, Scale};

fn fig7_incremental(c: &mut Criterion) {
    let graph = workloads::livejournal(Scale::Small);
    let pattern = workloads::sim_pattern(&graph, Scale::Small, 0x71);
    let mut group = c.benchmark_group("fig7a_incremental_sim");
    common::configure(&mut group);
    for workers in [2usize, 4] {
        group.bench_function(format!("GRAPE_n{workers}"), |b| {
            b.iter(|| run_sim(System::Grape, &graph, &pattern, workers, "livejournal"))
        });
        group.bench_function(format!("GRAPE_NI_n{workers}"), |b| {
            b.iter(|| run_sim_ni(&graph, &pattern, workers, "livejournal"))
        });
    }
    group.finish();
}

criterion_group!(benches, fig7_incremental);
criterion_main!(benches);
