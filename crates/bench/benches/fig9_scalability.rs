//! Figure 9: scalability on synthetic graphs — fixed worker count, growing
//! `(|V|, |E|)`.

mod common;

use criterion::{criterion_group, criterion_main, Criterion};

use grape_bench::runner::{run_cc, run_sim, run_sssp, System};
use grape_bench::workloads::{self, Scale};

fn fig9_scalability(c: &mut Criterion) {
    for step in [0usize, 2, 4] {
        let graph = workloads::synthetic(step, Scale::Small);
        let pattern = workloads::sim_pattern(&graph, Scale::Small, 0x90 + step as u64);
        let mut group = c.benchmark_group(format!("fig9_synthetic_{}", step + 1));
        common::configure(&mut group);
        for system in System::all() {
            group.bench_function(format!("sssp_{}", system.name()), |b| {
                b.iter(|| run_sssp(system, &graph, 0, 4, "synthetic"))
            });
            group.bench_function(format!("cc_{}", system.name()), |b| {
                let undirected = graph.to_undirected();
                b.iter(|| run_cc(system, &undirected, 4, "synthetic"))
            });
            group.bench_function(format!("sim_{}", system.name()), |b| {
                b.iter(|| run_sim(system, &graph, &pattern, 4, "synthetic"))
            });
        }
        group.finish();
    }
}

criterion_group!(benches, fig9_scalability);
criterion_main!(benches);
