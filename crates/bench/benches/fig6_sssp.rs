//! Figure 6(a)–(c): SSSP response time, varying the number of workers, on
//! the traffic / liveJournal / DBpedia stand-ins.

mod common;

use criterion::{criterion_group, criterion_main, Criterion};

use grape_bench::runner::{run_sssp, System};
use grape_bench::workloads::{self, Scale};

fn fig6_sssp(c: &mut Criterion) {
    let datasets = [
        ("traffic", workloads::traffic(Scale::Small)),
        ("livejournal", workloads::livejournal(Scale::Small)),
        ("dbpedia", workloads::dbpedia(Scale::Small)),
    ];
    for (name, graph) in &datasets {
        let mut group = c.benchmark_group(format!("fig6_sssp_{name}"));
        common::configure(&mut group);
        for workers in [2usize, 4] {
            for system in System::all() {
                group.bench_function(format!("{}_n{}", system.name(), workers), |b| {
                    b.iter(|| run_sssp(system, graph, 0, workers, name))
                });
            }
        }
        group.finish();
    }
}

criterion_group!(benches, fig6_sssp);
criterion_main!(benches);
