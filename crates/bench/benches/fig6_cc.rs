//! Figure 6(d)–(f): connected components, varying the number of workers.

mod common;

use criterion::{criterion_group, criterion_main, Criterion};

use grape_bench::runner::{run_cc, System};
use grape_bench::workloads::{self, Scale};

fn fig6_cc(c: &mut Criterion) {
    let datasets = [
        ("traffic", workloads::traffic(Scale::Small)),
        (
            "livejournal",
            workloads::livejournal(Scale::Small).to_undirected(),
        ),
        ("dbpedia", workloads::dbpedia(Scale::Small).to_undirected()),
    ];
    for (name, graph) in &datasets {
        let mut group = c.benchmark_group(format!("fig6_cc_{name}"));
        common::configure(&mut group);
        for workers in [2usize, 4] {
            for system in System::all() {
                group.bench_function(format!("{}_n{}", system.name(), workers), |b| {
                    b.iter(|| run_cc(system, graph, workers, name))
                });
            }
        }
        group.finish();
    }
}

criterion_group!(benches, fig6_cc);
criterion_main!(benches);
