//! Shared Criterion configuration for all figure/table benches: small sample
//! counts and short measurement windows so the whole suite (`cargo bench`)
//! finishes in minutes while still producing stable medians.

use std::time::Duration;

/// Applies the project-wide bench settings to a Criterion group.
pub fn configure(group: &mut criterion::BenchmarkGroup<'_, criterion::measurement::WallTime>) {
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(900));
}
