//! Figure 7(b), Exp-3: optimization compatibility — the speedup of the
//! index-optimized sequential Sim is preserved under GRAPE parallelization.

mod common;

use criterion::{criterion_group, criterion_main, Criterion};

use grape_bench::runner::{run_sim, run_sim_optimized, System};
use grape_bench::workloads::{self, Scale};

use grape_algorithms::sim::{graph_simulation, graph_simulation_optimized};

fn fig7_optimization(c: &mut Criterion) {
    let graph = workloads::livejournal(Scale::Small);
    let pattern = workloads::sim_pattern(&graph, Scale::Small, 0x72);

    // Sequential speedup (the T(A)/T(A*) numerator of Exp-3).
    let mut sequential = c.benchmark_group("fig7b_sequential_sim");
    common::configure(&mut sequential);
    sequential.bench_function("basic", |b| b.iter(|| graph_simulation(&graph, &pattern)));
    sequential.bench_function("optimized", |b| {
        b.iter(|| graph_simulation_optimized(&graph, &pattern))
    });
    sequential.finish();

    // Parallelized speedup (the Tp(A)/Tp(A*) denominator).
    let mut parallel = c.benchmark_group("fig7b_grape_sim");
    common::configure(&mut parallel);
    for workers in [2usize, 4] {
        parallel.bench_function(format!("basic_n{workers}"), |b| {
            b.iter(|| run_sim(System::Grape, &graph, &pattern, workers, "livejournal"))
        });
        parallel.bench_function(format!("optimized_n{workers}"), |b| {
            b.iter(|| run_sim_optimized(&graph, &pattern, workers, "livejournal"))
        });
    }
    parallel.finish();
}

criterion_group!(benches, fig7_optimization);
criterion_main!(benches);
