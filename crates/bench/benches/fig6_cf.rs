//! Figure 6(k)–(l): collaborative filtering with 90% and 50% training sets,
//! varying the number of workers.

mod common;

use criterion::{criterion_group, criterion_main, Criterion};

use grape_bench::runner::{run_cf, System};
use grape_bench::workloads::{self, Scale};

fn fig6_cf(c: &mut Criterion) {
    for (name, fraction) in [("movielens90", 0.9), ("movielens50", 0.5)] {
        let data = workloads::movielens(Scale::Small, fraction);
        let mut group = c.benchmark_group(format!("fig6_cf_{name}"));
        common::configure(&mut group);
        for workers in [2usize, 4] {
            for system in System::all() {
                group.bench_function(format!("{}_n{}", system.name(), workers), |b| {
                    b.iter(|| run_cf(system, &data, 6, workers, name))
                });
            }
        }
        group.finish();
    }
}

criterion_group!(benches, fig6_cf);
criterion_main!(benches);
