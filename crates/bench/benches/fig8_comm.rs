//! Figure 8(a)–(l): communication cost of every query class on every system.
//!
//! Communication is a *counter*, not a wall-clock quantity, so this bench
//! measures the full runs (whose metrics carry the byte counts printed by the
//! `experiments` binary) for the representative SSSP and Sim workloads; the
//! complete per-dataset communication tables come from
//! `experiments fig8`.

mod common;

use criterion::{criterion_group, criterion_main, Criterion};

use grape_bench::runner::{run_sim, run_sssp, System};
use grape_bench::workloads::{self, Scale};

fn fig8_comm(c: &mut Criterion) {
    let traffic = workloads::traffic(Scale::Small);
    let livejournal = workloads::livejournal(Scale::Small);
    let pattern = workloads::sim_pattern(&livejournal, Scale::Small, 0x81);

    let mut group = c.benchmark_group("fig8_comm_counters");
    common::configure(&mut group);
    for system in System::all() {
        group.bench_function(format!("sssp_traffic_{}", system.name()), |b| {
            b.iter(|| {
                let row = run_sssp(system, &traffic, 0, 4, "traffic");
                row.comm_mb
            })
        });
        group.bench_function(format!("sim_livejournal_{}", system.name()), |b| {
            b.iter(|| {
                let row = run_sim(system, &livejournal, &pattern, 4, "livejournal");
                row.comm_mb
            })
        });
    }
    group.finish();
}

criterion_group!(benches, fig8_comm);
criterion_main!(benches);
