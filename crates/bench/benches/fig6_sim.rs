//! Figure 6(g)–(h): graph simulation with patterns of shape `|Q| = (8, 15)`
//! (scaled), varying the number of workers.

mod common;

use criterion::{criterion_group, criterion_main, Criterion};

use grape_bench::runner::{run_sim, System};
use grape_bench::workloads::{self, Scale};

fn fig6_sim(c: &mut Criterion) {
    let datasets = [
        ("livejournal", workloads::livejournal(Scale::Small)),
        ("dbpedia", workloads::dbpedia(Scale::Small)),
    ];
    for (name, graph) in &datasets {
        let pattern = workloads::sim_pattern(graph, Scale::Small, 0x51);
        let mut group = c.benchmark_group(format!("fig6_sim_{name}"));
        common::configure(&mut group);
        for workers in [2usize, 4] {
            for system in System::all() {
                group.bench_function(format!("{}_n{}", system.name(), workers), |b| {
                    b.iter(|| run_sim(system, graph, &pattern, workers, name))
                });
            }
        }
        group.finish();
    }
}

criterion_group!(benches, fig6_sim);
criterion_main!(benches);
