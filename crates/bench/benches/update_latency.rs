//! Prepared-query update latency: absorbing one `ΔG` batch through
//! `PreparedQuery::update` vs answering the same query from scratch on the
//! updated graph.
//!
//! Both sides pay the partition maintenance (`Fragmentation::apply_delta`):
//! the incremental iteration clones the prepared handle and calls
//! `update(&delta)` (apply_delta + rebase + IncEval-only refresh), the
//! recompute iteration applies the delta and runs PEval + IncEval from
//! scratch.  The handle clone is extra overhead charged to the incremental
//! side — it exists only to keep iterations identical under the harness.
//!
//! At `Scale::Small` the O(|G|) partition maintenance dominates both sides
//! and wall-clock times converge; the engine-level savings — supersteps,
//! messages, communication volume, and `peval_calls == 0` — are what the
//! `experiments incremental` rows report, and they grow with scale (see
//! `tests/nightly_large.rs`).

mod common;

use criterion::{criterion_group, criterion_main, Criterion};

use grape_algorithms::cc::{Cc, CcQuery};
use grape_algorithms::sssp::{Sssp, SsspQuery};
use grape_bench::runner::partition;
use grape_bench::workloads::{self, Scale};
use grape_core::session::GrapeSession;

fn update_latency(c: &mut Criterion) {
    let mut group = c.benchmark_group("update_latency");
    common::configure(&mut group);

    let workers = 4usize;
    let session = GrapeSession::with_workers(workers);
    let batch = workloads::delta_batch_size(Scale::Small);

    // SSSP over traffic, insert-only delta.
    let traffic = workloads::traffic(Scale::Small);
    let delta = workloads::insertion_delta(&traffic, batch, 0xB1);
    let base = partition(&traffic, workers);
    let prepared = session
        .prepare(base.clone(), Sssp, SsspQuery::new(0))
        .expect("prepare sssp");
    group.bench_function("sssp_incremental_update", |b| {
        b.iter(|| {
            let mut p = prepared.clone();
            let report = p.update(&delta).expect("update");
            assert!(report.incremental);
            p.output()
        })
    });
    group.bench_function("sssp_recompute_on_updated_graph", |b| {
        b.iter(|| {
            let applied = base.apply_delta(&delta).expect("apply delta");
            session
                .run(&applied.fragmentation, &Sssp, &SsspQuery::new(0))
                .expect("run")
        })
    });

    // CC over liveJournal, insert-only delta.
    let lj = workloads::livejournal(Scale::Small).to_undirected();
    let delta = workloads::insertion_delta(&lj, batch, 0xB2);
    let base = partition(&lj, workers);
    let prepared = session
        .prepare(base.clone(), Cc, CcQuery)
        .expect("prepare cc");
    group.bench_function("cc_incremental_update", |b| {
        b.iter(|| {
            let mut p = prepared.clone();
            let report = p.update(&delta).expect("update");
            assert!(report.incremental);
            p.output()
        })
    });
    group.bench_function("cc_recompute_on_updated_graph", |b| {
        b.iter(|| {
            let applied = base.apply_delta(&delta).expect("apply delta");
            session
                .run(&applied.fragmentation, &Cc, &CcQuery)
                .expect("run")
        })
    });

    group.finish();
}

criterion_group!(benches, update_latency);
criterion_main!(benches);
