//! Table 1: graph traversal (SSSP) on the traffic stand-in — response time
//! and communication for Giraph-style, Blogel-style and GRAPE engines.

mod common;

use criterion::{criterion_group, criterion_main, Criterion};

use grape_bench::runner::{run_sssp, System};
use grape_bench::workloads::{self, Scale};

fn table1(c: &mut Criterion) {
    let graph = workloads::traffic(Scale::Small);
    let mut group = c.benchmark_group("table1_sssp_traffic");
    common::configure(&mut group);
    for system in System::all() {
        group.bench_function(system.name(), |b| {
            b.iter(|| run_sssp(system, &graph, 0, 4, "traffic"))
        });
    }
    group.finish();
}

criterion_group!(benches, table1);
criterion_main!(benches);
