//! Figure 6(i)–(j): subgraph isomorphism with patterns of shape
//! `|Q| = (6, 10)` (scaled), varying the number of workers.

mod common;

use criterion::{criterion_group, criterion_main, Criterion};

use grape_bench::runner::{run_subiso, System};
use grape_bench::workloads::{self, Scale};

fn fig6_subiso(c: &mut Criterion) {
    let datasets = [
        ("livejournal", workloads::livejournal(Scale::Small)),
        ("dbpedia", workloads::dbpedia(Scale::Small)),
    ];
    for (name, graph) in &datasets {
        let pattern = workloads::subiso_pattern(graph, Scale::Small, 0x52);
        let mut group = c.benchmark_group(format!("fig6_subiso_{name}"));
        common::configure(&mut group);
        for workers in [2usize, 4] {
            for system in System::all() {
                group.bench_function(format!("{}_n{}", system.name(), workers), |b| {
                    b.iter(|| run_subiso(system, graph, &pattern, workers, name))
                });
            }
        }
        group.finish();
    }
}

criterion_group!(benches, fig6_subiso);
criterion_main!(benches);
