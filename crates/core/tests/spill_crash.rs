//! Crash-injection tests for the tiered spill store, driven through the
//! public serving API.
//!
//! The store's contract: every write is atomic (tmp + fsync + rename), so
//! a crash at ANY byte boundary leaves either the previous complete state
//! or a file the reader rejects with [`ServeError::Snapshot`] — never a
//! panic, never a half-rehydrated query.  These tests simulate the crash
//! by truncating the on-disk base/increment at every byte prefix and by
//! flipping the record-count prefixes to absurd values, then assert the
//! query stays evicted and retryable, and that restoring the original
//! bytes recovers the exact pre-eviction answer.

use std::collections::HashMap;
use std::fs;
use std::io::Cursor;
use std::path::{Path, PathBuf};

use grape_core::config::EngineMode;
use grape_core::serve::{GrapeServer, QueryHandle, ServeError};
use grape_core::test_support::{path_graph, session, MinForward};
use grape_graph::delta::GraphDelta;
use grape_graph::io::read_value_tree;
use grape_graph::types::VertexId;
use grape_partition::edge_cut::RangeEdgeCut;
use grape_partition::strategy::PartitionStrategy;

fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("grape-spill-crash-{}-{name}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn server_with_store(mode: EngineMode, dir: &Path) -> (GrapeServer, QueryHandle<MinForward>) {
    let g = path_graph(12);
    let frag = RangeEdgeCut::new(3).partition(&g).unwrap();
    let mut server = GrapeServer::with_spill_dir(session(mode), frag, dir.to_path_buf());
    let h = server.register(MinForward, ()).expect("register");
    (server, h)
}

/// A fresh-vertex edge, so every delta in a stream is valid.
fn nth_delta(i: u64) -> GraphDelta {
    GraphDelta::new().add_edge(12 + i, (i * 5) % 12)
}

fn expect_snapshot_error(server: &mut GrapeServer, h: &QueryHandle<MinForward>, context: &str) {
    match server.rehydrate(h) {
        Err(ServeError::Snapshot(_)) => {}
        other => panic!("{context}: expected ServeError::Snapshot, got {other:?}"),
    }
    assert!(
        server.query_statuses()[h.id()].evicted,
        "{context}: a failed rehydration must leave the query evicted and retryable"
    );
}

/// Asserts that after restoring `bytes` at `path` the query rehydrates and
/// answers exactly `expected`.
fn expect_recovery(
    server: &mut GrapeServer,
    h: &QueryHandle<MinForward>,
    path: &Path,
    bytes: &[u8],
    expected: &HashMap<VertexId, u64>,
) {
    fs::write(path, bytes).expect("restore spill bytes");
    server.rehydrate(h).expect("rehydrate from restored bytes");
    assert_eq!(&server.output(h).expect("output"), expected);
}

#[test]
fn every_truncated_base_prefix_is_a_clean_snapshot_error() {
    for mode in [EngineMode::Sync, EngineMode::Async] {
        let dir = scratch_dir(&format!("base-{mode:?}"));
        let (mut server, h) = server_with_store(mode, &dir);
        server.apply(&nth_delta(0)).expect("apply");
        let expected = server.output(&h).expect("output before evict");
        let spill = server.evict(&h).expect("evict");
        let bytes = fs::read(&spill).expect("read base");
        assert!(bytes.len() > 16, "a base snapshot is never this small");
        for len in 0..bytes.len() {
            fs::write(&spill, &bytes[..len]).expect("truncate");
            expect_snapshot_error(&mut server, &h, &format!("{mode:?} base prefix {len}"));
        }
        expect_recovery(&mut server, &h, &spill, &bytes, &expected);
        let _ = fs::remove_dir_all(&dir);
    }
}

#[test]
fn every_truncated_increment_prefix_is_a_clean_snapshot_error() {
    for mode in [EngineMode::Sync, EngineMode::Async] {
        let dir = scratch_dir(&format!("inc-{mode:?}"));
        let (mut server, h) = server_with_store(mode, &dir);
        server.evict(&h).expect("first evict writes the base");
        server.rehydrate(&h).expect("rehydrate");
        server.apply(&nth_delta(1)).expect("apply while resident");
        let expected = server.output(&h).expect("output before second evict");
        let inc = server.evict(&h).expect("second evict appends an increment");
        assert!(
            inc.to_string_lossy().contains(".inc-"),
            "the second eviction must write an increment, wrote {}",
            inc.display()
        );
        let bytes = fs::read(&inc).expect("read increment");
        for len in 0..bytes.len() {
            fs::write(&inc, &bytes[..len]).expect("truncate");
            expect_snapshot_error(&mut server, &h, &format!("{mode:?} increment prefix {len}"));
        }
        expect_recovery(&mut server, &h, &inc, &bytes, &expected);
        let _ = fs::remove_dir_all(&dir);
    }
}

/// Byte offset of the first `u64` record count in a v2 spill record: after
/// the 6-byte magic/version/kind preamble, a base carries three value
/// trees (header, G_P, quotient tables) and an increment two (header,
/// owner suffix) before its count.
fn count_offset(bytes: &[u8], trees_before_count: usize) -> usize {
    let mut cursor = Cursor::new(&bytes[6..]);
    for _ in 0..trees_before_count {
        read_value_tree(&mut cursor).expect("well-formed prefix tree");
    }
    6 + cursor.position() as usize
}

fn with_count(bytes: &[u8], offset: usize, count: u64) -> Vec<u8> {
    let mut corrupted = bytes.to_vec();
    corrupted[offset..offset + 8].copy_from_slice(&count.to_le_bytes());
    corrupted
}

#[test]
fn flipped_count_prefixes_are_clean_snapshot_errors() {
    let dir = scratch_dir("counts");
    let (mut server, h) = server_with_store(EngineMode::Sync, &dir);
    server.apply(&nth_delta(2)).expect("apply");
    let expected = server.output(&h).expect("output before evict");

    // Base: the fragment count sits after the header, G_P and quotient
    // trees.
    let base = server.evict(&h).expect("evict");
    let bytes = fs::read(&base).expect("read base");
    let offset = count_offset(&bytes, 3);
    let original = u64::from_le_bytes(bytes[offset..offset + 8].try_into().unwrap());
    assert!(
        (1..=16).contains(&original),
        "the count at the computed offset ({original}) is not a plausible fragment count"
    );
    for flipped in [u64::MAX, original + 1, original - 1, 0] {
        fs::write(&base, with_count(&bytes, offset, flipped)).expect("corrupt");
        expect_snapshot_error(&mut server, &h, &format!("base count {flipped}"));
    }
    expect_recovery(&mut server, &h, &base, &bytes, &expected);

    // Increment: the changed-fragment count sits after the header and
    // owner-suffix trees.
    server.apply(&nth_delta(3)).expect("apply");
    let expected = server.output(&h).expect("output before second evict");
    let inc = server.evict(&h).expect("second evict");
    let bytes = fs::read(&inc).expect("read increment");
    let offset = count_offset(&bytes, 2);
    let original = u64::from_le_bytes(bytes[offset..offset + 8].try_into().unwrap());
    for flipped in [u64::MAX, original + 1, original.saturating_sub(1)] {
        if flipped == original {
            continue;
        }
        fs::write(&inc, with_count(&bytes, offset, flipped)).expect("corrupt");
        expect_snapshot_error(&mut server, &h, &format!("increment count {flipped}"));
    }
    expect_recovery(&mut server, &h, &inc, &bytes, &expected);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn bad_magic_and_orphan_tmp_debris_do_not_break_rehydration() {
    let dir = scratch_dir("debris");
    let (mut server, h) = server_with_store(EngineMode::Sync, &dir);
    let expected = server.output(&h).expect("output before evict");
    let base = server.evict(&h).expect("evict");
    let bytes = fs::read(&base).expect("read base");

    // A foreign file under the spill path is rejected, not half-read.
    fs::write(&base, b"GRPX\x02 not a spill").expect("overwrite");
    expect_snapshot_error(&mut server, &h, "bad magic");

    // A kill-9 mid-spill leaves a half-written `.tmp` NEXT TO the intact
    // previous state (the rename never happened).  The orphan must be
    // ignored and the base must still rehydrate.
    fs::write(&base, &bytes).expect("restore");
    let orphan = dir.join("query-0.inc-0.tmp");
    fs::write(&orphan, &bytes[..bytes.len() / 2]).expect("orphan tmp");
    server.rehydrate(&h).expect("rehydrate despite orphan tmp");
    assert_eq!(server.output(&h).expect("output"), expected);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn repeated_evict_apply_rehydrate_chains_match_a_never_evicted_twin() {
    for mode in [EngineMode::Sync, EngineMode::Async] {
        let dir = scratch_dir(&format!("fuzz-{mode:?}"));
        let (mut server, h) = server_with_store(mode, &dir);
        let (mut twin, th) = {
            let g = path_graph(12);
            let frag = RangeEdgeCut::new(3).partition(&g).unwrap();
            let mut twin = GrapeServer::new(session(mode), frag);
            let th = twin.register(MinForward, ()).expect("register twin");
            (twin, th)
        };
        let mut next = 10u64;
        for round in 0..6 {
            server.evict(&h).expect("evict");
            // A varying number of deltas lands while the query is cold.
            for _ in 0..(round % 3) + 1 {
                let delta = nth_delta(next);
                next += 1;
                server.apply(&delta).expect("apply cold");
                twin.apply(&delta).expect("twin apply");
            }
            server.rehydrate(&h).expect("rehydrate");
            assert_eq!(
                server.output(&h).expect("output"),
                twin.output(&th).expect("twin output"),
                "round {round} diverged from the never-evicted twin in {mode:?}"
            );
        }
        let stats = &server.query_statuses()[h.id()];
        assert!(
            stats.spill_bytes > 0,
            "the tiered store persisted across the whole chain"
        );
        let _ = fs::remove_dir_all(&dir);
    }
}
