//! Prepared queries over evolving graphs: **prepare → answer → update**.
//!
//! [`crate::session::GrapeSession::run`] throws every partial result away.
//! That is fine for one-shot analytics, but serving queries over a graph
//! that keeps changing wants the paper's stronger protocol (Section 3.4):
//! pay PEval once, keep the per-fragment partials `Q(F_i)`, and absorb each
//! `ΔG` with IncEval alone.
//!
//! ```text
//! let mut prepared = session.prepare(fragmentation, Sssp, SsspQuery::new(0))?;
//! let q_of_g = prepared.output();          // Q(G), assembled from partials
//! prepared.update(&delta)?;                // Q(G ⊕ ΔG): IncEval only
//! let refreshed = prepared.output();
//! ```
//!
//! [`PreparedQuery`] owns the partitioned fragments, the retained partials
//! and the session policies.  [`PreparedQuery::update`] applies a batched
//! [`GraphDelta`]: the partition layer rebuilds only the affected fragments
//! (maintaining border sets and `G_P`), the program's
//! [`IncrementalPie::rebase`] converts the structural change into seed
//! messages, and the engine re-enters the IncEval fixpoint from the retained
//! state — zero PEval calls for monotone deltas, pinned by
//! [`crate::metrics::EngineMetrics::peval_calls`].  Non-monotone deltas
//! (e.g. edge deletions under SSSP) take the **bounded refresh**: the
//! damage frontier derived from `ΔG` via `G_P` is re-rooted with PEval while
//! every undamaged fragment keeps (and reseeds) its retained partial, so
//! `peval_calls == |damaged|` instead of `num_fragments`; only a frontier
//! covering every fragment degenerates into the classic full
//! re-preparation.  On every path [`PreparedQuery::output`] equals a
//! from-scratch recompute on the updated graph.

use grape_graph::delta::GraphDelta;
use grape_partition::delta::{damage_frontier, DeltaApplication};
use grape_partition::fragment::Fragmentation;

use crate::engine::{prepare_parts, refresh_parts, EngineError, RefreshState};
use crate::metrics::EngineMetrics;
use crate::output_delta::{diff_sorted, DeltaOutput, OutputDelta};
use crate::pie::{IncrementalPie, PieProgram};
use crate::session::GrapeSession;

/// A prepared query: the partitioned graph, the program, the query and the
/// retained per-fragment partial results `Q(F_i)`, ready to be assembled
/// ([`PreparedQuery::output`]) or refreshed under updates
/// ([`PreparedQuery::update`]).
///
/// Created by [`GrapeSession::prepare`].
///
/// Fields are crate-visible so the serving layer
/// ([`crate::serve::GrapeServer`]) can spill a handle's state to disk on
/// eviction and rebuild it on rehydration without re-running PEval.
#[derive(Debug)]
pub struct PreparedQuery<P: PieProgram> {
    pub(crate) session: GrapeSession,
    pub(crate) program: P,
    pub(crate) query: P::Query,
    pub(crate) fragmentation: Fragmentation,
    pub(crate) partials: Vec<P::Partial>,
    pub(crate) prepare_metrics: EngineMetrics,
    pub(crate) last_metrics: EngineMetrics,
    pub(crate) updates_applied: usize,
    pub(crate) incremental_updates: usize,
    pub(crate) bounded_updates: usize,
    /// Set while a refresh has consumed or half-rebased the retained
    /// partials and cleared only when the refresh commits: a handle left
    /// with this flag holds state that corresponds to no graph version.
    pub(crate) poisoned: bool,
}

/// Which refresh path one [`PreparedQuery::update`] took — the decision
/// table of the bounded-refresh protocol (see `docs/ARCHITECTURE.md` §1a).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RefreshKind {
    /// The delta was in the program's monotone direction: affected
    /// fragments were rebased, IncEval alone absorbed the change
    /// (`peval_calls == 0`).
    Monotone,
    /// Non-monotone delta with a localized damage frontier: PEval re-rooted
    /// only the damaged fragments, the rest kept their retained partials
    /// (`peval_calls == repeval.len() < num_fragments`).
    Bounded,
    /// The damage frontier covered every fragment: full re-preparation
    /// (`peval_calls == num_fragments`).
    Full,
}

/// What one [`PreparedQuery::update`] call did.
#[derive(Debug, Clone)]
pub struct UpdateReport {
    /// `true` when the delta was absorbed by the IncEval-only path
    /// (equivalent to `kind == RefreshKind::Monotone`).
    pub incremental: bool,
    /// Which refresh path ran.
    pub kind: RefreshKind,
    /// Number of fragments whose structure changed under the delta
    /// (`== rebuilt.len()`, kept for compatibility).
    pub affected_fragments: usize,
    /// Fragments the partition layer rebuilt because `ΔG` touched their
    /// local structure; everything else was **reused** verbatim (shared
    /// `Arc` storage).
    pub rebuilt: Vec<usize>,
    /// Fragments the engine re-rooted with PEval: empty on the monotone
    /// path, the damage frontier on the bounded path, all fragments on the
    /// full path.  `metrics.peval_calls == repeval.len()` always.
    pub repeval: Vec<usize>,
    /// Number of fragments whose structure the partition layer reused
    /// verbatim (`num_fragments - rebuilt.len()`).
    pub reused: usize,
    /// Engine metrics of the refresh (or of the full re-preparation).
    /// On the monotone path `metrics.peval_calls == 0`.
    pub metrics: EngineMetrics,
}

impl GrapeSession {
    /// Prepares a query: partitions stay as given, PEval + IncEval run to
    /// the fixpoint, and the resulting per-fragment partials are retained in
    /// the returned handle instead of being assembled and dropped.
    ///
    /// `run(&f, &p, &q)` is equivalent to
    /// `prepare(f, p, q).map(|prepared| prepared.output())` — both share the
    /// same engine path; `run` simply skips the retention.
    pub fn prepare<P: PieProgram>(
        &self,
        fragmentation: Fragmentation,
        program: P,
        query: P::Query,
    ) -> Result<PreparedQuery<P>, EngineError> {
        let (partials, metrics) = prepare_parts(
            self.config(),
            self.balancer(),
            self.transport(),
            &fragmentation,
            &program,
            &query,
        )?;
        Ok(PreparedQuery {
            session: self.clone(),
            program,
            query,
            fragmentation,
            partials,
            prepare_metrics: metrics.clone(),
            last_metrics: metrics,
            updates_applied: 0,
            incremental_updates: 0,
            bounded_updates: 0,
            poisoned: false,
        })
    }
}

impl<P: PieProgram> PreparedQuery<P> {
    /// Assembles `Q(G)` from the retained partials.  Cheap relative to a
    /// run: no PEval, no IncEval, no messages — just `Assemble`.
    ///
    /// # Panics
    ///
    /// Panics if the handle is [poisoned](PreparedQuery::is_poisoned) by an
    /// earlier failed [`PreparedQuery::update`]: the retained partials were
    /// consumed or half-rebased when the engine errored, and assembling
    /// them would silently return an empty or garbage answer.  Use
    /// [`PreparedQuery::try_output`] to get an error instead.
    pub fn output(&self) -> P::Output {
        self.try_output()
            .expect("PreparedQuery::output on a poisoned handle (an earlier update failed)")
    }

    /// [`PreparedQuery::output`] that surfaces a poisoned handle as
    /// [`EngineError::PoisonedHandle`] instead of panicking.
    pub fn try_output(&self) -> Result<P::Output, EngineError> {
        if self.poisoned {
            return Err(EngineError::PoisonedHandle);
        }
        Ok(self.program.assemble(&self.query, self.partials.clone()))
    }

    /// Whether an earlier failed update left this handle without a
    /// consistent set of retained partials.  A poisoned handle refuses
    /// [`PreparedQuery::output`] and further updates; re-`prepare` to
    /// recover.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    /// The program this query was prepared with.
    pub fn program(&self) -> &P {
        &self.program
    }

    /// The query `Q`.
    pub fn query(&self) -> &P::Query {
        &self.query
    }

    /// The current fragmentation (reflects every applied delta).
    pub fn fragmentation(&self) -> &Fragmentation {
        &self.fragmentation
    }

    /// Metrics of the initial preparation run.
    pub fn prepare_metrics(&self) -> &EngineMetrics {
        &self.prepare_metrics
    }

    /// Metrics of the most recent engine work (the preparation, or the last
    /// update's refresh / fallback re-preparation).
    pub fn last_metrics(&self) -> &EngineMetrics {
        &self.last_metrics
    }

    /// Number of deltas applied so far (incremental or fallback).
    pub fn updates_applied(&self) -> usize {
        self.updates_applied
    }

    /// Number of deltas absorbed by the IncEval-only path.
    pub fn incremental_updates(&self) -> usize {
        self.incremental_updates
    }

    /// Number of non-monotone deltas absorbed by the bounded refresh
    /// (PEval on the damage frontier only, not everywhere).
    pub fn bounded_updates(&self) -> usize {
        self.bounded_updates
    }
}

impl<P: IncrementalPie> PreparedQuery<P> {
    /// Applies a batched graph update and refreshes the retained partials so
    /// that [`PreparedQuery::output`] returns `Q(G ⊕ ΔG)`.
    ///
    /// The decision table (see `docs/ARCHITECTURE.md` §1a):
    ///
    /// 1. **Monotone** — the delta is in the program's monotone direction
    ///    ([`IncrementalPie::delta_is_monotone`]): affected fragments are
    ///    rebased, their changed update parameters are seeded through `G_P`,
    ///    and the engine iterates **IncEval only** to the new fixpoint from
    ///    the retained state (`metrics.peval_calls == 0`).
    /// 2. **Bounded** — the delta is non-monotone but its *damage frontier*
    ///    ([`IncrementalPie::damage_policy`]) does not cover every fragment:
    ///    PEval re-roots only the damaged fragments, the undamaged ones keep
    ///    their retained partials and — under the reachability policy —
    ///    reseed their border segments into the fixpoint
    ///    (`metrics.peval_calls == |damaged| < num_fragments`).
    /// 3. **Full** — the frontier covers everything: classic full
    ///    re-preparation (PEval everywhere).
    ///
    /// All three produce output identical to a from-scratch recompute on the
    /// updated graph, pinned by `tests/delta_fuzz.rs`.
    ///
    /// On an engine error during the monotone or bounded refresh the handle
    /// is **poisoned** — its partials were consumed or half-rebased, so
    /// [`PreparedQuery::output`] panics, [`PreparedQuery::try_output`] and
    /// further updates return [`EngineError::PoisonedHandle`] — instead of
    /// silently assembling an empty answer.  A delta rejected by the
    /// partition layer, or a failed *full* re-preparation, leaves the
    /// handle consistent at the pre-delta graph.
    pub fn update(&mut self, delta: &GraphDelta) -> Result<UpdateReport, EngineError> {
        if self.poisoned {
            return Err(EngineError::PoisonedHandle);
        }
        let applied = self
            .fragmentation
            .apply_delta(delta)
            .map_err(|e| EngineError::Delta(e.to_string()))?;
        self.refresh_from(&applied, delta)
    }

    /// Refreshes this handle from an **already applied** delta: the second
    /// half of [`PreparedQuery::update`], split out so that
    /// [`crate::serve::GrapeServer`] can run `Fragmentation::apply_delta`
    /// **once** per `ΔG` and fan the resulting [`DeltaApplication`] out to
    /// every registered query.  `self.fragmentation` must be the
    /// fragmentation `applied` was derived from (they share `Arc<Fragment>`
    /// storage for every fragment the delta did not rebuild).
    pub(crate) fn refresh_from(
        &mut self,
        applied: &DeltaApplication,
        delta: &GraphDelta,
    ) -> Result<UpdateReport, EngineError> {
        if self.poisoned {
            return Err(EngineError::PoisonedHandle);
        }
        let session = self.session.clone();
        let m = applied.fragmentation.num_fragments();
        let rebuilt: Vec<usize> = applied.affected.iter().map(|fd| fd.fragment).collect();
        let reused = m - rebuilt.len();

        // A delta that changed no fragment's structure (an empty `ΔG`) is a
        // no-op for every program: the retained partials already *are* the
        // fixpoint.  Short-circuit before the engine — no workers, no
        // transport, no balancer spin-up just to report zero supersteps.
        if applied.affected.is_empty() {
            self.fragmentation = applied.fragmentation.clone();
            self.updates_applied += 1;
            self.incremental_updates += 1;
            let metrics = EngineMetrics {
                program: self.program.name().to_string(),
                workers: session.config().num_workers,
                fragments: m,
                transport: session.transport().name().to_string(),
                incremental: true,
                ..Default::default()
            };
            self.last_metrics = metrics.clone();
            return Ok(UpdateReport {
                incremental: true,
                kind: RefreshKind::Monotone,
                affected_fragments: 0,
                rebuilt,
                repeval: Vec::new(),
                reused,
                metrics,
            });
        }

        // The monotone path needs the program's blessing.  d-hop expansion
        // programs evaluate over expanded fragments the handle does not
        // retain, so their rebase path is unavailable — they go through the
        // bounded refresh, which re-expands exactly the damaged fragments.
        let monotone =
            self.program.delta_is_monotone(delta) && self.program.expansion_hops(&self.query) == 0;

        if monotone {
            // From here until the refresh commits the handle holds rebased
            // and then taken partials: an engine error must not let
            // `output()` assemble them.
            self.poisoned = true;

            // Rebase the affected fragments' partials and collect the seeds.
            let mut seeds = Vec::with_capacity(applied.affected.len());
            for fd in &applied.affected {
                let fi = fd.fragment;
                let old_partial = self.partials[fi].clone();
                let (new_partial, sends) = self.program.rebase(
                    &self.query,
                    self.fragmentation.fragment(fi),
                    applied.fragmentation.fragment(fi),
                    old_partial,
                    fd,
                );
                self.partials[fi] = new_partial;
                if !sends.is_empty() {
                    seeds.push((fi, sends));
                }
            }

            let state = RefreshState {
                partials: std::mem::take(&mut self.partials),
                seeds,
                repeval: Vec::new(),
            };
            let (partials, metrics) = refresh_parts(
                session.config(),
                session.balancer(),
                session.transport(),
                &applied.fragmentation,
                &self.program,
                &self.query,
                state,
            )?;
            self.fragmentation = applied.fragmentation.clone();
            self.partials = partials;
            self.poisoned = false;
            self.updates_applied += 1;
            self.incremental_updates += 1;
            self.last_metrics = metrics.clone();
            return Ok(UpdateReport {
                incremental: true,
                kind: RefreshKind::Monotone,
                affected_fragments: rebuilt.len(),
                rebuilt,
                repeval: Vec::new(),
                reused,
                metrics,
            });
        }

        // Non-monotone: derive the damage frontier from ΔG over the union
        // of the old and new fragment quotient graphs.
        let frontier = damage_frontier(
            &self.fragmentation,
            &applied.fragmentation,
            &rebuilt,
            self.program.damage_policy(&self.query),
            self.program.scope(),
        );
        let repeval = frontier.damaged_ids();

        if repeval.len() == m {
            // The frontier covers everything: classic full re-preparation.
            // Nothing is mutated before `prepare_parts` succeeds, so an
            // error here leaves the handle consistent at the old graph.
            let (partials, metrics) = prepare_parts(
                session.config(),
                session.balancer(),
                session.transport(),
                &applied.fragmentation,
                &self.program,
                &self.query,
            )?;
            self.fragmentation = applied.fragmentation.clone();
            self.partials = partials;
            self.updates_applied += 1;
            self.last_metrics = metrics.clone();
            return Ok(UpdateReport {
                incremental: false,
                kind: RefreshKind::Full,
                affected_fragments: rebuilt.len(),
                rebuilt,
                repeval,
                reused,
                metrics,
            });
        }

        // Bounded refresh: undamaged fragments that feed a damaged one
        // re-emit their retained border segments (the freshly re-rooted
        // fragments have no memory of them); the engine re-runs PEval on
        // the frontier only and iterates IncEval to the fixpoint.
        let mut seeds = Vec::new();
        for &i in &frontier.reseed_sources {
            let sends = self.program.reseed(
                &self.query,
                applied.fragmentation.fragment(i),
                &self.partials[i],
            );
            if !sends.is_empty() {
                seeds.push((i, sends));
            }
        }
        // The taken partials are unrecoverable past this point.
        self.poisoned = true;
        let state = RefreshState {
            partials: std::mem::take(&mut self.partials),
            seeds,
            repeval: repeval.clone(),
        };
        let (partials, metrics) = refresh_parts(
            session.config(),
            session.balancer(),
            session.transport(),
            &applied.fragmentation,
            &self.program,
            &self.query,
            state,
        )?;
        self.fragmentation = applied.fragmentation.clone();
        self.partials = partials;
        self.poisoned = false;
        self.updates_applied += 1;
        self.bounded_updates += 1;
        self.last_metrics = metrics.clone();
        Ok(UpdateReport {
            incremental: false,
            kind: RefreshKind::Bounded,
            affected_fragments: rebuilt.len(),
            rebuilt,
            repeval,
            reused,
            metrics,
        })
    }
}

/// The canonical, key-sorted row form of a [`DeltaOutput`] program's answer.
pub type CanonicalRows<P> = Vec<(<P as DeltaOutput>::OutKey, <P as DeltaOutput>::OutVal)>;

/// What [`PreparedQuery::update_with_delta`] returns: the refresh report
/// plus the typed answer delta the refresh induced.
pub type UpdateWithDelta<P> = (
    UpdateReport,
    OutputDelta<<P as DeltaOutput>::OutKey, <P as DeltaOutput>::OutVal>,
);

impl<P: DeltaOutput> PreparedQuery<P> {
    /// The canonical, key-sorted row form of the current answer
    /// ([`DeltaOutput::canonical`] over a fresh assemble).
    ///
    /// Returns [`EngineError::PoisonedHandle`] on a poisoned handle — a
    /// poisoned handle's partials correspond to no graph version, so they
    /// must never become a diff baseline.
    pub fn canonical_rows(&self) -> Result<CanonicalRows<P>, EngineError> {
        let output = self.try_output()?;
        Ok(self.program.canonical(&self.query, &output))
    }

    /// The [`OutputDelta`] of the current answer relative to `previous`
    /// canonical rows: the program's [`DeltaOutput::diff_output`] fast
    /// path straight from the retained partials when it accepts, the
    /// assemble-and-[`diff_sorted`] fallback otherwise.
    ///
    /// Combined with [`PreparedQuery::update`] this is the push contract:
    /// snapshot `canonical_rows`, apply any number of deltas, and
    /// `output_delta_since` reports exactly which rows changed — folding
    /// several updates into one key-wise-compacted delta for free.
    pub fn output_delta_since(
        &self,
        previous: &[(P::OutKey, P::OutVal)],
    ) -> Result<OutputDelta<P::OutKey, P::OutVal>, EngineError> {
        if self.poisoned {
            return Err(EngineError::PoisonedHandle);
        }
        if let Some(delta) = self
            .program
            .diff_output(&self.query, previous, &self.partials)
        {
            return Ok(delta);
        }
        Ok(diff_sorted(previous, &self.canonical_rows()?))
    }

    /// [`PreparedQuery::update`] that additionally produces the typed
    /// [`OutputDelta`] the update caused, relative to the pre-update
    /// answer.
    pub fn update_with_delta(
        &mut self,
        delta: &GraphDelta,
    ) -> Result<UpdateWithDelta<P>, EngineError> {
        let previous = self.canonical_rows()?;
        let report = self.update(delta)?;
        let output_delta = self.output_delta_since(&previous)?;
        Ok((report, output_delta))
    }
}

impl<P: PieProgram + Clone> Clone for PreparedQuery<P> {
    fn clone(&self) -> Self {
        PreparedQuery {
            session: self.session.clone(),
            program: self.program.clone(),
            query: self.query.clone(),
            fragmentation: self.fragmentation.clone(),
            partials: self.partials.clone(),
            prepare_metrics: self.prepare_metrics.clone(),
            last_metrics: self.last_metrics.clone(),
            updates_applied: self.updates_applied,
            incremental_updates: self.incremental_updates,
            bounded_updates: self.bounded_updates,
            poisoned: self.poisoned,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EngineMode;
    use crate::test_support::{path_graph, ring_graph, session, DivergingOnUpdate, MinForward};
    use grape_partition::edge_cut::RangeEdgeCut;
    use grape_partition::strategy::PartitionStrategy;

    #[test]
    fn prepare_output_equals_run_output() {
        let g = path_graph(12);
        let frag = RangeEdgeCut::new(3).partition(&g).unwrap();
        let s = session(EngineMode::Sync);
        let run = s.run(&frag, &MinForward, &()).unwrap();
        let prepared = s.prepare(frag, MinForward, ()).unwrap();
        assert_eq!(prepared.output(), run.output);
        assert_eq!(prepared.prepare_metrics().peval_calls, 3);
        assert_eq!(prepared.updates_applied(), 0);
    }

    #[test]
    fn monotone_update_runs_zero_pevals_and_matches_recompute() {
        for mode in [EngineMode::Sync, EngineMode::Async] {
            let g = path_graph(12);
            let frag = RangeEdgeCut::new(3).partition(&g).unwrap();
            let s = session(mode);
            let mut prepared = s.prepare(frag, MinForward, ()).unwrap();

            // New edge 8 -> 1 pulls vertex 1's minimum (via nothing — 8's
            // min is 0 through the path) … 0 -> everything stays 0 except
            // upstream vertices.  Add 5 -> 0 instead: makes 0's component
            // minimum stay 0; use a genuinely value-changing edge 7 -> 2?
            // The path means min(v) = 0 for all v already.  Add a detached
            // cluster first via vertex insertion, then bridge it.
            let grow = GraphDelta::new().add_edge(20, 21).add_edge(21, 22);
            let report = prepared.update(&grow).unwrap();
            assert!(report.incremental);
            assert_eq!(report.metrics.peval_calls, 0);
            assert!(report.metrics.incremental);

            // Bridge: 3 -> 20 drags min 0 into the new cluster.
            let bridge = GraphDelta::new().add_edge(3, 20);
            let report = prepared.update(&bridge).unwrap();
            assert!(report.incremental);
            assert_eq!(report.metrics.peval_calls, 0);

            // Equivalence with a full recompute on the updated graph.
            let recompute = s.run(prepared.fragmentation(), &MinForward, &()).unwrap();
            assert_eq!(prepared.output(), recompute.output, "{mode:?}");
            assert_eq!(prepared.output()[&22], 0, "{mode:?}");
            assert_eq!(prepared.updates_applied(), 2);
            assert_eq!(prepared.incremental_updates(), 2);
        }
    }

    #[test]
    fn non_monotone_update_falls_back_to_full_reprepare() {
        // Deleting the only cross edge damages both fragments (the stale
        // downstream fragment is reachable through the OLD quotient graph),
        // so the frontier covers everything: full re-preparation.
        let g = path_graph(8);
        let frag = RangeEdgeCut::new(2).partition(&g).unwrap();
        let s = session(EngineMode::Sync);
        let mut prepared = s.prepare(frag, MinForward, ()).unwrap();
        let report = prepared
            .update(&GraphDelta::new().remove_edge(3, 4))
            .unwrap();
        assert!(!report.incremental);
        assert_eq!(report.kind, RefreshKind::Full);
        assert_eq!(report.metrics.peval_calls, 2, "full re-preparation");
        assert_eq!(report.repeval, vec![0, 1]);
        let recompute = s.run(prepared.fragmentation(), &MinForward, &()).unwrap();
        assert_eq!(prepared.output(), recompute.output);
        // The cut path: 4..8 no longer reach min 0.
        assert_eq!(prepared.output()[&5], 4);
        assert_eq!(prepared.incremental_updates(), 0);
    }

    #[test]
    fn localized_deletion_takes_the_bounded_refresh() {
        // Path 0..12 over three range fragments {0..4}, {4..8}, {8..12}.
        // Deleting the fragment-local edge 5 → 6 damages F1 and (via Out-
        // scope reachability) its downstream F2 — but never F0, whose
        // retained partial is reused and whose border value is reseeded.
        for mode in [EngineMode::Sync, EngineMode::Async] {
            let g = path_graph(12);
            let frag = RangeEdgeCut::new(3).partition(&g).unwrap();
            let s = session(mode);
            let mut prepared = s.prepare(frag, MinForward, ()).unwrap();
            let report = prepared
                .update(&GraphDelta::new().remove_edge(5, 6))
                .unwrap();
            assert!(!report.incremental, "{mode:?}");
            assert_eq!(report.kind, RefreshKind::Bounded, "{mode:?}");
            assert_eq!(report.rebuilt, vec![1], "only F1 changed structurally");
            assert_eq!(report.repeval, vec![1, 2], "damage frontier ({mode:?})");
            assert_eq!(
                report.metrics.peval_calls, 2,
                "peval_calls == |damaged| < num_fragments ({mode:?})"
            );
            assert_eq!(report.reused, 2);
            assert!(report.metrics.incremental);
            assert_eq!(prepared.bounded_updates(), 1);

            let recompute = s.run(prepared.fragmentation(), &MinForward, &()).unwrap();
            assert_eq!(prepared.output(), recompute.output, "{mode:?}");
            // The deletion cuts min-0 propagation at vertex 6.
            assert_eq!(prepared.output()[&5], 0, "{mode:?}");
            assert_eq!(prepared.output()[&7], 6, "{mode:?}");
            assert_eq!(prepared.output()[&11], 6, "{mode:?}");
        }
    }

    #[test]
    fn empty_delta_is_a_cheap_noop_refresh() {
        let g = path_graph(9);
        let frag = RangeEdgeCut::new(3).partition(&g).unwrap();
        let s = session(EngineMode::Sync);
        let mut prepared = s.prepare(frag, MinForward, ()).unwrap();
        let before = prepared.output();
        let report = prepared.update(&GraphDelta::new()).unwrap();
        assert!(report.incremental);
        assert_eq!(report.affected_fragments, 0);
        assert_eq!(report.metrics.peval_calls, 0);
        assert_eq!(report.metrics.inceval_calls, 0);
        assert_eq!(report.metrics.supersteps, 0);
        assert_eq!(prepared.output(), before);
    }

    #[test]
    fn delta_errors_surface_as_engine_errors() {
        let g = path_graph(6);
        let frag = RangeEdgeCut::new(2).partition(&g).unwrap();
        let s = session(EngineMode::Sync);
        let mut prepared = s.prepare(frag, MinForward, ()).unwrap();
        let err = prepared
            .update(&GraphDelta::new().remove_edge(5, 0))
            .unwrap_err();
        assert!(matches!(err, EngineError::Delta(_)));
        // A delta the partition layer rejected never touched the retained
        // partials: the handle stays consistent, not poisoned.
        assert!(!prepared.is_poisoned());
        assert_eq!(prepared.output()[&3], 0);
    }

    /// Regression for the silently-poisoned error path: a refresh that
    /// errors after consuming the retained partials must leave the handle
    /// *explicitly* stale — `output()` used to assemble the taken-out
    /// (empty) partials and silently return an empty result.
    #[test]
    fn failed_refresh_poisons_the_handle_instead_of_emptying_it() {
        let g = ring_graph(8);
        let frag = RangeEdgeCut::new(2).partition(&g).unwrap();
        let s = GrapeSession::builder()
            .workers(2)
            .mode(EngineMode::Sync)
            .max_supersteps(4)
            .build()
            .unwrap();
        // PEval converges instantly; the seeded refresh escalates forever.
        let mut prepared = s.prepare(frag, DivergingOnUpdate, ()).unwrap();
        assert!(!prepared.is_poisoned());

        let err = prepared
            .update(&GraphDelta::new().add_edge(0, 2))
            .unwrap_err();
        assert_eq!(err, EngineError::DidNotConverge { max_supersteps: 4 });

        // The handle is explicitly stale, on every read path.
        assert!(prepared.is_poisoned());
        assert!(matches!(
            prepared.try_output().unwrap_err(),
            EngineError::PoisonedHandle
        ));
        assert!(matches!(
            prepared.update(&GraphDelta::new()).unwrap_err(),
            EngineError::PoisonedHandle
        ));
        // Poison is part of the state: clones of a wrecked handle are
        // equally unusable.
        assert!(prepared.clone().is_poisoned());
    }

    #[test]
    #[should_panic(expected = "poisoned")]
    fn output_on_a_poisoned_handle_panics_loudly() {
        let g = ring_graph(8);
        let frag = RangeEdgeCut::new(2).partition(&g).unwrap();
        let s = GrapeSession::builder()
            .workers(2)
            .mode(EngineMode::Sync)
            .max_supersteps(4)
            .build()
            .unwrap();
        let mut prepared = s.prepare(frag, DivergingOnUpdate, ()).unwrap();
        let _ = prepared.update(&GraphDelta::new().add_edge(0, 2));
        let _ = prepared.output(); // must panic, not return 0
    }

    /// The empty-delta short-circuit must answer before entering the
    /// engine.  Pinned through a side door: `refresh_parts` categorically
    /// rejects failure-injection sessions, so a no-op update succeeding on
    /// one proves the engine was never spun up.
    #[test]
    fn empty_delta_short_circuits_before_the_engine() {
        let g = path_graph(9);
        let frag = RangeEdgeCut::new(3).partition(&g).unwrap();
        let s = GrapeSession::builder()
            .workers(2)
            .mode(EngineMode::Sync)
            .checkpoint_every(1)
            .inject_failure(99, 0) // never fires during prepare
            .build()
            .unwrap();
        let mut prepared = s.prepare(frag, MinForward, ()).unwrap();
        let before = prepared.output();
        let report = prepared.update(&GraphDelta::new()).unwrap();
        assert!(report.incremental);
        assert_eq!(report.kind, RefreshKind::Monotone);
        assert!(report.rebuilt.is_empty());
        assert_eq!(report.reused, 3);
        assert_eq!(report.metrics.supersteps, 0);
        assert_eq!(report.metrics.seed_messages, 0);
        assert_eq!(report.metrics.total_messages, 0);
        assert_eq!(prepared.output(), before);
        assert_eq!(prepared.updates_applied(), 1);
        assert_eq!(prepared.incremental_updates(), 1);
    }

    /// Two clones applying different deltas must not alias state through
    /// the shared `Arc<Fragment>` storage: copy-on-write at the
    /// fragmentation level, pinned fragment by fragment.
    #[test]
    fn cloned_handles_diverge_without_aliasing_state() {
        let g = path_graph(12);
        let frag = RangeEdgeCut::new(3).partition(&g).unwrap();
        let s = session(EngineMode::Sync);
        let mut a = s.prepare(frag, MinForward, ()).unwrap();
        let mut b = a.clone();
        for i in 0..3 {
            assert!(
                a.fragmentation()
                    .shares_fragment_storage(b.fragmentation(), i),
                "clones start fully shared (fragment {i})"
            );
        }

        // a: monotone insert local to F0.  b: bounded deletion rebuilding F1.
        a.update(&GraphDelta::new().add_edge(0, 2)).unwrap();
        b.update(&GraphDelta::new().remove_edge(5, 6)).unwrap();

        // Each clone equals an independent recompute over ITS graph version.
        let ra = s.run(a.fragmentation(), &MinForward, &()).unwrap();
        assert_eq!(a.output(), ra.output);
        let rb = s.run(b.fragmentation(), &MinForward, &()).unwrap();
        assert_eq!(b.output(), rb.output);
        // And the versions genuinely diverged: a's path is intact, b's cut.
        assert_eq!(a.output()[&7], 0);
        assert_eq!(b.output()[&7], 6);

        // Copy-on-write surface: only the fragments each delta rebuilt were
        // unshared; the fragment neither touched is still one allocation.
        assert!(!a
            .fragmentation()
            .shares_fragment_storage(b.fragmentation(), 0));
        assert!(!a
            .fragmentation()
            .shares_fragment_storage(b.fragmentation(), 1));
        assert!(
            a.fragmentation()
                .shares_fragment_storage(b.fragmentation(), 2),
            "fragment 2 was structurally untouched by both deltas"
        );
    }
}
