//! Prepared queries over evolving graphs: **prepare → answer → update**.
//!
//! [`crate::session::GrapeSession::run`] throws every partial result away.
//! That is fine for one-shot analytics, but serving queries over a graph
//! that keeps changing wants the paper's stronger protocol (Section 3.4):
//! pay PEval once, keep the per-fragment partials `Q(F_i)`, and absorb each
//! `ΔG` with IncEval alone.
//!
//! ```text
//! let mut prepared = session.prepare(fragmentation, Sssp, SsspQuery::new(0))?;
//! let q_of_g = prepared.output();          // Q(G), assembled from partials
//! prepared.update(&delta)?;                // Q(G ⊕ ΔG): IncEval only
//! let refreshed = prepared.output();
//! ```
//!
//! [`PreparedQuery`] owns the partitioned fragments, the retained partials
//! and the session policies.  [`PreparedQuery::update`] applies a batched
//! [`GraphDelta`]: the partition layer rebuilds only the affected fragments
//! (maintaining border sets and `G_P`), the program's
//! [`IncrementalPie::rebase`] converts the structural change into seed
//! messages, and the engine re-enters the IncEval fixpoint from the retained
//! state — zero PEval calls for monotone deltas, pinned by
//! [`crate::metrics::EngineMetrics::peval_calls`].  Non-monotone deltas
//! (e.g. edge deletions under SSSP) transparently fall back to a full
//! re-preparation, so [`PreparedQuery::output`] always equals a from-scratch
//! recompute on the updated graph.

use grape_graph::delta::GraphDelta;
use grape_partition::fragment::Fragmentation;

use crate::engine::{prepare_parts, refresh_parts, EngineError, RefreshState};
use crate::metrics::EngineMetrics;
use crate::pie::{IncrementalPie, PieProgram};
use crate::session::GrapeSession;

/// A prepared query: the partitioned graph, the program, the query and the
/// retained per-fragment partial results `Q(F_i)`, ready to be assembled
/// ([`PreparedQuery::output`]) or refreshed under updates
/// ([`PreparedQuery::update`]).
///
/// Created by [`GrapeSession::prepare`].
#[derive(Debug)]
pub struct PreparedQuery<P: PieProgram> {
    session: GrapeSession,
    program: P,
    query: P::Query,
    fragmentation: Fragmentation,
    partials: Vec<P::Partial>,
    prepare_metrics: EngineMetrics,
    last_metrics: EngineMetrics,
    updates_applied: usize,
    incremental_updates: usize,
}

/// What one [`PreparedQuery::update`] call did.
#[derive(Debug, Clone)]
pub struct UpdateReport {
    /// `true` when the delta was absorbed by the IncEval-only path;
    /// `false` when it forced a full re-preparation (PEval everywhere).
    pub incremental: bool,
    /// Number of fragments whose structure changed under the delta (and,
    /// on the incremental path, were rebased).
    pub affected_fragments: usize,
    /// Engine metrics of the refresh (or of the fallback re-preparation).
    /// On the incremental path `metrics.peval_calls == 0`.
    pub metrics: EngineMetrics,
}

impl GrapeSession {
    /// Prepares a query: partitions stay as given, PEval + IncEval run to
    /// the fixpoint, and the resulting per-fragment partials are retained in
    /// the returned handle instead of being assembled and dropped.
    ///
    /// `run(&f, &p, &q)` is equivalent to
    /// `prepare(f, p, q).map(|prepared| prepared.output())` — both share the
    /// same engine path; `run` simply skips the retention.
    pub fn prepare<P: PieProgram>(
        &self,
        fragmentation: Fragmentation,
        program: P,
        query: P::Query,
    ) -> Result<PreparedQuery<P>, EngineError> {
        let (partials, metrics) = prepare_parts(
            self.config(),
            self.balancer(),
            self.transport(),
            &fragmentation,
            &program,
            &query,
        )?;
        Ok(PreparedQuery {
            session: self.clone(),
            program,
            query,
            fragmentation,
            partials,
            prepare_metrics: metrics.clone(),
            last_metrics: metrics,
            updates_applied: 0,
            incremental_updates: 0,
        })
    }
}

impl<P: PieProgram> PreparedQuery<P> {
    /// Assembles `Q(G)` from the retained partials.  Cheap relative to a
    /// run: no PEval, no IncEval, no messages — just `Assemble`.
    pub fn output(&self) -> P::Output {
        self.program.assemble(&self.query, self.partials.clone())
    }

    /// The program this query was prepared with.
    pub fn program(&self) -> &P {
        &self.program
    }

    /// The query `Q`.
    pub fn query(&self) -> &P::Query {
        &self.query
    }

    /// The current fragmentation (reflects every applied delta).
    pub fn fragmentation(&self) -> &Fragmentation {
        &self.fragmentation
    }

    /// Metrics of the initial preparation run.
    pub fn prepare_metrics(&self) -> &EngineMetrics {
        &self.prepare_metrics
    }

    /// Metrics of the most recent engine work (the preparation, or the last
    /// update's refresh / fallback re-preparation).
    pub fn last_metrics(&self) -> &EngineMetrics {
        &self.last_metrics
    }

    /// Number of deltas applied so far (incremental or fallback).
    pub fn updates_applied(&self) -> usize {
        self.updates_applied
    }

    /// Number of deltas absorbed by the IncEval-only path.
    pub fn incremental_updates(&self) -> usize {
        self.incremental_updates
    }
}

impl<P: IncrementalPie> PreparedQuery<P> {
    /// Applies a batched graph update and refreshes the retained partials so
    /// that [`PreparedQuery::output`] returns `Q(G ⊕ ΔG)`.
    ///
    /// For a delta the program declares monotone
    /// ([`IncrementalPie::delta_is_monotone`]), the refresh runs **IncEval
    /// only**: affected fragments are rebased, their changed update
    /// parameters are seeded through `G_P`, and the engine iterates to the
    /// new fixpoint from the retained state (`metrics.peval_calls == 0`).
    /// Otherwise the handle transparently re-prepares from scratch on the
    /// updated graph — same answer, full cost.
    ///
    /// On error the handle must be considered stale: re-`prepare` before
    /// trusting [`PreparedQuery::output`] again.
    pub fn update(&mut self, delta: &GraphDelta) -> Result<UpdateReport, EngineError> {
        let applied = self
            .fragmentation
            .apply_delta(delta)
            .map_err(|e| EngineError::Delta(e.to_string()))?;
        let session = self.session.clone();

        // d-hop expansion programs evaluate over expanded fragments the
        // handle does not retain; their deltas always take the fallback.
        let monotone =
            self.program.delta_is_monotone(delta) && self.program.expansion_hops(&self.query) == 0;

        if !monotone {
            let (partials, metrics) = prepare_parts(
                session.config(),
                session.balancer(),
                session.transport(),
                &applied.fragmentation,
                &self.program,
                &self.query,
            )?;
            self.fragmentation = applied.fragmentation;
            self.partials = partials;
            self.updates_applied += 1;
            self.last_metrics = metrics.clone();
            return Ok(UpdateReport {
                incremental: false,
                affected_fragments: applied.affected.len(),
                metrics,
            });
        }

        // Rebase the affected fragments' partials and collect the seeds.
        let mut seeds = Vec::with_capacity(applied.affected.len());
        for fd in &applied.affected {
            let fi = fd.fragment;
            let old_partial = self.partials[fi].clone();
            let (new_partial, sends) = self.program.rebase(
                &self.query,
                self.fragmentation.fragment(fi),
                applied.fragmentation.fragment(fi),
                old_partial,
                fd,
            );
            self.partials[fi] = new_partial;
            if !sends.is_empty() {
                seeds.push((fi, sends));
            }
        }

        let state = RefreshState {
            partials: std::mem::take(&mut self.partials),
            seeds,
        };
        let (partials, metrics) = refresh_parts(
            session.config(),
            session.balancer(),
            session.transport(),
            &applied.fragmentation,
            &self.program,
            &self.query,
            state,
        )?;
        self.fragmentation = applied.fragmentation;
        self.partials = partials;
        self.updates_applied += 1;
        self.incremental_updates += 1;
        self.last_metrics = metrics.clone();
        Ok(UpdateReport {
            incremental: true,
            affected_fragments: applied.affected.len(),
            metrics,
        })
    }
}

impl<P: PieProgram + Clone> Clone for PreparedQuery<P> {
    fn clone(&self) -> Self {
        PreparedQuery {
            session: self.session.clone(),
            program: self.program.clone(),
            query: self.query.clone(),
            fragmentation: self.fragmentation.clone(),
            partials: self.partials.clone(),
            prepare_metrics: self.prepare_metrics.clone(),
            last_metrics: self.last_metrics.clone(),
            updates_applied: self.updates_applied,
            incremental_updates: self.incremental_updates,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EngineMode;
    use crate::pie::Messages;
    use grape_graph::builder::GraphBuilder;
    use grape_graph::types::{Edge, VertexId};
    use grape_partition::delta::FragmentDelta;
    use grape_partition::edge_cut::RangeEdgeCut;
    use grape_partition::fragment::Fragment;
    use grape_partition::fragmentation_graph::BorderScope;
    use grape_partition::strategy::PartitionStrategy;
    use std::collections::HashMap;

    /// Forward min-id propagation, keyed by **global** id so the partial
    /// survives fragment rebuilds without remapping — the smallest possible
    /// `IncrementalPie` program.
    #[derive(Clone)]
    struct MinForward;

    type MinPartial = HashMap<VertexId, u64>;

    fn local_fixpoint(frag: &Fragment, values: &mut MinPartial) {
        let mut changed = true;
        while changed {
            changed = false;
            for l in frag.all_locals() {
                let v = frag.global_of(l);
                let mine = values[&v];
                for n in frag.out_edges(l) {
                    let t = frag.global_of(n.target as u32);
                    if mine < values[&t] {
                        values.insert(t, mine);
                        changed = true;
                    }
                }
            }
        }
    }

    impl PieProgram for MinForward {
        type Query = ();
        type Partial = MinPartial;
        type Key = VertexId;
        type Value = u64;
        type Output = HashMap<VertexId, u64>;

        fn name(&self) -> &str {
            "min-forward"
        }

        fn scope(&self) -> BorderScope {
            BorderScope::Out
        }

        fn peval(&self, _q: &(), frag: &Fragment, ctx: &mut Messages<VertexId, u64>) -> MinPartial {
            let mut values: MinPartial = frag
                .all_locals()
                .map(|l| (frag.global_of(l), frag.global_of(l)))
                .collect();
            local_fixpoint(frag, &mut values);
            for &l in frag.out_border_locals() {
                let v = frag.global_of(l);
                ctx.send(v, values[&v]);
            }
            values
        }

        fn inc_eval(
            &self,
            _q: &(),
            frag: &Fragment,
            partial: &mut MinPartial,
            messages: &[(VertexId, u64)],
            ctx: &mut Messages<VertexId, u64>,
        ) {
            let mut touched = false;
            for (v, value) in messages {
                if partial.get(v).is_some_and(|cur| value < cur) {
                    partial.insert(*v, *value);
                    touched = true;
                }
            }
            if touched {
                let before = partial.clone();
                local_fixpoint(frag, partial);
                for &l in frag.out_border_locals() {
                    let v = frag.global_of(l);
                    if partial[&v] < before[&v] {
                        ctx.send(v, partial[&v]);
                    }
                }
            }
        }

        fn assemble(&self, _q: &(), partials: Vec<MinPartial>) -> HashMap<VertexId, u64> {
            let mut out = HashMap::new();
            for p in partials {
                for (v, value) in p {
                    out.entry(v)
                        .and_modify(|x: &mut u64| *x = (*x).min(value))
                        .or_insert(value);
                }
            }
            out
        }

        fn aggregate(&self, _key: &VertexId, a: u64, b: u64) -> u64 {
            a.min(b)
        }
    }

    impl IncrementalPie for MinForward {
        fn delta_is_monotone(&self, delta: &GraphDelta) -> bool {
            !delta.has_removals()
        }

        fn rebase(
            &self,
            _query: &(),
            _old_frag: &Fragment,
            new_frag: &Fragment,
            mut partial: MinPartial,
            _delta: &FragmentDelta,
        ) -> (MinPartial, Vec<(VertexId, u64)>) {
            let old: MinPartial = partial.clone();
            // New locals start at their own id; re-run the local fixpoint.
            for l in new_frag.all_locals() {
                let v = new_frag.global_of(l);
                partial.entry(v).or_insert(v);
            }
            partial.retain(|&v, _| new_frag.local_of(v).is_some());
            local_fixpoint(new_frag, &mut partial);
            let mut sends = Vec::new();
            for &l in new_frag.out_border_locals() {
                let v = new_frag.global_of(l);
                if partial[&v] < old.get(&v).copied().unwrap_or(u64::MAX) {
                    sends.push((v, partial[&v]));
                }
            }
            (partial, sends)
        }
    }

    fn path_graph(n: u64) -> grape_graph::graph::Graph {
        let mut b = GraphBuilder::directed();
        for v in 0..n - 1 {
            b.push_edge(Edge::unweighted(v, v + 1));
        }
        b.build()
    }

    fn session(mode: EngineMode) -> GrapeSession {
        GrapeSession::builder()
            .workers(2)
            .mode(mode)
            .build()
            .unwrap()
    }

    #[test]
    fn prepare_output_equals_run_output() {
        let g = path_graph(12);
        let frag = RangeEdgeCut::new(3).partition(&g).unwrap();
        let s = session(EngineMode::Sync);
        let run = s.run(&frag, &MinForward, &()).unwrap();
        let prepared = s.prepare(frag, MinForward, ()).unwrap();
        assert_eq!(prepared.output(), run.output);
        assert_eq!(prepared.prepare_metrics().peval_calls, 3);
        assert_eq!(prepared.updates_applied(), 0);
    }

    #[test]
    fn monotone_update_runs_zero_pevals_and_matches_recompute() {
        for mode in [EngineMode::Sync, EngineMode::Async] {
            let g = path_graph(12);
            let frag = RangeEdgeCut::new(3).partition(&g).unwrap();
            let s = session(mode);
            let mut prepared = s.prepare(frag, MinForward, ()).unwrap();

            // New edge 8 -> 1 pulls vertex 1's minimum (via nothing — 8's
            // min is 0 through the path) … 0 -> everything stays 0 except
            // upstream vertices.  Add 5 -> 0 instead: makes 0's component
            // minimum stay 0; use a genuinely value-changing edge 7 -> 2?
            // The path means min(v) = 0 for all v already.  Add a detached
            // cluster first via vertex insertion, then bridge it.
            let grow = GraphDelta::new().add_edge(20, 21).add_edge(21, 22);
            let report = prepared.update(&grow).unwrap();
            assert!(report.incremental);
            assert_eq!(report.metrics.peval_calls, 0);
            assert!(report.metrics.incremental);

            // Bridge: 3 -> 20 drags min 0 into the new cluster.
            let bridge = GraphDelta::new().add_edge(3, 20);
            let report = prepared.update(&bridge).unwrap();
            assert!(report.incremental);
            assert_eq!(report.metrics.peval_calls, 0);

            // Equivalence with a full recompute on the updated graph.
            let recompute = s.run(prepared.fragmentation(), &MinForward, &()).unwrap();
            assert_eq!(prepared.output(), recompute.output, "{mode:?}");
            assert_eq!(prepared.output()[&22], 0, "{mode:?}");
            assert_eq!(prepared.updates_applied(), 2);
            assert_eq!(prepared.incremental_updates(), 2);
        }
    }

    #[test]
    fn non_monotone_update_falls_back_to_full_reprepare() {
        let g = path_graph(8);
        let frag = RangeEdgeCut::new(2).partition(&g).unwrap();
        let s = session(EngineMode::Sync);
        let mut prepared = s.prepare(frag, MinForward, ()).unwrap();
        let report = prepared
            .update(&GraphDelta::new().remove_edge(3, 4))
            .unwrap();
        assert!(!report.incremental);
        assert_eq!(report.metrics.peval_calls, 2, "full re-preparation");
        let recompute = s.run(prepared.fragmentation(), &MinForward, &()).unwrap();
        assert_eq!(prepared.output(), recompute.output);
        // The cut path: 4..8 no longer reach min 0.
        assert_eq!(prepared.output()[&5], 4);
        assert_eq!(prepared.incremental_updates(), 0);
    }

    #[test]
    fn empty_delta_is_a_cheap_noop_refresh() {
        let g = path_graph(9);
        let frag = RangeEdgeCut::new(3).partition(&g).unwrap();
        let s = session(EngineMode::Sync);
        let mut prepared = s.prepare(frag, MinForward, ()).unwrap();
        let before = prepared.output();
        let report = prepared.update(&GraphDelta::new()).unwrap();
        assert!(report.incremental);
        assert_eq!(report.affected_fragments, 0);
        assert_eq!(report.metrics.peval_calls, 0);
        assert_eq!(report.metrics.inceval_calls, 0);
        assert_eq!(report.metrics.supersteps, 0);
        assert_eq!(prepared.output(), before);
    }

    #[test]
    fn delta_errors_surface_as_engine_errors() {
        let g = path_graph(6);
        let frag = RangeEdgeCut::new(2).partition(&g).unwrap();
        let s = session(EngineMode::Sync);
        let mut prepared = s.prepare(frag, MinForward, ()).unwrap();
        let err = prepared
            .update(&GraphDelta::new().remove_edge(5, 0))
            .unwrap_err();
        assert!(matches!(err, EngineError::Delta(_)));
    }
}
