//! The PIE programming model (Section 3 of the paper).
//!
//! A *PIE program* consists of three sequential functions — `PEval`,
//! `IncEval` and `Assemble` — together with a *message preamble*: the
//! declaration of status variables attached to border vertices (the *update
//! parameters* `C_i.x̄`), a [`crate::pie::PieProgram::scope`] selecting
//! whether they live on `F_i.O`, `F_i.I` or both, and an `aggregateMsg`
//! conflict-resolution function.
//!
//! The GRAPE engine takes care of everything else: running PEval on every
//! fragment in parallel, collecting the changed update parameters, resolving
//! conflicts, routing them via the fragmentation graph `G_P`, iterating
//! IncEval to a fixpoint and finally calling Assemble.

use std::collections::HashMap;
use std::hash::Hash;

use grape_graph::delta::GraphDelta;
use grape_graph::types::VertexId;
use grape_partition::delta::FragmentDelta;
use grape_partition::fragment::Fragment;
use grape_partition::fragmentation_graph::BorderScope;
use serde::{Deserialize, Error as SerdeError, Serialize, Value};

pub use grape_partition::delta::DamagePolicy;

/// An `aggregateMsg` conflict-resolution function, borrowed from the PIE
/// program for the duration of one evaluation or one run.
pub type AggregateFn<'a, K, V> = &'a (dyn Fn(&K, V, V) -> V + Sync);

/// Message keys identify an update parameter (a status variable).  The engine
/// only needs to know which *vertex* the variable is attached to in order to
/// route it through `G_P`; everything else about the key is opaque.
pub trait KeyVertex {
    /// The border vertex this update parameter is attached to.
    fn vertex(&self) -> VertexId;
}

impl KeyVertex for VertexId {
    fn vertex(&self) -> VertexId {
        *self
    }
}

/// Keys of the form `(tag, vertex)` — e.g. graph simulation attaches one
/// Boolean variable `x_(u, v)` per (query node `u`, border vertex `v`) pair.
impl KeyVertex for (u32, VertexId) {
    fn vertex(&self) -> VertexId {
        self.1
    }
}

/// Message buffer handed to `PEval` / `IncEval`, playing the role of the
/// *message segment* of the paper's programming interface: the program pushes
/// the (changed) values of its update parameters here, and the engine turns
/// them into messages.
///
/// When constructed with [`Messages::with_aggregator`] (which is how the
/// engine hands it to programs), duplicate sends of the same key are
/// **coalesced at insert time** with the program's `aggregateMsg` function —
/// a program that declares `dist(s, v)` twice in one evaluation buffers only
/// the winning value, and the buffer never grows beyond one entry per key.
pub struct Messages<'a, K, V> {
    updates: Vec<(K, V)>,
    /// Key → position in `updates`; only maintained when `agg` is set.
    index: HashMap<K, usize>,
    agg: Option<AggregateFn<'a, K, V>>,
}

impl<K, V> std::fmt::Debug for Messages<'_, K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Messages")
            .field("updates", &self.updates.len())
            .field("coalescing", &self.agg.is_some())
            .finish()
    }
}

impl<'a, K, V> Messages<'a, K, V> {
    /// Creates an empty buffer that keeps duplicate keys verbatim.
    pub fn new() -> Self {
        Messages {
            updates: Vec::new(),
            index: HashMap::new(),
            agg: None,
        }
    }

    /// Creates an empty buffer that coalesces duplicate keys at insert time
    /// with the given `aggregateMsg` function (what the engine does with
    /// [`PieProgram::aggregate`]).
    pub fn with_aggregator(agg: AggregateFn<'a, K, V>) -> Self {
        Messages {
            updates: Vec::new(),
            index: HashMap::new(),
            agg: Some(agg),
        }
    }

    /// Declares that the update parameter `key` now has value `value`.
    ///
    /// Programs should only send *changed* values (e.g. SSSP sends
    /// `dist(s, v)` only when it decreased) — this is what keeps GRAPE's
    /// communication so much below the vertex-centric systems.  Competing
    /// sends of the same key are resolved by the aggregator when one was
    /// installed (e.g. `min` keeps the shortest SSSP distance).
    pub fn send(&mut self, key: K, value: V)
    where
        K: Clone + Eq + Hash,
        V: Clone,
    {
        match self.agg {
            Some(agg) => match self.index.get(&key) {
                Some(&i) => {
                    let slot = &mut self.updates[i].1;
                    *slot = agg(&key, slot.clone(), value);
                }
                None => {
                    self.index.insert(key.clone(), self.updates.len());
                    self.updates.push((key, value));
                }
            },
            None => self.updates.push((key, value)),
        }
    }

    /// Number of buffered updates.
    pub fn len(&self) -> usize {
        self.updates.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.updates.is_empty()
    }

    /// Drains the buffered updates (used by the engine).
    pub fn take(&mut self) -> Vec<(K, V)> {
        self.index.clear();
        std::mem::take(&mut self.updates)
    }
}

impl<K, V> Default for Messages<'_, K, V> {
    fn default() -> Self {
        Self::new()
    }
}

/// A PIE program: sequential `PEval`, `IncEval`, `Assemble` plus the message
/// preamble (update-parameter scope and `aggregateMsg`).
///
/// The type parameters mirror the paper:
///
/// * [`PieProgram::Query`] — the query `Q ∈ 𝒬`,
/// * [`PieProgram::Partial`] — the partial result `Q(F_i)` kept at worker `i`
///   between supersteps,
/// * [`PieProgram::Key`] / [`PieProgram::Value`] — an update parameter
///   (status variable) and its value,
/// * [`PieProgram::Output`] — the assembled answer `Q(G)`.
pub trait PieProgram: Send + Sync {
    /// The query type `Q`.
    type Query: Clone + Send + Sync + 'static;
    /// Per-fragment partial result `Q(F_i)`, persisted across supersteps.
    /// `Clone` is required so the engine can checkpoint it for fault
    /// tolerance.
    type Partial: Clone + Send + 'static;
    /// Identity of an update parameter.
    type Key: KeyVertex + Clone + Eq + Hash + Send + Sync + 'static;
    /// Value of an update parameter.
    type Value: Clone + PartialEq + Send + Sync + 'static;
    /// The assembled output `Q(G)`.
    type Output: Send + 'static;

    /// Human-readable program name, used in metrics and benchmark output.
    fn name(&self) -> &str {
        "pie-program"
    }

    /// Which border set the update parameters are attached to
    /// (the candidate set `C_i` of the message preamble).
    fn scope(&self) -> BorderScope {
        BorderScope::Out
    }

    /// `d`-hop fragment expansion requested before PEval runs (the SubIso PIE
    /// program returns the pattern diameter `d_Q` here; everything else keeps
    /// the default `0`).
    fn expansion_hops(&self, query: &Self::Query) -> usize {
        let _ = query;
        0
    }

    /// Partial evaluation: compute `Q(F_i)` on the local fragment and declare
    /// the initial values of the update parameters through `ctx`.
    fn peval(
        &self,
        query: &Self::Query,
        frag: &Fragment,
        ctx: &mut Messages<Self::Key, Self::Value>,
    ) -> Self::Partial;

    /// Incremental evaluation: compute `Q(F_i ⊕ M_i)` given the message `M_i`
    /// (updates to this fragment's update parameters), reusing `partial`.
    /// Changed update parameters are again declared through `ctx`.
    fn inc_eval(
        &self,
        query: &Self::Query,
        frag: &Fragment,
        partial: &mut Self::Partial,
        messages: &[(Self::Key, Self::Value)],
        ctx: &mut Messages<Self::Key, Self::Value>,
    );

    /// Combines the partial results of all fragments into `Q(G)`.
    fn assemble(&self, query: &Self::Query, partials: Vec<Self::Partial>) -> Self::Output;

    /// `aggregateMsg`: resolves conflicts when several workers assign values
    /// to the same update parameter in the same superstep (e.g. `min` for
    /// SSSP distances).  Must be associative and commutative; together with a
    /// partial order on values it gives the monotonic condition of the
    /// Assurance Theorem.
    fn aggregate(&self, key: &Self::Key, a: Self::Value, b: Self::Value) -> Self::Value;

    /// Approximate wire size of a key, used for communication accounting.
    fn key_size(&self, _key: &Self::Key) -> usize {
        std::mem::size_of::<Self::Key>()
    }

    /// Approximate wire size of a value, used for communication accounting.
    fn value_size(&self, _value: &Self::Value) -> usize {
        std::mem::size_of::<Self::Value>()
    }

    /// The wire codec used when this program runs under
    /// [`crate::transport::TransportSpec::Process`]: queries, partials and
    /// update parameters must cross the worker pipes as value trees.
    ///
    /// The default `None` means the program cannot execute multi-process —
    /// the engine rejects the combination with a clear
    /// [`crate::engine::EngineError::InvalidConfig`].  Programs whose
    /// associated types are all serde-capable return
    /// `Some(&SerdeProcessCodec)`.
    fn process_codec(&self) -> Option<&dyn ProcessCodec<Self>>
    where
        Self: Sized,
    {
        None
    }
}

/// Encodes/decodes one PIE program's associated types for the worker-pipe
/// protocol of [`crate::transport::TransportSpec::Process`].
///
/// Both ends use the same codec: the parent (`ProcessHost`) encodes the
/// query/partials/messages it ships and decodes what comes back; the
/// `grape-worker` child does the mirror image.  Implementations must be
/// deterministic and lossless — the equivalence contract (answers byte-equal
/// across transports) rides on every value surviving the round trip exactly.
pub trait ProcessCodec<P: PieProgram>: Sync {
    /// Encodes a query for the worker handshake.
    fn encode_query(&self, query: &P::Query) -> Value;
    /// Decodes a handshake query (worker side).
    fn decode_query(&self, v: &Value) -> Result<P::Query, SerdeError>;
    /// Encodes one partial result.
    fn encode_partial(&self, partial: &P::Partial) -> Value;
    /// Decodes one partial result.
    fn decode_partial(&self, v: &Value) -> Result<P::Partial, SerdeError>;
    /// Encodes one update-parameter message `(key, value)`.
    fn encode_message(&self, key: &P::Key, value: &P::Value) -> Value;
    /// Decodes one update-parameter message.
    fn decode_message(&self, v: &Value) -> Result<(P::Key, P::Value), SerdeError>;
}

/// The [`ProcessCodec`] for programs whose query, partial, key and value
/// types all implement the serde traits: plain value-tree round trips.
/// Messages ship as two-element sequences `[key, value]`.
pub struct SerdeProcessCodec;

impl<P> ProcessCodec<P> for SerdeProcessCodec
where
    P: PieProgram,
    P::Query: Serialize + Deserialize,
    P::Partial: Serialize + Deserialize,
    P::Key: Serialize + Deserialize,
    P::Value: Serialize + Deserialize,
{
    fn encode_query(&self, query: &P::Query) -> Value {
        query.to_value()
    }

    fn decode_query(&self, v: &Value) -> Result<P::Query, SerdeError> {
        P::Query::from_value(v)
    }

    fn encode_partial(&self, partial: &P::Partial) -> Value {
        partial.to_value()
    }

    fn decode_partial(&self, v: &Value) -> Result<P::Partial, SerdeError> {
        P::Partial::from_value(v)
    }

    fn encode_message(&self, key: &P::Key, value: &P::Value) -> Value {
        Value::Seq(vec![key.to_value(), value.to_value()])
    }

    fn decode_message(&self, v: &Value) -> Result<(P::Key, P::Value), SerdeError> {
        match v {
            Value::Seq(items) if items.len() == 2 => Ok((
                P::Key::from_value(&items[0])?,
                P::Value::from_value(&items[1])?,
            )),
            _ => Err(SerdeError::custom("expected a [key, value] message pair")),
        }
    }
}

/// The result of [`IncrementalPie::rebase`]: the partial rebased onto the
/// updated fragment, plus the update parameters whose values changed as a
/// consequence of `ΔG` (routed by the engine like a normal evaluation's
/// sends).
pub type Rebased<P> = (
    <P as PieProgram>::Partial,
    Vec<(<P as PieProgram>::Key, <P as PieProgram>::Value)>,
);

/// Extension trait for PIE programs that can answer queries **under graph
/// updates** (the paper's Section 3.4): once `Q(G)` has been prepared, the
/// program can compute `Q(G ⊕ ΔG)` by rebasing its retained partials onto the
/// updated fragments and letting the engine iterate IncEval — no PEval.
///
/// The protocol, driven by [`crate::prepared::PreparedQuery::update`]:
///
/// 1. the partition layer applies `ΔG` to the fragmentation (fragments,
///    border sets and `G_P` are maintained there);
/// 2. for every structurally changed fragment, [`IncrementalPie::rebase`]
///    repairs that fragment's partial *locally* and returns the update
///    parameters whose values changed as a consequence of `ΔG` — the
///    messages `M_i` that IncEval would otherwise never learn about;
/// 3. the engine routes those seeds through `G_P` and runs the ordinary
///    IncEval fixpoint from the retained partials.
///
/// This path is only sound when the delta moves every update parameter in
/// the direction of the program's partial order (the monotone condition of
/// the Assurance Theorem): SSSP and CC tolerate *insertions* (distances and
/// component ids only decrease), graph simulation tolerates *deletions*
/// (match variables only flip to `false`).  [`IncrementalPie::delta_is_monotone`]
/// makes that call per program.
///
/// A **non-monotone** delta no longer forces PEval everywhere: the prepared
/// query runs a *bounded refresh* instead.  The program's
/// [`IncrementalPie::damage_policy`] tells the partition layer how far the
/// staleness spreads across the fragment quotient graph
/// ([`grape_partition::delta::damage_frontier`]); PEval re-roots only the
/// damaged fragments, every undamaged fragment keeps its retained partial,
/// and — under [`DamagePolicy::Reachability`] — the undamaged neighbours'
/// border segments are re-emitted via [`IncrementalPie::reseed`] so the
/// freshly re-rooted fragments re-learn the values they contribute.  Only
/// when the frontier covers every fragment does the refresh degenerate into
/// the classic full re-preparation.
pub trait IncrementalPie: PieProgram {
    /// Whether `delta` can be absorbed by the IncEval-only refresh: every
    /// update parameter must only ever move along the program's partial
    /// order under this delta.  Deltas for which this returns `false` are
    /// handled by re-running PEval on every fragment.
    fn delta_is_monotone(&self, delta: &GraphDelta) -> bool;

    /// Rebases the retained partial result of one *affected* fragment onto
    /// its rebuilt incarnation and returns the changed update parameters.
    ///
    /// `old_frag` is the fragment the partial was computed on, `new_frag`
    /// the rebuilt fragment (local ids may have shifted — remap by global
    /// id), and `delta` the restriction of `ΔG` to this fragment.  The
    /// returned messages are routed through `G_P` exactly like the sends of
    /// a normal evaluation; only *changed* values should be returned, in
    /// keeping with GRAPE's changed-parameters-only discipline.
    ///
    /// Only called for monotone deltas, so implementations may assume the
    /// direction of change (e.g. SSSP distances never increase).
    fn rebase(
        &self,
        query: &Self::Query,
        old_frag: &Fragment,
        new_frag: &Fragment,
        partial: Self::Partial,
        delta: &FragmentDelta,
    ) -> Rebased<Self>;

    /// How far a **non-monotone** delta's damage spreads across fragments —
    /// the policy of the bounded refresh (`peval_calls == |damaged|` instead
    /// of a full re-preparation).
    ///
    /// The default, [`DamagePolicy::Component`], is sound for *any*
    /// deterministic program without further cooperation: damage swallows
    /// whole quotient connected components, so no message ever crosses the
    /// damaged/undamaged boundary and both sides reproduce a full
    /// recompute's values independently.  Programs whose fixpoint is
    /// schedule-independent given boundary inputs (the Assurance-Theorem
    /// programs) should narrow this to [`DamagePolicy::Reachability`] and
    /// implement [`IncrementalPie::reseed`]; programs whose partial is a
    /// pure function of a bounded neighborhood (SubIso) can return
    /// [`DamagePolicy::Halo`].
    fn damage_policy(&self, query: &Self::Query) -> DamagePolicy {
        let _ = query;
        DamagePolicy::Component
    }

    /// Re-emits the **full border segment** of a retained partial — the
    /// current value of every update parameter this fragment contributes —
    /// so that a freshly re-PEval'ed neighbour can re-learn them during a
    /// bounded refresh.  Only called for *undamaged* fragments feeding a
    /// damaged one, and only under [`DamagePolicy::Reachability`]; the
    /// engine routes the values like ordinary sends but delivers them to
    /// damaged fragments exclusively.
    ///
    /// Unlike the changed-values-only discipline of normal evaluation, this
    /// must emit *all* current border values: the receiver starts from a
    /// fresh PEval and has no memory of them.
    fn reseed(
        &self,
        query: &Self::Query,
        frag: &Fragment,
        partial: &Self::Partial,
    ) -> Vec<(Self::Key, Self::Value)> {
        let _ = (query, frag, partial);
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vertex_id_key_routes_to_itself() {
        let v: VertexId = 17;
        assert_eq!(v.vertex(), 17);
        assert_eq!((3u32, 42u64).vertex(), 42);
    }

    #[test]
    fn message_buffer_accumulates_and_drains() {
        let mut m: Messages<VertexId, f64> = Messages::new();
        assert!(m.is_empty());
        m.send(1, 0.5);
        m.send(2, 1.5);
        assert_eq!(m.len(), 2);
        let drained = m.take();
        assert_eq!(drained, vec![(1, 0.5), (2, 1.5)]);
        assert!(m.is_empty());
    }

    #[test]
    fn default_is_empty() {
        let m: Messages<VertexId, bool> = Messages::default();
        assert!(m.is_empty());
    }

    /// Competing sends for the same key coalesce at insert time with
    /// `aggregateMsg` semantics: for SSSP distances (`min`), the shortest
    /// distance wins regardless of send order, and only one entry is kept.
    #[test]
    fn competing_sssp_distances_coalesce_to_the_minimum() {
        let min = |_k: &VertexId, a: f64, b: f64| a.min(b);
        let mut m: Messages<VertexId, f64> = Messages::with_aggregator(&min);
        m.send(7, 5.0);
        m.send(7, 3.0);
        m.send(7, 4.0);
        m.send(9, 1.5);
        assert_eq!(m.len(), 2, "duplicate keys must not grow the buffer");
        let mut drained = m.take();
        drained.sort_by_key(|(k, _)| *k);
        assert_eq!(drained, vec![(7, 3.0), (9, 1.5)]);
        assert!(m.is_empty());
    }

    /// The coalescing index is rebuilt after `take`, so a reused buffer
    /// still aggregates correctly.
    #[test]
    fn coalescing_survives_take_and_reuse() {
        let min = |_k: &VertexId, a: u64, b: u64| a.min(b);
        let mut m: Messages<VertexId, u64> = Messages::with_aggregator(&min);
        m.send(1, 10);
        assert_eq!(m.take(), vec![(1, 10)]);
        m.send(1, 8);
        m.send(1, 9);
        assert_eq!(m.take(), vec![(1, 8)]);
    }

    /// Without an aggregator the buffer keeps duplicates verbatim (legacy
    /// behaviour used by unit tests that inspect raw sends).
    #[test]
    fn plain_buffer_keeps_duplicates() {
        let mut m: Messages<VertexId, f64> = Messages::new();
        m.send(1, 2.0);
        m.send(1, 1.0);
        assert_eq!(m.len(), 2);
    }
}
