//! Miniature `IncrementalPie` programs shared by the unit tests of
//! [`crate::prepared`] and [`crate::serve`] — small enough to reason about
//! by hand, complete enough to exercise every refresh path.
//!
//! Compiled into the library (`#[doc(hidden)]`) rather than `#[cfg(test)]`
//! so the workspace-level concurrency fuzz (`tests/serve_concurrency.rs`)
//! can drive the same failure-injection programs.  Not a public API.

#![allow(dead_code)]

use std::collections::HashMap;

use grape_graph::builder::GraphBuilder;
use grape_graph::delta::GraphDelta;
use grape_graph::types::{Edge, VertexId};
use grape_partition::delta::FragmentDelta;
use grape_partition::fragment::Fragment;
use grape_partition::fragmentation_graph::BorderScope;

use crate::config::EngineMode;
use crate::output_delta::DeltaOutput;
use crate::pie::{IncrementalPie, Messages, PieProgram};
use crate::session::GrapeSession;

/// Forward min-id propagation, keyed by **global** id so the partial
/// survives fragment rebuilds without remapping — the smallest possible
/// `IncrementalPie` program.  Its partial (`HashMap<u64, u64>`) round-trips
/// through the serde value encoding, so it is also evictable.
#[derive(Clone)]
pub struct MinForward;

pub type MinPartial = HashMap<VertexId, u64>;

fn local_fixpoint(frag: &Fragment, values: &mut MinPartial) {
    let mut changed = true;
    while changed {
        changed = false;
        for l in frag.all_locals() {
            let v = frag.global_of(l);
            let mine = values[&v];
            for n in frag.out_edges(l) {
                let t = frag.global_of(n.target as u32);
                if mine < values[&t] {
                    values.insert(t, mine);
                    changed = true;
                }
            }
        }
    }
}

impl PieProgram for MinForward {
    type Query = ();
    type Partial = MinPartial;
    type Key = VertexId;
    type Value = u64;
    type Output = HashMap<VertexId, u64>;

    fn name(&self) -> &str {
        "min-forward"
    }

    fn scope(&self) -> BorderScope {
        BorderScope::Out
    }

    fn peval(&self, _q: &(), frag: &Fragment, ctx: &mut Messages<VertexId, u64>) -> MinPartial {
        let mut values: MinPartial = frag
            .all_locals()
            .map(|l| (frag.global_of(l), frag.global_of(l)))
            .collect();
        local_fixpoint(frag, &mut values);
        for &l in frag.out_border_locals() {
            let v = frag.global_of(l);
            ctx.send(v, values[&v]);
        }
        values
    }

    fn inc_eval(
        &self,
        _q: &(),
        frag: &Fragment,
        partial: &mut MinPartial,
        messages: &[(VertexId, u64)],
        ctx: &mut Messages<VertexId, u64>,
    ) {
        let mut touched = false;
        for (v, value) in messages {
            if partial.get(v).is_some_and(|cur| value < cur) {
                partial.insert(*v, *value);
                touched = true;
            }
        }
        if touched {
            let before = partial.clone();
            local_fixpoint(frag, partial);
            for &l in frag.out_border_locals() {
                let v = frag.global_of(l);
                if partial[&v] < before[&v] {
                    ctx.send(v, partial[&v]);
                }
            }
        }
    }

    fn assemble(&self, _q: &(), partials: Vec<MinPartial>) -> HashMap<VertexId, u64> {
        let mut out = HashMap::new();
        for p in partials {
            for (v, value) in p {
                out.entry(v)
                    .and_modify(|x: &mut u64| *x = (*x).min(value))
                    .or_insert(value);
            }
        }
        out
    }

    fn aggregate(&self, _key: &VertexId, a: u64, b: u64) -> u64 {
        a.min(b)
    }
}

impl IncrementalPie for MinForward {
    fn delta_is_monotone(&self, delta: &GraphDelta) -> bool {
        !delta.has_removals()
    }

    fn damage_policy(&self, _query: &()) -> crate::pie::DamagePolicy {
        // Min propagation has a schedule-independent fixpoint: the
        // reachability frontier plus reseeded borders is exact.
        crate::pie::DamagePolicy::Reachability
    }

    fn reseed(&self, _query: &(), frag: &Fragment, partial: &MinPartial) -> Vec<(VertexId, u64)> {
        frag.out_border_locals()
            .iter()
            .map(|&l| {
                let v = frag.global_of(l);
                (v, partial[&v])
            })
            .collect()
    }

    fn rebase(
        &self,
        _query: &(),
        _old_frag: &Fragment,
        new_frag: &Fragment,
        mut partial: MinPartial,
        _delta: &FragmentDelta,
    ) -> (MinPartial, Vec<(VertexId, u64)>) {
        let old: MinPartial = partial.clone();
        // New locals start at their own id; re-run the local fixpoint.
        for l in new_frag.all_locals() {
            let v = new_frag.global_of(l);
            partial.entry(v).or_insert(v);
        }
        partial.retain(|&v, _| new_frag.local_of(v).is_some());
        local_fixpoint(new_frag, &mut partial);
        let mut sends = Vec::new();
        for &l in new_frag.out_border_locals() {
            let v = new_frag.global_of(l);
            if partial[&v] < old.get(&v).copied().unwrap_or(u64::MAX) {
                sends.push((v, partial[&v]));
            }
        }
        (partial, sends)
    }
}

impl DeltaOutput for MinForward {
    type OutKey = VertexId;
    type OutVal = u64;

    fn canonical(&self, _q: &(), output: &HashMap<VertexId, u64>) -> Vec<(VertexId, u64)> {
        let mut rows: Vec<(VertexId, u64)> = output.iter().map(|(&v, &m)| (v, m)).collect();
        rows.sort_unstable();
        rows
    }
}

/// A deliberately broken program: its PEval fixpoint is trivial (no
/// messages), but any seeded refresh escalates values forever — the update
/// path hits the superstep limit and errors.  Used to regression-test the
/// poisoned-handle protocol.
#[derive(Clone)]
pub struct DivergingOnUpdate;

impl PieProgram for DivergingOnUpdate {
    type Query = ();
    type Partial = u64;
    type Key = VertexId;
    type Value = u64;
    type Output = u64;

    fn name(&self) -> &str {
        "diverging-on-update"
    }

    fn scope(&self) -> BorderScope {
        BorderScope::Out
    }

    fn peval(&self, _q: &(), _frag: &Fragment, _ctx: &mut Messages<VertexId, u64>) -> u64 {
        0
    }

    fn inc_eval(
        &self,
        _q: &(),
        frag: &Fragment,
        partial: &mut u64,
        messages: &[(VertexId, u64)],
        ctx: &mut Messages<VertexId, u64>,
    ) {
        // Escalate: every received value is re-sent increased, so the
        // "fixpoint" recedes forever.
        let next = messages.iter().map(|&(_, v)| v).max().unwrap_or(0) + 1;
        *partial = next;
        for &l in frag.out_border_locals() {
            ctx.send(frag.global_of(l), next);
        }
    }

    fn assemble(&self, _q: &(), partials: Vec<u64>) -> u64 {
        partials.into_iter().sum()
    }

    fn aggregate(&self, _key: &VertexId, a: u64, b: u64) -> u64 {
        a.max(b)
    }
}

impl IncrementalPie for DivergingOnUpdate {
    fn delta_is_monotone(&self, _delta: &GraphDelta) -> bool {
        true
    }

    fn rebase(
        &self,
        _query: &(),
        _old_frag: &Fragment,
        new_frag: &Fragment,
        partial: u64,
        _delta: &FragmentDelta,
    ) -> (u64, Vec<(VertexId, u64)>) {
        // Seed the escalation through the rebuilt fragment's border.
        let sends = new_frag
            .out_border_locals()
            .iter()
            .map(|&l| (new_frag.global_of(l), partial + 1))
            .collect();
        (partial, sends)
    }
}

impl DeltaOutput for DivergingOnUpdate {
    type OutKey = u64;
    type OutVal = u64;

    fn canonical(&self, _q: &(), output: &u64) -> Vec<(u64, u64)> {
        vec![(0, *output)]
    }
}

/// A program whose **full re-preparation** can be made to fail on demand.
/// Healthy, it is a trivial edge-counting program (partial = local edge
/// count, output = their sum); tripped, its PEval seeds an escalation that
/// [`PieProgram::inc_eval`] chases past the superstep limit
/// (`DidNotConverge`).  By default every delta is declared non-monotone and
/// the default `Component` damage policy swallows a connected quotient
/// graph whole, so on a ring any update takes the full re-preparation path
/// — the one refresh error that leaves the handle *unpoisoned* and
/// consistent at the pre-delta graph.  Used to regression-test that the
/// serving layer keeps such a query on its true (older) version and
/// replays it later, instead of silently refreshing it with a mismatched
/// delta.
///
/// [`TrippablePrepare::allow_monotone_inserts`] flips a second switch:
/// insert-only deltas are then declared monotone, and the monotone refresh
/// *always* diverges (its rebase seeds the same escalation) — the one
/// refresh error that **poisons** the handle.  That combination lets a
/// test drive a query behind first and poison it mid-replay afterwards.
#[derive(Clone)]
pub struct TrippablePrepare {
    tripped: std::sync::Arc<std::sync::atomic::AtomicBool>,
    monotone_inserts: std::sync::Arc<std::sync::atomic::AtomicBool>,
}

impl Default for TrippablePrepare {
    fn default() -> Self {
        Self::new()
    }
}

impl TrippablePrepare {
    pub fn new() -> Self {
        TrippablePrepare {
            tripped: std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false)),
            monotone_inserts: std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false)),
        }
    }

    /// Makes every subsequent full (re-)preparation diverge.
    pub fn trip(&self) {
        self.tripped
            .store(true, std::sync::atomic::Ordering::SeqCst);
    }

    /// Lets subsequent preparations converge again.
    pub fn heal(&self) {
        self.tripped
            .store(false, std::sync::atomic::Ordering::SeqCst);
    }

    /// Declares insert-only deltas monotone from now on — and their rebase
    /// seeds the diverging escalation, so the monotone refresh errors after
    /// consuming the partials: the poisoning failure mode.
    pub fn allow_monotone_inserts(&self) {
        self.monotone_inserts
            .store(true, std::sync::atomic::Ordering::SeqCst);
    }
}

impl PieProgram for TrippablePrepare {
    type Query = ();
    type Partial = u64;
    type Key = VertexId;
    type Value = u64;
    type Output = u64;

    fn name(&self) -> &str {
        "trippable-prepare"
    }

    fn scope(&self) -> BorderScope {
        BorderScope::Out
    }

    fn peval(&self, _q: &(), frag: &Fragment, ctx: &mut Messages<VertexId, u64>) -> u64 {
        let edges = frag
            .all_locals()
            .map(|l| frag.out_edges(l).len() as u64)
            .sum();
        if self.tripped.load(std::sync::atomic::Ordering::SeqCst) {
            for &l in frag.out_border_locals() {
                ctx.send(frag.global_of(l), 1);
            }
        }
        edges
    }

    fn inc_eval(
        &self,
        _q: &(),
        frag: &Fragment,
        _partial: &mut u64,
        messages: &[(VertexId, u64)],
        ctx: &mut Messages<VertexId, u64>,
    ) {
        // Only ever seeded while tripped: chase the escalation forever so
        // the run hits the superstep limit.
        if messages.is_empty() {
            return;
        }
        let next = messages.iter().map(|&(_, v)| v).max().unwrap_or(0) + 1;
        for &l in frag.out_border_locals() {
            ctx.send(frag.global_of(l), next);
        }
    }

    fn assemble(&self, _q: &(), partials: Vec<u64>) -> u64 {
        partials.into_iter().sum()
    }

    fn aggregate(&self, _key: &VertexId, a: u64, b: u64) -> u64 {
        a.max(b)
    }
}

impl IncrementalPie for TrippablePrepare {
    fn delta_is_monotone(&self, delta: &GraphDelta) -> bool {
        self.monotone_inserts
            .load(std::sync::atomic::Ordering::SeqCst)
            && !delta.has_removals()
    }

    fn rebase(
        &self,
        _query: &(),
        _old_frag: &Fragment,
        new_frag: &Fragment,
        partial: u64,
        _delta: &FragmentDelta,
    ) -> (u64, Vec<(VertexId, u64)>) {
        // Only reachable with `allow_monotone_inserts`: seed the escalation
        // through the rebuilt fragment's border so the refresh diverges and
        // poisons the handle.
        let sends = new_frag
            .out_border_locals()
            .iter()
            .map(|&l| (new_frag.global_of(l), partial + 1))
            .collect();
        (partial, sends)
    }
}

impl DeltaOutput for TrippablePrepare {
    type OutKey = u64;
    type OutVal = u64;

    fn canonical(&self, _q: &(), output: &u64) -> Vec<(u64, u64)> {
        vec![(0, *output)]
    }
}

/// `0 → 1 → … → n-1` path graph.
pub fn path_graph(n: u64) -> grape_graph::graph::Graph {
    let mut b = GraphBuilder::directed();
    for v in 0..n - 1 {
        b.push_edge(Edge::unweighted(v, v + 1));
    }
    b.build()
}

/// `0 → 1 → … → n-1 → 0` ring graph (every fragment has a downstream).
pub fn ring_graph(n: u64) -> grape_graph::graph::Graph {
    let mut b = GraphBuilder::directed();
    for v in 0..n {
        b.push_edge(Edge::unweighted(v, (v + 1) % n));
    }
    b.build()
}

/// A two-worker session in the given mode.
pub fn session(mode: EngineMode) -> GrapeSession {
    GrapeSession::builder()
        .workers(2)
        .mode(mode)
        .build()
        .unwrap()
}
