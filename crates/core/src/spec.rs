//! Wire-nameable query specifications.
//!
//! A [`crate::serve::GrapeServer`] registers queries through the generic
//! [`crate::pie::IncrementalPie`] machinery — perfect in-process, but a
//! network front door needs queries that can be *named* in a frame: a
//! client says "SSSP from source 3", not "here is a monomorphized program
//! type".  [`QuerySpec`] is that name: a small, serializable, data-only
//! enum of the query families a daemon can serve.  The daemon maps a spec
//! onto the concrete PIE program (which lives in `grape-algorithms`; this
//! crate deliberately only knows the *shape* of the request, keeping the
//! core → algorithms dependency direction intact).
//!
//! The serde impls are written by hand because the derive shim only
//! handles named-field structs and fieldless enums: a spec serializes as a
//! tagged map — `{"query":"sssp","source":3}`, `{"query":"cc"}` — which is
//! also exactly what the daemon's JSON protocol puts on the wire.

use grape_graph::types::VertexId;
use serde::{Deserialize, Error, Serialize, Value};

/// A query family a serving process can register by name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuerySpec {
    /// Single-source shortest path from `source`.
    Sssp {
        /// The source vertex.
        source: VertexId,
    },
    /// Connected components (one label per vertex).
    Cc,
}

impl QuerySpec {
    /// The spec's wire tag (`"sssp"`, `"cc"`): stable, lower-case, what a
    /// CLI accepts as the query-kind argument.
    pub fn kind(&self) -> &'static str {
        match self {
            QuerySpec::Sssp { .. } => "sssp",
            QuerySpec::Cc => "cc",
        }
    }
}

impl std::fmt::Display for QuerySpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QuerySpec::Sssp { source } => write!(f, "sssp(source={source})"),
            QuerySpec::Cc => write!(f, "cc"),
        }
    }
}

impl Serialize for QuerySpec {
    fn to_value(&self) -> Value {
        match self {
            QuerySpec::Sssp { source } => Value::Map(vec![
                ("query".to_string(), Value::Str("sssp".to_string())),
                ("source".to_string(), source.to_value()),
            ]),
            QuerySpec::Cc => Value::Map(vec![("query".to_string(), Value::Str("cc".to_string()))]),
        }
    }
}

impl Deserialize for QuerySpec {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let tag = value
            .get_field("query")
            .ok_or_else(|| Error::missing_field("query"))?
            .as_str()
            .ok_or_else(|| Error::custom("`query` must be a string"))?;
        match tag {
            "sssp" => {
                let source = value
                    .get_field("source")
                    .ok_or_else(|| Error::missing_field("source"))?;
                Ok(QuerySpec::Sssp {
                    source: VertexId::from_value(source)?,
                })
            }
            "cc" => Ok(QuerySpec::Cc),
            other => Err(Error::custom(format!("unknown query spec `{other}`"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_round_trip_through_the_value_encoding() {
        for spec in [QuerySpec::Sssp { source: 42 }, QuerySpec::Cc] {
            let back = QuerySpec::from_value(&spec.to_value()).unwrap();
            assert_eq!(back, spec);
        }
    }

    #[test]
    fn specs_round_trip_through_json() {
        let json = serde_json::to_string(&QuerySpec::Sssp { source: 3 }).unwrap();
        assert_eq!(json, r#"{"query":"sssp","source":3}"#);
        let back: QuerySpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, QuerySpec::Sssp { source: 3 });
    }

    #[test]
    fn unknown_or_malformed_specs_are_rejected() {
        let bad: Result<QuerySpec, _> = serde_json::from_str(r#"{"query":"bfs"}"#);
        assert!(bad.unwrap_err().to_string().contains("unknown query spec"));
        let missing: Result<QuerySpec, _> = serde_json::from_str(r#"{"query":"sssp"}"#);
        assert!(missing.unwrap_err().to_string().contains("source"));
        let untagged: Result<QuerySpec, _> = serde_json::from_str(r#"{"source":3}"#);
        assert!(untagged.unwrap_err().to_string().contains("query"));
    }

    #[test]
    fn kind_and_display_are_stable() {
        assert_eq!(QuerySpec::Sssp { source: 7 }.kind(), "sssp");
        assert_eq!(QuerySpec::Cc.kind(), "cc");
        assert_eq!(QuerySpec::Sssp { source: 7 }.to_string(), "sssp(source=7)");
        assert_eq!(QuerySpec::Cc.to_string(), "cc");
    }
}
