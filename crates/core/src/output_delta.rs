//! Answer deltas: **what changed in `Q(G)`**, not just that it changed.
//!
//! The serving layer's polling contract makes every watcher re-read the
//! whole answer after every `ΔG` — `O(|answer|)` per watcher per delta.
//! This module gives queries a push contract instead: after a refresh the
//! engine reports the *changed rows* of the answer, with size proportional
//! to the change (the delay-proportional-to-change contract of
//! first-order-incremental view maintenance).
//!
//! Three layers:
//!
//! * [`OutputDelta`] — a typed, key-sorted diff between two canonical
//!   answers: upserted `(key, value)` rows plus removed keys.
//! * [`DeltaOutput`] — the per-program extension of
//!   [`IncrementalPie`]: a canonical row form for the program's output
//!   ([`DeltaOutput::canonical`]) and an optional fast path
//!   ([`DeltaOutput::diff_output`]) that derives the diff straight from
//!   the partials the engine already maintains.  Correctness never
//!   depends on the fast path — the engine falls back to
//!   assemble-and-diff ([`diff_sorted`]) whenever `diff_output` declines.
//! * [`WireOutputDelta`] / [`OutputEvent`] / [`QueryDelta`] — the
//!   type-erased form the serving layer buffers and the daemon pushes:
//!   keys and values as serde [`Value`] trees, so subscriptions over
//!   heterogeneous query types share one stream type.
//!
//! The invariant everything downstream leans on (pinned by
//! `tests/output_delta_replay.rs`): folding a query's delta stream over
//! its initial answer reproduces `output()` **byte-for-byte** in canonical
//! JSON, across algorithms, engine modes, fan-out widths and
//! evict/rehydrate interleavings.

use std::cmp::Ordering;

use serde::{Deserialize, Serialize, Value};

use crate::pie::IncrementalPie;

/// A typed diff between two canonical answers: rows whose value changed
/// (or appeared), and keys that disappeared.  Both vectors are sorted by
/// key and disjoint.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct OutputDelta<K, V> {
    /// Upserted rows, key-sorted: the key now maps to this value.
    pub changed: Vec<(K, V)>,
    /// Removed keys, sorted: the key no longer appears in the answer.
    pub removed: Vec<K>,
}

impl<K, V> OutputDelta<K, V> {
    /// A delta that changes nothing.
    pub fn empty() -> Self {
        OutputDelta {
            changed: Vec::new(),
            removed: Vec::new(),
        }
    }

    /// Whether the delta changes nothing.
    pub fn is_empty(&self) -> bool {
        self.changed.is_empty() && self.removed.is_empty()
    }

    /// Number of changed plus removed rows — the `O(|change|)` the push
    /// contract is sized by.
    pub fn len(&self) -> usize {
        self.changed.len() + self.removed.len()
    }

    /// Type-erases the delta into its wire form.
    pub fn to_wire(&self) -> WireOutputDelta
    where
        K: Serialize,
        V: Serialize,
    {
        WireOutputDelta {
            changed: self
                .changed
                .iter()
                .map(|(k, v)| (k.to_value(), v.to_value()))
                .collect(),
            removed: self.removed.iter().map(Serialize::to_value).collect(),
        }
    }
}

/// Diffs two key-sorted row sets: `apply_sorted(previous, diff) == next`,
/// exactly.  The full-recompute fallback behind every
/// [`DeltaOutput::diff_output`] fast path.
pub fn diff_sorted<K: Ord + Clone, V: PartialEq + Clone>(
    previous: &[(K, V)],
    next: &[(K, V)],
) -> OutputDelta<K, V> {
    let mut delta = OutputDelta::empty();
    let (mut i, mut j) = (0, 0);
    while i < previous.len() && j < next.len() {
        match previous[i].0.cmp(&next[j].0) {
            Ordering::Less => {
                delta.removed.push(previous[i].0.clone());
                i += 1;
            }
            Ordering::Greater => {
                delta.changed.push(next[j].clone());
                j += 1;
            }
            Ordering::Equal => {
                if previous[i].1 != next[j].1 {
                    delta.changed.push(next[j].clone());
                }
                i += 1;
                j += 1;
            }
        }
    }
    for row in &previous[i..] {
        delta.removed.push(row.0.clone());
    }
    delta.changed.extend_from_slice(&next[j..]);
    delta
}

/// Applies a delta to key-sorted rows in place (the replay direction of
/// the equivalence pin).
pub fn apply_sorted<K: Ord + Clone, V: Clone>(rows: &mut Vec<(K, V)>, delta: &OutputDelta<K, V>) {
    for (k, v) in &delta.changed {
        match rows.binary_search_by(|(rk, _)| rk.cmp(k)) {
            Ok(i) => rows[i].1 = v.clone(),
            Err(i) => rows.insert(i, (k.clone(), v.clone())),
        }
    }
    for k in &delta.removed {
        if let Ok(i) = rows.binary_search_by(|(rk, _)| rk.cmp(k)) {
            rows.remove(i);
        }
    }
}

/// The per-program answer-delta contract: an extension of
/// [`IncrementalPie`] served queries must implement to be subscribable.
///
/// A program declares a *canonical row form* for its output — SSSP and CC
/// report `(vertex, value)` rows, graph simulation `((query node, vertex),
/// matched)` pairs, SubIso `(match tuple, present)` rows, CF `(vertex,
/// factor vector)` rows — and may implement [`DeltaOutput::diff_output`]
/// to derive the diff straight from the partials the refresh already
/// rebuilt, skipping the `O(|answer|)` assemble.
pub trait DeltaOutput: IncrementalPie {
    /// Key of one answer row.  `Ord` fixes the canonical order.
    type OutKey: Ord + Clone + Send + Serialize + 'static;
    /// Value of one answer row.
    type OutVal: Clone + PartialEq + Send + Serialize + 'static;

    /// The canonical, key-sorted row form of an assembled output.  Must be
    /// a bijection on answers: two outputs are equal iff their canonical
    /// rows are.
    fn canonical(
        &self,
        query: &Self::Query,
        output: &Self::Output,
    ) -> Vec<(Self::OutKey, Self::OutVal)>;

    /// Fast path: derive the delta against `previous` straight from the
    /// refreshed partials, without assembling the output.  Return `None`
    /// to decline — the engine then assembles and calls [`diff_sorted`],
    /// so correctness never depends on this hook.
    fn diff_output(
        &self,
        query: &Self::Query,
        previous: &[(Self::OutKey, Self::OutVal)],
        partials: &[Self::Partial],
    ) -> Option<OutputDelta<Self::OutKey, Self::OutVal>> {
        let _ = (query, previous, partials);
        None
    }
}

// ---------------------------------------------------------------------------
// Wire form
// ---------------------------------------------------------------------------

/// A type-erased [`OutputDelta`]: keys and values as serde [`Value`]
/// trees, sorted by [`value_cmp`].  What [`crate::serve::GrapeServer`]
/// buffers per subscription and `graped` pushes as `event` frames.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct WireOutputDelta {
    /// Upserted `[key, value]` rows.
    pub changed: Vec<(Value, Value)>,
    /// Removed keys.
    pub removed: Vec<Value>,
}

impl WireOutputDelta {
    /// Whether the delta changes nothing.
    pub fn is_empty(&self) -> bool {
        self.changed.is_empty() && self.removed.is_empty()
    }

    /// Number of changed plus removed rows.
    pub fn len(&self) -> usize {
        self.changed.len() + self.removed.len()
    }

    /// Folds `later` into `self` key-wise: applying the fold equals
    /// applying `self` then `later`.  What a cold query's subscription
    /// does to the stream it missed — and the identity the lifecycle
    /// tests pin the rehydration compaction against.
    pub fn fold(&mut self, later: &WireOutputDelta) {
        let mut merged: Vec<(Value, Option<Value>)> = Vec::new();
        for (k, v) in self.changed.drain(..) {
            merged.push((k, Some(v)));
        }
        for k in self.removed.drain(..) {
            merged.push((k, None));
        }
        for (k, v) in &later.changed {
            merged.push((k.clone(), Some(v.clone())));
        }
        for k in &later.removed {
            merged.push((k.clone(), None));
        }
        // Stable sort: within a key, later entries stay later — keep the
        // last one per run.
        merged.sort_by(|a, b| value_cmp(&a.0, &b.0));
        let mut i = 0;
        while i < merged.len() {
            let mut last = i;
            while last + 1 < merged.len()
                && value_cmp(&merged[last + 1].0, &merged[i].0) == Ordering::Equal
            {
                last += 1;
            }
            let (key, slot) = &merged[last];
            match slot {
                Some(v) => self.changed.push((key.clone(), v.clone())),
                None => self.removed.push(key.clone()),
            }
            i = last + 1;
        }
    }

    /// Applies the delta to rows kept sorted by [`value_cmp`] — the wire
    /// side of the replay equivalence pin.
    pub fn apply_to(&self, rows: &mut Vec<(Value, Value)>) {
        for (k, v) in &self.changed {
            match rows.binary_search_by(|(rk, _)| value_cmp(rk, k)) {
                Ok(i) => rows[i].1 = v.clone(),
                Err(i) => rows.insert(i, (k.clone(), v.clone())),
            }
        }
        for k in &self.removed {
            if let Ok(i) = rows.binary_search_by(|(rk, _)| value_cmp(rk, k)) {
                rows.remove(i);
            }
        }
    }
}

/// Type-erases canonical rows into wire rows, sorted by [`value_cmp`] —
/// the baseline a subscription's delta stream folds over.
pub fn wire_rows<K: Serialize, V: Serialize>(rows: &[(K, V)]) -> Vec<(Value, Value)> {
    let mut wire: Vec<(Value, Value)> = rows
        .iter()
        .map(|(k, v)| (k.to_value(), v.to_value()))
        .collect();
    wire.sort_by(|a, b| value_cmp(&a.0, &b.0));
    wire
}

/// A total structural order on serde [`Value`] trees.  For the key shapes
/// programs actually use (integers, strings, tuples and vectors of them)
/// it coincides with the typed `Ord`, so wire streams sort identically to
/// the typed diffs they were erased from.
pub fn value_cmp(a: &Value, b: &Value) -> Ordering {
    fn rank(v: &Value) -> u8 {
        match v {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::UInt(_) | Value::Int(_) | Value::Float(_) => 2,
            Value::Str(_) => 3,
            Value::Seq(_) => 4,
            Value::Map(_) => 5,
        }
    }
    fn numeric(v: &Value) -> f64 {
        match v {
            Value::UInt(n) => *n as f64,
            Value::Int(n) => *n as f64,
            Value::Float(f) => *f,
            _ => unreachable!("numeric called on a non-number"),
        }
    }
    match (a, b) {
        (Value::Null, Value::Null) => Ordering::Equal,
        (Value::Bool(x), Value::Bool(y)) => x.cmp(y),
        (Value::UInt(x), Value::UInt(y)) => x.cmp(y),
        (Value::Int(x), Value::Int(y)) => x.cmp(y),
        (Value::Str(x), Value::Str(y)) => x.cmp(y),
        (Value::Seq(x), Value::Seq(y)) => {
            for (xi, yi) in x.iter().zip(y.iter()) {
                let ord = value_cmp(xi, yi);
                if ord != Ordering::Equal {
                    return ord;
                }
            }
            x.len().cmp(&y.len())
        }
        (Value::Map(x), Value::Map(y)) => {
            for ((xk, xv), (yk, yv)) in x.iter().zip(y.iter()) {
                let ord = xk.cmp(yk).then_with(|| value_cmp(xv, yv));
                if ord != Ordering::Equal {
                    return ord;
                }
            }
            x.len().cmp(&y.len())
        }
        _ if rank(a) == rank(b) => numeric(a).total_cmp(&numeric(b)),
        _ => rank(a).cmp(&rank(b)),
    }
}

/// One pushed event on a subscription.
#[derive(Debug, Clone, PartialEq)]
pub enum OutputEvent {
    /// The answer changed by exactly this delta (possibly empty: the
    /// commit left this answer untouched).
    Delta(WireOutputDelta),
    /// Terminal: the query's handle was poisoned by a failed refresh.  No
    /// further deltas will be emitted, and no partial delta precedes this.
    Poisoned,
}

/// One subscribed query's event for one commit (or one rehydration) —
/// what [`crate::serve::ServeReport::events`] carries, id-sorted.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryDelta {
    /// The query's handle id.
    pub query: usize,
    /// The server version this event brings the subscriber up to.
    pub version: usize,
    /// What happened.
    pub event: OutputEvent,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows(pairs: &[(u64, u64)]) -> Vec<(u64, u64)> {
        pairs.to_vec()
    }

    #[test]
    fn diff_then_apply_reproduces_next_exactly() {
        let previous = rows(&[(1, 10), (2, 20), (4, 40), (7, 70)]);
        let next = rows(&[(1, 10), (2, 21), (3, 30), (7, 70), (9, 90)]);
        let delta = diff_sorted(&previous, &next);
        assert_eq!(delta.changed, vec![(2, 21), (3, 30), (9, 90)]);
        assert_eq!(delta.removed, vec![4]);
        assert_eq!(delta.len(), 4);
        let mut replay = previous.clone();
        apply_sorted(&mut replay, &delta);
        assert_eq!(replay, next);
    }

    #[test]
    fn equal_rows_diff_to_an_empty_delta() {
        let a = rows(&[(1, 1), (2, 2)]);
        let delta = diff_sorted(&a, &a);
        assert!(delta.is_empty());
        assert_eq!(OutputDelta::<u64, u64>::empty(), delta);
    }

    #[test]
    fn wire_fold_keeps_the_last_write_per_key() {
        let first = OutputDelta {
            changed: vec![(1u64, 10u64), (2, 20)],
            removed: vec![5u64],
        }
        .to_wire();
        let second = OutputDelta {
            changed: vec![(2u64, 99u64), (5, 50)],
            removed: vec![1u64],
        }
        .to_wire();
        let mut folded = first.clone();
        folded.fold(&second);

        // Applying the fold equals applying first then second.
        let base = wire_rows(&rows(&[(1, 1), (2, 2), (5, 5), (9, 9)]));
        let mut sequential = base.clone();
        first.apply_to(&mut sequential);
        second.apply_to(&mut sequential);
        let mut folded_once = base;
        folded.apply_to(&mut folded_once);
        assert_eq!(sequential, folded_once);

        // And the fold is compact: one entry per key.
        assert_eq!(folded.changed.len(), 2, "{folded:?}");
        assert_eq!(folded.removed.len(), 1, "{folded:?}");
    }

    #[test]
    fn wire_rows_sort_numerically_not_lexically() {
        let wire = wire_rows(&rows(&[(9, 9), (10, 10), (2, 2)]));
        let keys: Vec<&Value> = wire.iter().map(|(k, _)| k).collect();
        assert_eq!(
            keys,
            vec![&Value::UInt(2), &Value::UInt(9), &Value::UInt(10)]
        );
    }

    #[test]
    fn value_cmp_orders_tuples_like_typed_ord() {
        let pairs = [(0u32, 5u64), (0, 40), (1, 2)];
        let mut wire: Vec<Value> = pairs.iter().map(Serialize::to_value).collect();
        wire.reverse();
        wire.sort_by(value_cmp);
        let expected: Vec<Value> = pairs.iter().map(Serialize::to_value).collect();
        assert_eq!(wire, expected);
    }
}
