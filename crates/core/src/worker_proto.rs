//! The worker-pipe protocol of [`crate::transport::TransportSpec::Process`].
//!
//! Under the process transport, fragments are sharded across OS worker
//! subprocesses (`grape-worker`, shipped by the daemon crate): PEval and
//! IncEval run inside the process that *owns* each fragment, and only the
//! handshake (query + fragments + retained partials), per-evaluation
//! update-parameter messages and the collected partials cross the pipe.
//! Message routing through `G_P`, seed injection, superstep scheduling and
//! checkpoint bookkeeping all stay in the parent — the worker is a pure
//! evaluation server.
//!
//! ## Framing
//!
//! Frames use the same length-delimited JSON layout as the daemon's TCP
//! protocol — a decimal byte length, `\n`, the JSON payload, `\n` — over
//! the child's stdin/stdout.  Every request is answered by exactly one
//! reply; replies carry `{"ok": true, ...}` on success and
//! `{"ok": false, "error": "…"}` on failure.
//!
//! ## Requests
//!
//! | op             | request fields                    | reply fields      |
//! |----------------|-----------------------------------|-------------------|
//! | `init`         | `program`, `query`, `fragments`, optional `partials` | — |
//! | `peval`        | `fragment`                        | `messages`        |
//! | `inceval`      | `fragment`, `updates`             | `messages`        |
//! | `get_partials` | —                                 | `partials`        |
//! | `set_partials` | `partials`                        | —                 |
//! | `clear`        | —                                 | —                 |
//! | `exit`         | —                                 | —                 |
//!
//! `fragments` is a sequence of `{"id": <global fragment id>, "frag": …}`
//! records (the spill-snapshot fragment codec); `partials` entries are
//! `{"id": …, "partial": …}` with `null` for a slot that has not been
//! evaluated yet; `messages`/`updates` entries are whatever the program's
//! [`crate::pie::ProcessCodec`] produces (two-element `[key, value]`
//! sequences for [`crate::pie::SerdeProcessCodec`]).

use std::collections::HashMap;
use std::io::{BufRead, Write};
use std::path::PathBuf;

use grape_partition::fragment::Fragment;
use grape_partition::snapshot::{fragment_from_value, fragment_to_value};
use serde::{Deserialize, Serialize, Value};

use crate::pie::{Messages, PieProgram};

/// Upper bound on one frame, mirroring the daemon's TCP framing cap.
pub const MAX_FRAME_BYTES: usize = 64 << 20;

/// Writes one length-delimited frame.
pub fn write_frame<W: Write + ?Sized>(w: &mut W, payload: &str) -> std::io::Result<()> {
    w.write_all(payload.len().to_string().as_bytes())?;
    w.write_all(b"\n")?;
    w.write_all(payload.as_bytes())?;
    w.write_all(b"\n")?;
    w.flush()
}

/// Reads one length-delimited frame.  `Ok(None)` is a clean end of stream
/// (the peer closed the pipe before a length line).
pub fn read_frame<R: BufRead + ?Sized>(r: &mut R) -> Result<Option<String>, String> {
    let mut len_line = String::new();
    let n = r
        .read_line(&mut len_line)
        .map_err(|e| format!("pipe read failed: {e}"))?;
    if n == 0 {
        return Ok(None);
    }
    let len: usize = len_line
        .trim()
        .parse()
        .map_err(|_| format!("malformed frame length {:?}", len_line.trim()))?;
    if len > MAX_FRAME_BYTES {
        return Err(format!(
            "frame of {len} bytes exceeds cap {MAX_FRAME_BYTES}"
        ));
    }
    let mut payload = vec![0u8; len + 1]; // payload + trailing newline
    r.read_exact(&mut payload)
        .map_err(|e| format!("truncated frame: {e}"))?;
    if payload.pop() != Some(b'\n') {
        return Err("frame missing trailing newline".to_string());
    }
    String::from_utf8(payload)
        .map_err(|_| "frame payload is not UTF-8".to_string())
        .map(Some)
}

/// Serializes a value tree and ships it as one frame.
pub fn write_value_frame<W: Write + ?Sized>(w: &mut W, v: &Value) -> Result<usize, String> {
    let payload = serde_json::to_string(v).map_err(|e| format!("frame encode failed: {e}"))?;
    write_frame(w, &payload).map_err(|e| format!("pipe write failed: {e}"))?;
    Ok(payload.len())
}

/// Name of the environment variable that pins the worker binary path
/// (otherwise discovered next to the current executable).
pub const WORKER_BIN_ENV: &str = "GRAPE_WORKER_BIN";

/// Fault-injection hook for the kill-mid-superstep tests: when set to `n`,
/// a worker exits hard (no reply, no cleanup) after serving `n` evaluation
/// requests.
pub const WORKER_CRASH_ENV: &str = "GRAPE_WORKER_CRASH_AFTER";

/// Locates the `grape-worker` binary: the [`WORKER_BIN_ENV`] override
/// first, then siblings of the current executable (covering both
/// `target/<profile>/` for binaries and `target/<profile>/deps/` for test
/// executables).  `None` when no candidate exists — the caller decides
/// whether that is an error (engine) or a reason to skip (tests on a cold
/// build tree that never compiled the daemon crate).
pub fn locate_worker_binary() -> Option<PathBuf> {
    if let Ok(p) = std::env::var(WORKER_BIN_ENV) {
        if !p.is_empty() {
            let p = PathBuf::from(p);
            return p.is_file().then_some(p);
        }
    }
    let name = format!("grape-worker{}", std::env::consts::EXE_SUFFIX);
    let exe = std::env::current_exe().ok()?;
    let mut dir = exe.parent();
    while let Some(d) = dir {
        let candidate = d.join(&name);
        if candidate.is_file() {
            return Some(candidate);
        }
        if d.file_name().is_some_and(|n| n == "target") {
            break;
        }
        dir = d.parent();
    }
    None
}

fn get<'v>(v: &'v Value, name: &str) -> Result<&'v Value, String> {
    v.get_field(name)
        .ok_or_else(|| format!("request is missing field `{name}`"))
}

fn reply_ok(fields: Vec<(String, Value)>) -> Value {
    let mut map = vec![("ok".to_string(), Value::Bool(true))];
    map.extend(fields);
    Value::Map(map)
}

fn reply_err(msg: &str) -> Value {
    Value::Map(vec![
        ("ok".to_string(), Value::Bool(false)),
        ("error".to_string(), Value::Str(msg.to_string())),
    ])
}

/// The worker side of the pipe protocol: serves one program's evaluation
/// requests until `exit` or end of stream.  `init` is the already-read
/// handshake frame (the caller peeks at its `program` field to pick `P`).
///
/// Request-level failures (unknown fragment, codec mismatch, IncEval before
/// PEval) are answered with `{"ok": false}` and the loop keeps serving —
/// the parent turns them into [`crate::engine::EngineError::Worker`] and
/// tears the child down.  Only transport-level failures (broken pipe,
/// malformed frame) abort the loop.
pub fn serve_program<P: PieProgram>(
    program: &P,
    init: &Value,
    input: &mut dyn BufRead,
    output: &mut dyn Write,
) -> Result<(), String> {
    let codec = program
        .process_codec()
        .ok_or_else(|| format!("program `{}` has no process codec", program.name()))?;

    // Handshake: query, owned fragments, optional retained partials.
    let query = codec
        .decode_query(get(init, "query")?)
        .map_err(|e| format!("handshake query: {e}"))?;
    let mut order: Vec<usize> = Vec::new();
    let mut fragments: HashMap<usize, Fragment> = HashMap::new();
    let mut partials: HashMap<usize, Option<P::Partial>> = HashMap::new();
    match get(init, "fragments")? {
        Value::Seq(entries) => {
            for entry in entries {
                let id = usize::from_value(get(entry, "id")?)
                    .map_err(|e| format!("fragment id: {e}"))?;
                let frag = fragment_from_value(get(entry, "frag")?)
                    .map_err(|e| format!("fragment {id}: {e}"))?;
                order.push(id);
                fragments.insert(id, frag);
                partials.insert(id, None);
            }
        }
        _ => return Err("handshake `fragments` is not a sequence".to_string()),
    }
    if let Some(Value::Seq(entries)) = init.get_field("partials") {
        for entry in entries {
            let id =
                usize::from_value(get(entry, "id")?).map_err(|e| format!("partial id: {e}"))?;
            if !fragments.contains_key(&id) {
                return Err(format!("handshake partial for unowned fragment {id}"));
            }
            let p = codec
                .decode_partial(get(entry, "partial")?)
                .map_err(|e| format!("partial {id}: {e}"))?;
            partials.insert(id, Some(p));
        }
    }
    write_value_frame(output, &reply_ok(Vec::new()))?;

    let crash_after: Option<usize> = std::env::var(WORKER_CRASH_ENV)
        .ok()
        .and_then(|v| v.parse().ok());
    let mut evals_served = 0usize;
    let aggregate = |k: &P::Key, a: P::Value, b: P::Value| program.aggregate(k, a, b);

    loop {
        let Some(payload) = read_frame(input)? else {
            return Ok(()); // parent closed the pipe: orderly shutdown
        };
        let request: Value =
            serde_json::from_str(&payload).map_err(|e| format!("malformed request: {e}"))?;
        let op = request
            .get_field("op")
            .and_then(Value::as_str)
            .unwrap_or("")
            .to_string();

        let reply = match op.as_str() {
            "peval" | "inceval" => {
                if let Some(n) = crash_after {
                    if evals_served >= n {
                        std::process::exit(3); // fault injection: die mid-superstep
                    }
                }
                evals_served += 1;
                (|| -> Result<Value, String> {
                    let fi =
                        usize::from_value(get(&request, "fragment")?).map_err(|e| e.to_string())?;
                    let frag = fragments
                        .get(&fi)
                        .ok_or_else(|| format!("fragment {fi} is not owned by this worker"))?;
                    let mut msgs = Messages::with_aggregator(&aggregate);
                    if op == "peval" {
                        let partial = program.peval(&query, frag, &mut msgs);
                        partials.insert(fi, Some(partial));
                    } else {
                        let mut updates = Vec::new();
                        match get(&request, "updates")? {
                            Value::Seq(entries) => {
                                for entry in entries {
                                    updates.push(
                                        codec.decode_message(entry).map_err(|e| e.to_string())?,
                                    );
                                }
                            }
                            _ => return Err("`updates` is not a sequence".to_string()),
                        }
                        let partial =
                            partials
                                .get_mut(&fi)
                                .and_then(Option::as_mut)
                                .ok_or_else(|| {
                                    format!("IncEval before PEval: fragment {fi} has no partial")
                                })?;
                        program.inc_eval(&query, frag, partial, &updates, &mut msgs);
                    }
                    let encoded: Vec<Value> = msgs
                        .take()
                        .iter()
                        .map(|(k, v)| codec.encode_message(k, v))
                        .collect();
                    Ok(reply_ok(vec![(
                        "messages".to_string(),
                        Value::Seq(encoded),
                    )]))
                })()
                .unwrap_or_else(|e| reply_err(&e))
            }
            "get_partials" => {
                let encoded: Vec<Value> = order
                    .iter()
                    .map(|&id| {
                        let p = match &partials[&id] {
                            Some(p) => codec.encode_partial(p),
                            None => Value::Null,
                        };
                        Value::Map(vec![
                            ("id".to_string(), id.to_value()),
                            ("partial".to_string(), p),
                        ])
                    })
                    .collect();
                reply_ok(vec![("partials".to_string(), Value::Seq(encoded))])
            }
            "set_partials" => (|| -> Result<Value, String> {
                match get(&request, "partials")? {
                    Value::Seq(entries) => {
                        for entry in entries {
                            let id =
                                usize::from_value(get(entry, "id")?).map_err(|e| e.to_string())?;
                            if !fragments.contains_key(&id) {
                                return Err(format!("fragment {id} is not owned by this worker"));
                            }
                            let slot = match get(entry, "partial")? {
                                Value::Null => None,
                                v => Some(codec.decode_partial(v).map_err(|e| e.to_string())?),
                            };
                            partials.insert(id, slot);
                        }
                        Ok(reply_ok(Vec::new()))
                    }
                    _ => Err("`partials` is not a sequence".to_string()),
                }
            })()
            .unwrap_or_else(|e| reply_err(&e)),
            "clear" => {
                for slot in partials.values_mut() {
                    *slot = None;
                }
                reply_ok(Vec::new())
            }
            "exit" => {
                write_value_frame(output, &reply_ok(Vec::new()))?;
                return Ok(());
            }
            other => reply_err(&format!("unknown op `{other}`")),
        };
        write_value_frame(output, &reply)?;
    }
}

/// Parent-side helper: the handshake frame [`serve_program`] expects.
/// `fragments` pairs each shipped fragment with its **global** id;
/// `partials` (when present) pairs retained partials with their ids.
pub fn init_frame(
    program: &str,
    query: Value,
    fragments: &[(usize, &Fragment)],
    partials: Vec<(usize, Value)>,
) -> Value {
    let frags: Vec<Value> = fragments
        .iter()
        .map(|(id, frag)| {
            Value::Map(vec![
                ("id".to_string(), id.to_value()),
                ("frag".to_string(), fragment_to_value(frag)),
            ])
        })
        .collect();
    let mut map = vec![
        ("op".to_string(), Value::Str("init".to_string())),
        ("program".to_string(), Value::Str(program.to_string())),
        ("query".to_string(), query),
        ("fragments".to_string(), Value::Seq(frags)),
    ];
    if !partials.is_empty() {
        let entries: Vec<Value> = partials
            .into_iter()
            .map(|(id, p)| {
                Value::Map(vec![
                    ("id".to_string(), id.to_value()),
                    ("partial".to_string(), p),
                ])
            })
            .collect();
        map.push(("partials".to_string(), Value::Seq(entries)));
    }
    Value::Map(map)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        let mut buf: Vec<u8> = Vec::new();
        write_frame(&mut buf, "hello").unwrap();
        write_frame(&mut buf, "").unwrap();
        let mut r = std::io::BufReader::new(&buf[..]);
        assert_eq!(read_frame(&mut r).unwrap(), Some("hello".to_string()));
        assert_eq!(read_frame(&mut r).unwrap(), Some(String::new()));
        assert_eq!(read_frame(&mut r).unwrap(), None);
    }

    #[test]
    fn oversized_and_malformed_frames_are_rejected() {
        let mut r = std::io::BufReader::new(&b"999999999999\npayload\n"[..]);
        assert!(read_frame(&mut r).unwrap_err().contains("exceeds cap"));
        let mut r = std::io::BufReader::new(&b"not-a-length\n"[..]);
        assert!(read_frame(&mut r)
            .unwrap_err()
            .contains("malformed frame length"));
        let mut r = std::io::BufReader::new(&b"10\nshort\n"[..]);
        assert!(read_frame(&mut r).unwrap_err().contains("truncated"));
    }

    #[test]
    fn init_frame_carries_partials_only_when_present() {
        let v = init_frame("sssp", Value::Null, &[], Vec::new());
        assert!(v.get_field("partials").is_none());
        assert_eq!(v.get_field("program").and_then(Value::as_str), Some("sssp"));
        let v = init_frame("sssp", Value::Null, &[], vec![(0, Value::UInt(7))]);
        assert!(v.get_field("partials").is_some());
    }
}
