//! # grape-core
//!
//! The GRAPE engine — the primary contribution of
//! *Parallelizing Sequential Graph Computations* (SIGMOD 2017).
//!
//! GRAPE parallelizes **sequential** graph algorithms as a whole: the user
//! supplies a *PIE program* (a batch algorithm `PEval`, an incremental
//! algorithm `IncEval`, and a combiner `Assemble`, plus the declaration of
//! the status variables attached to border vertices), and the engine runs it
//! over a fragmented graph as a simultaneous fixpoint:
//!
//! ```text
//! R_i^0     = PEval(Q, F_i)
//! R_i^{r+1} = IncEval(Q, R_i^r, F_i, M_i)      (messages M_i = changed update parameters)
//! Q(G)      = Assemble(R_1^{r0}, …, R_m^{r0})  (when no more updates exist)
//! ```
//!
//! Under the monotonic condition of the Assurance Theorem (update parameters
//! drawn from a finite domain and updated along a partial order — enforced in
//! practice by the `aggregateMsg` function), this terminates with the answer
//! the sequential algorithms would produce.
//!
//! Modules:
//!
//! * [`pie`] — the [`pie::PieProgram`] trait (the programming model) and the
//!   [`pie::IncrementalPie`] extension for queries under updates,
//! * [`session`] — the user entry point: [`session::GrapeSession`] and its
//!   fluent builder (workers, mode, transport, balancer),
//! * [`prepared`] — prepared queries over evolving graphs:
//!   [`prepared::PreparedQuery`] retains the per-fragment partials so
//!   `Q(G ⊕ ΔG)` is answered by IncEval alone,
//! * [`serve`] — [`serve::GrapeServer`]: many prepared queries multiplexed
//!   over **one** delta stream (one `apply_delta` per `ΔG`, shared
//!   `Arc<Fragment>` storage), with eviction/rehydration through the
//!   per-fragment binary snapshots,
//! * [`output_delta`] — answer deltas: the [`output_delta::DeltaOutput`]
//!   contract programs implement so subscriptions
//!   ([`serve::GrapeServer::subscribe`]) can push *which rows changed*
//!   instead of making watchers re-poll whole answers,
//! * [`spec`] — [`spec::QuerySpec`]: serializable, wire-nameable query
//!   specifications for serving processes (`graped`),
//! * [`engine`] — the two runtimes (BSP superstep loop and the barrier-free
//!   streaming loop) behind a session,
//! * [`transport`] — the pluggable message substrate ([`transport::Transport`],
//!   with barrier and mpsc-style channel implementations),
//! * [`config`] — engine configuration (workers, sync/async mode, fault
//!   tolerance, superstep limits),
//! * [`metrics`] — response-time / superstep / communication accounting,
//! * [`load_balance`] — mapping of fragments (virtual workers) onto physical
//!   workers,
//! * [`simulate`] — MapReduce and BSP simulation layers (Theorem 2).

pub mod config;
pub mod engine;
mod host;
pub mod load_balance;
pub mod metrics;
pub mod output_delta;
pub mod pie;
pub mod prepared;
pub mod serve;
pub mod session;
pub mod simulate;
pub mod spec;
#[doc(hidden)]
pub mod test_support;
pub mod transport;
pub mod worker_proto;

pub use config::{EngineConfig, EngineMode};
pub use engine::{EngineError, RunResult};
pub use metrics::{EngineMetrics, LatencySummary};
pub use output_delta::{DeltaOutput, OutputDelta, OutputEvent, QueryDelta, WireOutputDelta};
pub use pie::{IncrementalPie, KeyVertex, Messages, PieProgram, ProcessCodec, SerdeProcessCodec};
pub use prepared::{PreparedQuery, RefreshKind, UpdateReport};
pub use serve::{
    BatchRejection, BatchReport, EvictionPolicy, GrapeServer, QueryHandle, QueryStatus,
    RehydrationReport, ServeError, ServeReport, SubscriptionId,
};
pub use session::{GrapeSession, GrapeSessionBuilder};
pub use spec::QuerySpec;
pub use transport::{Transport, TransportSpec};
