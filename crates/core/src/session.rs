//! Sessions: the user-facing entry point of the engine.
//!
//! A [`GrapeSession`] bundles the three run policies — configuration
//! (workers, mode, limits, fault tolerance), load balancing, and the message
//! transport — behind one fluent builder:
//!
//! ```
//! use grape_core::config::EngineMode;
//! use grape_core::session::GrapeSession;
//! use grape_core::transport::TransportSpec;
//!
//! let session = GrapeSession::builder()
//!     .workers(8)
//!     .mode(EngineMode::Async)
//!     .transport(TransportSpec::Channel)
//!     .build()
//!     .unwrap();
//! assert_eq!(session.config().num_workers, 8);
//! ```
//!
//! The session is cheap to clone, stateless between runs, and reusable:
//! `session.run(&fragmentation, &program, &query)` executes one query and
//! returns the same [`RunResult`] shape as always, while
//! `session.prepare(fragmentation, program, query)` returns a
//! [`crate::prepared::PreparedQuery`] that retains the per-fragment partials
//! for answering under graph updates.  Contradictory policies
//! (the barrier-free [`EngineMode::Async`] with a [`TransportSpec::Barrier`]
//! transport, or with superstep-aligned checkpointing) are rejected at
//! [`GrapeSessionBuilder::build`] time rather than at run time.

use crate::config::{EngineConfig, EngineMode};
use crate::engine::{execute, EngineError, RunResult};
use crate::load_balance::LoadBalancer;
use crate::pie::PieProgram;
use crate::transport::TransportSpec;

use grape_partition::fragment::Fragmentation;

/// A configured, reusable handle on the GRAPE engine.
///
/// Construct it with [`GrapeSession::builder`] (full control) or
/// [`GrapeSession::with_workers`] (defaults everywhere else).
#[derive(Debug, Clone)]
pub struct GrapeSession {
    config: EngineConfig,
    balancer: LoadBalancer,
    transport: TransportSpec,
}

impl GrapeSession {
    /// Starts building a session.
    pub fn builder() -> GrapeSessionBuilder {
        GrapeSessionBuilder::default()
    }

    /// A session with `num_workers` physical workers and default policies
    /// everywhere else.
    pub fn with_workers(num_workers: usize) -> Self {
        GrapeSession::builder()
            .workers(num_workers)
            .build()
            .expect("a bare worker-count session is always valid")
    }

    /// Runs a PIE program over a fragmented graph and returns the assembled
    /// output together with the run metrics.
    ///
    /// One-shot: the per-fragment partial results are assembled and dropped.
    /// To answer the same query repeatedly while the graph evolves, use
    /// [`GrapeSession::prepare`] (defined in [`crate::prepared`]) and apply
    /// [`crate::prepared::PreparedQuery::update`] instead of re-running.
    pub fn run<P: PieProgram>(
        &self,
        fragmentation: &Fragmentation,
        program: &P,
        query: &P::Query,
    ) -> Result<RunResult<P::Output>, EngineError> {
        execute(
            &self.config,
            &self.balancer,
            self.transport,
            fragmentation,
            program,
            query,
        )
    }

    /// The session configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The load balancer mapping fragments onto physical workers.
    pub fn balancer(&self) -> &LoadBalancer {
        &self.balancer
    }

    /// The transport policy.
    pub fn transport(&self) -> TransportSpec {
        self.transport
    }
}

impl Default for GrapeSession {
    fn default() -> Self {
        GrapeSession::builder()
            .build()
            .expect("the default session is always valid")
    }
}

/// Fluent builder for [`GrapeSession`].
#[derive(Debug, Clone, Default)]
pub struct GrapeSessionBuilder {
    config: EngineConfig,
    balancer: LoadBalancer,
    transport: Option<TransportSpec>,
}

impl GrapeSessionBuilder {
    /// Number of physical workers (threads); clamped to ≥ 1.
    pub fn workers(mut self, num_workers: usize) -> Self {
        self.config.num_workers = num_workers.max(1);
        self
    }

    /// Execution mode (default: [`EngineMode::default_from_env`]).
    pub fn mode(mut self, mode: EngineMode) -> Self {
        self.config.mode = mode;
        self
    }

    /// Superstep safety limit.
    pub fn max_supersteps(mut self, max: usize) -> Self {
        self.config.max_supersteps = max.max(1);
        self
    }

    /// Checkpoint every `n` supersteps ([`EngineMode::Sync`] only).
    pub fn checkpoint_every(mut self, n: usize) -> Self {
        self.config.checkpoint_every = Some(n.max(1));
        self
    }

    /// Injects a worker failure ([`EngineMode::Sync`] only).
    pub fn inject_failure(mut self, superstep: usize, fragment: usize) -> Self {
        self.config = self.config.with_injected_failure(superstep, fragment);
        self
    }

    /// Default refresh fan-out width for [`crate::serve::GrapeServer`]s built
    /// on this session (clamped to ≥ 1; overridable per server with
    /// [`crate::serve::GrapeServer::threads`]).
    pub fn refresh_threads(mut self, threads: usize) -> Self {
        self.config.refresh_threads = threads.max(1);
        self
    }

    /// Replaces the whole configuration (useful for replaying a serialized
    /// [`EngineConfig`]); later builder calls still apply on top.
    pub fn config(mut self, config: EngineConfig) -> Self {
        self.config = config;
        self
    }

    /// Overrides the load balancer.
    pub fn balancer(mut self, balancer: LoadBalancer) -> Self {
        self.balancer = balancer;
        self
    }

    /// Overrides the transport (default: the mode's natural substrate,
    /// [`TransportSpec::default_for`]).
    pub fn transport(mut self, transport: TransportSpec) -> Self {
        self.transport = Some(transport);
        self
    }

    /// Validates the combined policies (shared with the engine's own
    /// run-time check, so the deprecated shim path gets the same rules) and
    /// produces the session.
    pub fn build(self) -> Result<GrapeSession, EngineError> {
        let transport = self
            .transport
            .unwrap_or_else(|| TransportSpec::default_for(self.config.mode));
        crate::engine::validate_policies(&self.config, transport)?;
        Ok(GrapeSession {
            config: self.config,
            balancer: self.balancer,
            transport,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pie::Messages;
    use grape_graph::builder::GraphBuilder;
    use grape_graph::types::VertexId;
    use grape_partition::edge_cut::HashEdgeCut;
    use grape_partition::fragment::Fragment;
    use grape_partition::strategy::PartitionStrategy;

    /// The smallest possible PIE program: PEval counts local vertices, no
    /// messages, Assemble sums.  Enough to prove a session is reusable.
    struct CountVertices;

    impl PieProgram for CountVertices {
        type Query = ();
        type Partial = usize;
        type Key = VertexId;
        type Value = u64;
        type Output = usize;

        fn peval(&self, _q: &(), frag: &Fragment, _ctx: &mut Messages<VertexId, u64>) -> usize {
            frag.num_inner()
        }

        fn inc_eval(
            &self,
            _q: &(),
            _frag: &Fragment,
            _partial: &mut usize,
            _messages: &[(VertexId, u64)],
            _ctx: &mut Messages<VertexId, u64>,
        ) {
        }

        fn assemble(&self, _q: &(), partials: Vec<usize>) -> usize {
            partials.into_iter().sum()
        }

        fn aggregate(&self, _key: &VertexId, a: u64, _b: u64) -> u64 {
            a
        }
    }

    fn tiny_fragmentation() -> grape_partition::fragment::Fragmentation {
        let g = GraphBuilder::directed()
            .add_edge(0, 1)
            .add_edge(1, 2)
            .add_edge(2, 3)
            .build();
        HashEdgeCut::new(2).partition(&g).unwrap()
    }

    #[test]
    fn builder_sets_every_policy() {
        let session = GrapeSession::builder()
            .workers(8)
            .mode(EngineMode::Async)
            .max_supersteps(50)
            .refresh_threads(4)
            .transport(TransportSpec::Channel)
            .balancer(LoadBalancer { comm_weight: 2.0 })
            .build()
            .unwrap();
        assert_eq!(session.config().num_workers, 8);
        assert_eq!(session.config().mode, EngineMode::Async);
        assert_eq!(session.config().max_supersteps, 50);
        assert_eq!(session.config().refresh_threads, 4);
        assert_eq!(session.transport(), TransportSpec::Channel);
        assert!((session.balancer().comm_weight - 2.0).abs() < 1e-12);
    }

    #[test]
    fn transport_defaults_follow_the_mode() {
        let sync = GrapeSession::builder()
            .mode(EngineMode::Sync)
            .build()
            .unwrap();
        assert_eq!(sync.transport(), TransportSpec::Barrier);
        let async_ = GrapeSession::builder()
            .mode(EngineMode::Async)
            .build()
            .unwrap();
        assert_eq!(async_.transport(), TransportSpec::Channel);
    }

    #[test]
    fn async_mode_rejects_barrier_transport() {
        let err = GrapeSession::builder()
            .mode(EngineMode::Async)
            .transport(TransportSpec::Barrier)
            .build()
            .unwrap_err();
        assert!(matches!(err, EngineError::InvalidConfig(_)));
    }

    #[test]
    fn async_mode_rejects_superstep_aligned_fault_tolerance() {
        let err = GrapeSession::builder()
            .mode(EngineMode::Async)
            .checkpoint_every(2)
            .build()
            .unwrap_err();
        assert!(matches!(err, EngineError::InvalidConfig(_)));
        let err = GrapeSession::builder()
            .mode(EngineMode::Async)
            .inject_failure(1, 0)
            .build()
            .unwrap_err();
        assert!(matches!(err, EngineError::InvalidConfig(_)));
    }

    #[test]
    fn sync_mode_rejects_checkpointing_on_a_streaming_transport() {
        // ChannelTransport cannot snapshot, so accepting this combination
        // would silently degrade recovery to restart-from-scratch.
        let err = GrapeSession::builder()
            .mode(EngineMode::Sync)
            .transport(TransportSpec::Channel)
            .checkpoint_every(1)
            .build()
            .unwrap_err();
        assert!(matches!(err, EngineError::InvalidConfig(_)));
    }

    #[test]
    fn workers_clamped_to_one() {
        assert_eq!(GrapeSession::with_workers(0).config().num_workers, 1);
    }

    #[test]
    fn a_session_is_reusable_across_runs() {
        let frag = tiny_fragmentation();
        let session = GrapeSession::with_workers(2);
        let first = session.run(&frag, &CountVertices, &()).unwrap();
        let second = session.run(&frag, &CountVertices, &()).unwrap();
        assert_eq!(first.output, 4);
        assert_eq!(second.output, 4);
    }

    #[test]
    fn config_seed_then_override() {
        let cfg = EngineConfig::with_workers(3).with_max_supersteps(7);
        let session = GrapeSession::builder()
            .config(cfg)
            .workers(5)
            .build()
            .unwrap();
        assert_eq!(session.config().num_workers, 5);
        assert_eq!(session.config().max_supersteps, 7);
    }
}
