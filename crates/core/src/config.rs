//! Engine configuration: the paper's "configuration panel" (Fig. 1), where
//! the user picks the number of workers, plus knobs for the execution mode,
//! fault tolerance and termination safety net.
//!
//! Configurations are usually assembled through
//! [`crate::session::GrapeSession::builder`]; the struct itself stays public
//! so configurations can be stored, serialized and replayed.

use serde::{Deserialize, Serialize};

/// Synchronisation mode of the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EngineMode {
    /// BSP-style synchronous supersteps (the model analysed in the paper):
    /// a global barrier between supersteps, messages published at the
    /// barrier by [`crate::transport::BarrierTransport`].
    Sync,
    /// Asynchronous extension (mentioned as future work in the paper's
    /// conclusion): fragments run as independent tasks draining their
    /// mailboxes ([`crate::transport::ChannelTransport`]) to quiescence —
    /// there is **no global superstep barrier**.  Results are identical
    /// under the monotonic condition, usually with fewer supersteps (the
    /// superstep metric then reports the depth of an equivalent BSP
    /// schedule of the same message deliveries).
    Async,
}

impl EngineMode {
    /// The process-wide default mode: `Sync`, unless the environment
    /// variable `GRAPE_ENGINE_MODE` is set to `async` (used by CI to run
    /// the whole test suite through the barrier-free runtime).
    pub fn default_from_env() -> Self {
        match std::env::var("GRAPE_ENGINE_MODE") {
            Ok(v) if v.eq_ignore_ascii_case("async") || v.eq_ignore_ascii_case("asynchronous") => {
                EngineMode::Async
            }
            _ => EngineMode::Sync,
        }
    }
}

/// An injected worker failure, used to exercise the fault-tolerance path
/// (Section 6, "Fault tolerance"): at the start of superstep `superstep`, the
/// fragment `fragment` loses its state and must be recovered from the last
/// checkpoint by the arbitrator.  Only meaningful in [`EngineMode::Sync`]
/// (checkpoints are superstep-aligned).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct InjectedFailure {
    /// Superstep (1-based IncEval rounds; PEval is superstep 0).
    pub superstep: usize,
    /// Fragment whose state is lost.
    pub fragment: usize,
}

/// Configuration of a GRAPE run (see [`crate::session::GrapeSession`]).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EngineConfig {
    /// Number of physical workers (threads).  Fragments (virtual workers) are
    /// mapped onto physical workers by the load balancer.
    pub num_workers: usize,
    /// Execution mode.
    pub mode: EngineMode,
    /// Safety net: abort with an error after this many supersteps (the
    /// Assurance Theorem guarantees termination for monotonic programs, but a
    /// buggy user program might not be monotonic).
    pub max_supersteps: usize,
    /// Take a checkpoint of all partial results every `n` supersteps
    /// (`None` disables checkpointing).  Synchronous mode only.
    pub checkpoint_every: Option<usize>,
    /// Failures to inject (testing / evaluation of the recovery path).
    /// Synchronous mode only.
    pub injected_failures: Vec<InjectedFailure>,
    /// Default number of threads a [`crate::serve::GrapeServer`] uses to fan
    /// refreshes out over its resident queries (the per-query engines still
    /// use `num_workers` threads each).  `0` (the serde default for configs
    /// recorded before this knob existed) is treated as `1`.
    #[serde(default)]
    pub refresh_threads: usize,
}

impl EngineConfig {
    /// A configuration with `num_workers` physical workers, default safety
    /// limits, and the process default mode (see
    /// [`EngineMode::default_from_env`]).
    pub fn with_workers(num_workers: usize) -> Self {
        EngineConfig {
            num_workers: num_workers.max(1),
            mode: EngineMode::default_from_env(),
            max_supersteps: 100_000,
            checkpoint_every: None,
            injected_failures: Vec::new(),
            refresh_threads: 1,
        }
    }

    /// Forces BSP-style synchronous supersteps (overrides the env default).
    pub fn synchronous(mut self) -> Self {
        self.mode = EngineMode::Sync;
        self
    }

    /// Switches to the asynchronous (barrier-free) extension.
    pub fn asynchronous(mut self) -> Self {
        self.mode = EngineMode::Async;
        self
    }

    /// Sets the superstep safety limit.
    pub fn with_max_supersteps(mut self, max: usize) -> Self {
        self.max_supersteps = max.max(1);
        self
    }

    /// Enables checkpointing every `n` supersteps.
    pub fn with_checkpoint_every(mut self, n: usize) -> Self {
        self.checkpoint_every = Some(n.max(1));
        self
    }

    /// Adds an injected failure.
    pub fn with_injected_failure(mut self, superstep: usize, fragment: usize) -> Self {
        self.injected_failures.push(InjectedFailure {
            superstep,
            fragment,
        });
        self
    }

    /// Sets the default `GrapeServer` refresh fan-out width (clamped ≥ 1).
    pub fn with_refresh_threads(mut self, threads: usize) -> Self {
        self.refresh_threads = threads.max(1);
        self
    }
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig::with_workers(std::thread::available_parallelism().map_or(4, |n| n.get()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn with_workers_clamps_to_one() {
        assert_eq!(EngineConfig::with_workers(0).num_workers, 1);
        assert_eq!(EngineConfig::with_workers(8).num_workers, 8);
    }

    #[test]
    fn builder_methods_set_fields() {
        let cfg = EngineConfig::with_workers(2)
            .asynchronous()
            .with_max_supersteps(50)
            .with_checkpoint_every(5)
            .with_injected_failure(3, 1)
            .with_refresh_threads(4);
        assert_eq!(cfg.mode, EngineMode::Async);
        assert_eq!(cfg.refresh_threads, 4);
        assert_eq!(
            EngineConfig::with_workers(2)
                .with_refresh_threads(0)
                .refresh_threads,
            1,
            "refresh_threads clamps to one"
        );
        assert_eq!(cfg.max_supersteps, 50);
        assert_eq!(cfg.checkpoint_every, Some(5));
        assert_eq!(
            cfg.injected_failures,
            vec![InjectedFailure {
                superstep: 3,
                fragment: 1
            }]
        );
    }

    #[test]
    fn synchronous_overrides_async() {
        let cfg = EngineConfig::with_workers(2).asynchronous().synchronous();
        assert_eq!(cfg.mode, EngineMode::Sync);
    }

    #[test]
    fn default_config_has_at_least_one_worker() {
        let cfg = EngineConfig::default();
        assert!(cfg.num_workers >= 1);
        assert_eq!(cfg.mode, EngineMode::default_from_env());
        assert!(cfg.checkpoint_every.is_none());
    }
}
