//! The transport layer: how update-parameter messages move between
//! fragments (virtual workers).
//!
//! The paper's engine is parallelization-agnostic — PIE programs plug into
//! *any* message-passing substrate.  This module makes that explicit: the
//! engine's superstep loop and the asynchronous task runtime are both written
//! against the [`Transport`] trait, and the choice of substrate is a policy
//! ([`TransportSpec`]) picked by the [`crate::session::GrapeSession`]
//! builder.  Today workers are threads; a transport backed by processes or
//! TCP sockets slots in behind the same trait without touching the engine.
//!
//! Two implementations ship:
//!
//! * [`BarrierTransport`] — BSP semantics.  `send_batch` stages updates in a
//!   **per-sender** buffer (each sender locks only its own staging area, so
//!   evaluation threads never contend); [`Transport::flush`] — called once
//!   per superstep by the coordinator — aggregates conflicting assignments
//!   across senders with `aggregateMsg`, drops values identical to what the
//!   destination already received (the *delivered* cache of Section 3.2(3)),
//!   and publishes the rest to the per-fragment mailboxes.
//! * [`ChannelTransport`] — mpsc-style streaming.  `send_batch` delivers
//!   straight into the destination mailbox (aggregating and deduplicating
//!   on the fly); there is no barrier and `flush` is a no-op.  This is the
//!   substrate of the barrier-free [`crate::config::EngineMode::Async`]
//!   runtime.
//!
//! Both account every shipped update into [`TransportStats`] using the
//! program's `key_size`/`value_size`, which is what
//! [`crate::metrics::EngineMetrics`] reports for the paper's communication
//! figures.

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use parking_lot::Mutex;
use serde::{Deserialize, Error, Serialize, Value};

/// The message-preamble hooks a transport borrows from a PIE program for the
/// duration of one run: `aggregateMsg` plus the wire-size estimators.
pub struct MessageOps<'p, K, V> {
    /// `aggregateMsg`: resolves conflicting assignments to the same key.
    pub aggregate: &'p (dyn Fn(&K, V, V) -> V + Sync),
    /// Approximate wire size of a key.
    pub key_size: &'p (dyn Fn(&K) -> usize + Sync),
    /// Approximate wire size of a value.
    pub value_size: &'p (dyn Fn(&V) -> usize + Sync),
}

impl<K, V> Clone for MessageOps<'_, K, V> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<K, V> Copy for MessageOps<'_, K, V> {}

impl<K, V> std::fmt::Debug for MessageOps<'_, K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("MessageOps")
    }
}

/// Which transport implementation a session uses.  `Barrier` pairs with
/// [`crate::config::EngineMode::Sync`], `Channel` with
/// [`crate::config::EngineMode::Async`].  `Channel` also works under
/// `Sync`, with two caveats: per-superstep message/byte attribution shifts
/// one superstep late (the streaming transport charges at drain, not at
/// the barrier — run totals are unaffected), and checkpointing is
/// unavailable (no snapshot support, rejected at session build).
///
/// `Process` shards the fragments across `workers` OS subprocesses
/// (`grape-worker`): PEval/IncEval execute inside the process that owns
/// each fragment, and only seed/border messages plus the assembled
/// partials cross the stdin/stdout pipes.  Message routing stays in the
/// parent — under `Sync` the [`ProcessTransport`] publishes at the
/// superstep barrier (and therefore checkpoints), under `Async` it
/// streams.  The serde impls are written by hand because the derive shim
/// only handles fieldless enums.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportSpec {
    /// Per-sender staging published at the superstep barrier
    /// ([`BarrierTransport`]).
    Barrier,
    /// Streaming mailboxes with no barrier ([`ChannelTransport`]).
    Channel,
    /// Fragments sharded across `workers` OS subprocesses; parent-side
    /// mailboxes ([`ProcessTransport`]), evaluation over pipes.
    Process {
        /// Number of `grape-worker` subprocesses (clamped to
        /// `1..=num_fragments` at run time).
        workers: usize,
    },
}

impl TransportSpec {
    /// Display name, recorded in [`crate::metrics::EngineMetrics`].
    pub fn name(&self) -> &'static str {
        match self {
            TransportSpec::Barrier => "barrier",
            TransportSpec::Channel => "channel",
            TransportSpec::Process { .. } => "process",
        }
    }

    /// The default substrate for an execution mode.
    pub fn default_for(mode: crate::config::EngineMode) -> Self {
        match mode {
            crate::config::EngineMode::Sync => TransportSpec::Barrier,
            crate::config::EngineMode::Async => TransportSpec::Channel,
        }
    }

    /// Whether this substrate can serve the barrier-free
    /// [`crate::config::EngineMode::Async`] runtime (sends visible without
    /// a flush).  `Process` qualifies: its parent-side mailboxes stream
    /// under `Async`.
    pub fn streaming_capable(&self) -> bool {
        !matches!(self, TransportSpec::Barrier)
    }

    /// Whether a transport built from this spec can snapshot its mailboxes
    /// for superstep-aligned checkpoints.  This is the capability the
    /// session/engine validation queries instead of growing a
    /// `if spec == …` chain per variant: each spec (including future TCP
    /// node transports) declares its own answer.  `Process` checkpoints:
    /// its parent-side mailboxes snapshot like `Barrier`'s, and the worker
    /// subprocesses surrender their partials over the pipe.
    pub fn supports_checkpoints(&self) -> bool {
        match self {
            TransportSpec::Barrier => true,
            TransportSpec::Channel => false,
            TransportSpec::Process { .. } => true,
        }
    }
}

impl Serialize for TransportSpec {
    fn to_value(&self) -> Value {
        match self {
            TransportSpec::Barrier => Value::Str("Barrier".to_string()),
            TransportSpec::Channel => Value::Str("Channel".to_string()),
            TransportSpec::Process { workers } => Value::Map(vec![(
                "Process".to_string(),
                Value::Map(vec![("workers".to_string(), workers.to_value())]),
            )]),
        }
    }
}

impl Deserialize for TransportSpec {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => match s.as_str() {
                "Barrier" => Ok(TransportSpec::Barrier),
                "Channel" => Ok(TransportSpec::Channel),
                other => Err(Error::custom(format!("unknown transport spec `{other}`"))),
            },
            Value::Map(_) => {
                let body = v
                    .get_field("Process")
                    .ok_or_else(|| Error::custom("expected a `Process` transport spec map"))?;
                let workers = body
                    .get_field("workers")
                    .ok_or_else(|| Error::missing_field("workers"))?;
                Ok(TransportSpec::Process {
                    workers: usize::from_value(workers)?,
                })
            }
            _ => Err(Error::custom("expected transport spec string or map")),
        }
    }
}

/// Cumulative message/byte accounting of a transport.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransportStats {
    /// Updates actually enqueued (after aggregation and dedup).
    pub messages: usize,
    /// Bytes for those updates (`key_size + value_size` each).
    pub bytes: usize,
}

/// Everything a mailbox held when it was drained.
#[derive(Debug)]
pub struct Drained<K, V> {
    /// The deduplicated updates, ready for `IncEval`.
    pub updates: Vec<(K, V)>,
    /// Highest logical step among the senders of `updates` (0 when empty):
    /// the superstep that routed them under the barrier transport, or the
    /// sender's evaluation round under the streaming transport.
    pub max_step: usize,
    /// Messages charged to [`TransportStats`] for this drain.
    pub messages: usize,
    /// Bytes charged for this drain.
    pub bytes: usize,
}

impl<K, V> Drained<K, V> {
    fn empty() -> Self {
        Drained {
            updates: Vec::new(),
            max_step: 0,
            messages: 0,
            bytes: 0,
        }
    }
}

/// Frozen mailbox state (pending queues + delivered caches), captured for
/// the fault-tolerance checkpoints of the synchronous runtime.
#[derive(Debug, Clone)]
pub struct TransportSnapshot<K, V> {
    mailboxes: Vec<BarrierMailbox<K, V>>,
}

/// One staged batch awaiting the barrier: `(destination, sender step,
/// updates)`.
type StagedBatch<K, V> = (usize, usize, Vec<(K, V)>);

/// A message-passing substrate connecting `m` fragment mailboxes.
///
/// Contract (checked by the conformance suite in this module's tests):
///
/// * updates become visible to [`Transport::drain`] after
///   [`Transport::flush`] (barrier transports) or immediately (streaming
///   transports, [`Transport::is_streaming`] = `true`);
/// * conflicting assignments to one key are resolved with `aggregateMsg`
///   before delivery, whichever sender they came from;
/// * a value identical to the last one delivered to that mailbox is dropped
///   free of charge (the *delivered* cache) — only **changed** values ship
///   and are accounted;
/// * after [`Transport::seal`], further sends panic (a programming error),
///   while pending mail can still be drained.
pub trait Transport<K, V>: Send + Sync {
    /// Implementation name (metrics/debugging).
    fn name(&self) -> &'static str;

    /// Whether sends become visible without a `flush` — required by the
    /// barrier-free asynchronous runtime.
    fn is_streaming(&self) -> bool;

    /// Ships a batch of updates from fragment `from` to the mailbox of
    /// `dest`, tagged with the sender's logical step.
    fn send_batch(&self, from: usize, dest: usize, step: usize, updates: Vec<(K, V)>);

    /// Publishes staged sends (barrier transports); returns what this flush
    /// newly enqueued.  No-op for streaming transports.
    fn flush(&self) -> TransportStats;

    /// Takes all pending messages of `fragment`.
    fn drain(&self, fragment: usize) -> Drained<K, V>;

    /// Whether `fragment` has published messages waiting.
    fn has_pending(&self, fragment: usize) -> bool;

    /// Number of mailboxes with published messages waiting.
    fn pending_mailboxes(&self) -> usize;

    /// Rejects further sends; draining stays legal.
    fn seal(&self);

    /// Cumulative accounting since construction (monotone, survives
    /// [`Transport::reset`] — re-shipped messages after a failure recovery
    /// are real communication).
    fn stats(&self) -> TransportStats;

    /// Whether [`Transport::snapshot`] returns `Some` — the capability the
    /// checkpointing machinery queries.  Must agree with `snapshot()`
    /// (checked by the conformance suite).
    fn supports_checkpoints(&self) -> bool;

    /// Captures mailbox state for checkpointing, or `None` when the
    /// transport cannot checkpoint (streaming transports).
    fn snapshot(&self) -> Option<TransportSnapshot<K, V>>;

    /// Restores a snapshot taken on the same transport shape.
    fn restore(&self, snapshot: &TransportSnapshot<K, V>);

    /// Clears all mailboxes and delivered caches (restart recovery).
    fn reset(&self);
}

// ---------------------------------------------------------------------------
// BarrierTransport
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
struct BarrierMailbox<K, V> {
    queue: Vec<(K, V)>,
    queue_step: usize,
    queue_bytes: usize,
    delivered: HashMap<K, V>,
}

impl<K, V> BarrierMailbox<K, V> {
    fn new() -> Self {
        BarrierMailbox {
            queue: Vec::new(),
            queue_step: 0,
            queue_bytes: 0,
            delivered: HashMap::new(),
        }
    }
}

/// BSP transport: per-sender staging buffers, published at the superstep
/// barrier by [`Transport::flush`].
///
/// During evaluation each sender appends to its **own** staging buffer —
/// the per-sender mutexes are never contended (the fragment's owning worker
/// is the only thread touching them), so the hot path is effectively
/// lock-free, unlike the former engine-global
/// `Vec<Mutex<Vec<(K, V)>>>` inboxes.
pub struct BarrierTransport<'p, K, V> {
    ops: MessageOps<'p, K, V>,
    /// Per-sender staged batches: `(dest, step, updates)`.
    staging: Vec<Mutex<Vec<StagedBatch<K, V>>>>,
    mailboxes: Vec<Mutex<BarrierMailbox<K, V>>>,
    messages: AtomicUsize,
    bytes: AtomicUsize,
    sealed: AtomicBool,
}

impl<'p, K, V> BarrierTransport<'p, K, V> {
    /// A transport connecting `num_fragments` mailboxes.
    pub fn new(num_fragments: usize, ops: MessageOps<'p, K, V>) -> Self {
        BarrierTransport {
            ops,
            staging: (0..num_fragments).map(|_| Mutex::new(Vec::new())).collect(),
            mailboxes: (0..num_fragments)
                .map(|_| Mutex::new(BarrierMailbox::new()))
                .collect(),
            messages: AtomicUsize::new(0),
            bytes: AtomicUsize::new(0),
            sealed: AtomicBool::new(false),
        }
    }
}

impl<K, V> Transport<K, V> for BarrierTransport<'_, K, V>
where
    K: Clone + Eq + Hash + Send,
    V: Clone + PartialEq + Send,
{
    fn name(&self) -> &'static str {
        "barrier"
    }

    fn is_streaming(&self) -> bool {
        false
    }

    fn send_batch(&self, from: usize, dest: usize, step: usize, updates: Vec<(K, V)>) {
        assert!(
            !self.sealed.load(Ordering::SeqCst),
            "send_batch on a sealed transport"
        );
        if updates.is_empty() {
            return;
        }
        self.staging[from].lock().push((dest, step, updates));
    }

    fn flush(&self) -> TransportStats {
        // Aggregate conflicting assignments across all senders first (the
        // coordinator's message grouping), then publish changed values.
        let mut per_dest: HashMap<usize, HashMap<K, (V, usize)>> = HashMap::new();
        for sender in &self.staging {
            for (dest, step, updates) in sender.lock().drain(..) {
                let slot = per_dest.entry(dest).or_default();
                for (k, v) in updates {
                    match slot.entry(k) {
                        std::collections::hash_map::Entry::Occupied(mut o) => {
                            let (old_v, old_step) = o.get().clone();
                            let merged = (self.ops.aggregate)(o.key(), old_v, v);
                            o.insert((merged, old_step.max(step)));
                        }
                        std::collections::hash_map::Entry::Vacant(slot) => {
                            slot.insert((v, step));
                        }
                    }
                }
            }
        }
        let mut published = TransportStats::default();
        for (dest, updates) in per_dest {
            let mut mailbox = self.mailboxes[dest].lock();
            for (k, (v, step)) in updates {
                if mailbox.delivered.get(&k) == Some(&v) {
                    continue; // unchanged since the last delivery
                }
                let size = (self.ops.key_size)(&k) + (self.ops.value_size)(&v);
                published.messages += 1;
                published.bytes += size;
                mailbox.queue_bytes += size;
                mailbox.queue_step = mailbox.queue_step.max(step);
                mailbox.delivered.insert(k.clone(), v.clone());
                mailbox.queue.push((k, v));
            }
        }
        self.messages
            .fetch_add(published.messages, Ordering::SeqCst);
        self.bytes.fetch_add(published.bytes, Ordering::SeqCst);
        published
    }

    fn drain(&self, fragment: usize) -> Drained<K, V> {
        let mut mailbox = self.mailboxes[fragment].lock();
        if mailbox.queue.is_empty() {
            return Drained::empty();
        }
        let updates = std::mem::take(&mut mailbox.queue);
        let drained = Drained {
            messages: updates.len(),
            bytes: mailbox.queue_bytes,
            max_step: mailbox.queue_step,
            updates,
        };
        mailbox.queue_step = 0;
        mailbox.queue_bytes = 0;
        drained
    }

    fn has_pending(&self, fragment: usize) -> bool {
        !self.mailboxes[fragment].lock().queue.is_empty()
    }

    fn pending_mailboxes(&self) -> usize {
        self.mailboxes
            .iter()
            .filter(|m| !m.lock().queue.is_empty())
            .count()
    }

    fn seal(&self) {
        self.sealed.store(true, Ordering::SeqCst);
    }

    fn stats(&self) -> TransportStats {
        TransportStats {
            messages: self.messages.load(Ordering::SeqCst),
            bytes: self.bytes.load(Ordering::SeqCst),
        }
    }

    fn supports_checkpoints(&self) -> bool {
        true
    }

    fn snapshot(&self) -> Option<TransportSnapshot<K, V>> {
        Some(TransportSnapshot {
            mailboxes: self.mailboxes.iter().map(|m| m.lock().clone()).collect(),
        })
    }

    fn restore(&self, snapshot: &TransportSnapshot<K, V>) {
        assert_eq!(
            snapshot.mailboxes.len(),
            self.mailboxes.len(),
            "snapshot shape mismatch"
        );
        for (mailbox, saved) in self.mailboxes.iter().zip(&snapshot.mailboxes) {
            *mailbox.lock() = saved.clone();
        }
        for sender in &self.staging {
            sender.lock().clear();
        }
    }

    fn reset(&self) {
        for mailbox in &self.mailboxes {
            let mut m = mailbox.lock();
            m.queue.clear();
            m.queue_step = 0;
            m.queue_bytes = 0;
            m.delivered.clear();
        }
        for sender in &self.staging {
            sender.lock().clear();
        }
    }
}

// ---------------------------------------------------------------------------
// ChannelTransport
// ---------------------------------------------------------------------------

#[derive(Debug)]
struct ChannelMailbox<K, V> {
    /// Pending updates, coalesced by key: value + max sender step.
    pending: HashMap<K, (V, usize)>,
    delivered: HashMap<K, V>,
}

impl<K, V> ChannelMailbox<K, V> {
    fn new() -> Self {
        ChannelMailbox {
            pending: HashMap::new(),
            delivered: HashMap::new(),
        }
    }
}

/// Streaming (mpsc-style) transport: sends land in the destination mailbox
/// immediately, aggregated with `aggregateMsg` on arrival; there is no
/// global barrier.  The substrate of [`crate::config::EngineMode::Async`].
pub struct ChannelTransport<'p, K, V> {
    ops: MessageOps<'p, K, V>,
    mailboxes: Vec<Mutex<ChannelMailbox<K, V>>>,
    /// Number of mailboxes with pending mail — the quiescence signal the
    /// asynchronous runtime polls without taking any lock.
    nonempty: AtomicUsize,
    messages: AtomicUsize,
    bytes: AtomicUsize,
    sealed: AtomicBool,
}

impl<'p, K, V> ChannelTransport<'p, K, V> {
    /// A transport connecting `num_fragments` mailboxes.
    pub fn new(num_fragments: usize, ops: MessageOps<'p, K, V>) -> Self {
        ChannelTransport {
            ops,
            mailboxes: (0..num_fragments)
                .map(|_| Mutex::new(ChannelMailbox::new()))
                .collect(),
            nonempty: AtomicUsize::new(0),
            messages: AtomicUsize::new(0),
            bytes: AtomicUsize::new(0),
            sealed: AtomicBool::new(false),
        }
    }
}

impl<K, V> Transport<K, V> for ChannelTransport<'_, K, V>
where
    K: Clone + Eq + Hash + Send,
    V: Clone + PartialEq + Send,
{
    fn name(&self) -> &'static str {
        "channel"
    }

    fn is_streaming(&self) -> bool {
        true
    }

    fn send_batch(&self, _from: usize, dest: usize, step: usize, updates: Vec<(K, V)>) {
        assert!(
            !self.sealed.load(Ordering::SeqCst),
            "send_batch on a sealed transport"
        );
        if updates.is_empty() {
            return;
        }
        let mut mailbox = self.mailboxes[dest].lock();
        let ChannelMailbox { pending, delivered } = &mut *mailbox;
        let was_empty = pending.is_empty();
        for (k, v) in updates {
            match pending.entry(k) {
                std::collections::hash_map::Entry::Occupied(mut o) => {
                    let (old_v, old_step) = o.get().clone();
                    let merged = (self.ops.aggregate)(o.key(), old_v, v);
                    o.insert((merged, old_step.max(step)));
                }
                std::collections::hash_map::Entry::Vacant(slot) => {
                    // Exact repeat of the last delivered value: drop early,
                    // don't even wake the destination.
                    if delivered.get(slot.key()) != Some(&v) {
                        slot.insert((v, step));
                    }
                }
            }
        }
        if was_empty && !pending.is_empty() {
            self.nonempty.fetch_add(1, Ordering::SeqCst);
        }
    }

    fn flush(&self) -> TransportStats {
        TransportStats::default() // streaming: nothing staged
    }

    fn drain(&self, fragment: usize) -> Drained<K, V> {
        let mut mailbox = self.mailboxes[fragment].lock();
        if mailbox.pending.is_empty() {
            return Drained::empty();
        }
        let pending = std::mem::take(&mut mailbox.pending);
        self.nonempty.fetch_sub(1, Ordering::SeqCst);
        let mut drained = Drained::empty();
        for (k, (v, step)) in pending {
            // Aggregation may have converged back onto the delivered value.
            if mailbox.delivered.get(&k) == Some(&v) {
                continue;
            }
            drained.messages += 1;
            drained.bytes += (self.ops.key_size)(&k) + (self.ops.value_size)(&v);
            drained.max_step = drained.max_step.max(step);
            mailbox.delivered.insert(k.clone(), v.clone());
            drained.updates.push((k, v));
        }
        self.messages.fetch_add(drained.messages, Ordering::SeqCst);
        self.bytes.fetch_add(drained.bytes, Ordering::SeqCst);
        drained
    }

    fn has_pending(&self, fragment: usize) -> bool {
        !self.mailboxes[fragment].lock().pending.is_empty()
    }

    fn pending_mailboxes(&self) -> usize {
        self.nonempty.load(Ordering::SeqCst)
    }

    fn seal(&self) {
        self.sealed.store(true, Ordering::SeqCst);
    }

    fn stats(&self) -> TransportStats {
        TransportStats {
            messages: self.messages.load(Ordering::SeqCst),
            bytes: self.bytes.load(Ordering::SeqCst),
        }
    }

    fn supports_checkpoints(&self) -> bool {
        false
    }

    fn snapshot(&self) -> Option<TransportSnapshot<K, V>> {
        None // streaming mailboxes are not checkpointable
    }

    fn restore(&self, _snapshot: &TransportSnapshot<K, V>) {
        unreachable!("ChannelTransport::snapshot returns None; nothing can be restored");
    }

    fn reset(&self) {
        for mailbox in &self.mailboxes {
            let mut m = mailbox.lock();
            m.pending.clear();
            m.delivered.clear();
        }
        self.nonempty.store(0, Ordering::SeqCst);
    }
}

// ---------------------------------------------------------------------------
// ProcessTransport
// ---------------------------------------------------------------------------

/// The message substrate of [`TransportSpec::Process`]: parent-side
/// mailboxes fronting subprocess workers.
///
/// Fragment *evaluation* moves into `grape-worker` subprocesses (that is
/// the `crate::host::WorkerHost` boundary, not the transport's), but
/// message *routing* stays in the parent: the engine routes every emitted
/// update through `G_P` and this transport queues it for the owning
/// fragment exactly as in-process runs do.  The transport therefore wraps
/// the in-process substrate matching the engine mode — [`BarrierTransport`]
/// under [`crate::config::EngineMode::Sync`] (so superstep-aligned
/// checkpoints keep working: parent mailboxes snapshot here, worker
/// partials are collected over the pipe), [`ChannelTransport`] under
/// [`crate::config::EngineMode::Async`] — and is constructible without any
/// subprocess, which is how the conformance suite drives it through every
/// contract case.
pub struct ProcessTransport<'p, K, V> {
    inner: ProcessInner<'p, K, V>,
}

enum ProcessInner<'p, K, V> {
    Barrier(BarrierTransport<'p, K, V>),
    Channel(ChannelTransport<'p, K, V>),
}

impl<'p, K, V> ProcessTransport<'p, K, V> {
    /// A barrier-semantics (BSP) process transport over `num_fragments`
    /// mailboxes — the [`crate::config::EngineMode::Sync`] substrate.
    pub fn new(num_fragments: usize, ops: MessageOps<'p, K, V>) -> Self {
        ProcessTransport {
            inner: ProcessInner::Barrier(BarrierTransport::new(num_fragments, ops)),
        }
    }

    /// A streaming process transport — the
    /// [`crate::config::EngineMode::Async`] substrate.
    pub fn streaming(num_fragments: usize, ops: MessageOps<'p, K, V>) -> Self {
        ProcessTransport {
            inner: ProcessInner::Channel(ChannelTransport::new(num_fragments, ops)),
        }
    }

    fn as_dyn(&self) -> &dyn Transport<K, V>
    where
        K: Clone + Eq + Hash + Send,
        V: Clone + PartialEq + Send,
    {
        match &self.inner {
            ProcessInner::Barrier(t) => t,
            ProcessInner::Channel(t) => t,
        }
    }
}

impl<K, V> Transport<K, V> for ProcessTransport<'_, K, V>
where
    K: Clone + Eq + Hash + Send,
    V: Clone + PartialEq + Send,
{
    fn name(&self) -> &'static str {
        "process"
    }

    fn is_streaming(&self) -> bool {
        self.as_dyn().is_streaming()
    }

    fn send_batch(&self, from: usize, dest: usize, step: usize, updates: Vec<(K, V)>) {
        self.as_dyn().send_batch(from, dest, step, updates);
    }

    fn flush(&self) -> TransportStats {
        self.as_dyn().flush()
    }

    fn drain(&self, fragment: usize) -> Drained<K, V> {
        self.as_dyn().drain(fragment)
    }

    fn has_pending(&self, fragment: usize) -> bool {
        self.as_dyn().has_pending(fragment)
    }

    fn pending_mailboxes(&self) -> usize {
        self.as_dyn().pending_mailboxes()
    }

    fn seal(&self) {
        self.as_dyn().seal();
    }

    fn stats(&self) -> TransportStats {
        self.as_dyn().stats()
    }

    fn supports_checkpoints(&self) -> bool {
        self.as_dyn().supports_checkpoints()
    }

    fn snapshot(&self) -> Option<TransportSnapshot<K, V>> {
        self.as_dyn().snapshot()
    }

    fn restore(&self, snapshot: &TransportSnapshot<K, V>) {
        self.as_dyn().restore(snapshot);
    }

    fn reset(&self) {
        self.as_dyn().reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// `aggregateMsg = min`, 8-byte keys and values — the SSSP shape.
    fn min_agg(_k: &u64, a: u64, b: u64) -> u64 {
        a.min(b)
    }
    fn eight(_x: &u64) -> usize {
        8
    }
    const MIN_OPS: MessageOps<'static, u64, u64> = MessageOps {
        aggregate: &min_agg,
        key_size: &eight,
        value_size: &eight,
    };

    /// The conformance suite of the `Transport` contract, run against both
    /// implementations: delivery, cross-sender aggregation, delivered-cache
    /// dedup, byte accounting, step tagging and pending bookkeeping.
    ///
    /// Accounting *timing* differs between the two (barrier charges at
    /// flush, channel at drain), so the suite always observes stats after a
    /// full send → flush → drain cycle, where both must agree.
    fn conformance<T: Transport<u64, u64>>(t: &T) {
        let name = t.name();

        // (0) The checkpoint capability must agree with what snapshot()
        // actually returns — the validation layer trusts the former.
        assert_eq!(
            t.supports_checkpoints(),
            t.snapshot().is_some(),
            "{name}: supports_checkpoints() must agree with snapshot()"
        );

        // (1) Delivery: one update from fragment 0 to fragment 1.
        t.send_batch(0, 1, 0, vec![(5, 40)]);
        t.flush();
        assert!(t.has_pending(1), "{name}: update not delivered");
        assert!(!t.has_pending(0), "{name}: wrong mailbox");
        assert_eq!(t.pending_mailboxes(), 1, "{name}");
        let d = t.drain(1);
        assert_eq!(d.updates, vec![(5, 40)], "{name}");
        assert_eq!((d.messages, d.bytes), (1, 16), "{name}");
        assert_eq!(
            t.stats(),
            TransportStats {
                messages: 1,
                bytes: 16
            },
            "{name}"
        );
        assert_eq!(t.pending_mailboxes(), 0, "{name}: drain must clear");

        // (2) Cross-sender aggregation: two senders assign key 5; the
        // aggregated (min) value is delivered as ONE message.
        t.send_batch(0, 1, 1, vec![(5, 30)]);
        t.send_batch(2, 1, 1, vec![(5, 20)]);
        t.flush();
        let d = t.drain(1);
        assert_eq!(d.updates, vec![(5, 20)], "{name}: aggregateMsg = min");
        assert_eq!(d.messages, 1, "{name}: conflicts are one message");
        assert_eq!(t.stats().messages, 2, "{name}");

        // (3) Delivered-cache dedup: resending the delivered value ships
        // nothing and charges nothing.
        t.send_batch(0, 1, 2, vec![(5, 20)]);
        t.flush();
        assert!(!t.has_pending(1), "{name}: unchanged value reshipped");
        let d = t.drain(1);
        assert!(d.updates.is_empty(), "{name}");
        assert_eq!(t.stats().messages, 2, "{name}: dedup must not charge");

        // (4) A *changed* value for the same key ships again.
        t.send_batch(0, 1, 3, vec![(5, 10)]);
        t.flush();
        let d = t.drain(1);
        assert_eq!(d.updates, vec![(5, 10)], "{name}");
        assert_eq!(d.max_step, 3, "{name}: step tag must survive delivery");
        assert_eq!(
            t.stats(),
            TransportStats {
                messages: 3,
                bytes: 48
            },
            "{name}"
        );

        // (5) Multiple destinations, multiple keys; in-sender coalescing of
        // distinct keys keeps them distinct.
        t.send_batch(1, 0, 4, vec![(7, 1), (8, 2)]);
        t.send_batch(1, 2, 4, vec![(7, 1)]);
        t.flush();
        assert_eq!(t.pending_mailboxes(), 2, "{name}");
        let mut d0 = t.drain(0).updates;
        d0.sort_unstable();
        assert_eq!(d0, vec![(7, 1), (8, 2)], "{name}");
        assert_eq!(t.drain(2).updates, vec![(7, 1)], "{name}");
        assert_eq!(t.pending_mailboxes(), 0, "{name}");

        // (6) Draining an empty mailbox is free and empty.
        let d = t.drain(0);
        assert!(d.updates.is_empty() && d.messages == 0, "{name}");

        // (7) Reset clears pending mail and the delivered caches (a value
        // delivered before the reset ships again), but accounting is
        // cumulative.
        t.send_batch(0, 1, 5, vec![(9, 9)]);
        t.flush();
        t.reset();
        assert_eq!(t.pending_mailboxes(), 0, "{name}: reset leaves mail");
        let before = t.stats();
        t.send_batch(0, 1, 0, vec![(5, 10)]); // delivered pre-reset
        t.flush();
        let d = t.drain(1);
        assert_eq!(d.updates, vec![(5, 10)], "{name}: reset must forget dedup");
        assert_eq!(t.stats().messages, before.messages + 1, "{name}");

        // (8) Empty flush: publishing with nothing staged is free, returns
        // zero stats, and never disturbs pending mail.
        let before = t.stats();
        assert_eq!(t.flush(), TransportStats::default(), "{name}");
        assert_eq!(t.stats(), before, "{name}: empty flush must not charge");
        t.send_batch(0, 1, 5, vec![(21, 21)]);
        t.flush();
        assert!(t.has_pending(1), "{name}");
        t.flush(); // a second, empty flush between barrier and drain
        assert_eq!(
            t.drain(1).updates,
            vec![(21, 21)],
            "{name}: empty flush dropped or duplicated pending mail"
        );

        // (9) Seal: pending mail can still be drained.
        t.send_batch(0, 2, 6, vec![(11, 11)]);
        t.flush();
        t.seal();
        assert_eq!(t.drain(2).updates, vec![(11, 11)], "{name}");

        // (10) Seal after drain: the transport stays drainable (empty) and
        // consistent once everything has been consumed.
        assert!(t.drain(2).updates.is_empty(), "{name}: drained twice");
        assert!(!t.has_pending(2), "{name}");
        assert_eq!(t.pending_mailboxes(), 0, "{name}");
        let sealed_stats = t.stats();
        assert!(t.drain(0).updates.is_empty(), "{name}");
        assert_eq!(
            t.stats(),
            sealed_stats,
            "{name}: sealed drains must be free"
        );
    }

    #[test]
    fn barrier_transport_conforms() {
        let ops = MIN_OPS;
        conformance(&BarrierTransport::new(3, ops));
    }

    #[test]
    fn channel_transport_conforms() {
        let ops = MIN_OPS;
        conformance(&ChannelTransport::new(3, ops));
    }

    /// `ProcessTransport` (both incarnations) passes every contract case
    /// the in-process transports do: empty flush (case 8), seal after
    /// drain (cases 9–10), dedup, aggregation, accounting.
    #[test]
    fn process_transport_conforms() {
        let ops = MIN_OPS;
        conformance(&ProcessTransport::new(3, ops));
        conformance(&ProcessTransport::streaming(3, ops));
    }

    /// The sync-mode process transport holds sends until the barrier and
    /// checkpoints; the async-mode one streams and does not.
    #[test]
    fn process_transport_follows_its_mode() {
        let ops = MIN_OPS;
        let sync = ProcessTransport::new(2, ops);
        sync.send_batch(0, 1, 0, vec![(1, 1)]);
        assert!(!sync.has_pending(1), "sync process publishes at flush only");
        assert!(!sync.is_streaming());
        assert!(sync.supports_checkpoints());
        sync.flush();
        assert!(sync.has_pending(1));

        let streaming = ProcessTransport::streaming(2, ops);
        streaming.send_batch(0, 1, 0, vec![(1, 1)]);
        assert!(streaming.has_pending(1), "streaming delivers immediately");
        assert!(streaming.is_streaming());
        assert!(!streaming.supports_checkpoints());
        assert!(streaming.snapshot().is_none());
    }

    /// A mid-superstep snapshot/restore through the process transport:
    /// staged-but-unflushed sends are discarded on restore, exactly like
    /// the barrier transport it wraps.
    #[test]
    fn process_snapshot_mid_superstep_discards_staged_sends() {
        let ops = MIN_OPS;
        let t = ProcessTransport::new(2, ops);
        t.send_batch(0, 1, 0, vec![(3, 30)]);
        t.flush();
        t.send_batch(0, 1, 1, vec![(4, 40)]); // staged, not flushed
        let snap = t.snapshot().expect("sync process transports checkpoint");
        t.flush();
        let mut d = t.drain(1).updates;
        d.sort_unstable();
        assert_eq!(d, vec![(3, 30), (4, 40)]);
        t.restore(&snap);
        assert_eq!(t.drain(1).updates, vec![(3, 30)]);
        assert_eq!(t.flush(), TransportStats::default(), "staging was cleared");
    }

    #[test]
    fn barrier_holds_sends_until_flush_channel_does_not() {
        let ops = MIN_OPS;
        let barrier = BarrierTransport::new(2, ops);
        barrier.send_batch(0, 1, 0, vec![(1, 1)]);
        assert!(!barrier.has_pending(1), "barrier publishes at flush only");
        assert!(!barrier.is_streaming());
        barrier.flush();
        assert!(barrier.has_pending(1));

        let channel = ChannelTransport::new(2, ops);
        channel.send_batch(0, 1, 0, vec![(1, 1)]);
        assert!(channel.has_pending(1), "channel delivers immediately");
        assert!(channel.is_streaming());
    }

    #[test]
    fn barrier_snapshot_restores_mailboxes_and_dedup_state() {
        let ops = MIN_OPS;
        let t = BarrierTransport::new(2, ops);
        t.send_batch(0, 1, 2, vec![(5, 50)]);
        t.flush();
        let snap = t.snapshot().expect("barrier transports checkpoint");

        // Mutate past the snapshot: drain, deliver something else.
        assert_eq!(t.drain(1).updates, vec![(5, 50)]);
        t.send_batch(0, 1, 3, vec![(5, 40)]);
        t.flush();
        t.drain(1);

        // Restore: the queued update and the delivered cache come back.
        t.restore(&snap);
        let d = t.drain(1);
        assert_eq!(d.updates, vec![(5, 50)]);
        assert_eq!(d.max_step, 2, "step tag is part of the snapshot");
        // Dedup state also rolled back: (5, 50) is delivered again, so
        // resending it ships nothing...
        t.send_batch(0, 1, 4, vec![(5, 50)]);
        t.flush();
        assert!(!t.has_pending(1));
        // ...while the post-snapshot (5, 40) counts as new again.
        t.send_batch(0, 1, 4, vec![(5, 40)]);
        t.flush();
        assert_eq!(t.drain(1).updates, vec![(5, 40)]);
    }

    /// A snapshot taken *mid-superstep* — after sends were staged but
    /// before the barrier published them — must capture only the published
    /// mailbox state: restoring discards the staged-but-unflushed sends, so
    /// the re-executed superstep cannot double-deliver them.
    #[test]
    fn barrier_snapshot_mid_superstep_discards_staged_sends() {
        let ops = MIN_OPS;
        let t = BarrierTransport::new(2, ops);
        t.send_batch(0, 1, 0, vec![(3, 30)]);
        t.flush(); // published: (3, 30)

        // Mid-superstep: a new send is staged but NOT yet flushed.
        t.send_batch(0, 1, 1, vec![(4, 40)]);
        let snap = t.snapshot().expect("barrier transports checkpoint");

        // The in-flight superstep completes normally…
        t.flush();
        let mut d = t.drain(1).updates;
        d.sort_unstable();
        assert_eq!(d, vec![(3, 30), (4, 40)]);

        // …then a failure rolls back to the snapshot: only the published
        // (3, 30) comes back; the staged (4, 40) is gone until the
        // recovering superstep re-evaluates and re-sends it.
        t.restore(&snap);
        assert_eq!(t.drain(1).updates, vec![(3, 30)]);
        assert_eq!(t.flush(), TransportStats::default(), "staging was cleared");
        assert!(!t.has_pending(1));

        // Re-sending (4, 40) after the rollback ships again (it was never
        // part of the snapshot's delivered cache).
        t.send_batch(0, 1, 1, vec![(4, 40)]);
        t.flush();
        assert_eq!(t.drain(1).updates, vec![(4, 40)]);
    }

    /// Draining a sealed transport stays legal indefinitely, and a sealed
    /// channel transport keeps its immediate-delivery semantics for mail
    /// that was in flight before the seal.
    #[test]
    fn channel_seal_after_drain_stays_consistent() {
        let ops = MIN_OPS;
        let t: ChannelTransport<u64, u64> = ChannelTransport::new(2, ops);
        t.send_batch(0, 1, 0, vec![(1, 10)]);
        assert_eq!(t.drain(1).updates, vec![(1, 10)]);
        t.seal();
        assert!(t.drain(1).updates.is_empty());
        assert_eq!(t.pending_mailboxes(), 0);
        assert_eq!(
            t.stats(),
            TransportStats {
                messages: 1,
                bytes: 16
            }
        );
    }

    #[test]
    fn channel_snapshot_is_unsupported() {
        let ops = MIN_OPS;
        let t: ChannelTransport<u64, u64> = ChannelTransport::new(2, ops);
        assert!(t.snapshot().is_none());
    }

    #[test]
    #[should_panic(expected = "sealed")]
    fn sends_after_seal_panic() {
        let ops = MIN_OPS;
        let t = BarrierTransport::new(2, ops);
        t.seal();
        t.send_batch(0, 1, 0, vec![(1, 1)]);
    }

    #[test]
    fn spec_defaults_follow_mode() {
        use crate::config::EngineMode;
        assert_eq!(
            TransportSpec::default_for(EngineMode::Sync),
            TransportSpec::Barrier
        );
        assert_eq!(
            TransportSpec::default_for(EngineMode::Async),
            TransportSpec::Channel
        );
        assert_eq!(TransportSpec::Barrier.name(), "barrier");
        assert_eq!(TransportSpec::Channel.name(), "channel");
        assert_eq!(TransportSpec::Process { workers: 2 }.name(), "process");
    }

    /// Each spec declares its own checkpoint capability — the engine
    /// validation queries this instead of matching on variants.
    #[test]
    fn spec_checkpoint_capability() {
        assert!(TransportSpec::Barrier.supports_checkpoints());
        assert!(!TransportSpec::Channel.supports_checkpoints());
        assert!(TransportSpec::Process { workers: 2 }.supports_checkpoints());
        assert!(!TransportSpec::Barrier.streaming_capable());
        assert!(TransportSpec::Channel.streaming_capable());
        assert!(TransportSpec::Process { workers: 2 }.streaming_capable());
    }

    #[test]
    fn spec_serde_round_trips() {
        for spec in [
            TransportSpec::Barrier,
            TransportSpec::Channel,
            TransportSpec::Process { workers: 3 },
        ] {
            let back = TransportSpec::from_value(&spec.to_value()).unwrap();
            assert_eq!(back, spec);
        }
        assert!(TransportSpec::from_value(&Value::Str("Tcp".to_string())).is_err());
        assert!(TransportSpec::from_value(&Value::UInt(3)).is_err());
    }
}
