//! Simulation of other parallel models on GRAPE (Theorem 2).
//!
//! The paper proves that BSP, MapReduce and (CREW) PRAM programs can be
//! simulated on GRAPE with no extra asymptotic cost: BSP workers map to GRAPE
//! workers one-to-one, and each MapReduce round becomes two supersteps driven
//! by key-value messages (Section 3.5 / 4.2).  This module provides the two
//! simulation layers together with the cost accounting used by the tests that
//! check the "optimal simulation" claim (same number of rounds/supersteps,
//! message volume equal to the shuffled data).
//!
//! PRAM follows from MapReduce (a CREW PRAM step is simulated by one
//! MapReduce round, Karloff et al.), so no separate runtime is needed; the
//! composition is exercised in the integration tests.

use std::collections::HashMap;
use std::hash::Hash;

use parking_lot::Mutex;

/// Key-value pairs produced by a map/reduce phase.
type Pairs<K, V> = Vec<(K, V)>;

/// One lock-protected pair buffer per simulated worker.
type PairQueues<K, V> = Vec<Mutex<Pairs<K, V>>>;

/// Cost accounting of a simulated MapReduce job.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MapReduceMetrics {
    /// Number of map-shuffle-reduce rounds executed.
    pub rounds: usize,
    /// GRAPE supersteps used (2 per round, as in the proof of Theorem 2(2)).
    pub supersteps: usize,
    /// Total key-value pairs shuffled across workers.
    pub shuffled_pairs: usize,
}

/// A MapReduce job (one round of `map` followed by `reduce`; multi-round jobs
/// feed the reduce output back into `map`).
pub trait MapReduceJob: Send + Sync {
    /// Input record type of the first round.
    type Input: Clone + Send + Sync;
    /// Intermediate key.
    type Key: Clone + Eq + Hash + Send + Sync;
    /// Intermediate value.
    type Value: Clone + Send + Sync;

    /// Number of map-shuffle-reduce rounds (≥ 1).
    fn rounds(&self) -> usize {
        1
    }

    /// The map function of round 1.
    fn map(&self, input: &Self::Input) -> Vec<(Self::Key, Self::Value)>;

    /// The map function of rounds > 1 (defaults to the identity).
    fn remap(&self, key: &Self::Key, value: &Self::Value) -> Vec<(Self::Key, Self::Value)> {
        vec![(key.clone(), value.clone())]
    }

    /// The reduce function.
    fn reduce(&self, key: &Self::Key, values: Vec<Self::Value>) -> Vec<(Self::Key, Self::Value)>;
}

/// Runs a MapReduce job on `num_workers` simulated workers (threads), exactly
/// as the Theorem 2(2) compilation would: PEval plays the round-1 map, each
/// later map/reduce phase is one IncEval superstep over key-value messages
/// grouped at the coordinator.
pub fn run_mapreduce<J: MapReduceJob>(
    job: &J,
    inputs: &[J::Input],
    num_workers: usize,
) -> (Pairs<J::Key, J::Value>, MapReduceMetrics) {
    let num_workers = num_workers.max(1);
    let mut metrics = MapReduceMetrics::default();

    // Round-1 map: inputs are split across workers (PEval).
    let mapped: PairQueues<J::Key, J::Value> =
        (0..num_workers).map(|_| Mutex::new(Vec::new())).collect();
    std::thread::scope(|s| {
        for w in 0..num_workers {
            let mapped = &mapped;
            s.spawn(move || {
                let mut local = Vec::new();
                for (i, input) in inputs.iter().enumerate() {
                    if i % num_workers == w {
                        local.extend(job.map(input));
                    }
                }
                *mapped[w].lock() = local;
            });
        }
    });
    metrics.supersteps += 1;

    let mut current: Vec<Vec<(J::Key, J::Value)>> =
        mapped.into_iter().map(|m| m.into_inner()).collect();

    let mut result: Vec<(J::Key, J::Value)> = Vec::new();
    for round in 0..job.rounds() {
        // For rounds after the first, re-map the previous reduce output.
        if round > 0 {
            let remapped: PairQueues<J::Key, J::Value> =
                (0..num_workers).map(|_| Mutex::new(Vec::new())).collect();
            std::thread::scope(|s| {
                for (w, pairs) in current.iter().enumerate() {
                    let remapped = &remapped;
                    s.spawn(move || {
                        let mut local = Vec::new();
                        for (k, v) in pairs {
                            local.extend(job.remap(k, v));
                        }
                        *remapped[w].lock() = local;
                    });
                }
            });
            current = remapped.into_iter().map(|m| m.into_inner()).collect();
            metrics.supersteps += 1;
        }

        // Shuffle: group by key, assign each key to a worker (the
        // coordinator's key-value message grouping of Section 3.5).
        let mut groups: Vec<HashMap<J::Key, Vec<J::Value>>> =
            (0..num_workers).map(|_| HashMap::new()).collect();
        for (worker_pairs, w) in current.iter().zip(0..) {
            for (k, v) in worker_pairs {
                let mut hasher = std::collections::hash_map::DefaultHasher::new();
                std::hash::Hash::hash(k, &mut hasher);
                let dest = (std::hash::Hasher::finish(&hasher) % num_workers as u64) as usize;
                if dest != w {
                    metrics.shuffled_pairs += 1;
                }
                groups[dest].entry(k.clone()).or_default().push(v.clone());
            }
        }

        // Reduce phase (one IncEval superstep).
        let reduced: PairQueues<J::Key, J::Value> =
            (0..num_workers).map(|_| Mutex::new(Vec::new())).collect();
        std::thread::scope(|s| {
            for (w, group) in groups.into_iter().enumerate() {
                let reduced = &reduced;
                s.spawn(move || {
                    let mut local = Vec::new();
                    for (k, vs) in group {
                        local.extend(job.reduce(&k, vs));
                    }
                    *reduced[w].lock() = local;
                });
            }
        });
        metrics.supersteps += 1;
        metrics.rounds += 1;
        current = reduced.into_iter().map(|m| m.into_inner()).collect();
    }

    for pairs in current {
        result.extend(pairs);
    }
    (result, metrics)
}

/// Cost accounting of a simulated BSP run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BspMetrics {
    /// Supersteps executed.
    pub supersteps: usize,
    /// Total messages exchanged between workers.
    pub messages: usize,
}

/// Outbox handed to a BSP worker during a superstep.
#[derive(Debug)]
pub struct BspOutbox<M> {
    messages: Vec<(usize, M)>,
}

impl<M> BspOutbox<M> {
    /// Sends `message` to worker `to`, delivered at the next superstep.
    pub fn send(&mut self, to: usize, message: M) {
        self.messages.push((to, message));
    }
}

/// A BSP program in the sense of Valiant: per-worker state, a superstep
/// function consuming the inbox and producing outgoing messages.
pub trait BspProgram: Send + Sync {
    /// Per-worker state.
    type State: Send;
    /// Message type.
    type Message: Clone + Send;

    /// Initial state of worker `w`.
    fn init(&self, worker: usize, num_workers: usize) -> Self::State;

    /// One superstep of worker `w`.  The run terminates when a superstep
    /// produces no messages at all.
    fn superstep(
        &self,
        worker: usize,
        state: &mut Self::State,
        inbox: Vec<Self::Message>,
        outbox: &mut BspOutbox<Self::Message>,
    );
}

/// Runs a BSP program on `num_workers` workers (Theorem 2(1): one GRAPE
/// worker per BSP worker, identical superstep structure).
pub fn run_bsp<B: BspProgram>(
    program: &B,
    num_workers: usize,
    max_supersteps: usize,
) -> (Vec<B::State>, BspMetrics) {
    let num_workers = num_workers.max(1);
    let mut states: Vec<B::State> = (0..num_workers)
        .map(|w| program.init(w, num_workers))
        .collect();
    let mut inboxes: Vec<Vec<B::Message>> = (0..num_workers).map(|_| Vec::new()).collect();
    let mut metrics = BspMetrics::default();

    for _ in 0..max_supersteps {
        let outboxes: PairQueues<usize, B::Message> =
            (0..num_workers).map(|_| Mutex::new(Vec::new())).collect();
        let incoming: Vec<Vec<B::Message>> =
            std::mem::replace(&mut inboxes, (0..num_workers).map(|_| Vec::new()).collect());
        std::thread::scope(|s| {
            for (w, (state, inbox)) in states.iter_mut().zip(incoming).enumerate() {
                let outboxes = &outboxes;
                s.spawn(move || {
                    let mut outbox = BspOutbox {
                        messages: Vec::new(),
                    };
                    program.superstep(w, state, inbox, &mut outbox);
                    *outboxes[w].lock() = outbox.messages;
                });
            }
        });
        metrics.supersteps += 1;
        let mut sent = 0usize;
        for outbox in outboxes {
            for (to, msg) in outbox.into_inner() {
                inboxes[to % num_workers].push(msg);
                sent += 1;
            }
        }
        metrics.messages += sent;
        if sent == 0 {
            break;
        }
    }
    (states, metrics)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Classic word count.
    struct WordCount;

    impl MapReduceJob for WordCount {
        type Input = String;
        type Key = String;
        type Value = u64;

        fn map(&self, input: &String) -> Vec<(String, u64)> {
            input
                .split_whitespace()
                .map(|w| (w.to_string(), 1))
                .collect()
        }

        fn reduce(&self, key: &String, values: Vec<u64>) -> Vec<(String, u64)> {
            vec![(key.clone(), values.iter().sum())]
        }
    }

    #[test]
    fn word_count_produces_correct_counts() {
        let docs = vec![
            "the quick brown fox".to_string(),
            "the lazy dog".to_string(),
            "the quick dog".to_string(),
        ];
        let (pairs, metrics) = run_mapreduce(&WordCount, &docs, 3);
        let counts: HashMap<String, u64> = pairs.into_iter().collect();
        assert_eq!(counts["the"], 3);
        assert_eq!(counts["quick"], 2);
        assert_eq!(counts["dog"], 2);
        assert_eq!(counts["fox"], 1);
        assert_eq!(metrics.rounds, 1);
        assert_eq!(metrics.supersteps, 2, "one map + one reduce superstep");
    }

    #[test]
    fn word_count_is_worker_count_independent() {
        let docs: Vec<String> = (0..20)
            .map(|i| format!("w{} common w{}", i % 5, i % 3))
            .collect();
        let (a, _) = run_mapreduce(&WordCount, &docs, 1);
        let (b, _) = run_mapreduce(&WordCount, &docs, 4);
        let to_map =
            |pairs: Vec<(String, u64)>| -> HashMap<String, u64> { pairs.into_iter().collect() };
        assert_eq!(to_map(a), to_map(b));
    }

    /// Two-round job: round 1 counts words, round 2 buckets counts by parity.
    struct ParityOfCounts;

    impl MapReduceJob for ParityOfCounts {
        type Input = String;
        type Key = String;
        type Value = u64;

        fn rounds(&self) -> usize {
            2
        }

        fn map(&self, input: &String) -> Vec<(String, u64)> {
            input
                .split_whitespace()
                .map(|w| (w.to_string(), 1))
                .collect()
        }

        fn remap(&self, _key: &String, value: &u64) -> Vec<(String, u64)> {
            let bucket = if value.is_multiple_of(2) {
                "even"
            } else {
                "odd"
            };
            vec![(bucket.to_string(), 1)]
        }

        fn reduce(&self, key: &String, values: Vec<u64>) -> Vec<(String, u64)> {
            vec![(key.clone(), values.iter().sum())]
        }
    }

    #[test]
    fn multi_round_jobs_use_two_supersteps_per_round_plus_remap() {
        let docs = vec!["a a b".to_string(), "a b c".to_string()];
        let (pairs, metrics) = run_mapreduce(&ParityOfCounts, &docs, 2);
        let counts: HashMap<String, u64> = pairs.into_iter().collect();
        // counts: a=3 (odd), b=2 (even), c=1 (odd) → odd: 2 words, even: 1 word.
        assert_eq!(counts["odd"], 2);
        assert_eq!(counts["even"], 1);
        assert_eq!(metrics.rounds, 2);
        assert!(metrics.supersteps >= 4);
    }

    /// Token ring: worker 0 sends a counter around the ring `laps` times.
    struct TokenRing {
        laps: u64,
    }

    impl BspProgram for TokenRing {
        type State = u64; // number of times this worker saw the token
        type Message = u64; // remaining hops

        fn init(&self, _worker: usize, _num_workers: usize) -> u64 {
            0
        }

        fn superstep(
            &self,
            worker: usize,
            state: &mut u64,
            inbox: Vec<u64>,
            outbox: &mut BspOutbox<u64>,
        ) {
            if worker == 0 && *state == 0 && inbox.is_empty() {
                *state = 1;
                outbox.send(1, self.laps);
                return;
            }
            for remaining in inbox {
                *state += 1;
                if remaining > 1 {
                    outbox.send(worker + 1, remaining - 1);
                }
            }
        }
    }

    #[test]
    fn bsp_token_ring_visits_every_worker() {
        let (states, metrics) = run_bsp(&TokenRing { laps: 7 }, 4, 100);
        // Token visits workers 1, 2, 3, 0, 1, 2, 3 (7 hops).
        assert_eq!(states.iter().sum::<u64>(), 8); // 7 receipts + worker 0 start
        assert_eq!(metrics.messages, 7);
        assert_eq!(
            metrics.supersteps, 8,
            "one start superstep + 7 hop supersteps"
        );
    }

    #[test]
    fn bsp_stops_at_superstep_limit() {
        let (_, metrics) = run_bsp(&TokenRing { laps: 1000 }, 2, 5);
        assert_eq!(metrics.supersteps, 5);
    }
}
