//! Load balancer: maps the `m` fragments (virtual workers) onto the `n`
//! physical workers (Section 6, "Load balancing").
//!
//! The cost of a virtual worker is estimated from the fragment size and the
//! number of its border nodes (the paper's bi-criteria objective mixing
//! computation and communication cost); assignment uses the classic
//! longest-processing-time greedy rule, which is a 4/3-approximation of
//! makespan minimisation and is what matters for skewed (power-law) graphs.

use grape_partition::fragment::Fragmentation;

/// Estimated cost of one fragment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FragmentCost {
    /// Fragment id.
    pub fragment: usize,
    /// Computation cost estimate (inner vertices + local edges).
    pub compute: f64,
    /// Communication cost estimate (border vertices).
    pub communicate: f64,
}

impl FragmentCost {
    /// Combined cost with the given communication weight.
    pub fn total(&self, comm_weight: f64) -> f64 {
        self.compute + comm_weight * self.communicate
    }
}

/// The load balancer configuration.
#[derive(Debug, Clone, Copy)]
pub struct LoadBalancer {
    /// Relative weight of communication cost vs computation cost.
    pub comm_weight: f64,
}

impl Default for LoadBalancer {
    fn default() -> Self {
        LoadBalancer { comm_weight: 4.0 }
    }
}

impl LoadBalancer {
    /// Estimates per-fragment costs for a fragmentation.
    pub fn estimate(&self, frag: &Fragmentation) -> Vec<FragmentCost> {
        frag.fragments()
            .iter()
            .map(|f| FragmentCost {
                fragment: f.id(),
                compute: f.num_inner() as f64 + f.num_local_edges() as f64,
                communicate: (f.in_border_locals().len() + f.out_border_locals().len()) as f64,
            })
            .collect()
    }

    /// Assigns fragments to `num_workers` physical workers.  Returns, for
    /// each worker, the list of fragment ids it executes.
    ///
    /// Fragments are considered in decreasing total cost and always handed to
    /// the currently least-loaded worker (LPT greedy).
    pub fn assign(&self, frag: &Fragmentation, num_workers: usize) -> Vec<Vec<usize>> {
        let num_workers = num_workers.max(1);
        let mut costs = self.estimate(frag);
        costs.sort_by(|a, b| {
            b.total(self.comm_weight)
                .partial_cmp(&a.total(self.comm_weight))
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let mut assignment = vec![Vec::new(); num_workers];
        let mut loads = vec![0.0f64; num_workers];
        for cost in costs {
            let target = loads
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                .map(|(i, _)| i)
                .unwrap_or(0);
            assignment[target].push(cost.fragment);
            loads[target] += cost.total(self.comm_weight);
        }
        // Keep fragment order within a worker deterministic.
        for list in &mut assignment {
            list.sort_unstable();
        }
        assignment
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grape_graph::generators::power_law;
    use grape_partition::edge_cut::HashEdgeCut;
    use grape_partition::strategy::PartitionStrategy;

    fn fragmentation(m: usize) -> Fragmentation {
        let g = power_law(600, 2400, 0, 1);
        HashEdgeCut::new(m).partition(&g).unwrap()
    }

    #[test]
    fn every_fragment_assigned_exactly_once() {
        let frag = fragmentation(8);
        let assignment = LoadBalancer::default().assign(&frag, 3);
        let mut seen = [false; 8];
        for worker in &assignment {
            for &f in worker {
                assert!(!seen[f], "fragment {f} assigned twice");
                seen[f] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn more_workers_than_fragments_leaves_some_idle() {
        let frag = fragmentation(2);
        let assignment = LoadBalancer::default().assign(&frag, 4);
        assert_eq!(assignment.len(), 4);
        let used = assignment.iter().filter(|w| !w.is_empty()).count();
        assert_eq!(used, 2);
    }

    #[test]
    fn loads_are_roughly_balanced() {
        let frag = fragmentation(16);
        let balancer = LoadBalancer::default();
        let costs = balancer.estimate(&frag);
        let assignment = balancer.assign(&frag, 4);
        let load_of = |worker: &Vec<usize>| -> f64 {
            worker
                .iter()
                .map(|&f| costs.iter().find(|c| c.fragment == f).unwrap().total(4.0))
                .sum()
        };
        let loads: Vec<f64> = assignment.iter().map(load_of).collect();
        let max = loads.iter().cloned().fold(f64::MIN, f64::max);
        let min = loads.iter().cloned().fold(f64::MAX, f64::min);
        assert!(max <= min * 1.6 + 1.0, "unbalanced loads {loads:?}");
    }

    #[test]
    fn estimate_reports_all_fragments() {
        let frag = fragmentation(4);
        let costs = LoadBalancer::default().estimate(&frag);
        assert_eq!(costs.len(), 4);
        assert!(costs.iter().all(|c| c.compute > 0.0));
    }

    #[test]
    fn zero_workers_clamped_to_one() {
        let frag = fragmentation(3);
        let assignment = LoadBalancer::default().assign(&frag, 0);
        assert_eq!(assignment.len(), 1);
        assert_eq!(assignment[0].len(), 3);
    }
}
