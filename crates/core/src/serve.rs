//! Serving many prepared queries off **one** delta stream.
//!
//! A single [`crate::prepared::PreparedQuery`] owns its fragmentation, so
//! `K` standing queries over the same evolving graph would apply every
//! `ΔG` `K` times and hold `K` fragment timelines.  The paper's
//! preprocess-once / answer-under-updates protocol (Section 3.4) only pays
//! off at scale when the preparation work — and the per-delta partition
//! maintenance — is **amortized** across all standing queries, the same
//! economy the answering-under-updates literature (Berkholz–Keppeler–
//! Schweikardt and the constant-delay-enumeration line) gets from separating
//! preprocessing from the update/answer loop.
//!
//! [`GrapeServer`] is that amortization layer:
//!
//! * it owns **one** `Arc`-shared [`Fragmentation`] timeline;
//! * [`GrapeServer::register`] prepares a query against the current version
//!   and returns a typed [`QueryHandle`];
//! * [`GrapeServer::apply`] runs `Fragmentation::apply_delta` **exactly
//!   once** per `ΔG` and fans the resulting [`DeltaApplication`] out to
//!   every resident query through its own monotone/bounded/full decision
//!   table (the crate-internal `PreparedQuery::refresh_from` — the update
//!   path of [`crate::prepared`] with the partition work factored out);
//!   the rebuilt fragment set is shared by all of them via the existing
//!   `Arc<Fragment>` refcounting;
//! * [`GrapeServer::evict`] spills a cold query into its tiered
//!   [`QuerySpillStore`] ([`grape_partition::snapshot`]) and frees its
//!   in-memory state: the first eviction writes a **base snapshot** (all
//!   fragments, all partials, plus the persisted `G_P` and quotient
//!   routing tables); later evictions append **increments** holding only
//!   what changed since the previous spill, so repeated evict cycles cost
//!   `O(|ΔG|)` on disk, not `O(|G|)`.  The next [`GrapeServer::output`]
//!   (or an explicit [`GrapeServer::rehydrate`]) folds base ⊕ increments
//!   back — **without re-partitioning, without a single PEval call, and
//!   without re-deriving `G_P` or the quotient tables** — and replays the
//!   deltas that arrived while it was cold from the server's retained
//!   timeline.  When an increment chain outgrows
//!   [`GrapeServer::compaction_threshold`] (or on an explicit
//!   [`GrapeServer::compact`]), the chain is folded into a fresh base
//!   atomically, bounding rehydration latency.  Every store write stages
//!   through a temp file, fsync and rename, so a crash mid-spill leaves
//!   the previous on-disk state fully readable.
//!
//! The timeline keeps one fragmentation per version only while an evicted
//! query — or a resident one left *behind* by a failed refresh — still
//! needs it for replay (fragment storage is `Arc`-shared across versions,
//! so retaining a version costs one rebuilt-fragment delta, not a copy of
//! the graph); once every query has caught up the history is pruned.
//!
//! Refresh failures keep every query's version honest.  A failed
//! monotone/bounded refresh poisons the query (its partials were consumed),
//! and the server quarantines it.  A failed **full** re-preparation leaves
//! the handle consistent at its pre-delta fragmentation, so the server
//! keeps the query on its old version and replays the retained steps into
//! it — exactly like an evicted query — before its next refresh or
//! `output()`; it is never handed a [`DeltaApplication`] derived from a
//! fragmentation it does not hold.
//!
//! **Concurrency.**  Within one [`GrapeServer::apply`] the per-query
//! refreshes fan out over a scoped worker pool ([`GrapeServer::threads`]):
//! each slot owns its partials, the single [`DeltaApplication`] is shared
//! read-only, and the per-slot outcomes are merged into one [`ServeReport`]
//! sorted by handle id — byte-identical regardless of completion order.
//! Everything that needs the whole server (catch-up replay, timeline
//! bookkeeping, pruning, eviction) stays serialized around the fan-out.
//! [`GrapeServer::apply_batch`] additionally pipelines the partition work:
//! while the queries refresh against `ΔG_n`, a dedicated thread is already
//! running `Fragmentation::apply_delta` for `ΔG_{n+1}`; with
//! [`GrapeServer::group_commit`] enabled, small consecutive
//! edge-insert-only deltas merge into a single `DeltaApplication` (the
//! merge is restricted to that shape because removals and vertex inserts
//! validate against the pre-batch graph — see
//! [`GraphDelta::is_edge_insert_only`]).  The server can also spill cold
//! queries on its own via an [`EvictionPolicy`] driven by touch recency
//! and resident partial bytes.

use std::any::Any;
use std::io::Write;
use std::marker::PhantomData;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use grape_graph::delta::GraphDelta;
use grape_graph::io::{write_value_tree, IoError};
use grape_graph::types::VertexId;
use grape_partition::delta::DeltaApplication;
use grape_partition::fragment::Fragmentation;
use grape_partition::snapshot::{
    rehydrate_fragmentation, rehydrate_fragmentation_persisted, QuerySpillStore, SnapshotError,
    SpillStoreStats,
};
use serde::{Deserialize, Serialize, Value};

use crate::engine::EngineError;
use crate::metrics::{EngineMetrics, LatencySummary};
use crate::output_delta::{apply_sorted, DeltaOutput, OutputEvent, QueryDelta, WireOutputDelta};
use crate::pie::IncrementalPie;
use crate::prepared::{PreparedQuery, UpdateReport};
use crate::session::GrapeSession;

/// Compaction threshold default: fold the increment chain into a fresh
/// base once more than this many increments are stacked on it.
const DEFAULT_COMPACTION_THRESHOLD: usize = 4;

/// Process-unique server tokens: stamped into every [`QueryHandle`] so a
/// handle cannot silently operate on a *different* server that happens to
/// hold a same-typed query under the same id, and used to name the default
/// spill directory.
static SERVER_SEQ: AtomicUsize = AtomicUsize::new(0);

/// Errors produced by the serving layer.
#[derive(Debug)]
pub enum ServeError {
    /// An engine error surfaced by prepare/refresh (including
    /// [`EngineError::PoisonedHandle`] for queries wrecked by an earlier
    /// failed refresh).
    Engine(EngineError),
    /// The delta was rejected by the partition layer; the timeline did not
    /// advance.
    Delta(String),
    /// The handle does not belong to this server (or the query type of the
    /// handle does not match the registered entry).
    UnknownHandle(usize),
    /// The query is already evicted.
    AlreadyEvicted(usize),
    /// A spill file could not be written, read back, or decoded.
    Snapshot(SnapshotError),
    /// The subscription does not belong to this server, or was already
    /// cancelled.
    UnknownSubscription(usize),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Engine(e) => write!(f, "{e}"),
            ServeError::Delta(reason) => write!(f, "cannot apply graph delta: {reason}"),
            ServeError::UnknownHandle(id) => {
                write!(f, "query handle {id} is not registered with this server")
            }
            ServeError::AlreadyEvicted(id) => write!(f, "query {id} is already evicted"),
            ServeError::Snapshot(e) => write!(f, "{e}"),
            ServeError::UnknownSubscription(id) => {
                write!(f, "subscription {id} is not active on this server")
            }
        }
    }
}

impl std::error::Error for ServeError {}

impl From<EngineError> for ServeError {
    fn from(e: EngineError) -> Self {
        ServeError::Engine(e)
    }
}

impl From<SnapshotError> for ServeError {
    fn from(e: SnapshotError) -> Self {
        ServeError::Snapshot(e)
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Snapshot(SnapshotError::Io(IoError::Io(e)))
    }
}

impl From<IoError> for ServeError {
    fn from(e: IoError) -> Self {
        ServeError::Snapshot(SnapshotError::Io(e))
    }
}

/// A typed handle on a query registered with a [`GrapeServer`].  Cheap to
/// copy; the type parameter lets [`GrapeServer::output`] return the
/// program's real output type without downcasting at the call site, and
/// the embedded server token rejects handles presented to a server they
/// were not issued by.
pub struct QueryHandle<P> {
    server: usize,
    id: usize,
    _marker: PhantomData<fn() -> P>,
}

impl<P> QueryHandle<P> {
    /// The server-scoped query id (stable for the server's lifetime).
    pub fn id(&self) -> usize {
        self.id
    }
}

impl<P> Clone for QueryHandle<P> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<P> Copy for QueryHandle<P> {}

impl<P> std::fmt::Debug for QueryHandle<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "QueryHandle({})", self.id)
    }
}

/// One registered query's refresh outcome within a [`ServeReport`].
#[derive(Debug)]
pub struct QueryRefresh {
    /// The query id ([`QueryHandle::id`]).
    pub query: usize,
    /// The query's own [`UpdateReport`] — or the engine error that stopped
    /// it (the server keeps serving the others).  A monotone/bounded
    /// refresh error poisons the query; a failed **full** re-preparation
    /// leaves it consistent at its pre-delta version, and the server
    /// retains the step and replays it (like an evicted query) before the
    /// next refresh or output.
    pub result: Result<UpdateReport, EngineError>,
}

/// What one [`GrapeServer::apply`] did: one `apply_delta`, then one refresh
/// per resident query.
#[derive(Debug)]
pub struct ServeReport {
    /// Timeline version after this delta.
    pub version: usize,
    /// Raw deltas this commit absorbed — `1` for [`GrapeServer::apply`],
    /// the group size for a group-committed [`GrapeServer::apply_batch`]
    /// step.
    pub deltas: usize,
    /// Fragments the **single** delta application rebuilt — by construction
    /// identical to the `rebuilt` set of every per-query [`UpdateReport`].
    pub rebuilt: Vec<usize>,
    /// Fragments whose `Arc` storage every query keeps sharing verbatim.
    pub reused: usize,
    /// Per-query refresh outcomes, sorted by query id (the concurrent
    /// fan-out completes in arbitrary order; the report never shows it).
    pub refreshed: Vec<QueryRefresh>,
    /// Resident queries that were behind (an earlier full re-preparation
    /// failed) and were caught up by replaying the retained steps before
    /// this delta was applied to them.  Their [`QueryRefresh`] covers this
    /// delta only, not the replay.
    pub caught_up: Vec<usize>,
    /// Evicted queries whose refresh is deferred until rehydration (the
    /// server retains the timeline they will replay from).
    pub deferred: Vec<usize>,
    /// Queries skipped because an earlier failed refresh poisoned them.
    pub poisoned: Vec<usize>,
    /// Queries the server's [`EvictionPolicy`] spilled after this commit
    /// (empty under [`EvictionPolicy::Manual`]).
    pub evicted: Vec<usize>,
    /// Queries whose policy-driven spill pushed their increment chain past
    /// [`GrapeServer::compaction_threshold`], folding it into a fresh base.
    pub compacted: Vec<usize>,
    /// Answer deltas for subscribed queries, sorted by query id: one
    /// [`OutputEvent::Delta`] per watched resident healthy query per commit
    /// (a catch-up replay folds into the same event), plus one terminal
    /// [`OutputEvent::Poisoned`] the first commit after a watched query is
    /// quarantined.  Also buffered on the server for
    /// [`GrapeServer::drain_events`].
    pub events: Vec<QueryDelta>,
}

impl ServeReport {
    /// Total PEval invocations across every successful per-query refresh —
    /// `0` when the whole delta stream stays on the monotone path.
    pub fn peval_calls(&self) -> usize {
        self.refreshed
            .iter()
            .filter_map(|r| r.result.as_ref().ok())
            .map(|r| r.metrics.peval_calls)
            .sum()
    }
}

/// What one [`GrapeServer::apply_batch`] did: one [`ServeReport`] per
/// committed group, in stream order, plus the rejection (if any) that
/// stopped the batch.  Commits made before a rejection are durable — the
/// timeline advanced and every resident query refreshed — which is why a
/// batch returns a report instead of an all-or-nothing `Result`.
#[derive(Debug)]
pub struct BatchReport {
    /// One report per committed group (a group is one delta unless
    /// [`GrapeServer::group_commit`] merged consecutive edge-insert-only
    /// deltas).
    pub reports: Vec<ServeReport>,
    /// Present when the partition layer rejected a delta; everything from
    /// that delta on was not applied.
    pub rejected: Option<BatchRejection>,
}

impl BatchReport {
    /// Raw deltas the batch durably committed (counts every member of a
    /// merged group).
    pub fn deltas_committed(&self) -> usize {
        self.reports.iter().map(|r| r.deltas).sum()
    }
}

/// A delta the partition layer rejected mid-batch.
#[derive(Debug)]
pub struct BatchRejection {
    /// Index **into the caller's slice** of the first raw delta of the
    /// rejected group.
    pub index: usize,
    /// The partition layer's reason.
    pub reason: String,
}

/// When the server itself spills queries to disk (on top of explicit
/// [`GrapeServer::evict`] calls, which always work).
///
/// Recency is *user interest*: [`GrapeServer::register`],
/// [`GrapeServer::rehydrate`] and [`GrapeServer::output`] touch a query;
/// the server's own refreshes do not.  The policy is enforced after
/// `register` and after every commit — a just-rehydrated query may
/// transiently exceed the limit until the next delta arrives, so an actively
/// watched query is never spilled in the middle of its `output()`.
/// Poisoned queries cannot be spilled (their partials are gone) and are
/// skipped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvictionPolicy {
    /// Only explicit [`GrapeServer::evict`] calls spill queries (default).
    Manual,
    /// Keep at most `max_resident` queries resident; beyond that the
    /// least-recently-touched resident query spills.
    Lru {
        /// Resident-query cap.
        max_resident: usize,
    },
    /// Keep the serialized size of all resident partials
    /// ([`GrapeServer::resident_partial_bytes`]) within `bytes`, spilling
    /// least-recently-touched queries until it fits.
    MemoryBudget {
        /// Resident partial-bytes cap.
        bytes: usize,
    },
}

/// An `io::Write` sink that only counts bytes: measures the serialized size
/// of resident partials for [`EvictionPolicy::MemoryBudget`] without
/// building the spill image in memory.
#[derive(Default)]
struct ByteCounter {
    bytes: usize,
}

impl Write for ByteCounter {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.bytes += buf.len();
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// What one [`GrapeServer::rehydrate`] did: the spill reload itself runs
/// zero PEval calls; `replayed` holds the per-delta reports of catching the
/// query up to the current timeline version.
#[derive(Debug)]
pub struct RehydrationReport {
    /// The query id.
    pub query: usize,
    /// One report per delta that arrived while the query was cold.
    pub replayed: Vec<UpdateReport>,
    /// When the query is watched and the replay was non-empty: the **one**
    /// compacted answer delta covering every delta missed while cold (the
    /// key-wise fold of the per-commit stream a resident watcher would have
    /// seen).  Also buffered for [`GrapeServer::drain_events`].
    pub events: Vec<QueryDelta>,
}

impl RehydrationReport {
    /// Total PEval invocations of the replay — `0` when every pending delta
    /// is monotone (and always `0` for an up-to-date evict → rehydrate
    /// round trip).
    pub fn peval_calls(&self) -> usize {
        self.replayed.iter().map(|r| r.metrics.peval_calls).sum()
    }
}

/// A serializable snapshot of one registered query's serving state — one
/// row of [`GrapeServer::query_statuses`], ready for a wire-level `status`
/// or `metrics` endpoint.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueryStatus {
    /// The query id ([`QueryHandle::id`]).
    pub query: usize,
    /// The timeline version this query's state corresponds to — equals the
    /// server's version unless the query is evicted or behind.
    pub version: usize,
    /// Whether the query currently lives in its spill file.
    pub evicted: bool,
    /// Whether an earlier failed refresh quarantined the query.
    pub poisoned: bool,
    /// Deltas ever absorbed by this query (replays included, exactly once).
    pub updates_applied: usize,
    /// How many of those took the monotone (IncEval-only) path.
    pub incremental_updates: usize,
    /// How many took the bounded path.
    pub bounded_updates: usize,
    /// Serialized size of the resident partials (`0` while evicted).
    pub partial_bytes: usize,
    /// Active subscriptions on this query ([`GrapeServer::subscribe`]).
    pub watchers: usize,
    /// Increments currently chained on the query's spill base (`0` when the
    /// query has never spilled, or right after a compaction).
    #[serde(default)]
    pub spill_chain: usize,
    /// Total on-disk footprint of the query's spill store (base +
    /// increments), in bytes.
    #[serde(default)]
    pub spill_bytes: u64,
    /// Completed compactions of the query's spill store.
    #[serde(default)]
    pub compactions: u64,
}

/// One step of the timeline: the delta and the `Arc`-shared
/// [`DeltaApplication`] it produced, retained so evicted (or behind)
/// queries can replay the refresh without a second `apply_delta` — and
/// without re-cloning the per-fragment restrictions per replaying query.
struct ServeStep {
    delta: GraphDelta,
    applied: Arc<DeltaApplication>,
}

/// Object-safe view of one registered query, erasing the program type.
trait ServedQuery: Send {
    fn refresh(
        &mut self,
        applied: &DeltaApplication,
        delta: &GraphDelta,
    ) -> Result<UpdateReport, EngineError>;
    /// Spills the entry into its tiered store (base on the first call,
    /// delta-encoded increments afterwards) and demotes it to cold.
    /// Returns the path of the file the store wrote.
    fn evict(&mut self, store: &mut QuerySpillStore) -> Result<PathBuf, ServeError>;
    /// Reloads the entry from its spill store (base ⊕ increments).  The
    /// store is **not** cleared afterwards — it stays the entry's on-disk
    /// recovery point, and the next evict appends to it.
    fn rehydrate(&mut self, at: &Fragmentation, store: &QuerySpillStore) -> Result<(), ServeError>;
    /// Drops the resident in-memory state (possibly poisoned or
    /// half-replayed) and points the entry back at its spill store — the
    /// inverse of a reload whose replay failed.  The folded on-disk state
    /// becomes the entry's state again (with `book` as its counters), so
    /// the entry is evicted and retryable.
    fn demote(&mut self, book: QueryBookkeeping);
    /// The entry's current counters/metrics — from the live handle when
    /// resident, from the cold state when evicted.
    fn bookkeeping(&self) -> QueryBookkeeping;
    /// Serialized size of the resident partials (`0` when evicted): the
    /// unit [`EvictionPolicy::MemoryBudget`] accounts in.
    fn partial_bytes(&self) -> usize;
    fn is_evicted(&self) -> bool;
    fn is_poisoned(&self) -> bool;
    /// Installs the watch baseline: the canonical rows of the current
    /// answer, against which every later [`ServedQuery::watch_emit`] diffs.
    /// No-op when a watch is already active.  Must be called on a resident,
    /// healthy entry.
    fn watch_begin(&mut self) -> Result<(), EngineError>;
    /// Drops the watch baseline (when the last subscriber leaves).
    fn watch_end(&mut self);
    fn watch_active(&self) -> bool;
    /// Diffs the current answer against the last-emitted rows, advances
    /// them, and returns the wire delta.  Because the rows only move here,
    /// calling this **once** after a multi-step replay yields the key-wise
    /// fold (the compacted delta) of the stream a per-commit watcher would
    /// have seen.  `None` when no watch is active, the entry is not
    /// resident, or it is poisoned — the rows then stay at the last emitted
    /// state, so a watcher never sees a partial delta.
    fn watch_emit(&mut self) -> Option<WireOutputDelta>;
    fn as_any(&self) -> &dyn Any;
}

/// The counters and metrics of a query that must survive an evict →
/// rehydrate round trip.  Captured *before* a post-reload replay so that a
/// failed replay can fall back to the values the on-disk snapshot actually
/// corresponds to — the successfully replayed prefix is rolled back with
/// the state, not double-counted by the retry.
#[derive(Clone)]
struct QueryBookkeeping {
    prepare_metrics: EngineMetrics,
    last_metrics: EngineMetrics,
    updates_applied: usize,
    incremental_updates: usize,
    bounded_updates: usize,
}

/// The program, query and bookkeeping of an evicted entry — everything that
/// stays in memory while the heavy state (fragments + partials) lives in
/// the slot's [`QuerySpillStore`].
struct ColdState<P: IncrementalPie> {
    session: GrapeSession,
    program: P,
    query: P::Query,
    book: QueryBookkeeping,
}

/// A registered query: resident (a live [`PreparedQuery`]) or evicted (a
/// [`ColdState`] pointing at its spill file).  Exactly one of the two is
/// `Some`.  `watch` is orthogonal to residency: the last canonical rows
/// emitted to subscribers survive evict → rehydrate round trips (that is
/// what makes the post-rehydration emission the *compacted* delta of
/// everything missed while cold), and a failed replay leaves them at the
/// pre-evict baseline, so the retry re-diffs from the same point.
struct ServedEntry<P: DeltaOutput> {
    prepared: Option<PreparedQuery<P>>,
    cold: Option<ColdState<P>>,
    watch: Option<Vec<(P::OutKey, P::OutVal)>>,
}

impl<P> ServedQuery for ServedEntry<P>
where
    P: DeltaOutput + 'static,
    P::Partial: Serialize + Deserialize,
{
    fn refresh(
        &mut self,
        applied: &DeltaApplication,
        delta: &GraphDelta,
    ) -> Result<UpdateReport, EngineError> {
        self.prepared
            .as_mut()
            .expect("refresh is only called on resident entries")
            .refresh_from(applied, delta)
    }

    fn evict(&mut self, store: &mut QuerySpillStore) -> Result<PathBuf, ServeError> {
        // Write the spill while the entry is still intact, so a failed
        // write leaves the query resident and consistent.
        let path = {
            let p = self
                .prepared
                .as_ref()
                .expect("evict is only called on resident entries");
            if p.is_poisoned() {
                return Err(ServeError::Engine(EngineError::PoisonedHandle));
            }
            let partials: Vec<Value> = p.partials.iter().map(Serialize::to_value).collect();
            store.spill(&p.fragmentation, &partials)?
        };
        let book = self.bookkeeping();
        self.demote(book);
        Ok(path)
    }

    fn rehydrate(&mut self, at: &Fragmentation, store: &QuerySpillStore) -> Result<(), ServeError> {
        assert!(
            self.cold.is_some(),
            "rehydrate is only called on evicted entries"
        );
        let loaded = store.load()?;
        if loaded.fragments.len() != at.num_fragments()
            || loaded.partials.len() != loaded.fragments.len()
        {
            return Err(ServeError::Snapshot(SnapshotError::Malformed(format!(
                "spill holds {} fragments / {} partials for a {}-fragment timeline",
                loaded.fragments.len(),
                loaded.partials.len(),
                at.num_fragments()
            ))));
        }
        let partials: Vec<P::Partial> = loaded
            .partials
            .iter()
            .map(P::Partial::from_value)
            .collect::<Result<_, _>>()
            .map_err(|e| ServeError::Snapshot(SnapshotError::Malformed(e.to_string())))?;
        let fragmentation = match loaded.gp {
            Some(gp) => {
                // Tiered store: G_P and the quotient routing tables come
                // straight off disk — nothing is re-derived.
                let fragmentation = rehydrate_fragmentation_persisted(
                    loaded.fragments,
                    gp,
                    at.source().clone(),
                    at.strategy_name(),
                )?;
                if let Some(tables) = loaded.quotient {
                    fragmentation.install_quotient_tables(tables);
                }
                fragmentation
            }
            None => {
                // Legacy wholesale spill: the vertex assignment is read off
                // the retained timeline's G_P and the index is re-derived
                // from the fragments' border sets.
                let assignment: Vec<u32> = (0..at.gp().num_vertices() as VertexId)
                    .map(|v| at.gp().owner(v) as u32)
                    .collect();
                rehydrate_fragmentation(
                    loaded.fragments,
                    assignment,
                    at.source().clone(),
                    at.strategy_name(),
                )?
            }
        };
        let cold = self.cold.take().expect("checked above");
        self.prepared = Some(PreparedQuery {
            session: cold.session,
            program: cold.program,
            query: cold.query,
            fragmentation,
            partials,
            prepare_metrics: cold.book.prepare_metrics,
            last_metrics: cold.book.last_metrics,
            updates_applied: cold.book.updates_applied,
            incremental_updates: cold.book.incremental_updates,
            bounded_updates: cold.book.bounded_updates,
            poisoned: false,
        });
        Ok(())
    }

    fn demote(&mut self, book: QueryBookkeeping) {
        let prepared = self
            .prepared
            .take()
            .expect("demote is only called on resident entries");
        self.cold = Some(ColdState {
            session: prepared.session,
            program: prepared.program,
            query: prepared.query,
            book,
        });
    }

    fn bookkeeping(&self) -> QueryBookkeeping {
        if let Some(p) = &self.prepared {
            QueryBookkeeping {
                prepare_metrics: p.prepare_metrics.clone(),
                last_metrics: p.last_metrics.clone(),
                updates_applied: p.updates_applied,
                incremental_updates: p.incremental_updates,
                bounded_updates: p.bounded_updates,
            }
        } else {
            self.cold
                .as_ref()
                .expect("an entry is always resident or cold")
                .book
                .clone()
        }
    }

    fn partial_bytes(&self) -> usize {
        match &self.prepared {
            Some(p) => {
                let mut counter = ByteCounter::default();
                for partial in &p.partials {
                    if write_value_tree(&mut counter, &partial.to_value()).is_err() {
                        return 0;
                    }
                }
                counter.bytes
            }
            None => 0,
        }
    }

    fn is_evicted(&self) -> bool {
        self.cold.is_some()
    }

    fn is_poisoned(&self) -> bool {
        self.prepared.as_ref().is_some_and(|p| p.is_poisoned())
    }

    fn watch_begin(&mut self) -> Result<(), EngineError> {
        if self.watch.is_some() {
            return Ok(());
        }
        let p = self
            .prepared
            .as_ref()
            .expect("watch_begin is only called on resident entries");
        self.watch = Some(p.canonical_rows()?);
        Ok(())
    }

    fn watch_end(&mut self) {
        self.watch = None;
    }

    fn watch_active(&self) -> bool {
        self.watch.is_some()
    }

    fn watch_emit(&mut self) -> Option<WireOutputDelta> {
        let rows = self.watch.as_mut()?;
        let delta = self.prepared.as_ref()?.output_delta_since(rows).ok()?;
        let wire = delta.to_wire();
        apply_sorted(rows, &delta);
        Some(wire)
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// One registered query plus the timeline version its state corresponds to.
struct Slot {
    entry: Box<dyn ServedQuery>,
    version: usize,
    /// The query's tiered on-disk spill store — created on the first
    /// eviction and kept for the slot's lifetime (it outlives rehydration
    /// as the recovery point the next evict appends to).
    store: Option<QuerySpillStore>,
    /// Logical timestamp of the last *user* touch (register / rehydrate /
    /// output); drives [`EvictionPolicy`] recency.
    last_touch: u64,
    /// Whether a watched query's terminal [`OutputEvent::Poisoned`] has
    /// already been pushed — the event is emitted exactly once.
    poison_notified: bool,
}

/// An active answer-delta subscription on a [`GrapeServer`] query (see
/// [`GrapeServer::subscribe`]).  Cheap to copy; stamped with the server
/// token like a [`QueryHandle`], so a foreign id is rejected instead of
/// silently cancelling someone else's subscription.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SubscriptionId {
    server: usize,
    id: usize,
}

impl SubscriptionId {
    /// The server-scoped subscription id (stable for the server's
    /// lifetime).
    pub fn id(&self) -> usize {
        self.id
    }
}

/// One planned commit of an [`GrapeServer::apply_batch`]: the (possibly
/// merged) delta, the index of its first raw delta in the caller's slice,
/// and how many raw deltas it absorbs.
struct DeltaGroup {
    start: usize,
    raw: usize,
    delta: GraphDelta,
}

/// A server multiplexing many prepared queries over one evolving graph.
/// See the [module docs](self) for the protocol.
pub struct GrapeServer {
    session: GrapeSession,
    /// `timeline[i]` is the fragmentation at version `base + i`; the last
    /// entry is current.  Older versions are retained only while an evicted
    /// query may still replay from them.
    base: usize,
    timeline: Vec<Fragmentation>,
    /// `steps[i]` takes version `base + i` to `base + i + 1`.
    steps: Vec<ServeStep>,
    slots: Vec<Slot>,
    spill_dir: PathBuf,
    /// Whether the server created `spill_dir` itself (the [`GrapeServer::new`]
    /// default) and may therefore delete it wholesale on drop.  A
    /// caller-provided directory is never removed.
    owns_spill_dir: bool,
    /// This server's process-unique token, stamped into every issued
    /// [`QueryHandle`].
    token: usize,
    /// Refresh fan-out width (≥ 1); seeded from the session's
    /// `refresh_threads`, overridable with [`GrapeServer::threads`].  Never
    /// clamped to the machine's parallelism — the caller asked for this
    /// width.
    refresh_threads: usize,
    /// Group-commit cap in delta ops; `0` disables grouping (the default:
    /// every delta of an `apply_batch` is its own commit).
    group_limit: usize,
    /// Server-driven eviction policy.
    policy: EvictionPolicy,
    /// Fold a query's increment chain into a fresh base once it exceeds
    /// this many increments (`0` = fold after every increment, i.e.
    /// wholesale-equivalent spills).
    compaction_threshold: usize,
    /// Completed spill-store compactions across all queries.
    compactions: u64,
    /// Monotone clock behind [`Slot::last_touch`].
    touch_clock: u64,
    /// Raw deltas absorbed — counts every member of a group-committed
    /// batch, so it can exceed the number of timeline commits.
    deltas_absorbed: usize,
    /// Per-commit latency samples (see [`GrapeServer::latency_summary`]),
    /// windowed so a long-running server does not grow without bound.
    latencies: Vec<Duration>,
    /// `subs[i]` is the query id subscription `i` watches, `None` once
    /// cancelled.  Ids are never reused, so a stale [`SubscriptionId`]
    /// errors instead of aliasing a newer subscriber.
    subs: Vec<Option<usize>>,
    /// Answer deltas not yet collected by [`GrapeServer::drain_events`] —
    /// the push stream a serving front end forwards to its watchers.
    pending_events: Vec<QueryDelta>,
}

/// Keep at most this many latency samples resident: when the buffer
/// reaches `2 × LATENCY_WINDOW` the older half is dropped, so summaries
/// always cover the most recent `LATENCY_WINDOW..2×LATENCY_WINDOW`
/// commits with amortized O(1) bookkeeping per commit.
const LATENCY_WINDOW: usize = 4096;

impl GrapeServer {
    /// A server over `fragmentation`, spilling evicted queries under a
    /// process-unique directory inside the system temp dir (removed when
    /// the server is dropped).
    pub fn new(session: GrapeSession, fragmentation: Fragmentation) -> Self {
        let mut server = GrapeServer::with_spill_dir(session, fragmentation, PathBuf::new());
        server.spill_dir = std::env::temp_dir().join(format!(
            "grape-server-{}-{}",
            std::process::id(),
            server.token
        ));
        server.owns_spill_dir = true;
        server
    }

    /// A server with an explicit spill directory (created lazily on the
    /// first eviction, left in place on drop).
    pub fn with_spill_dir(
        session: GrapeSession,
        fragmentation: Fragmentation,
        spill_dir: PathBuf,
    ) -> Self {
        let refresh_threads = session.config().refresh_threads.max(1);
        GrapeServer {
            session,
            base: 0,
            timeline: vec![fragmentation],
            steps: Vec::new(),
            slots: Vec::new(),
            spill_dir,
            owns_spill_dir: false,
            token: SERVER_SEQ.fetch_add(1, Ordering::Relaxed),
            refresh_threads,
            group_limit: 0,
            policy: EvictionPolicy::Manual,
            compaction_threshold: DEFAULT_COMPACTION_THRESHOLD,
            compactions: 0,
            touch_clock: 0,
            deltas_absorbed: 0,
            latencies: Vec::new(),
            subs: Vec::new(),
            pending_events: Vec::new(),
        }
    }

    /// Sets the refresh fan-out width: up to `n` resident queries refresh
    /// concurrently per commit (clamped to ≥ 1, and at run time to the
    /// number of queries actually ready).  Deliberately **not** clamped to
    /// the machine's parallelism.  Each refresh still runs its own engine
    /// with the session's `num_workers` threads, so the total thread demand
    /// is `n × num_workers`.
    pub fn threads(mut self, n: usize) -> Self {
        self.refresh_threads = n.max(1);
        self
    }

    /// Enables group-commit for [`GrapeServer::apply_batch`]: consecutive
    /// deltas merge into one commit while the merged batch stays within
    /// `max_ops` updates **and** every appended delta is edge-insert-only
    /// ([`GraphDelta::is_edge_insert_only`] explains why other shapes are
    /// not sequential-equivalent under merging).  Any delta may *start* a
    /// group.  `0` (the default) disables grouping.
    pub fn group_commit(mut self, max_ops: usize) -> Self {
        self.group_limit = max_ops;
        self
    }

    /// Sets the server-driven [`EvictionPolicy`] (default
    /// [`EvictionPolicy::Manual`]).  Enforced after `register` and after
    /// every commit; spills performed by a commit are listed in
    /// [`ServeReport::evicted`].
    pub fn eviction_policy(mut self, policy: EvictionPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the spill-store compaction threshold: after an eviction leaves
    /// more than `n` increments chained on a query's base snapshot, the
    /// chain is folded into a fresh base.  `0` folds after every increment
    /// (each evict leaves a single wholesale base on disk — the tiering
    /// off-switch); the default is 4.
    pub fn compaction_threshold(mut self, n: usize) -> Self {
        self.compaction_threshold = n;
        self
    }

    /// The configured refresh fan-out width.
    pub fn refresh_threads(&self) -> usize {
        self.refresh_threads
    }

    /// The directory evicted queries spill into.
    pub fn spill_dir(&self) -> &Path {
        &self.spill_dir
    }

    /// Completed spill-store compactions across all queries — threshold
    /// folds at evict time plus explicit [`GrapeServer::compact`] calls.
    pub fn compactions(&self) -> u64 {
        self.compactions
    }

    /// The current fragmentation (the newest timeline version).
    pub fn fragmentation(&self) -> &Fragmentation {
        self.timeline.last().expect("timeline is never empty")
    }

    /// The current timeline version — the number of commits.  Equals
    /// [`GrapeServer::deltas_applied`] unless [`GrapeServer::group_commit`]
    /// merged consecutive deltas into one commit.
    pub fn version(&self) -> usize {
        self.base + self.timeline.len() - 1
    }

    /// How many raw deltas this server has absorbed (each applied to the
    /// shared fragmentation exactly once — possibly group-committed with
    /// its neighbors — regardless of how many queries are registered).
    pub fn deltas_applied(&self) -> usize {
        self.deltas_absorbed
    }

    /// Serialized size of every resident query's partials — what
    /// [`EvictionPolicy::MemoryBudget`] accounts against.
    pub fn resident_partial_bytes(&self) -> usize {
        self.slots.iter().map(|s| s.entry.partial_bytes()).sum()
    }

    /// How many timeline versions are currently retained — `1` when every
    /// query is caught up, more only while evicted queries still need older
    /// versions for replay.
    pub fn retained_versions(&self) -> usize {
        self.timeline.len()
    }

    /// Number of registered queries.
    pub fn num_queries(&self) -> usize {
        self.slots.len()
    }

    /// Number of currently evicted queries.
    pub fn num_evicted(&self) -> usize {
        self.slots.iter().filter(|s| s.entry.is_evicted()).count()
    }

    /// Records one per-commit latency sample, windowed: when the buffer
    /// reaches `2 × LATENCY_WINDOW` the older half is dropped (amortized
    /// O(1) per commit), so [`GrapeServer::latency_summary`] always covers
    /// the most recent commits.
    fn record_latency(&mut self, elapsed: Duration) {
        if self.latencies.len() >= 2 * LATENCY_WINDOW {
            self.latencies.drain(..LATENCY_WINDOW);
        }
        self.latencies.push(elapsed);
    }

    /// A [`LatencySummary`] (mean / p50 / p99 / max) over the per-commit
    /// latencies this server recorded itself — one sample per commit, from
    /// delta arrival to the end of the refresh fan-out (for the pipelined
    /// [`GrapeServer::apply_batch`] the sample starts at commit pickup, so
    /// the overlapped partition work is not double-billed).  Only the most
    /// recent window of commits is retained (see
    /// [`GrapeServer::latency_samples`] for the live sample count), so a
    /// long-running server reports recent behaviour, not its lifetime
    /// average.  The summary is `Serialize`, ready for a metrics endpoint.
    pub fn latency_summary(&self) -> LatencySummary {
        LatencySummary::from_durations(&self.latencies)
    }

    /// Number of latency samples currently retained (≤ 2 × 4096).
    pub fn latency_samples(&self) -> usize {
        self.latencies.len()
    }

    /// The retained raw per-commit latency samples, in milliseconds —
    /// the full vector behind [`GrapeServer::latency_summary`], for
    /// endpoints that only ship it on explicit request.
    pub fn latency_samples_ms(&self) -> Vec<f64> {
        self.latencies
            .iter()
            .map(|d| d.as_secs_f64() * 1e3)
            .collect()
    }

    /// A serializable snapshot of every registered query's serving state,
    /// sorted by query id — the per-query rows behind a `status` /
    /// `metrics` endpoint.  Works off the type-erased slots, so it needs no
    /// handles and covers evicted and poisoned queries too.
    pub fn query_statuses(&self) -> Vec<QueryStatus> {
        self.slots
            .iter()
            .enumerate()
            .map(|(id, slot)| {
                let book = slot.entry.bookkeeping();
                let spill: SpillStoreStats = slot
                    .store
                    .as_ref()
                    .map(QuerySpillStore::stats)
                    .unwrap_or_default();
                QueryStatus {
                    query: id,
                    version: slot.version,
                    evicted: slot.entry.is_evicted(),
                    poisoned: slot.entry.is_poisoned(),
                    updates_applied: book.updates_applied,
                    incremental_updates: book.incremental_updates,
                    bounded_updates: book.bounded_updates,
                    partial_bytes: slot.entry.partial_bytes(),
                    watchers: self.watcher_count(id),
                    spill_chain: spill.chain_len,
                    spill_bytes: spill.base_bytes + spill.increment_bytes,
                    compactions: spill.compactions,
                }
            })
            .collect()
    }

    /// Registers a standing query: prepares it (PEval + IncEval to the
    /// fixpoint) against the **current** timeline version and retains the
    /// handle.  The partial-result type must round-trip through the serde
    /// value encoding so the query can be evicted.
    pub fn register<P>(&mut self, program: P, query: P::Query) -> Result<QueryHandle<P>, ServeError>
    where
        P: DeltaOutput + 'static,
        P::Partial: Serialize + Deserialize,
    {
        let prepared = self
            .session
            .prepare(self.fragmentation().clone(), program, query)?;
        let id = self.slots.len();
        self.slots.push(Slot {
            entry: Box::new(ServedEntry {
                prepared: Some(prepared),
                cold: None,
                watch: None,
            }),
            version: self.version(),
            store: None,
            last_touch: 0,
            poison_notified: false,
        });
        self.touch(id);
        self.enforce_policy();
        Ok(QueryHandle {
            server: self.token,
            id,
            _marker: PhantomData,
        })
    }

    /// Records user interest in a slot (LRU recency).
    fn touch(&mut self, id: usize) {
        self.touch_clock += 1;
        self.slots[id].last_touch = self.touch_clock;
    }

    /// Subscribes to the query's answer deltas: every later commit (and
    /// every post-eviction rehydration) pushes one [`QueryDelta`] for it
    /// into [`ServeReport::events`] / [`GrapeServer::drain_events`].  The
    /// baseline is the query's **current** answer — the query is brought
    /// resident and caught up first, so replaying the event stream over the
    /// answer observed at subscribe time always reproduces `output()`.
    /// Subscribing to a poisoned query errors (its stream would only ever
    /// hold the terminal event).
    pub fn subscribe<P>(&mut self, handle: &QueryHandle<P>) -> Result<SubscriptionId, ServeError>
    where
        P: DeltaOutput + 'static,
        P::Partial: Serialize + Deserialize,
    {
        self.check_handle::<P>(handle)?;
        self.rehydrate(handle)?;
        let slot = &mut self.slots[handle.id];
        if slot.entry.is_poisoned() {
            return Err(ServeError::Engine(EngineError::PoisonedHandle));
        }
        slot.entry.watch_begin().map_err(ServeError::Engine)?;
        let id = self.subs.len();
        self.subs.push(Some(handle.id));
        Ok(SubscriptionId {
            server: self.token,
            id,
        })
    }

    /// Cancels a subscription.  When the last subscriber of a query leaves,
    /// its watch state is dropped and the server stops computing answer
    /// deltas for it.
    pub fn unsubscribe(&mut self, sub: SubscriptionId) -> Result<(), ServeError> {
        if sub.server != self.token {
            return Err(ServeError::UnknownSubscription(sub.id));
        }
        let query = self
            .subs
            .get_mut(sub.id)
            .and_then(Option::take)
            .ok_or(ServeError::UnknownSubscription(sub.id))?;
        if self.watcher_count(query) == 0 {
            self.slots[query].entry.watch_end();
            self.slots[query].poison_notified = false;
        }
        Ok(())
    }

    /// Active subscriptions on query `id`.
    pub fn watcher_count(&self, id: usize) -> usize {
        self.subs.iter().flatten().filter(|&&q| q == id).count()
    }

    /// Takes every answer delta produced since the last drain (by commits,
    /// rehydrations and lazy `output()` rehydrations), in production order —
    /// within one commit sorted by query id.  This is the stream a serving
    /// front end fans out to its watchers.
    pub fn drain_events(&mut self) -> Vec<QueryDelta> {
        std::mem::take(&mut self.pending_events)
    }

    /// Applies one `ΔG` to the shared fragmentation — **one**
    /// `Fragmentation::apply_delta` call, one rebuilt-fragment set — and
    /// refreshes every resident query from it.  Evicted queries are
    /// deferred (they replay on rehydration); queries poisoned by an
    /// earlier failed refresh are skipped.  A query whose monotone/bounded
    /// refresh errors is reported in [`ServeReport::refreshed`] and
    /// poisoned; a query whose **full** re-preparation errors stays
    /// consistent at its pre-delta version, and the server retains this
    /// step and replays it into the query before its next refresh or
    /// output.  The server and the other queries keep going either way.
    pub fn apply(&mut self, delta: &GraphDelta) -> Result<ServeReport, ServeError> {
        let started = Instant::now();
        let applied = self
            .fragmentation()
            .apply_delta(delta)
            .map_err(|e| ServeError::Delta(e.to_string()))?;
        Ok(self.commit(Arc::new(applied), delta, 1, started))
    }

    /// Applies a whole delta stream, pipelined: a dedicated thread runs
    /// `Fragmentation::apply_delta` for `ΔG_{n+1}` while the registered
    /// queries still refresh against `ΔG_n` (the partition work and the
    /// refresh fan-out overlap; the commits themselves stay in stream
    /// order).  With [`GrapeServer::group_commit`] enabled, consecutive
    /// edge-insert-only deltas merge into one commit first.
    ///
    /// A rejected delta stops the batch: everything committed before it is
    /// durable and reported, the rejection carries the caller-slice index
    /// of the offending delta, and nothing after it is applied — which is
    /// why this returns a [`BatchReport`] rather than an all-or-nothing
    /// `Result`.  Per-query refresh *failures* never stop a batch (exactly
    /// as in [`GrapeServer::apply`], they are recorded in the group's
    /// [`ServeReport`] and the failed slot keeps its true version).
    pub fn apply_batch(&mut self, deltas: &[GraphDelta]) -> BatchReport {
        let groups = self.plan_groups(deltas);
        let mut reports = Vec::with_capacity(groups.len());
        let mut rejected = None;
        let base = self.fragmentation().clone();
        type Applied = Result<Arc<DeltaApplication>, (usize, String)>;
        let (tx, rx) = std::sync::mpsc::sync_channel::<Applied>(1);
        std::thread::scope(|scope| {
            let planned = &groups;
            scope.spawn(move || {
                // The applier chains apply_delta group by group off the
                // snapshot it started from; commit() pushes the exact same
                // fragmentation values onto the timeline, in the same
                // order, so the main thread never observes a fork.  The
                // application crosses the channel behind an `Arc`: the
                // refresh fan-out, the retained step and any later replay
                // all share one copy.
                let mut frag = base;
                for group in planned {
                    match frag.apply_delta(&group.delta) {
                        Ok(applied) => {
                            frag = applied.fragmentation.clone();
                            if tx.send(Ok(Arc::new(applied))).is_err() {
                                return;
                            }
                        }
                        Err(e) => {
                            let _ = tx.send(Err((group.start, e.to_string())));
                            return;
                        }
                    }
                }
            });
            for group in &groups {
                let started = Instant::now();
                match rx.recv() {
                    Ok(Ok(applied)) => {
                        reports.push(self.commit(applied, &group.delta, group.raw, started));
                    }
                    Ok(Err((index, reason))) => {
                        rejected = Some(BatchRejection { index, reason });
                        break;
                    }
                    Err(_) => break,
                }
            }
        });
        BatchReport { reports, rejected }
    }

    /// Splits a delta stream into commit groups under the
    /// [`GrapeServer::group_commit`] rule: any delta starts a group; a
    /// delta joins the open group only if it is edge-insert-only and the
    /// merged size stays within the cap.
    fn plan_groups(&self, deltas: &[GraphDelta]) -> Vec<DeltaGroup> {
        let mut groups: Vec<DeltaGroup> = Vec::new();
        for (i, delta) in deltas.iter().enumerate() {
            if self.group_limit > 0 {
                if let Some(open) = groups.last_mut() {
                    if delta.is_edge_insert_only()
                        && open.delta.len() + delta.len() <= self.group_limit
                    {
                        open.delta = std::mem::take(&mut open.delta).merge(delta);
                        open.raw += 1;
                        continue;
                    }
                }
            }
            groups.push(DeltaGroup {
                start: i,
                raw: 1,
                delta: delta.clone(),
            });
        }
        groups
    }

    /// One commit: fans `applied` out to every ready resident query (on up
    /// to `refresh_threads` scoped workers), merges the outcomes into an
    /// id-sorted [`ServeReport`], and advances the timeline.  Everything
    /// except the refreshes themselves — catch-up replay, version
    /// bookkeeping, retention/pruning, policy eviction — runs on the
    /// calling thread.  `started` marks when the server began working on
    /// this delta (before `apply_delta` for [`GrapeServer::apply`], at
    /// commit pickup for the pipelined [`GrapeServer::apply_batch`]); the
    /// elapsed time is recorded as one latency sample.
    fn commit(
        &mut self,
        applied: Arc<DeltaApplication>,
        delta: &GraphDelta,
        raw_deltas: usize,
        started: Instant,
    ) -> ServeReport {
        let current = self.version();
        let rebuilt: Vec<usize> = applied.affected.iter().map(|fd| fd.fragment).collect();
        let reused = applied.fragmentation.num_fragments() - rebuilt.len();
        let new_version = current + 1;

        let mut refreshed = Vec::new();
        let mut caught_up = Vec::new();
        let mut deferred = Vec::new();
        let mut poisoned = Vec::new();
        // Sequential pre-pass: classify every slot, catching up the ones
        // left behind by an earlier failed full re-preparation (replay
        // needs the whole server — timeline indices and slot versions — so
        // it cannot ride the fan-out).
        let mut ready = Vec::new();
        for id in 0..self.slots.len() {
            if self.slots[id].entry.is_evicted() {
                deferred.push(id);
                continue;
            }
            if self.slots[id].entry.is_poisoned() {
                // A poisoned query can never refresh again; advance its
                // version so it does not pin the timeline history.
                self.slots[id].version = new_version;
                poisoned.push(id);
                continue;
            }
            // A resident query can be *behind* after a failed full
            // re-preparation (the one refresh error that leaves the handle
            // consistent at an older version).  `refresh_from` requires the
            // query's fragmentation to be the one `applied` was derived
            // from, so replay the retained steps first.
            if self.slots[id].version < current {
                match self.replay_resident(id, current) {
                    Ok(_) => caught_up.push(id),
                    Err(e) => {
                        // Still behind (its version tracks the replayed
                        // prefix) or freshly poisoned — either way this
                        // delta cannot be applied to it yet.
                        if self.slots[id].entry.is_poisoned() {
                            self.slots[id].version = new_version;
                        }
                        refreshed.push(QueryRefresh {
                            query: id,
                            result: Err(e),
                        });
                        continue;
                    }
                }
            }
            ready.push(id);
        }

        // Concurrent fan-out: each ready slot refreshes against the shared
        // read-only DeltaApplication with exclusive access to its own
        // partials.
        let results = Self::refresh_ready(
            &mut self.slots,
            &ready,
            self.refresh_threads,
            &applied,
            delta,
        );
        let mut events: Vec<QueryDelta> = Vec::new();
        for (id, result) in results {
            if result.is_ok() || self.slots[id].entry.is_poisoned() {
                // Success, or quarantined forever: the query never replays
                // this step.
                self.slots[id].version = new_version;
            }
            // Otherwise the failed full re-preparation left the handle
            // consistent at `current`; keep its true version so the step
            // retained below replays into it later.
            if result.is_ok() {
                // One answer delta per watched query per commit; a
                // catch-up replay performed in the pre-pass folds into the
                // same emission, so watchers see one merged delta.
                if let Some(wire) = self.slots[id].entry.watch_emit() {
                    events.push(QueryDelta {
                        query: id,
                        version: new_version,
                        event: OutputEvent::Delta(wire),
                    });
                }
            }
            refreshed.push(QueryRefresh { query: id, result });
        }
        // Deterministic report regardless of fan-out completion order.
        refreshed.sort_by_key(|q| q.query);
        // Terminal events for watched queries quarantined by now —
        // whether they were poisoned this commit or found poisoned in the
        // pre-pass — exactly once each.
        for (id, slot) in self.slots.iter_mut().enumerate() {
            if slot.entry.watch_active() && slot.entry.is_poisoned() && !slot.poison_notified {
                slot.poison_notified = true;
                events.push(QueryDelta {
                    query: id,
                    version: new_version,
                    event: OutputEvent::Poisoned,
                });
            }
        }
        events.sort_by_key(|e| e.query);
        self.pending_events.extend(events.iter().cloned());

        if self.slots.iter().all(|s| s.version == new_version) {
            // Hot path — everyone is resident and caught up, so no query
            // can ever need this step for replay: advance the timeline in
            // place without retaining (or cloning) the delta.
            self.base = new_version;
            self.timeline.clear();
            self.timeline.push(applied.fragmentation.clone());
            self.steps.clear();
        } else {
            // Someone — evicted, or resident but behind — may still replay
            // this step: retain the shared application itself (an `Arc`
            // bump, not a copy of the per-fragment restrictions).
            self.timeline.push(applied.fragmentation.clone());
            self.steps.push(ServeStep {
                delta: delta.clone(),
                applied,
            });
            self.prune();
        }
        self.deltas_absorbed += raw_deltas;
        self.record_latency(started.elapsed());
        let (evicted, compacted) = self.enforce_policy();
        ServeReport {
            version: new_version,
            deltas: raw_deltas,
            rebuilt,
            reused,
            refreshed,
            caught_up,
            deferred,
            poisoned,
            evicted,
            compacted,
            events,
        }
    }

    /// Refreshes the ready slots, fanning out over up to `threads` scoped
    /// workers pulling from one shared queue.  Returns `(id, outcome)`
    /// pairs sorted by id.  An associated function over the slot slice (not
    /// `&mut self`) so the commit loop above can keep borrowing the rest of
    /// the server.
    fn refresh_ready(
        slots: &mut [Slot],
        ready: &[usize],
        threads: usize,
        applied: &DeltaApplication,
        delta: &GraphDelta,
    ) -> Vec<(usize, Result<UpdateReport, EngineError>)> {
        let width = threads.max(1).min(ready.len());
        if width <= 1 {
            return ready
                .iter()
                .map(|&id| (id, slots[id].entry.refresh(applied, delta)))
                .collect();
        }
        // `ready` is ascending by construction, so membership is a binary
        // search away and the job list keeps slot order (workers may still
        // finish out of order; the sort below restores it).
        let jobs: Vec<(usize, &mut Box<dyn ServedQuery>)> = slots
            .iter_mut()
            .enumerate()
            .filter(|(id, _)| ready.binary_search(id).is_ok())
            .map(|(id, slot)| (id, &mut slot.entry))
            .collect();
        let queue = std::sync::Mutex::new(jobs.into_iter());
        let results = std::sync::Mutex::new(Vec::with_capacity(ready.len()));
        std::thread::scope(|scope| {
            for _ in 0..width {
                scope.spawn(|| loop {
                    let job = queue.lock().expect("refresh queue lock").next();
                    let Some((id, entry)) = job else { break };
                    let result = entry.refresh(applied, delta);
                    results
                        .lock()
                        .expect("refresh results lock")
                        .push((id, result));
                });
            }
        });
        let mut out = results.into_inner().expect("refresh results lock");
        out.sort_by_key(|(id, _)| *id);
        out
    }

    /// Spills slot `id` into its tiered store (shared by explicit
    /// [`GrapeServer::evict`] and the [`EvictionPolicy`]), folding the
    /// increment chain when it exceeds the compaction threshold.  Returns
    /// the path written and whether a compaction ran.
    fn spill_slot(&mut self, id: usize) -> Result<(PathBuf, bool), ServeError> {
        if self.slots[id].store.is_none() {
            self.slots[id].store = Some(QuerySpillStore::create(&self.spill_dir, id)?);
        }
        let mut store = self.slots[id].store.take().expect("created above");
        let result = self.slots[id].entry.evict(&mut store).and_then(|path| {
            if store.chain_len() > self.compaction_threshold && store.compact()? {
                Ok((store.active_base_path(), true))
            } else {
                Ok((path, false))
            }
        });
        self.slots[id].store = Some(store);
        let (path, compacted) = result?;
        if compacted {
            self.compactions += 1;
        }
        Ok((path, compacted))
    }

    /// Folds slot `id`'s increment chain into a fresh base, if it has one.
    fn compact_slot(&mut self, id: usize) -> Result<bool, ServeError> {
        let Some(store) = self.slots[id].store.as_mut() else {
            return Ok(false);
        };
        let folded = store.compact()?;
        if folded {
            self.compactions += 1;
        }
        Ok(folded)
    }

    fn over_budget(&self) -> bool {
        match self.policy {
            EvictionPolicy::Manual => false,
            EvictionPolicy::Lru { max_resident } => {
                self.slots.iter().filter(|s| !s.entry.is_evicted()).count() > max_resident
            }
            EvictionPolicy::MemoryBudget { bytes } => self.resident_partial_bytes() > bytes,
        }
    }

    /// Spills least-recently-touched resident queries until the policy is
    /// satisfied (or no spillable candidate remains — poisoned entries
    /// cannot spill, and a slot whose spill failed is not retried within
    /// one enforcement pass).  Returns the ids spilled and the subset whose
    /// spill triggered a chain compaction.
    fn enforce_policy(&mut self) -> (Vec<usize>, Vec<usize>) {
        let mut evicted = Vec::new();
        let mut compacted = Vec::new();
        if self.policy == EvictionPolicy::Manual {
            return (evicted, compacted);
        }
        let mut skipped: Vec<usize> = Vec::new();
        while self.over_budget() {
            let victim = self
                .slots
                .iter()
                .enumerate()
                .filter(|(id, s)| {
                    !s.entry.is_evicted() && !s.entry.is_poisoned() && !skipped.contains(id)
                })
                .min_by_key(|(_, s)| s.last_touch)
                .map(|(id, _)| id);
            let Some(id) = victim else { break };
            match self.spill_slot(id) {
                Ok((_, folded)) => {
                    evicted.push(id);
                    if folded {
                        compacted.push(id);
                    }
                }
                Err(_) => skipped.push(id),
            }
        }
        (evicted, compacted)
    }

    /// Replays the retained steps from a **resident** query's version up to
    /// `upto`, advancing its version per successful step.  On an error the
    /// version keeps tracking the successfully replayed prefix (unless the
    /// failure poisoned the entry, which the caller handles).
    fn replay_resident(
        &mut self,
        id: usize,
        upto: usize,
    ) -> Result<Vec<UpdateReport>, EngineError> {
        let mut replayed = Vec::new();
        while self.slots[id].version < upto {
            if self.slots[id].entry.is_poisoned() {
                // A poisoned entry can never replay — and since poison
                // never pins history its version may even have fallen
                // below `base`, so surface the poison before touching the
                // step indices.
                return Err(EngineError::PoisonedHandle);
            }
            // The timeline already holds every post-delta application, so
            // no step runs apply_delta again — and the retained `Arc`
            // means replaying costs a refcount bump, not a copy of the
            // per-fragment restrictions.
            let i = self.slots[id].version - self.base;
            let applied = self.steps[i].applied.clone();
            let report = self.slots[id]
                .entry
                .refresh(&applied, &self.steps[i].delta)?;
            self.slots[id].version += 1;
            replayed.push(report);
        }
        Ok(replayed)
    }

    /// Spills a cold query into its tiered store and frees its in-memory
    /// state: a full base snapshot on the first eviction, a delta-encoded
    /// increment (changed fragments + changed partials only) afterwards.
    /// The server retains the timeline version the query was last refreshed
    /// at, so a later rehydration replays only the deltas that arrived in
    /// between.  Returns the path of the file written (the fresh base when
    /// this eviction triggered a compaction).
    pub fn evict<P>(&mut self, handle: &QueryHandle<P>) -> Result<PathBuf, ServeError>
    where
        P: DeltaOutput + 'static,
        P::Partial: Serialize + Deserialize,
    {
        self.check_handle::<P>(handle)?;
        if self.slots[handle.id].entry.is_evicted() {
            return Err(ServeError::AlreadyEvicted(handle.id));
        }
        self.spill_slot(handle.id).map(|(path, _)| path)
    }

    /// Folds the query's spill-store increment chain into a fresh base
    /// snapshot, atomically.  Works whether the query is resident or
    /// evicted (the store outlives rehydration); returns `false` when the
    /// query has never spilled or its chain is already empty.
    pub fn compact<P>(&mut self, handle: &QueryHandle<P>) -> Result<bool, ServeError>
    where
        P: DeltaOutput + 'static,
        P::Partial: Serialize + Deserialize,
    {
        self.check_handle::<P>(handle)?;
        self.compact_slot(handle.id)
    }

    /// Reloads an evicted query from its spill file — zero PEval calls,
    /// no re-partitioning — and replays the deltas applied while it was
    /// cold from the retained timeline (again without any `apply_delta`).
    /// The spill file is reclaimed only once the replay fully succeeds; on
    /// a replay error the entry falls back to the on-disk snapshot — still
    /// evicted at its spill version, retryable — instead of being left
    /// resident with half-replayed state.
    ///
    /// On a **resident** query this replays any steps the query is still
    /// behind on (after a failed full re-preparation) and is otherwise a
    /// no-op returning an empty report.
    pub fn rehydrate<P>(&mut self, handle: &QueryHandle<P>) -> Result<RehydrationReport, ServeError>
    where
        P: DeltaOutput + 'static,
        P::Partial: Serialize + Deserialize,
    {
        self.check_handle::<P>(handle)?;
        let id = handle.id;
        self.touch(id);
        let current = self.version();
        if !self.slots[id].entry.is_evicted() {
            // Resident — but possibly behind: catch it up so output()
            // never serves a stale version.
            let replayed = match self.replay_resident(id, current) {
                Ok(replayed) => replayed,
                Err(e) => {
                    if self.slots[id].entry.is_poisoned() {
                        // Freshly poisoned mid-replay: it can never catch
                        // up, so don't let it pin history (mirrors apply()).
                        self.slots[id].version = current;
                        self.emit_poisoned(id);
                    }
                    return Err(ServeError::Engine(e));
                }
            };
            let events = if replayed.is_empty() {
                Vec::new()
            } else {
                self.prune();
                self.emit_compacted(id)
            };
            return Ok(RehydrationReport {
                query: id,
                replayed,
                events,
            });
        }
        let at = self.slots[id].version;
        // Captured while still cold: the counters the snapshot corresponds
        // to, in case a failed replay has to fall back to it.
        let book = self.slots[id].entry.bookkeeping();
        let store = self.slots[id]
            .store
            .take()
            .expect("evicted entries always have a spill store");
        let reloaded = {
            let frozen = &self.timeline[at - self.base];
            self.slots[id].entry.rehydrate(frozen, &store)
        };
        self.slots[id].store = Some(store);
        reloaded?;
        match self.replay_resident(id, current) {
            Ok(replayed) => {
                // The spill store stays on disk as the query's recovery
                // point; the next eviction appends an increment to it
                // instead of rewriting the world.
                self.prune();
                let events = if replayed.is_empty() {
                    Vec::new()
                } else {
                    self.emit_compacted(id)
                };
                Ok(RehydrationReport {
                    query: id,
                    replayed,
                    events,
                })
            }
            Err(e) => {
                // The in-memory state is half-replayed or poisoned; the
                // on-disk store is the valid recovery point, so fall back
                // to it — counters included, so a retry that replays the
                // whole pending stream never double-counts the prefix that
                // succeeded this time.  The watch rows were never advanced,
                // so subscribers saw no partial delta and the retry
                // re-diffs from the pre-evict baseline.
                self.slots[id].entry.demote(book);
                self.slots[id].version = at;
                Err(ServeError::Engine(e))
            }
        }
    }

    /// The single compacted answer delta after a successful multi-step
    /// replay: the watch rows last advanced at the previous emission, so
    /// one [`ServedQuery::watch_emit`] covers the whole replayed stream,
    /// key-wise folded.  Buffered for [`GrapeServer::drain_events`] and
    /// returned for the caller's report.
    fn emit_compacted(&mut self, id: usize) -> Vec<QueryDelta> {
        let version = self.version();
        let mut events = Vec::new();
        if let Some(wire) = self.slots[id].entry.watch_emit() {
            events.push(QueryDelta {
                query: id,
                version,
                event: OutputEvent::Delta(wire),
            });
        }
        self.pending_events.extend(events.iter().cloned());
        events
    }

    /// The terminal [`OutputEvent::Poisoned`] for a watched query — pushed
    /// exactly once, and never accompanied by a partial delta (the watch
    /// rows only move on success).
    fn emit_poisoned(&mut self, id: usize) {
        let version = self.version();
        let slot = &mut self.slots[id];
        if slot.entry.watch_active() && slot.entry.is_poisoned() && !slot.poison_notified {
            slot.poison_notified = true;
            self.pending_events.push(QueryDelta {
                query: id,
                version,
                event: OutputEvent::Poisoned,
            });
        }
    }

    /// Assembles the query's current answer, lazily rehydrating it first if
    /// it was evicted.
    pub fn output<P>(&mut self, handle: &QueryHandle<P>) -> Result<P::Output, ServeError>
    where
        P: DeltaOutput + 'static,
        P::Partial: Serialize + Deserialize,
    {
        self.rehydrate(handle)?;
        let entry = self.entry_ref::<P>(handle)?;
        entry
            .prepared
            .as_ref()
            .expect("rehydrate left the entry resident")
            .try_output()
            .map_err(ServeError::Engine)
    }

    /// Borrow of the resident [`PreparedQuery`] behind a handle —
    /// `Ok(None)` while the query is evicted, [`ServeError::UnknownHandle`]
    /// when the handle was not issued by this server (or its query type
    /// does not match), so misuse surfaces instead of aliasing the evicted
    /// case.  Useful for metrics and tests (e.g. pinning that all handles
    /// share one fragment storage).
    pub fn prepared<P>(
        &self,
        handle: &QueryHandle<P>,
    ) -> Result<Option<&PreparedQuery<P>>, ServeError>
    where
        P: DeltaOutput + 'static,
        P::Partial: Serialize + Deserialize,
    {
        Ok(self.entry_ref::<P>(handle)?.prepared.as_ref())
    }

    /// Whether the query behind `handle` is currently evicted.
    pub fn is_evicted<P>(&self, handle: &QueryHandle<P>) -> Result<bool, ServeError>
    where
        P: DeltaOutput + 'static,
        P::Partial: Serialize + Deserialize,
    {
        self.check_handle::<P>(handle)?;
        Ok(self.slots[handle.id].entry.is_evicted())
    }

    fn check_handle<P>(&self, handle: &QueryHandle<P>) -> Result<(), ServeError>
    where
        P: DeltaOutput + 'static,
        P::Partial: Serialize + Deserialize,
    {
        if handle.server != self.token {
            return Err(ServeError::UnknownHandle(handle.id));
        }
        let slot = self
            .slots
            .get(handle.id)
            .ok_or(ServeError::UnknownHandle(handle.id))?;
        if !slot.entry.as_any().is::<ServedEntry<P>>() {
            return Err(ServeError::UnknownHandle(handle.id));
        }
        Ok(())
    }

    fn entry_ref<P>(&self, handle: &QueryHandle<P>) -> Result<&ServedEntry<P>, ServeError>
    where
        P: DeltaOutput + 'static,
        P::Partial: Serialize + Deserialize,
    {
        self.check_handle::<P>(handle)?;
        self.slots
            .get(handle.id)
            .and_then(|s| s.entry.as_any().downcast_ref::<ServedEntry<P>>())
            .ok_or(ServeError::UnknownHandle(handle.id))
    }

    /// Drops timeline versions no query can need anymore: everything older
    /// than the oldest version still needed for replay — by an evicted
    /// query, or by a resident one left behind by a failed full
    /// re-preparation.  Poisoned queries never replay and are ignored.
    fn prune(&mut self) {
        let needed = self
            .slots
            .iter()
            .filter(|s| !s.entry.is_poisoned())
            .map(|s| s.version)
            .min()
            .unwrap_or_else(|| self.version());
        if needed > self.base {
            let k = needed - self.base;
            self.timeline.drain(..k);
            self.steps.drain(..k);
            self.base = needed;
        }
    }
}

impl Drop for GrapeServer {
    fn drop(&mut self) {
        // Reclaim spill files of queries still evicted at shutdown — but
        // only from the directory this server created itself; a
        // caller-provided spill directory is never touched.
        if self.owns_spill_dir {
            let _ = std::fs::remove_dir_all(&self.spill_dir);
        }
    }
}

impl std::fmt::Debug for GrapeServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GrapeServer")
            .field("version", &self.version())
            .field("queries", &self.slots.len())
            .field("evicted", &self.num_evicted())
            .field("retained_versions", &self.timeline.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EngineMode;
    use crate::prepared::RefreshKind;
    use crate::test_support::{
        path_graph, session, DivergingOnUpdate, MinForward, TrippablePrepare,
    };
    use grape_partition::edge_cut::RangeEdgeCut;
    use grape_partition::strategy::PartitionStrategy;

    fn server_with(
        n_queries: usize,
        mode: EngineMode,
    ) -> (GrapeServer, Vec<QueryHandle<MinForward>>) {
        let g = path_graph(12);
        let frag = RangeEdgeCut::new(3).partition(&g).unwrap();
        let mut server = GrapeServer::new(session(mode), frag);
        let handles = (0..n_queries)
            .map(|_| server.register(MinForward, ()).unwrap())
            .collect();
        (server, handles)
    }

    #[test]
    fn one_apply_per_delta_is_shared_by_every_query() {
        for mode in [EngineMode::Sync, EngineMode::Async] {
            let (mut server, handles) = server_with(3, mode);
            assert_eq!(server.num_queries(), 3);

            // A monotone insert, then a bounded deletion.
            let deltas = [
                GraphDelta::new().add_edge(0, 2),
                GraphDelta::new().remove_edge(5, 6),
            ];
            for (d, delta) in deltas.iter().enumerate() {
                let report = server.apply(delta).unwrap();
                assert_eq!(report.version, d + 1, "{mode:?}");
                assert_eq!(report.refreshed.len(), 3, "{mode:?}");
                // The single delta application's rebuilt set IS every
                // query's rebuilt set.
                for qr in &report.refreshed {
                    let ur = qr.result.as_ref().unwrap();
                    assert_eq!(ur.rebuilt, report.rebuilt, "{mode:?}");
                    assert_eq!(ur.reused, report.reused, "{mode:?}");
                }
            }
            assert_eq!(server.deltas_applied(), 2);
            assert_eq!(server.retained_versions(), 1, "nothing evicted: pruned");

            // Every handle shares the server's (single) fragment storage.
            for h in &handles {
                let prepared = server.prepared(h).unwrap().unwrap();
                for i in 0..server.fragmentation().num_fragments() {
                    assert!(
                        server
                            .fragmentation()
                            .shares_fragment_storage(prepared.fragmentation(), i),
                        "query {} fragment {i} was copied ({mode:?})",
                        h.id()
                    );
                }
            }

            // And each answer equals a from-scratch recompute.
            let recompute = session(mode)
                .run(server.fragmentation(), &MinForward, &())
                .unwrap();
            for h in handles {
                assert_eq!(server.output(&h).unwrap(), recompute.output, "{mode:?}");
            }
        }
    }

    #[test]
    fn evict_rehydrate_round_trip_is_exact_and_peval_free() {
        let (mut server, handles) = server_with(2, EngineMode::Sync);
        let (kept, cold) = (handles[0], handles[1]);
        server.apply(&GraphDelta::new().add_edge(0, 2)).unwrap();

        let spill = server.evict(&cold).unwrap();
        assert!(spill.exists());
        assert!(server.is_evicted(&cold).unwrap());
        assert!(
            server.prepared(&cold).unwrap().is_none(),
            "partials were released"
        );

        // Rehydration folds the spill store back: no PEval, no
        // re-partitioning, answers identical to the handle that never left
        // memory.
        let report = server.rehydrate(&cold).unwrap();
        assert_eq!(report.replayed.len(), 0);
        assert_eq!(report.peval_calls(), 0);
        assert!(
            spill.exists(),
            "the store persists as the recovery point the next evict appends to"
        );
        assert_eq!(server.output(&cold).unwrap(), server.output(&kept).unwrap());

        // The second eviction appends a delta-encoded increment instead of
        // rewriting the base snapshot.
        server.apply(&GraphDelta::new().add_edge(0, 3)).unwrap();
        let second = server.evict(&cold).unwrap();
        assert!(
            second.to_string_lossy().ends_with(".inc-0"),
            "expected an increment, wrote {second:?}"
        );
        let status = &server.query_statuses()[cold.id()];
        assert_eq!(status.spill_chain, 1);
        assert!(status.spill_bytes > 0);
        let base_len = std::fs::metadata(&spill).unwrap().len();
        let inc_len = std::fs::metadata(&second).unwrap().len();
        assert!(
            inc_len < base_len,
            "increment ({inc_len} bytes) should undercut the base ({base_len} bytes)"
        );
        server.rehydrate(&cold).unwrap();
        assert_eq!(server.output(&cold).unwrap(), server.output(&kept).unwrap());
    }

    #[test]
    fn rehydration_installs_the_persisted_gp_and_quotient_tables() {
        for mode in [EngineMode::Sync, EngineMode::Async] {
            let (mut server, handles) = server_with(1, mode);
            let h = handles[0];
            server.apply(&GraphDelta::new().add_edge(0, 5)).unwrap();
            server.evict(&h).unwrap();
            server.rehydrate(&h).unwrap();

            let frag = server.prepared(&h).unwrap().unwrap().fragmentation();
            assert!(
                frag.quotient_tables_cached(),
                "quotient tables come off disk, not a re-derivation ({mode:?})"
            );
            // Pinned equal to what a fresh derivation over the live
            // timeline would produce.
            assert_eq!(frag.gp(), server.fragmentation().gp(), "{mode:?}");
            assert_eq!(
                *frag.quotient_tables(),
                grape_partition::delta::QuotientTables::derive(server.fragmentation()),
                "{mode:?}"
            );
        }
    }

    #[test]
    fn compaction_bounds_the_chain_and_explicit_compact_folds_it() {
        let g = path_graph(12);
        let frag = RangeEdgeCut::new(3).partition(&g).unwrap();
        let mut server = GrapeServer::new(session(EngineMode::Sync), frag).compaction_threshold(1);
        let kept = server.register(MinForward, ()).unwrap();
        let cold = server.register(MinForward, ()).unwrap();

        for round in 0..4u64 {
            server.evict(&cold).unwrap();
            server
                .apply(&GraphDelta::new().add_edge(12 + round, round))
                .unwrap();
            server.rehydrate(&cold).unwrap();
            assert!(
                server.query_statuses()[cold.id()].spill_chain <= 2,
                "the threshold keeps the chain bounded"
            );
        }
        assert!(server.compactions() >= 1, "threshold folds happened");
        assert_eq!(server.output(&cold).unwrap(), server.output(&kept).unwrap());

        // An explicit compact folds whatever chain remains and is
        // idempotent once the chain is empty.
        server.evict(&cold).unwrap();
        server.rehydrate(&cold).unwrap();
        if server.query_statuses()[cold.id()].spill_chain > 0 {
            assert!(server.compact(&cold).unwrap());
        }
        assert_eq!(server.query_statuses()[cold.id()].spill_chain, 0);
        assert!(!server.compact(&cold).unwrap());
        assert_eq!(server.output(&cold).unwrap(), server.output(&kept).unwrap());
    }

    #[test]
    fn deltas_arriving_while_cold_are_replayed_on_rehydration() {
        let (mut server, handles) = server_with(2, EngineMode::Sync);
        let (kept, cold) = (handles[0], handles[1]);

        server.evict(&cold).unwrap();
        let r1 = server.apply(&GraphDelta::new().add_edge(0, 2)).unwrap();
        assert_eq!(r1.deferred, vec![cold.id()]);
        assert_eq!(r1.refreshed.len(), 1, "only the resident query refreshed");
        let r2 = server.apply(&GraphDelta::new().add_edge(20, 21)).unwrap();
        assert_eq!(r2.deferred, vec![cold.id()]);
        assert!(
            server.retained_versions() > 1,
            "history retained for the cold query"
        );

        // output() lazily rehydrates and replays both deltas — still zero
        // PEval calls, because the pending stream is monotone.
        let report = server.rehydrate(&cold).unwrap();
        assert_eq!(report.replayed.len(), 2);
        assert_eq!(report.peval_calls(), 0);
        assert_eq!(
            report.replayed[0].kind,
            RefreshKind::Monotone,
            "replay takes the same decision table"
        );
        assert_eq!(server.output(&cold).unwrap(), server.output(&kept).unwrap());
        assert_eq!(
            server.retained_versions(),
            1,
            "history pruned once everyone caught up"
        );
    }

    #[test]
    fn eviction_bookkeeping_rejects_misuse() {
        let (mut server, handles) = server_with(1, EngineMode::Sync);
        let h = handles[0];
        server.evict(&h).unwrap();
        assert!(matches!(
            server.evict(&h).unwrap_err(),
            ServeError::AlreadyEvicted(_)
        ));
        // A handle from a DIFFERENT server is rejected even when the other
        // server holds a same-typed query under the same id.
        let (mut other, other_handles) = server_with(1, EngineMode::Sync);
        assert_eq!(h.id(), other_handles[0].id(), "same id, different server");
        assert!(matches!(
            other.output(&h).unwrap_err(),
            ServeError::UnknownHandle(_)
        ));
        // prepared() surfaces the foreign handle instead of aliasing it to
        // the evicted case's None.
        assert!(matches!(
            other.prepared(&h),
            Err(ServeError::UnknownHandle(_))
        ));
        assert!(other.output(&other_handles[0]).is_ok());
    }

    #[test]
    fn dropping_a_server_reclaims_its_default_spill_dir() {
        let (mut server, handles) = server_with(1, EngineMode::Sync);
        let spill = server.evict(&handles[0]).unwrap();
        let dir = spill.parent().unwrap().to_path_buf();
        assert!(dir.exists());
        drop(server);
        assert!(!dir.exists(), "default spill dir is removed on drop");
    }

    #[test]
    fn corrupted_spill_files_are_rejected_not_half_loaded() {
        let (mut server, handles) = server_with(1, EngineMode::Sync);
        let h = handles[0];
        let spill = server.evict(&h).unwrap();
        // Concatenated per-fragment records must line up exactly: a
        // trailing byte is corruption, not slack.
        let mut bytes = std::fs::read(&spill).unwrap();
        bytes.push(0x55);
        std::fs::write(&spill, bytes).unwrap();
        let err = server.rehydrate(&h).unwrap_err();
        assert!(matches!(err, ServeError::Snapshot(_)), "{err}");
        // The entry stays evicted (and retryable) rather than half-loaded.
        assert!(server.is_evicted(&h).unwrap());
    }

    /// Regression for the version-desync on a failed full re-preparation:
    /// the handle stays consistent at the pre-delta fragmentation, so the
    /// server must keep it on its old version and replay the retained
    /// steps later — never hand it a `DeltaApplication` derived from a
    /// fragmentation it does not hold (silent garbage), and never serve a
    /// stale answer as if it were current.
    #[test]
    fn a_failed_full_repreparation_stays_behind_and_catches_up() {
        let g = crate::test_support::ring_graph(12);
        let frag = RangeEdgeCut::new(3).partition(&g).unwrap();
        let s = GrapeSession::builder()
            .workers(2)
            .mode(EngineMode::Sync)
            .max_supersteps(4)
            .build()
            .unwrap();
        let mut server = GrapeServer::new(s.clone(), frag);
        let healthy = server.register(MinForward, ()).unwrap();
        let flaky_prog = TrippablePrepare::new();
        let flaky = server.register(flaky_prog.clone(), ()).unwrap();
        let out_v0 = server.output(&flaky).unwrap();

        // Every delta is non-monotone for the flaky program and its damage
        // covers the whole ring: full re-preparation — which diverges while
        // the program is tripped, WITHOUT poisoning the handle.
        flaky_prog.trip();
        let r1 = server.apply(&GraphDelta::new().add_edge(0, 2)).unwrap();
        let by_id = |r: &ServeReport, id: usize| {
            r.refreshed
                .iter()
                .find(|q| q.query == id)
                .unwrap()
                .result
                .clone()
        };
        assert!(by_id(&r1, healthy.id()).is_ok());
        assert!(by_id(&r1, flaky.id()).is_err());
        assert_eq!(server.version(), 1, "the timeline itself advanced");
        assert!(
            server.retained_versions() > 1,
            "history retained for the behind query"
        );

        // While still tripped, output() replays (and fails loudly) instead
        // of serving the stale version-0 answer as current.
        assert!(matches!(
            server.output(&flaky).unwrap_err(),
            ServeError::Engine(EngineError::DidNotConverge { .. })
        ));

        // Once healed, the next apply first replays the missed step, then
        // refreshes with the new delta — outputs equal a recompute.
        flaky_prog.heal();
        let r2 = server.apply(&GraphDelta::new().add_edge(1, 3)).unwrap();
        assert_eq!(r2.caught_up, vec![flaky.id()]);
        assert!(by_id(&r2, flaky.id()).is_ok());
        assert!(r2.poisoned.is_empty(), "a behind query is not poisoned");
        assert_eq!(server.retained_versions(), 1, "caught up: history pruned");

        let recompute = s
            .run(server.fragmentation(), &flaky_prog, &())
            .unwrap()
            .output;
        assert_eq!(server.output(&flaky).unwrap(), recompute);
        assert_ne!(
            server.output(&flaky).unwrap(),
            out_v0,
            "the replayed refreshes really moved the answer"
        );
        let recompute = s
            .run(server.fragmentation(), &MinForward, &())
            .unwrap()
            .output;
        assert_eq!(server.output(&healthy).unwrap(), recompute);
    }

    /// Regression for the same desync via rehydrate(): a replay failure
    /// after the spill reload must not leave the entry resident,
    /// unpoisoned and behind with its spill already deleted — it falls
    /// back to the on-disk snapshot (still evicted, retryable) and the
    /// spill file survives until a replay fully succeeds.
    #[test]
    fn a_failed_replay_falls_back_to_the_spill_file() {
        let g = crate::test_support::ring_graph(12);
        let frag = RangeEdgeCut::new(3).partition(&g).unwrap();
        let s = GrapeSession::builder()
            .workers(2)
            .mode(EngineMode::Sync)
            .max_supersteps(4)
            .build()
            .unwrap();
        let mut server = GrapeServer::new(s.clone(), frag);
        let _healthy = server.register(MinForward, ()).unwrap();
        let flaky_prog = TrippablePrepare::new();
        let flaky = server.register(flaky_prog.clone(), ()).unwrap();

        let spill = server.evict(&flaky).unwrap();
        flaky_prog.trip();
        let r = server.apply(&GraphDelta::new().add_edge(0, 2)).unwrap();
        assert_eq!(r.deferred, vec![flaky.id()]);

        // The reload succeeds, the replayed full re-preparation diverges:
        // back to the snapshot, spill intact, history still retained.
        let err = server.rehydrate(&flaky).unwrap_err();
        assert!(matches!(
            err,
            ServeError::Engine(EngineError::DidNotConverge { .. })
        ));
        assert!(server.is_evicted(&flaky).unwrap());
        assert!(spill.exists(), "spill survives until a replay succeeds");
        assert!(server.retained_versions() > 1);

        // Retry after healing: replay lands, the store stays on disk as the
        // recovery point, answer equals a recompute on the current graph.
        flaky_prog.heal();
        let report = server.rehydrate(&flaky).unwrap();
        assert_eq!(report.replayed.len(), 1);
        assert!(
            spill.exists(),
            "the spill store outlives a successful replay"
        );
        assert_eq!(server.retained_versions(), 1);
        let recompute = s
            .run(server.fragmentation(), &flaky_prog, &())
            .unwrap()
            .output;
        assert_eq!(server.output(&flaky).unwrap(), recompute);
    }

    /// A failed replay falls back to the snapshot *counters included*: the
    /// retry replays the whole pending stream from the snapshot, so the
    /// prefix that succeeded on the first attempt must not be counted
    /// twice.
    #[test]
    fn a_failed_replay_retry_does_not_double_count_the_replayed_prefix() {
        let g = crate::test_support::ring_graph(12);
        let frag = RangeEdgeCut::new(3).partition(&g).unwrap();
        let s = GrapeSession::builder()
            .workers(2)
            .mode(EngineMode::Sync)
            .max_supersteps(4)
            .build()
            .unwrap();
        let mut server = GrapeServer::new(s.clone(), frag);
        let flaky_prog = TrippablePrepare::new();
        let flaky = server.register(flaky_prog.clone(), ()).unwrap();

        // Two deltas arrive while cold: a no-op (always replays fine) and
        // an insert whose full re-preparation diverges while tripped.
        server.evict(&flaky).unwrap();
        server.apply(&GraphDelta::new()).unwrap();
        server.apply(&GraphDelta::new().add_edge(0, 2)).unwrap();

        // First attempt: step 1 lands, step 2 fails → back to the snapshot.
        flaky_prog.trip();
        server.rehydrate(&flaky).unwrap_err();
        assert!(server.is_evicted(&flaky).unwrap());

        // Retry replays BOTH steps again; the first attempt's successful
        // prefix was rolled back with the state, so nothing double-counts.
        flaky_prog.heal();
        let report = server.rehydrate(&flaky).unwrap();
        assert_eq!(report.replayed.len(), 2);
        let p = server.prepared(&flaky).unwrap().unwrap();
        assert_eq!(p.updates_applied(), 2, "two deltas were ever absorbed");
        assert_eq!(p.incremental_updates(), 1, "the no-op counted once");
    }

    /// A query can be poisoned *while behind*: it falls behind on a failed
    /// full re-preparation, and a later catch-up replay fails on the
    /// monotone/bounded (partial-consuming) path.  Its version must not be
    /// allowed to fall below the pruned timeline base — every later access
    /// must surface `PoisonedHandle`, never a panicking index underflow —
    /// and the dead query must not pin the retained history.
    #[test]
    fn poisoned_mid_replay_surfaces_as_an_error_and_never_pins_history() {
        let g = crate::test_support::ring_graph(12);
        let frag = RangeEdgeCut::new(3).partition(&g).unwrap();
        let s = GrapeSession::builder()
            .workers(2)
            .mode(EngineMode::Sync)
            .max_supersteps(4)
            .build()
            .unwrap();
        let mut server = GrapeServer::new(s.clone(), frag);
        let healthy = server.register(MinForward, ()).unwrap();
        let flaky_prog = TrippablePrepare::new();
        let flaky = server.register(flaky_prog.clone(), ()).unwrap();

        // Fall behind: the insert is non-monotone for the tripped program,
        // its full re-preparation diverges, the handle stays at version 0.
        flaky_prog.trip();
        server.apply(&GraphDelta::new().add_edge(0, 2)).unwrap();
        assert!(server.retained_versions() > 1);

        // Replaying that insert now takes the (always-diverging) monotone
        // path: the catch-up inside output() poisons the handle mid-replay.
        flaky_prog.allow_monotone_inserts();
        assert!(matches!(
            server.output(&flaky).unwrap_err(),
            ServeError::Engine(EngineError::DidNotConverge { .. })
        ));

        // Another query's round trip prunes the history the dead query no
        // longer needs...
        server.evict(&healthy).unwrap();
        server.rehydrate(&healthy).unwrap();
        assert_eq!(server.retained_versions(), 1, "poison does not pin");

        // ...and the poisoned query keeps surfacing as an error — not a
        // version-arithmetic panic — on every later access.
        assert!(matches!(
            server.output(&flaky).unwrap_err(),
            ServeError::Engine(EngineError::PoisonedHandle)
        ));
        let recompute = s
            .run(server.fragmentation(), &MinForward, &())
            .unwrap()
            .output;
        assert_eq!(server.output(&healthy).unwrap(), recompute);
    }

    #[test]
    fn a_poisoned_query_is_quarantined_and_the_rest_keep_serving() {
        // A ring, so the diverging program's escalation actually cycles.
        let g = crate::test_support::ring_graph(12);
        let frag = RangeEdgeCut::new(3).partition(&g).unwrap();
        let s = GrapeSession::builder()
            .workers(2)
            .mode(EngineMode::Sync)
            .max_supersteps(4)
            .build()
            .unwrap();
        let mut server = GrapeServer::new(s.clone(), frag);
        let healthy = server.register(MinForward, ()).unwrap();
        let doomed = server.register(DivergingOnUpdate, ()).unwrap();

        // The diverging query fails its refresh; the report carries the
        // error, the healthy query's refresh still lands.
        let r1 = server.apply(&GraphDelta::new().add_edge(0, 2)).unwrap();
        assert_eq!(r1.refreshed.len(), 2);
        let by_id = |id: usize| r1.refreshed.iter().find(|q| q.query == id).unwrap();
        assert!(by_id(healthy.id()).result.is_ok());
        assert!(by_id(doomed.id()).result.is_err());

        // Subsequent deltas skip the poisoned query explicitly.
        let r2 = server.apply(&GraphDelta::new().add_edge(1, 3)).unwrap();
        assert_eq!(r2.poisoned, vec![doomed.id()]);
        assert_eq!(r2.refreshed.len(), 1);
        assert!(matches!(
            server.output(&doomed).unwrap_err(),
            ServeError::Engine(EngineError::PoisonedHandle)
        ));
        let recompute = s.run(server.fragmentation(), &MinForward, &()).unwrap();
        assert_eq!(server.output(&healthy).unwrap(), recompute.output);
        assert_eq!(server.retained_versions(), 1, "poison does not pin history");
    }

    /// The concurrent fan-out is invisible: reports (ids, order, outcomes)
    /// and outputs are identical whatever the thread count.
    #[test]
    fn fan_out_width_never_changes_reports_or_outputs() {
        for mode in [EngineMode::Sync, EngineMode::Async] {
            let deltas = [
                GraphDelta::new().add_edge(0, 2),
                GraphDelta::new().remove_edge(5, 6),
                GraphDelta::new().add_edge(3, 9),
            ];
            let mut baseline: Option<Vec<Vec<usize>>> = None;
            for threads in [1usize, 3] {
                let g = path_graph(12);
                let frag = RangeEdgeCut::new(3).partition(&g).unwrap();
                let mut server = GrapeServer::new(session(mode), frag).threads(threads);
                assert_eq!(server.refresh_threads(), threads);
                let handles: Vec<_> = (0..4)
                    .map(|_| server.register(MinForward, ()).unwrap())
                    .collect();
                let mut seen = Vec::new();
                for delta in &deltas {
                    let report = server.apply(delta).unwrap();
                    let ids: Vec<usize> = report.refreshed.iter().map(|q| q.query).collect();
                    assert_eq!(ids, vec![0, 1, 2, 3], "sorted by id ({mode:?})");
                    assert!(report.refreshed.iter().all(|q| q.result.is_ok()));
                    seen.push(report.rebuilt.clone());
                }
                let recompute = session(mode)
                    .run(server.fragmentation(), &MinForward, &())
                    .unwrap();
                for h in &handles {
                    assert_eq!(server.output(h).unwrap(), recompute.output, "{mode:?}");
                }
                match &baseline {
                    None => baseline = Some(seen),
                    Some(b) => assert_eq!(b, &seen, "rebuilt sets differ ({mode:?})"),
                }
            }
        }
    }

    /// `apply_batch` without group-commit IS N sequential applies: same
    /// versions, same per-delta reports, same timeline pruning, same
    /// outputs.
    #[test]
    fn apply_batch_equals_sequential_applies() {
        let deltas = vec![
            GraphDelta::new().add_edge(0, 2),
            GraphDelta::new().remove_edge(5, 6),
            GraphDelta::new().add_edge(7, 1),
            GraphDelta::new(),
        ];
        let make = || {
            let g = path_graph(12);
            let frag = RangeEdgeCut::new(3).partition(&g).unwrap();
            let mut server = GrapeServer::new(session(EngineMode::Sync), frag);
            let handles: Vec<_> = (0..3)
                .map(|_| server.register(MinForward, ()).unwrap())
                .collect();
            (server, handles)
        };
        let (mut batched, bh) = make();
        let (mut sequential, sh) = make();

        let batch = batched.apply_batch(&deltas);
        assert!(batch.rejected.is_none());
        assert_eq!(batch.reports.len(), deltas.len(), "no grouping by default");
        assert_eq!(batch.deltas_committed(), deltas.len());
        let seq_reports: Vec<ServeReport> = deltas
            .iter()
            .map(|d| sequential.apply(d).unwrap())
            .collect();
        for (b, s) in batch.reports.iter().zip(&seq_reports) {
            assert_eq!(b.version, s.version);
            assert_eq!(b.deltas, 1);
            assert_eq!(b.rebuilt, s.rebuilt);
            assert_eq!(b.reused, s.reused);
            let ids = |r: &ServeReport| r.refreshed.iter().map(|q| q.query).collect::<Vec<_>>();
            assert_eq!(ids(b), ids(s));
            for (qb, qs) in b.refreshed.iter().zip(&s.refreshed) {
                assert_eq!(qb.result.is_ok(), qs.result.is_ok());
                assert_eq!(
                    qb.result.as_ref().unwrap().kind,
                    qs.result.as_ref().unwrap().kind
                );
            }
        }
        assert_eq!(batched.version(), sequential.version());
        assert_eq!(batched.deltas_applied(), sequential.deltas_applied());
        assert_eq!(batched.retained_versions(), 1, "pruned exactly like apply");
        for (hb, hs) in bh.iter().zip(&sh) {
            assert_eq!(batched.output(hb).unwrap(), sequential.output(hs).unwrap());
        }
    }

    /// A rejected delta stops the batch; everything committed before it is
    /// durable, the index points into the caller's slice, and the server
    /// keeps serving.
    #[test]
    fn a_rejected_delta_stops_the_batch_after_durable_commits() {
        let (mut server, handles) = server_with(2, EngineMode::Sync);
        let batch = server.apply_batch(&[
            GraphDelta::new().add_edge(0, 2),
            GraphDelta::new().remove_edge(40, 41), // not in the graph
            GraphDelta::new().add_edge(1, 3),      // never reached
        ]);
        assert_eq!(batch.reports.len(), 1, "first delta committed");
        assert_eq!(batch.deltas_committed(), 1);
        let rejection = batch.rejected.expect("second delta was rejected");
        assert_eq!(rejection.index, 1);
        assert!(rejection.reason.contains("cannot remove edge"));
        assert_eq!(server.version(), 1);
        assert_eq!(server.deltas_applied(), 1);

        // The server is still healthy: later deltas and outputs work.
        server.apply(&GraphDelta::new().add_edge(1, 3)).unwrap();
        let recompute = session(EngineMode::Sync)
            .run(server.fragmentation(), &MinForward, &())
            .unwrap();
        for h in &handles {
            assert_eq!(server.output(h).unwrap(), recompute.output);
        }
    }

    /// Group-commit merges runs of edge-insert-only deltas into a single
    /// `DeltaApplication`: one timeline commit, one refresh per query per
    /// group — pinned via version / updates_applied — while
    /// `deltas_applied` keeps counting raw deltas.
    #[test]
    fn group_commit_runs_one_delta_application_per_group() {
        let g = path_graph(12);
        let frag = RangeEdgeCut::new(3).partition(&g).unwrap();
        let mut server = GrapeServer::new(session(EngineMode::Sync), frag).group_commit(16);
        let h = server.register(MinForward, ()).unwrap();

        let deltas = vec![
            GraphDelta::new().add_edge(0, 2),
            GraphDelta::new().add_edge(0, 3),
            GraphDelta::new().add_edge(1, 4),
            GraphDelta::new().add_edge(2, 5),
            GraphDelta::new().remove_edge(5, 6), // starts group 2
            GraphDelta::new().add_edge(6, 8),    // merges into group 2
            GraphDelta::new().add_edge(7, 9),
        ];
        let batch = server.apply_batch(&deltas);
        assert!(batch.rejected.is_none());
        assert_eq!(batch.reports.len(), 2, "two groups");
        assert_eq!(batch.reports[0].deltas, 4);
        assert_eq!(batch.reports[1].deltas, 3);
        assert_eq!(
            batch.reports[0].peval_calls(),
            0,
            "the merged insert-only group stays monotone"
        );
        assert_eq!(server.version(), 2, "one timeline commit per group");
        assert_eq!(server.deltas_applied(), 7, "raw deltas still counted");
        let p = server.prepared(&h).unwrap().unwrap();
        assert_eq!(p.updates_applied(), 2, "one refresh per group");

        // The answer still equals a from-scratch recompute AND an ungrouped
        // sequential server over the same stream.
        let recompute = session(EngineMode::Sync)
            .run(server.fragmentation(), &MinForward, &())
            .unwrap();
        assert_eq!(server.output(&h).unwrap(), recompute.output);
        let g = path_graph(12);
        let frag = RangeEdgeCut::new(3).partition(&g).unwrap();
        let mut plain = GrapeServer::new(session(EngineMode::Sync), frag);
        let ph = plain.register(MinForward, ()).unwrap();
        for d in &deltas {
            plain.apply(d).unwrap();
        }
        assert_eq!(server.output(&h).unwrap(), plain.output(&ph).unwrap());
    }

    /// A refresh failure inside a batch leaves the earlier commits durable
    /// and the failed slot on its true version — the batch keeps going and
    /// the slot catches up after healing, exactly like the single-apply
    /// path.
    #[test]
    fn a_refresh_failure_inside_a_batch_leaves_commits_durable() {
        let g = crate::test_support::ring_graph(12);
        let frag = RangeEdgeCut::new(3).partition(&g).unwrap();
        let s = GrapeSession::builder()
            .workers(2)
            .mode(EngineMode::Sync)
            .max_supersteps(4)
            .build()
            .unwrap();
        let mut server = GrapeServer::new(s.clone(), frag);
        let healthy = server.register(MinForward, ()).unwrap();
        let flaky_prog = TrippablePrepare::new();
        let flaky = server.register(flaky_prog.clone(), ()).unwrap();

        flaky_prog.trip();
        let batch = server.apply_batch(&[
            GraphDelta::new().add_edge(0, 2),
            GraphDelta::new().add_edge(1, 3),
        ]);
        assert!(batch.rejected.is_none(), "refresh failures never reject");
        assert_eq!(batch.reports.len(), 2, "both commits durable");
        let by_id = |r: &ServeReport, id: usize| {
            r.refreshed
                .iter()
                .find(|q| q.query == id)
                .unwrap()
                .result
                .clone()
        };
        for r in &batch.reports {
            assert!(by_id(r, healthy.id()).is_ok());
            assert!(by_id(r, flaky.id()).is_err());
        }
        assert_eq!(server.version(), 2, "the timeline advanced twice");
        assert!(
            server.retained_versions() > 1,
            "history retained for the behind slot"
        );

        flaky_prog.heal();
        let r = server.apply(&GraphDelta::new().add_edge(2, 4)).unwrap();
        assert_eq!(r.caught_up, vec![flaky.id()], "replayed both missed steps");
        let recompute = s
            .run(server.fragmentation(), &flaky_prog, &())
            .unwrap()
            .output;
        assert_eq!(server.output(&flaky).unwrap(), recompute);
    }

    /// LRU spills the least-recently-*touched* resident query exactly when
    /// residency exceeds `max_resident` — touches being user interest
    /// (register / output / rehydrate), not server refreshes.
    #[test]
    fn lru_policy_evicts_the_least_recently_touched_at_the_boundary() {
        let g = path_graph(12);
        let frag = RangeEdgeCut::new(3).partition(&g).unwrap();
        let mut server = GrapeServer::new(session(EngineMode::Sync), frag)
            .eviction_policy(EvictionPolicy::Lru { max_resident: 2 });
        let q0 = server.register(MinForward, ()).unwrap();
        let q1 = server.register(MinForward, ()).unwrap();
        assert_eq!(server.num_evicted(), 0, "at the cap, nothing spills");

        // Touch q0 so q1 becomes the LRU victim.
        server.output(&q0).unwrap();
        let q2 = server.register(MinForward, ()).unwrap();
        assert_eq!(server.num_evicted(), 1, "max_resident+1 spills exactly one");
        assert!(server.is_evicted(&q1).unwrap(), "least-recently-touched");
        assert!(!server.is_evicted(&q0).unwrap());
        assert!(!server.is_evicted(&q2).unwrap());

        // Watching the evicted query rehydrates it (transiently 3 resident);
        // the next commit re-enforces the cap and reports who it spilled.
        server.output(&q1).unwrap();
        assert_eq!(server.num_evicted(), 0, "rehydration may exceed the cap");
        let r = server.apply(&GraphDelta::new().add_edge(0, 2)).unwrap();
        assert_eq!(r.evicted, vec![q0.id()], "now q0 is least recent");
        assert_eq!(server.num_evicted(), 1);

        // Everyone still answers exactly, evicted or not, with the fan-out.
        let recompute = session(EngineMode::Sync)
            .run(server.fragmentation(), &MinForward, &())
            .unwrap();
        for h in [&q0, &q1, &q2] {
            assert_eq!(server.output(h).unwrap(), recompute.output);
        }
    }

    /// The memory-budget policy accounts real serialized partial sizes and
    /// spills least-recently-touched queries until the total fits; an
    /// evicted-then-watched query rehydrates and catches up under a
    /// concurrent apply.
    #[test]
    fn memory_budget_policy_respects_recorded_partial_sizes() {
        let g = path_graph(12);
        let frag = RangeEdgeCut::new(3).partition(&g).unwrap();
        // Measure one query's footprint with a plain server first.
        let mut probe = GrapeServer::new(session(EngineMode::Sync), frag.clone());
        probe.register(MinForward, ()).unwrap();
        let one = probe.resident_partial_bytes();
        assert!(one > 0, "partials have a measurable size");

        // Budget for one resident query, not two.
        let budget = one + one / 2;
        let mut server = GrapeServer::new(session(EngineMode::Sync), frag)
            .threads(4)
            .eviction_policy(EvictionPolicy::MemoryBudget { bytes: budget });
        let q0 = server.register(MinForward, ()).unwrap();
        assert_eq!(server.num_evicted(), 0, "one query fits");
        let q1 = server.register(MinForward, ()).unwrap();
        assert!(
            server.is_evicted(&q0).unwrap(),
            "q0 was least recently touched"
        );
        assert!(!server.is_evicted(&q1).unwrap());
        assert!(server.resident_partial_bytes() <= budget);

        // Deltas arrive while q0 is cold; watching it rehydrates, replays,
        // and matches a recompute — under the concurrent fan-out.
        let r = server.apply(&GraphDelta::new().add_edge(0, 2)).unwrap();
        assert_eq!(r.deferred, vec![q0.id()]);
        server.apply(&GraphDelta::new().add_edge(3, 7)).unwrap();
        let recompute = session(EngineMode::Sync)
            .run(server.fragmentation(), &MinForward, &())
            .unwrap();
        assert_eq!(server.output(&q0).unwrap(), recompute.output);
        assert_eq!(server.output(&q1).unwrap(), recompute.output);
    }

    /// The current answer as canonical wire rows — what a subscriber that
    /// replays the delta stream must end up holding.
    fn wire_answer(server: &mut GrapeServer, h: &QueryHandle<MinForward>) -> Vec<(Value, Value)> {
        let out = server.output(h).unwrap();
        crate::output_delta::wire_rows(&MinForward.canonical(&(), &out))
    }

    /// The subscription contract: one answer delta per watched query per
    /// commit (empty commits included, so the stream stays aligned), and
    /// replaying the stream over the answer observed at subscribe time
    /// reproduces `output()` exactly.
    #[test]
    fn subscriptions_stream_one_delta_per_commit_and_replay_reproduces_output() {
        for mode in [EngineMode::Sync, EngineMode::Async] {
            let (mut server, handles) = server_with(2, mode);
            let watched = handles[0];
            let sub = server.subscribe(&watched).unwrap();
            let mut rows = wire_answer(&mut server, &watched);
            assert!(server.drain_events().is_empty(), "no commits yet");

            let deltas = [
                GraphDelta::new().add_edge(0, 2),
                GraphDelta::new().remove_edge(5, 6),
                GraphDelta::new(),
            ];
            for delta in &deltas {
                let report = server.apply(delta).unwrap();
                assert_eq!(report.events.len(), 1, "one event per commit ({mode:?})");
                let ev = &report.events[0];
                assert_eq!(ev.query, watched.id());
                assert_eq!(ev.version, report.version);
                let OutputEvent::Delta(wire) = &ev.event else {
                    panic!("a healthy stream has no terminal event");
                };
                wire.apply_to(&mut rows);
            }
            assert_eq!(rows, wire_answer(&mut server, &watched), "{mode:?}");

            // The push buffer carries the same stream for a serving front
            // end, and statuses count the watcher.
            assert_eq!(server.drain_events().len(), deltas.len());
            assert_eq!(server.query_statuses()[watched.id()].watchers, 1);
            assert_eq!(server.query_statuses()[handles[1].id()].watchers, 0);
            server.unsubscribe(sub).unwrap();
        }
    }

    /// Subscribe → evict → apply-while-cold → rehydrate yields exactly one
    /// delta: the key-wise fold of the per-commit stream a resident watcher
    /// of the same query saw — and replaying it still lands on `output()`.
    #[test]
    fn a_cold_watchers_missed_stream_compacts_into_one_rehydration_delta() {
        let (mut server, handles) = server_with(2, EngineMode::Sync);
        let (resident, cold) = (handles[0], handles[1]);
        let _sub_r = server.subscribe(&resident).unwrap();
        let _sub_c = server.subscribe(&cold).unwrap();
        let mut cold_rows = wire_answer(&mut server, &cold);
        server.drain_events();

        server.evict(&cold).unwrap();
        // Successive removals only: every touched key moves further from
        // its baseline value and never reverts, so fold-of-stream and
        // diff-against-baseline must coincide *exactly* (with a revert the
        // diff would rightly omit the key while the fold keeps it).
        let deltas = [
            GraphDelta::new().remove_edge(0, 1),
            GraphDelta::new().remove_edge(5, 6),
            GraphDelta::new().remove_edge(8, 9),
        ];
        let mut resident_stream: Vec<WireOutputDelta> = Vec::new();
        for delta in &deltas {
            let report = server.apply(delta).unwrap();
            assert_eq!(report.events.len(), 1, "the cold watcher emits nothing");
            assert_eq!(report.events[0].query, resident.id());
            let OutputEvent::Delta(wire) = &report.events[0].event else {
                panic!("healthy stream");
            };
            resident_stream.push(wire.clone());
        }

        let report = server.rehydrate(&cold).unwrap();
        assert_eq!(report.replayed.len(), deltas.len());
        assert_eq!(report.events.len(), 1, "one compacted delta for the gap");
        let OutputEvent::Delta(compacted) = &report.events[0].event else {
            panic!("a successful replay is never terminal");
        };

        // Identical queries ⇒ the compacted delta IS the fold of the
        // stream the resident watcher received commit by commit.
        let mut folded = WireOutputDelta::default();
        for wire in &resident_stream {
            folded.fold(wire);
        }
        assert_eq!(compacted, &folded);
        assert!(
            !compacted.is_empty(),
            "the removals really moved the answer"
        );
        let mut via_fold = cold_rows.clone();
        folded.apply_to(&mut via_fold);
        compacted.apply_to(&mut cold_rows);
        assert_eq!(cold_rows, wire_answer(&mut server, &cold));
        assert_eq!(via_fold, cold_rows, "fold and compaction replay alike");
    }

    /// A watched query that gets poisoned emits the terminal event exactly
    /// once and never a partial delta — not from the failed commit, not
    /// from the poisoning replay, not from later commits.
    #[test]
    fn a_watched_query_poisoned_mid_replay_emits_one_terminal_event_only() {
        let g = crate::test_support::ring_graph(12);
        let frag = RangeEdgeCut::new(3).partition(&g).unwrap();
        let s = GrapeSession::builder()
            .workers(2)
            .mode(EngineMode::Sync)
            .max_supersteps(4)
            .build()
            .unwrap();
        let mut server = GrapeServer::new(s, frag);
        let flaky_prog = TrippablePrepare::new();
        let flaky = server.register(flaky_prog.clone(), ()).unwrap();
        server.subscribe(&flaky).unwrap();
        server.drain_events();

        // Fall behind on a failed full re-preparation: no event at all —
        // in particular no delta derived from half-refreshed state.
        flaky_prog.trip();
        let r = server.apply(&GraphDelta::new().add_edge(0, 2)).unwrap();
        assert!(r.events.is_empty(), "a behind query emits nothing");

        // The catch-up replay inside output() poisons the handle: exactly
        // one terminal event, no partial delta.
        flaky_prog.allow_monotone_inserts();
        assert!(server.output(&flaky).is_err());
        let events = server.drain_events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].query, flaky.id());
        assert_eq!(events[0].event, OutputEvent::Poisoned);

        // Later commits skip the quarantined query without repeating it.
        let r = server.apply(&GraphDelta::new().add_edge(1, 3)).unwrap();
        assert!(r.events.is_empty());
        assert!(server.drain_events().is_empty());

        // And a new subscription on the corpse is refused.
        assert!(matches!(
            server.subscribe(&flaky).unwrap_err(),
            ServeError::Engine(EngineError::PoisonedHandle)
        ));
    }

    #[test]
    fn unsubscribe_stops_the_stream_and_rejects_foreign_or_stale_ids() {
        let (mut server, handles) = server_with(1, EngineMode::Sync);
        let h = handles[0];
        let sub = server.subscribe(&h).unwrap();
        let r = server.apply(&GraphDelta::new().add_edge(0, 2)).unwrap();
        assert_eq!(r.events.len(), 1);
        server.unsubscribe(sub).unwrap();
        let r = server.apply(&GraphDelta::new().add_edge(1, 3)).unwrap();
        assert!(r.events.is_empty(), "no watchers, no delta computation");
        assert!(
            matches!(
                server.unsubscribe(sub).unwrap_err(),
                ServeError::UnknownSubscription(_)
            ),
            "a subscription cancels once"
        );

        // Two subscribers share one watch; it ends with the second.
        let s1 = server.subscribe(&h).unwrap();
        let s2 = server.subscribe(&h).unwrap();
        assert_eq!(server.query_statuses()[h.id()].watchers, 2);
        server.unsubscribe(s1).unwrap();
        let r = server.apply(&GraphDelta::new().add_edge(2, 5)).unwrap();
        assert_eq!(r.events.len(), 1, "still watched");
        server.unsubscribe(s2).unwrap();
        assert_eq!(server.query_statuses()[h.id()].watchers, 0);

        // A foreign server's subscription id is rejected, not aliased.
        let (mut other, other_handles) = server_with(1, EngineMode::Sync);
        let foreign = other.subscribe(&other_handles[0]).unwrap();
        assert!(matches!(
            server.unsubscribe(foreign).unwrap_err(),
            ServeError::UnknownSubscription(_)
        ));
    }

    /// Under group-commit a merged group is one commit — and therefore one
    /// answer delta, which still replays to the exact answer.
    #[test]
    fn group_commit_emits_one_merged_delta_per_commit() {
        let g = path_graph(12);
        let frag = RangeEdgeCut::new(3).partition(&g).unwrap();
        let mut server = GrapeServer::new(session(EngineMode::Sync), frag).group_commit(16);
        let h = server.register(MinForward, ()).unwrap();
        server.subscribe(&h).unwrap();
        let mut rows = wire_answer(&mut server, &h);
        server.drain_events();

        let deltas = vec![
            GraphDelta::new().add_edge(0, 2),
            GraphDelta::new().add_edge(0, 3),
            GraphDelta::new().add_edge(1, 4),
        ];
        let batch = server.apply_batch(&deltas);
        assert!(batch.rejected.is_none());
        assert_eq!(batch.reports.len(), 1, "one merged commit");
        assert_eq!(batch.reports[0].events.len(), 1, "one merged answer delta");
        let OutputEvent::Delta(wire) = &batch.reports[0].events[0].event else {
            panic!("healthy stream");
        };
        wire.apply_to(&mut rows);
        assert_eq!(rows, wire_answer(&mut server, &h));
    }
}
